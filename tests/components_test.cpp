// Tests for connected components.
#include "algos/components.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "gen/road_network.hpp"
#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

Csr<double, I> graph(I n, const std::vector<std::pair<I, I>>& edges) {
  Coo<double, I> coo(n, n);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

TEST(Components, SingleComponent) {
  const auto g = graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto r = connected_components(g);
  EXPECT_EQ(r.count, 1);
  EXPECT_EQ(r.largest_size, 4);
  for (const I c : r.component) {
    EXPECT_EQ(c, r.largest_id);
  }
}

TEST(Components, IsolatedVerticesAreSingletons) {
  const auto g = graph(5, {{1, 2}});
  const auto r = connected_components(g);
  EXPECT_EQ(r.count, 4);  // {0}, {1,2}, {3}, {4}
  EXPECT_EQ(r.largest_size, 2);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_NE(r.component[0], r.component[1]);
  EXPECT_NE(r.component[3], r.component[4]);
}

TEST(Components, SizesSumToVertexCount) {
  const auto g = graph(10, {{0, 1}, {2, 3}, {3, 4}, {5, 6}, {6, 7}, {7, 5}});
  const auto r = connected_components(g);
  I total = 0;
  for (const I s : r.size) {
    total += s;
  }
  EXPECT_EQ(total, 10);
  EXPECT_EQ(static_cast<I>(r.size.size()), r.count);
}

TEST(Components, EmptyGraph) {
  const auto r = connected_components(Csr<double, I>(0, 0));
  EXPECT_EQ(r.count, 0);
  EXPECT_EQ(r.largest_size, 0);
}

TEST(Components, NonSquareThrows) {
  EXPECT_THROW(connected_components(Csr<double, I>(2, 3)), PreconditionError);
}

TEST(Components, FragmentedRoadNetworkHasGiantComponent) {
  RoadNetworkParams p;
  p.width = 80;
  p.height = 80;
  p.deletion_prob = 0.45;  // the europe_osm analogue's setting
  const auto g = generate_road_network(p);
  const auto r = connected_components(g);
  EXPECT_GT(r.count, 1);  // fragmentation is expected near the threshold
  // Bond percolation with keep-prob 0.55 > 0.5: a giant component exists.
  EXPECT_GT(r.largest_size, g.rows() / 10);
}

TEST(LargestComponentMember, PicksHighDegreeVertexInGiant) {
  // Two components: a triangle and a star; star is larger, its centre has
  // the highest degree there.
  const auto g =
      graph(9, {{0, 1}, {1, 2}, {0, 2}, {4, 3}, {4, 5}, {4, 6}, {4, 7}, {4, 8}});
  EXPECT_EQ(largest_component_member(g), 4);
}

TEST(LargestComponentMember, SingleVertexGraph) {
  EXPECT_EQ(largest_component_member(Csr<double, I>(1, 1)), 0);
}

}  // namespace
}  // namespace tilq
