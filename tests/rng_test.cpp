// Unit tests for the xoshiro256** generator: determinism (the synthetic
// collection depends on it), range correctness, and stream independence.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace tilq {
namespace {

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 90);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMeanIsNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro, UniformBelowStaysInRange) {
  Xoshiro256 rng(13);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Xoshiro, UniformBelowOneAlwaysZero) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.uniform_below(1), 0u);
  }
}

TEST(Xoshiro, UniformBelowCoversAllResidues) {
  Xoshiro256 rng(19);
  std::array<int, 10> histogram{};
  for (int i = 0; i < 10000; ++i) {
    ++histogram[rng.uniform_below(10)];
  }
  // Each residue should appear close to 1000 times.
  for (const int count : histogram) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256 rng(23);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256 a(31);
  Xoshiro256 b(31);
  b.jump();
  std::vector<std::uint64_t> from_a(100);
  std::vector<std::uint64_t> from_b(100);
  for (int i = 0; i < 100; ++i) {
    from_a[static_cast<std::size_t>(i)] = a();
    from_b[static_cast<std::size_t>(i)] = b();
  }
  // The jumped stream should share no prefix values with the original.
  EXPECT_EQ(std::ranges::mismatch(from_a, from_b).in1, from_a.begin());
}

TEST(SplitMix, Deterministic) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix, ZeroSeedStillMixes) {
  SplitMix64 mix(0);
  EXPECT_NE(mix.next(), 0u);
}

}  // namespace
}  // namespace tilq
