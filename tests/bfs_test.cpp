// Tests for direction-optimizing BFS.
#include "algos/bfs.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "gen/rmat.hpp"
#include "gen/road_network.hpp"
#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

Csr<double, I> graph(I n, const std::vector<std::pair<I, I>>& edges) {
  Coo<double, I> coo(n, n);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

TEST(Bfs, PathGraphLevels) {
  const auto g = graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.level, (std::vector<I>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.reached, 5);
}

TEST(Bfs, StartFromTheMiddle) {
  const auto g = graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto r = bfs(g, 2);
  EXPECT_EQ(r.level, (std::vector<I>{2, 1, 0, 1, 2}));
}

TEST(Bfs, StarGraph) {
  const auto g = graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto center = bfs(g, 0);
  EXPECT_EQ(center.level, (std::vector<I>{0, 1, 1, 1, 1}));
  const auto leaf = bfs(g, 3);
  EXPECT_EQ(leaf.level, (std::vector<I>{1, 2, 2, 0, 2}));
}

TEST(Bfs, DisconnectedComponentIsUnreached) {
  const auto g = graph(5, {{0, 1}, {1, 2}, {3, 4}});
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.level, (std::vector<I>{0, 1, 2, -1, -1}));
  EXPECT_EQ(r.reached, 3);
}

TEST(Bfs, IsolatedSource) {
  const auto g = graph(3, {{1, 2}});
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.level, (std::vector<I>{0, -1, -1}));
  EXPECT_EQ(r.reached, 1);
}

TEST(Bfs, InvalidArgumentsThrow) {
  EXPECT_THROW(bfs(Csr<double, I>(2, 3), 0), PreconditionError);
  EXPECT_THROW(bfs(Csr<double, I>(2, 2), 2), PreconditionError);
  EXPECT_THROW(bfs(Csr<double, I>(2, 2), -1), PreconditionError);
}

class BfsModes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsModes, PushPullAndAutoAgree) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = GetParam();
  const auto g = generate_rmat(p);
  BfsOptions push_only;
  push_only.force_mode = 1;
  BfsOptions pull_only;
  pull_only.force_mode = 2;
  const auto auto_result = bfs(g, 0);
  const auto push_result = bfs(g, 0, push_only);
  const auto pull_result = bfs(g, 0, pull_only);
  EXPECT_EQ(auto_result.level, push_result.level);
  EXPECT_EQ(auto_result.level, pull_result.level);
  EXPECT_EQ(push_result.pull_steps, 0);
  EXPECT_EQ(pull_result.push_steps, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsModes, ::testing::Values(1, 2, 3, 4));

TEST(Bfs, AutoModeUsesPullOnDenseFrontiers) {
  // A dense social-like graph reaches a huge frontier in one hop; the alpha
  // heuristic must switch to pull at least once.
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 16;
  const auto g = generate_rmat(p);
  const auto r = bfs(g, 0);
  EXPECT_GT(r.pull_steps, 0);
  EXPECT_GT(r.push_steps, 0);  // first/last hops are still pushed
}

TEST(Bfs, RoadNetworkStaysInPushMode) {
  // Road networks have near-constant tiny frontiers: pull should never win.
  RoadNetworkParams p;
  p.width = 40;
  p.height = 40;
  p.deletion_prob = 0.0;
  p.shortcut_prob = 0.0;  // diagonals would shorten the Manhattan distance
  const auto g = generate_road_network(p);
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.pull_steps, 0);
  EXPECT_EQ(r.reached, 1600);
  // Manhattan distance graph: the far corner is at level 78.
  EXPECT_EQ(r.level[1599], 39 + 39);
}

}  // namespace
}  // namespace tilq
