// ThreadPool tests: every submitted task runs exactly once, worker_index
// is stable inside the pool and -1 outside, drain() is a real barrier,
// destruction drains queued work, throwing tasks are contained, tasks
// may themselves submit (the engine's finalizer pattern), and the
// priority lanes pop high-before-normal-before-background.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace tilq {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<std::int64_t> sum{0};
  constexpr std::int64_t kTasks = 500;
  for (std::int64_t i = 1; i <= kTasks; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.task_exceptions, 0u);
}

TEST(ThreadPoolTest, WorkerIndexIsInRangeOnWorkersAndMinusOneOutside) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<int> seen;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      const int index = ThreadPool::worker_index();
      const std::lock_guard<std::mutex> lock(mutex);
      seen.insert(index);
    });
  }
  pool.drain();
  EXPECT_EQ(ThreadPool::worker_index(), -1);
  ASSERT_FALSE(seen.empty());
  for (const int index : seen) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, pool.size());
  }
}

TEST(ThreadPoolTest, DrainIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.drain();
    EXPECT_EQ(done.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool: every queued task must have executed before join
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, ThrowingTaskIsContainedAndCounted) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("contract violation"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 50);
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.task_exceptions, 1u);
  EXPECT_EQ(stats.executed, 51u);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  // Two-level fan-out: each root task submits 8 leaves, like the engine's
  // per-job tile fan-out followed by a finalizer.
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &leaves] {
      for (int j = 0; j < 8; ++j) {
        pool.submit(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.drain();
  EXPECT_EQ(leaves.load(), 16 * 8);
}

TEST(ThreadPoolTest, DefaultWidthIsAtLeastOne) {
  ThreadPool pool;  // 0 => max_threads()
  EXPECT_GE(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true, std::memory_order_relaxed); });
  pool.drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, HighLaneRunsBeforeBackgroundLane) {
  // One worker, so execution order is the pop order. A gate task holds
  // the worker while both lanes fill; on release the high-lane task must
  // run before the background one that was submitted first.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::mutex mutex;
  std::vector<int> order;
  pool.submit([&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  pool.submit(
      [&] {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back(2);
      },
      TaskPriority::kBackground);
  pool.submit(
      [&] {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back(0);
      },
      TaskPriority::kHigh);
  pool.submit(
      [&] {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back(1);
      },
      TaskPriority::kNormal);
  release.store(true, std::memory_order_release);
  pool.drain();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, AllLanesDrainAndCountConsistently) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 300; ++i) {
    const auto lane = static_cast<TaskPriority>(i % kTaskPriorityLanes);
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                lane);
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 300);
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.executed, 300u);
  EXPECT_LE(stats.stolen, stats.executed);
}

TEST(ThreadPoolTest, StealAccountingStaysConsistent) {
  ThreadPool pool(4);
  for (int i = 0; i < 400; ++i) {
    pool.submit([] {});
  }
  pool.drain();
  const ThreadPool::Stats stats = pool.stats();
  // Steals are a subset of executions; with round-robin placement across 4
  // deques they may or may not occur, but the books must balance.
  EXPECT_LE(stats.stolen, stats.executed);
  EXPECT_EQ(stats.executed, 400u);
}

TEST(ThreadPoolTest, WorkerStatsSumToPoolTotalsAfterDrain) {
  ThreadPool pool(4);
  for (int i = 0; i < 500; ++i) {
    pool.submit([] {});
  }
  pool.drain();
  const ThreadPool::Stats totals = pool.stats();
  const std::vector<ThreadPool::WorkerStats> per_worker = pool.worker_stats();
  ASSERT_EQ(per_worker.size(), 4u);
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  for (const ThreadPool::WorkerStats& w : per_worker) {
    executed += w.executed;
    stolen += w.stolen;
  }
  // Conservation: the pool totals are defined as the per-worker sums.
  EXPECT_EQ(executed, totals.executed);
  EXPECT_EQ(stolen, totals.stolen);
  EXPECT_EQ(executed, 500u);
  EXPECT_EQ(executed, totals.submitted);
}

TEST(ThreadPoolTest, WorkerStatsSnapshotsAreSafeDuringStealHeavyLoad) {
  // The telemetry sampler reads worker_stats() while the pool runs; this
  // is that access pattern under load. Round-robin placement plus tiny
  // tasks keeps the deques unevenly drained, so steals occur while the
  // sampler reads. TSan-clean is part of the contract.
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::thread sampler([&] {
    std::vector<std::uint64_t> last_executed(4, 0);
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<ThreadPool::WorkerStats> per_worker =
          pool.worker_stats();
      ASSERT_EQ(per_worker.size(), 4u);
      for (std::size_t i = 0; i < per_worker.size(); ++i) {
        // Each worker's counter is monotone across snapshots.
        EXPECT_GE(per_worker[i].executed, last_executed[i]);
        last_executed[i] = per_worker[i].executed;
      }
      snapshots.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  constexpr int kTasks = 4000;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.drain();
  stop.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_GE(snapshots.load(), 1u);
  // After the barrier the per-worker books must balance exactly.
  std::uint64_t executed = 0;
  for (const ThreadPool::WorkerStats& w : pool.worker_stats()) {
    executed += w.executed;
  }
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(executed, pool.stats().executed);
}

}  // namespace
}  // namespace tilq
