// Plan/execute runtime tests: bit-identity of the planned numeric phase
// against the oracle and across repeated executes, value-only updates on a
// fixed sparsity pattern, staleness detection, workspace-pool reuse (zero
// per-iteration accumulator constructions after warm-up), and the PlanCache
// replan/hit accounting the iterative algorithms rely on.
#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "accum/workspace_pool.hpp"
#include "algos/ktruss.hpp"
#include "algos/triangle_count.hpp"
#include "core/masked_spgemm.hpp"
#include "core/masked_spgemm_2d.hpp"
#include "sparse/build.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

struct Problem {
  Csr<double, I> mask;
  Csr<double, I> a;
  Csr<double, I> b;
};

Problem make_problem(std::uint64_t seed, I rows = 48, I inner = 40, I cols = 44,
                     double density = 0.12) {
  return {test::random_matrix<double, I>(rows, cols, density, seed),
          test::random_matrix<double, I>(rows, inner, density, seed + 1000),
          test::random_matrix<double, I>(inner, cols, density, seed + 2000)};
}

/// Random undirected simple graph as a symmetric adjacency matrix.
Csr<double, I> random_symmetric_graph(I n, double density, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo<double, I> coo(n, n);
  for (I i = 0; i < n; ++i) {
    for (I j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) {
        coo.push(i, j, 1.0);
        coo.push(j, i, 1.0);
      }
    }
  }
  return build_csr(coo);
}

/// Same sparsity, different values — the update a plan must survive.
Csr<double, I> scale_values(const Csr<double, I>& m, double factor) {
  std::vector<I> row_ptr(m.row_ptr().begin(), m.row_ptr().end());
  std::vector<I> col_idx(m.col_idx().begin(), m.col_idx().end());
  std::vector<double> values(m.values().begin(), m.values().end());
  for (double& v : values) {
    v *= factor;
  }
  return {m.rows(), m.cols(), std::move(row_ptr), std::move(col_idx),
          std::move(values)};
}

// ---------------------------------------------------------------------------
// Bit-identity: planned executes match the oracle and each other, across the
// strategy x accumulator x marker-width grid.
// ---------------------------------------------------------------------------

using PlanTuple = std::tuple<MaskStrategy, AccumulatorKind, MarkerWidth>;

class PlannedExecute : public ::testing::TestWithParam<PlanTuple> {};

TEST_P(PlannedExecute, RepeatedExecutesAreBitIdenticalToOracle) {
  Config config;
  config.strategy = std::get<0>(GetParam());
  config.accumulator = std::get<1>(GetParam());
  config.marker_width = std::get<2>(GetParam());
  config.num_tiles = 6;

  const Problem p = make_problem(5);
  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  const auto one_shot = masked_spgemm<SR>(p.mask, p.a, p.b, config);

  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  const auto first = exec.execute(p.mask, p.a, p.b);
  EXPECT_TRUE(test::csr_equal(expected, first)) << config.describe();
  EXPECT_TRUE(test::csr_equal(one_shot, first)) << config.describe();
  // Reused pooled accumulators (continued epochs, retained capacity) must
  // not perturb a single bit of the output.
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(test::csr_equal(first, exec.execute(p.mask, p.a, p.b)))
        << config.describe() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlannedExecute,
    ::testing::Combine(
        ::testing::Values(MaskStrategy::kVanilla, MaskStrategy::kMaskFirst,
                          MaskStrategy::kCoIterate, MaskStrategy::kHybrid),
        ::testing::Values(AccumulatorKind::kDense, AccumulatorKind::kHash,
                          AccumulatorKind::kBitmap),
        ::testing::Values(MarkerWidth::k8, MarkerWidth::k64)),
    [](const auto& param_info) {
      std::string name;
      name += to_string(std::get<0>(param_info.param));
      name += '_';
      name += to_string(std::get<1>(param_info.param));
      name += std::to_string(bits(std::get<2>(param_info.param)));
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Value-only updates: the planned structure survives new numeric values.
// ---------------------------------------------------------------------------

TEST(PlanValueUpdates, NewValuesSameSparsityExecuteWithoutReplanning) {
  const Problem p = make_problem(7);
  Config config;
  config.strategy = MaskStrategy::kHybrid;

  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  (void)exec.execute(p.mask, p.a, p.b);

  for (const double factor : {2.0, -0.5, 10.0}) {
    const auto a2 = scale_values(p.a, factor);
    const auto b2 = scale_values(p.b, factor);
    EXPECT_TRUE(exec.matches(p.mask, a2, b2));
    const auto planned = exec.execute(p.mask, a2, b2);
    const auto fresh = masked_spgemm<SR>(p.mask, a2, b2, config);
    EXPECT_TRUE(test::csr_equal(fresh, planned)) << "factor=" << factor;
  }
}

// ---------------------------------------------------------------------------
// Staleness: a structure change after plan() must raise, not compute.
// ---------------------------------------------------------------------------

TEST(PlanStaleness, StructureChangeRaisesStalePlanError) {
  const Problem p = make_problem(11);
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b);
  (void)exec.execute(p.mask, p.a, p.b);

  const auto a_changed = tril(p.a);  // drops entries: new sparsity
  EXPECT_FALSE(exec.matches(p.mask, a_changed, p.b));
  EXPECT_THROW((void)exec.execute(p.mask, a_changed, p.b), StalePlanError);
  // StalePlanError is a PreconditionError, so existing catch sites work.
  EXPECT_THROW((void)exec.execute(p.mask, a_changed, p.b), PreconditionError);
  // The original operands still execute fine: the plan was not corrupted.
  EXPECT_NO_THROW((void)exec.execute(p.mask, p.a, p.b));
}

TEST(PlanStaleness, ExecuteWithoutPlanThrows) {
  const Problem p = make_problem(13);
  Executor<SR> exec;
  EXPECT_THROW((void)exec.execute(p.mask, p.a, p.b), PreconditionError);
  exec.plan(p.mask, p.a, p.b);
  EXPECT_NO_THROW((void)exec.execute(p.mask, p.a, p.b));
  exec.reset();
  EXPECT_THROW((void)exec.execute(p.mask, p.a, p.b), PreconditionError);
}

TEST(PlanStaleness, ValueOnlyChangeKeepsFingerprint) {
  const Problem p = make_problem(17);
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b);
  const auto mask2 = scale_values(p.mask, 3.0);  // mask values are ignored
  EXPECT_TRUE(exec.matches(mask2, p.a, p.b));
}

// ---------------------------------------------------------------------------
// Workspace pooling: allocations happen once, not per execute.
// ---------------------------------------------------------------------------

TEST(PlanWorkspaces, AccumulatorConstructionsFlatAcrossExecutes) {
  const Problem p = make_problem(19);
  Config config;
  config.accumulator = AccumulatorKind::kHash;

  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  (void)exec.execute(p.mask, p.a, p.b);  // warm-up constructs the pool

  const auto warm = exec.pool_stats();
  const auto warm_grows = exec.buffer_grows();
  EXPECT_GT(warm.constructions, 0u);

  for (int round = 0; round < 10; ++round) {
    (void)exec.execute(p.mask, p.a, p.b);
  }
  const auto after = exec.pool_stats();
  EXPECT_EQ(after.constructions, warm.constructions)
      << "pooled accumulators were rebuilt on a steady-state execute";
  EXPECT_EQ(after.retunes, warm.retunes);
  EXPECT_GT(after.acquisitions, warm.acquisitions);
  EXPECT_EQ(exec.buffer_grows(), warm_grows)
      << "driver buffers grew on a steady-state execute";
}

TEST(PlanWorkspaces, ReplanSameAccumulatorTypeKeepsPoolWarm) {
  const Problem p = make_problem(23);
  Config config;
  config.accumulator = AccumulatorKind::kDense;

  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  (void)exec.execute(p.mask, p.a, p.b);
  const auto warm = exec.pool_stats();

  // Shrinking replan (k-truss pattern): same accumulator type, smaller
  // structure — the pooled workspaces must carry over untouched.
  const auto mask2 = tril(p.mask);
  exec.plan(mask2, p.a, p.b, config);
  (void)exec.execute(mask2, p.a, p.b);
  const auto after = exec.pool_stats();
  EXPECT_EQ(after.constructions, warm.constructions);
  EXPECT_GT(after.acquisitions, warm.acquisitions);
}

TEST(PlanWorkspaces, PoolRebuildsOnlyOnCapabilityGrowth) {
  struct Dummy {
    std::uint64_t cap;
  };
  WorkspacePool<Dummy> pool;
  pool.reserve(1);
  const auto make_for = [](std::uint64_t cap) {
    return [cap] { return Dummy{cap}; };
  };
  (void)pool.acquire(0, 100, make_for(100));
  (void)pool.acquire(0, 50, make_for(50));   // smaller demand: reuse
  (void)pool.acquire(0, 100, make_for(100)); // equal demand: reuse
  auto stats = pool.stats();
  EXPECT_EQ(stats.acquisitions, 3u);
  EXPECT_EQ(stats.constructions, 1u);
  EXPECT_EQ(stats.retunes, 0u);

  (void)pool.acquire(0, 200, make_for(200));  // growth: rebuild
  stats = pool.stats();
  EXPECT_EQ(stats.constructions, 2u);
  EXPECT_EQ(stats.retunes, 1u);

  pool.release();
  (void)pool.acquire(0, 10, make_for(10));  // empty slot: rebuild, no retune
  stats = pool.stats();
  EXPECT_EQ(stats.constructions, 3u);
  EXPECT_EQ(stats.retunes, 1u);
}

// ---------------------------------------------------------------------------
// Plan introspection.
// ---------------------------------------------------------------------------

TEST(PlanInfo, HybridPlansOneDecisionPerANonzero) {
  const Problem p = make_problem(29);
  Config config;
  config.strategy = MaskStrategy::kHybrid;
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  EXPECT_EQ(exec.info().hybrid_decisions, p.a.nnz());
  EXPECT_GT(exec.info().fingerprint, 0u);
  EXPECT_GE(exec.info().build_ms, 0.0);
  EXPECT_EQ(exec.info().col_tiles, 1);

  config.strategy = MaskStrategy::kMaskFirst;
  exec.plan(p.mask, p.a, p.b, config);
  EXPECT_EQ(exec.info().hybrid_decisions, 0);  // only hybrid precomputes
}

TEST(PlanInfo, StatsReportPhasesAndPlanBuildTime) {
  const Problem p = make_problem(31);
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b);
  ExecutionStats stats;
  const auto c = exec.execute(p.mask, p.a, p.b, stats);
  EXPECT_EQ(stats.output_nnz, c.nnz());
  EXPECT_GE(stats.tiles, 1);
  EXPECT_GE(stats.analyze_ms, 0.0);  // per-execute: the staleness check
  EXPECT_GE(stats.compute_ms, 0.0);
  EXPECT_GE(stats.compact_ms, 0.0);
}

// ---------------------------------------------------------------------------
// 2D plans.
// ---------------------------------------------------------------------------

TEST(Plan2d, PlannedTwoDimensionalMatchesOracleAndRepeats) {
  const Problem p = make_problem(37);
  Config config;
  config.strategy = MaskStrategy::kMaskFirst;
  config.num_col_tiles = 3;
  config.num_tiles = 4;

  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  EXPECT_TRUE(exec.plan_data().two_dimensional());
  EXPECT_EQ(exec.info().col_tiles, 3);
  const auto first = exec.execute(p.mask, p.a, p.b);
  EXPECT_TRUE(test::csr_equal(expected, first));
  EXPECT_TRUE(test::csr_equal(first, exec.execute(p.mask, p.a, p.b)));
}

TEST(Plan2d, VanillaTwoDimensionalIsRejected) {
  const Problem p = make_problem(41);
  Config config;
  config.strategy = MaskStrategy::kVanilla;
  config.num_col_tiles = 2;
  Executor<SR> exec;
  EXPECT_THROW(exec.plan(p.mask, p.a, p.b, config), PreconditionError);
}

TEST(Plan2d, SingleColumnTileDegeneratesToOneDimensional) {
  const Problem p = make_problem(43);
  Config config;
  config.num_col_tiles = 1;
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  EXPECT_FALSE(exec.plan_data().two_dimensional());
  EXPECT_TRUE(test::csr_equal(masked_spgemm<SR>(p.mask, p.a, p.b),
                              exec.execute(p.mask, p.a, p.b)));
}

// ---------------------------------------------------------------------------
// Blocked plans: cache-blocked column tiles with per-tile dense/sparse
// accumulator specialization (docs/ARCHITECTURE.md, "The blocked plan
// stage"). The blocked space must be a pure layout change: bit-identical
// to the 1D reference for every strategy x accumulator x marker width.
// ---------------------------------------------------------------------------

using BlockedTuple = std::tuple<MaskStrategy, AccumulatorKind, MarkerWidth>;

class BlockedExecute : public ::testing::TestWithParam<BlockedTuple> {};

TEST_P(BlockedExecute, BitIdenticalToOneDimensionalAcrossRepeats) {
  Config config;
  config.strategy = std::get<0>(GetParam());
  config.accumulator = std::get<1>(GetParam());
  config.marker_width = std::get<2>(GetParam());
  config.num_tiles = 6;
  const Problem p = make_problem(61);

  const auto one_d = masked_spgemm<SR>(p.mask, p.a, p.b, config);
  EXPECT_TRUE(test::csr_equal(
      test::reference_masked_spgemm<SR>(p.mask, p.a, p.b), one_d));

  Config blocked = config;
  blocked.mode = Strategy::kBlocked;
  blocked.block_cols = 7;  // several narrow blocks across the 44 columns
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, blocked);
  EXPECT_TRUE(exec.plan_data().is_blocked());
  EXPECT_GT(exec.plan_data().cells_per_row_tile(), 1);
  const auto first = exec.execute(p.mask, p.a, p.b);
  EXPECT_TRUE(test::csr_equal(one_d, first)) << blocked.describe();
  // Pooled blocked workspaces (dense segment + sparse accumulator pair)
  // must not perturb a single bit across reuse.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(test::csr_equal(first, exec.execute(p.mask, p.a, p.b)))
        << blocked.describe() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlockedExecute,
    ::testing::Combine(
        ::testing::Values(MaskStrategy::kMaskFirst, MaskStrategy::kCoIterate,
                          MaskStrategy::kHybrid),
        ::testing::Values(AccumulatorKind::kDense, AccumulatorKind::kHash,
                          AccumulatorKind::kBitmap),
        ::testing::Values(MarkerWidth::k8, MarkerWidth::k64)),
    [](const auto& param_info) {
      std::string name;
      name += to_string(std::get<0>(param_info.param));
      name += '_';
      name += to_string(std::get<1>(param_info.param));
      name += std::to_string(bits(std::get<2>(param_info.param)));
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

TEST(BlockedPlan, VanillaIsRejected) {
  const Problem p = make_problem(67);
  Config config;
  config.strategy = MaskStrategy::kVanilla;
  config.mode = Strategy::kBlocked;
  Executor<SR> exec;
  EXPECT_THROW(exec.plan(p.mask, p.a, p.b, config), PreconditionError);
}

TEST(BlockedPlan, PlanInfoClassifiesTiles) {
  const Problem p = make_problem(71);
  Config config;
  config.mode = Strategy::kBlocked;
  config.block_cols = 8;
  config.num_tiles = 4;
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  const auto& plan = exec.plan_data();
  ASSERT_TRUE(plan.is_blocked());
  ASSERT_NE(plan.blocked, nullptr);
  const auto& info = exec.info();
  EXPECT_EQ(info.dense_tiles + info.sparse_tiles,
            static_cast<std::int64_t>(plan.row_tiles.size()) *
                plan.blocked->num_blocks());
  EXPECT_GT(info.dense_tiles + info.sparse_tiles, 0);
  // col_tiles mirrors the block ranges for introspection.
  EXPECT_EQ(static_cast<std::int64_t>(plan.col_tiles.size()),
            plan.blocked->num_blocks());
  EXPECT_EQ(plan.cells_per_row_tile(), plan.blocked->num_blocks());
}

TEST(BlockedPlan, HubRowsSplitIntoColumnBlockTasks) {
  // Circuit-style structure: one ultra-dense hub row dominating the flop
  // total. The blocked planner must split it into singleton row tiles so
  // its column blocks become independent tasks.
  const I rows = 32;
  const I inner = 40;
  const I cols = 44;
  Xoshiro256 rng(97);
  Coo<double, I> a_coo(rows, inner);
  for (I k = 0; k < inner; ++k) {
    a_coo.push(0, k, 1.0 + static_cast<double>(k));  // the hub row
  }
  for (I i = 1; i < rows; ++i) {
    for (I k = 0; k < inner; ++k) {
      if (rng.bernoulli(0.05)) {
        a_coo.push(i, k, rng.uniform());
      }
    }
  }
  const auto a = build_csr(a_coo);
  const auto b = test::random_matrix<double, I>(inner, cols, 0.2, 101);
  const auto mask = test::random_matrix<double, I>(rows, cols, 0.5, 103);

  Config config;
  config.mode = Strategy::kBlocked;
  config.block_cols = 11;
  config.num_tiles = 16;  // small quota => the hub clears 2x the mean
  Executor<SR> exec;
  exec.plan(mask, a, b, config);
  EXPECT_GT(exec.info().hub_splits, 0);
  EXPECT_TRUE(test::csr_equal(test::reference_masked_spgemm<SR>(mask, a, b),
                              exec.execute(mask, a, b)));
  Config one_d = config;
  one_d.mode = Strategy::k1D;
  EXPECT_TRUE(test::csr_equal(masked_spgemm<SR>(mask, a, b, one_d),
                              exec.execute(mask, a, b)));
}

TEST(BlockedPlan, ValueOnlyUpdatesReuseThePlan) {
  const Problem p = make_problem(73);
  Config config;
  config.mode = Strategy::kBlocked;
  config.block_cols = 6;
  Executor<SR> exec;
  exec.plan(p.mask, p.a, p.b, config);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, p.a, p.b),
                      exec.execute(p.mask, p.a, p.b)));
  // Same structure, new values: the blocked slices are structure-only with
  // entry_begin indirection into the live value arrays, so no replan.
  const auto a2 = scale_values(p.a, -1.5);
  const auto b2 = scale_values(p.b, 3.0);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, a2, b2),
                      exec.execute(p.mask, a2, b2)));
}

// ---------------------------------------------------------------------------
// PlanCache: the iterative-algorithm front door.
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, ReplansOnlyOnStructureOrConfigChange) {
  const Problem p = make_problem(47);
  PlanCache<SR> cache;
  const Config config;

  const auto c1 = cache.execute(p.mask, p.a, p.b, config);
  (void)cache.execute(p.mask, p.a, p.b, config);
  (void)cache.execute(p.mask, p.a, p.b, config);
  EXPECT_EQ(cache.replans(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_TRUE(test::csr_equal(c1, cache.execute(p.mask, p.a, p.b, config)));

  // Structure change: transparent replan, correct result.
  const auto mask2 = tril(p.mask);
  const auto c2 = cache.execute(mask2, p.a, p.b, config);
  EXPECT_EQ(cache.replans(), 2u);
  EXPECT_TRUE(test::csr_equal(
      test::reference_masked_spgemm<SR>(mask2, p.a, p.b), c2));

  // Config change on the same structure: also a replan.
  Config other = config;
  other.strategy = MaskStrategy::kCoIterate;
  (void)cache.execute(mask2, p.a, p.b, other);
  EXPECT_EQ(cache.replans(), 3u);
}

TEST(PlanCacheTest, KtrussSharedCacheMatchesUncached) {
  const auto adj = random_symmetric_graph(60, 0.12, 53);
  const Config config;
  const KtrussResult plain = ktruss(adj, 4, config);

  TrianglePlanCache cache;
  const KtrussResult cached = ktruss(adj, 4, config, cache);
  EXPECT_TRUE(test::csr_equal(plain.truss, cached.truss));
  EXPECT_EQ(plain.edges, cached.edges);
  EXPECT_EQ(plain.iterations, cached.iterations);
  EXPECT_EQ(cache.replans() + cache.hits(),
            static_cast<std::uint64_t>(cached.iterations));
}

TEST(PlanCacheTest, TriangleCountSharedCacheMatchesUncached) {
  const auto adj = random_symmetric_graph(60, 0.15, 59);
  TrianglePlanCache cache;
  for (const TriangleMethod method :
       {TriangleMethod::kBurkhardt, TriangleMethod::kCohen,
        TriangleMethod::kSandia}) {
    const auto plain = count_triangles(adj, method);
    EXPECT_EQ(plain, count_triangles(adj, method, Config{}, cache))
        << to_string(method);
    // Repeating the same method is a pure cache hit.
    const auto hits_before = cache.hits();
    EXPECT_EQ(plain, count_triangles(adj, method, Config{}, cache));
    EXPECT_GT(cache.hits(), hits_before);
  }
}

// ---------------------------------------------------------------------------
// Unified Config: one struct selects 1D / 2D / blocked execution.
// ---------------------------------------------------------------------------

TEST(ConfigUnification, StrategySelectionAndDescribe) {
  Config config;
  config.strategy = MaskStrategy::kCoIterate;
  EXPECT_EQ(config.effective_strategy(), Strategy::k1D);

  config.num_col_tiles = 4;
  EXPECT_EQ(config.effective_strategy(), Strategy::k2D);
  EXPECT_NE(config.describe().find("col-tiles=4"), std::string::npos);

  config.mode = Strategy::kBlocked;
  config.block_cols = 512;
  EXPECT_EQ(config.effective_strategy(), Strategy::kBlocked);
  EXPECT_NE(config.describe().find("mode=blocked"), std::string::npos);
  EXPECT_NE(config.describe().find("block-cols=512"), std::string::npos);

  Config same = config;
  EXPECT_EQ(config, same);
  same.block_cols = 1024;
  EXPECT_FALSE(config == same);
  same = config;
  same.threads = 7;
  EXPECT_FALSE(config == same);
}

}  // namespace
}  // namespace tilq
