// Unit tests for support/common.hpp.
#include "support/common.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace tilq {
namespace {

TEST(Require, PassesOnTrue) { EXPECT_NO_THROW(require(true, "ok")); }

TEST(Require, ThrowsPreconditionErrorOnFalse) {
  EXPECT_THROW(require(false, "boom"), PreconditionError);
}

TEST(Require, MessageIsPreserved) {
  try {
    require(false, "specific message");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(Narrow, LosslessConversionSucceeds) {
  EXPECT_EQ(narrow<std::int32_t>(std::int64_t{42}), 42);
  EXPECT_EQ(narrow<std::uint8_t>(255), 255);
  EXPECT_EQ(narrow<std::int16_t>(-32768), -32768);
}

TEST(Narrow, OverflowThrows) {
  EXPECT_THROW(narrow<std::int8_t>(300), std::range_error);
  EXPECT_THROW(narrow<std::uint8_t>(-1), std::range_error);
  EXPECT_THROW(narrow<std::int32_t>(std::int64_t{1} << 40), std::range_error);
}

TEST(Narrow, SignednessMismatchThrows) {
  EXPECT_THROW(narrow<std::uint64_t>(std::int64_t{-5}), std::range_error);
}

TEST(NarrowCast, LosslessConversion) {
  EXPECT_EQ(narrow_cast<std::int32_t>(std::int64_t{7}), 7);
}

TEST(NextPow2, ExactPowersArePreserved) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(NextPow2, RoundsUp) {
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(next_pow2(5), 8u);
}

TEST(IsPow2, Classification) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(FloorLog2, KnownValues) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1025), 10u);
}

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(CeilDiv, KnownValues) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(std::int64_t{1} << 40, std::int64_t{7}),
            ((std::int64_t{1} << 40) + 6) / 7);
}

}  // namespace
}  // namespace tilq
