// Implementation-specific tests for the hash accumulator: table sizing,
// growth, collision handling, and probe accounting.
#include "accum/hash_accumulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/semiring.hpp"
#include "support/common.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;
using Acc = HashAccumulator<SR, I, std::uint32_t>;

TEST(HashAccumulator, NegativeBoundThrows) {
  EXPECT_THROW(Acc(-1), PreconditionError);
}

TEST(HashAccumulator, CapacityIsPowerOfTwoAtMostHalfLoaded) {
  for (const I bound : {0, 1, 3, 100, 1000, 4097}) {
    const Acc acc(bound);
    EXPECT_TRUE(is_pow2(acc.capacity())) << "bound " << bound;
    EXPECT_GE(acc.capacity(), static_cast<std::size_t>(2 * bound))
        << "bound " << bound;
  }
}

TEST(HashAccumulator, GrowsWhenMaskExceedsBound) {
  Acc acc(2);
  const std::size_t before = acc.capacity();
  std::vector<I> big_mask(100);
  for (I j = 0; j < 100; ++j) {
    big_mask[static_cast<std::size_t>(j)] = j * 7;
  }
  acc.set_mask(big_mask);
  EXPECT_GT(acc.capacity(), before);
  // All entries must be present after the growth.
  for (const I j : big_mask) {
    EXPECT_TRUE(acc.is_masked(j));
  }
  acc.finish_row(big_mask);
}

TEST(HashAccumulator, HandlesCollidingKeys) {
  // Keys spaced by the capacity hash into overlapping chains; correctness
  // must not depend on the hash spreading them.
  Acc acc(8);
  const auto cap = static_cast<I>(acc.capacity());
  const std::vector<I> mask = {0, cap, 2 * cap, 3 * cap, 1, cap + 1};
  acc.set_mask(mask);
  for (const I j : mask) {
    EXPECT_TRUE(acc.is_masked(j)) << "key " << j;
    EXPECT_TRUE(acc.accumulate(j, static_cast<double>(j + 1)));
  }
  EXPECT_FALSE(acc.is_masked(4 * cap));
  std::vector<std::pair<I, double>> out;
  acc.gather(std::span<const I>(mask),
             [&](I col, double v) { out.emplace_back(col, v); });
  ASSERT_EQ(out.size(), mask.size());
  for (std::size_t p = 0; p < mask.size(); ++p) {
    EXPECT_EQ(out[p].first, mask[p]);
    EXPECT_DOUBLE_EQ(out[p].second, static_cast<double>(mask[p] + 1));
  }
  acc.finish_row(mask);
}

TEST(HashAccumulator, ProbeCounterAdvancesUnderCollisions) {
  Acc acc(4);
  const auto cap = static_cast<I>(acc.capacity());
  const std::vector<I> colliding = {0, cap, 2 * cap};
  acc.set_mask(colliding);
  EXPECT_GT(acc.counters().probes, 0u);
  acc.finish_row(colliding);
}

TEST(HashAccumulator, LargeSparseKeysWork) {
  // Column indices far larger than the capacity (the whole point of the
  // hash accumulator: dimension-independent footprint).
  Acc acc(16);
  const std::vector<I> mask = {1'000'000'007, 2'000'000'011, 3'000'000'019};
  acc.set_mask(mask);
  EXPECT_TRUE(acc.accumulate(2'000'000'011, 4.5));
  EXPECT_FALSE(acc.accumulate(2'000'000'012, 4.5));
  std::vector<std::pair<I, double>> out;
  acc.gather(std::span<const I>(mask),
             [&](I col, double v) { out.emplace_back(col, v); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 2'000'000'011);
  acc.finish_row(mask);
}

TEST(HashAccumulator, StaleEntriesInvisibleAfterManyRows) {
  // Rotate through key sets long enough to wrap an 8-bit marker several
  // times; stale keys must never resurface.
  HashAccumulator<SR, I, std::uint8_t> acc(4);
  for (int row = 0; row < 2000; ++row) {
    const I base = 1000 * (row % 7);
    const std::vector<I> mask = {base, base + 1, base + 2};
    acc.set_mask(mask);
    ASSERT_FALSE(acc.is_masked(base + 3)) << "row " << row;
    ASSERT_TRUE(acc.accumulate(base + 1, 1.0));
    int emitted = 0;
    acc.gather(std::span<const I>(mask), [&](I, double) { ++emitted; });
    ASSERT_EQ(emitted, 1) << "row " << row;
    acc.finish_row(mask);
  }
  EXPECT_GT(acc.counters().full_resets, 10u);
}

TEST(HashAccumulator, ExplicitResetClearsOnlyMaskSlots) {
  HashAccumulator<SR, I, std::uint16_t> acc(8, ResetPolicy::kExplicit);
  const std::vector<I> mask_a = {1, 2};
  acc.set_mask(mask_a);
  acc.accumulate(1, 1.0);
  acc.finish_row(mask_a);
  EXPECT_EQ(acc.counters().full_resets, 0u);
  const std::vector<I> mask_b = {2, 3};
  acc.set_mask(mask_b);
  EXPECT_FALSE(acc.is_masked(1));
  EXPECT_TRUE(acc.is_masked(2));
  EXPECT_TRUE(acc.is_masked(3));
  acc.finish_row(mask_b);
}

TEST(HashAccumulator, UnmaskedGrowthPreservesSums) {
  Acc acc(2);
  acc.begin_unmasked_row(1000);
  for (I j = 0; j < 500; ++j) {
    acc.accumulate_any(j * 3, 1.0);
    acc.accumulate_any(j * 3, 1.0);
  }
  int count = 0;
  acc.gather_unmasked([&](I, double v) {
    ++count;
    ASSERT_DOUBLE_EQ(v, 2.0);
  });
  EXPECT_EQ(count, 500);
  acc.finish_row(std::span<const I>{});
}

}  // namespace
}  // namespace tilq
