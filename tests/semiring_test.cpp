// Tests for the semiring definitions.
#include "core/semiring.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace tilq {
namespace {

TEST(PlusTimesSemiring, BasicAlgebra) {
  using SR = PlusTimes<double>;
  EXPECT_DOUBLE_EQ(SR::zero(), 0.0);
  EXPECT_DOUBLE_EQ(SR::add(2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(SR::mul(2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(SR::add(SR::zero(), 7.0), 7.0);  // identity
}

TEST(PlusPairSemiring, MulIgnoresOperands) {
  using SR = PlusPair<std::int64_t>;
  EXPECT_EQ(SR::mul(999, -5), 1);
  EXPECT_EQ(SR::mul(0, 0), 1);
  EXPECT_EQ(SR::add(3, 4), 7);
  EXPECT_EQ(SR::zero(), 0);
}

TEST(BoolOrAndSemiring, TruthTable) {
  using SR = BoolOrAnd;
  EXPECT_FALSE(SR::zero());
  EXPECT_TRUE(SR::add(true, false));
  EXPECT_FALSE(SR::add(false, false));
  EXPECT_TRUE(SR::mul(true, true));
  EXPECT_FALSE(SR::mul(true, false));
}

TEST(MinPlusSemiring, TropicalAlgebra) {
  using SR = MinPlus<std::int64_t>;
  EXPECT_EQ(SR::zero(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(SR::add(5, 3), 3);
  EXPECT_EQ(SR::mul(5, 3), 8);
  // Infinity absorbs multiplication and is the additive identity.
  EXPECT_EQ(SR::mul(SR::zero(), 3), SR::zero());
  EXPECT_EQ(SR::mul(3, SR::zero()), SR::zero());
  EXPECT_EQ(SR::add(SR::zero(), 42), 42);
}

TEST(MinPlusSemiring, NoOverflowNearInfinity) {
  using SR = MinPlus<std::int64_t>;
  // mul must not wrap around when one operand is "infinity".
  EXPECT_EQ(SR::mul(SR::zero(), SR::zero()), SR::zero());
  EXPECT_GT(SR::mul(SR::zero(), 1), 0);
}

}  // namespace
}  // namespace tilq
