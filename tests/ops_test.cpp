// Tests for structural CSR operations: transpose, symmetrize, diagonal
// removal, triangular extraction, value conversion, pattern comparison.
#include "sparse/ops.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using M = Csr<double, I>;

TEST(Transpose, SmallKnownMatrix) {
  const auto m = csr_from_triplets<double, I>(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const auto t = transpose(m);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.nnz(), 3);
  EXPECT_TRUE(t.check());
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 3.0);
}

TEST(Transpose, DoubleTransposeIsIdentityProperty) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto m = test::random_matrix<double, I>(40, 60, 0.08, seed);
    EXPECT_TRUE(test::csr_equal(m, transpose(transpose(m)))) << "seed " << seed;
  }
}

TEST(Transpose, EmptyMatrix) {
  const auto t = transpose(M(3, 5));
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), 0);
}

TEST(Symmetrize, ProducesSymmetricPattern) {
  const auto m = test::random_matrix<double, I>(30, 30, 0.1, 7);
  const auto s = symmetrize(m);
  EXPECT_TRUE(test::csr_equal(s, transpose(s)));
}

TEST(Symmetrize, KeepsExistingEntries) {
  const auto m = csr_from_triplets<double, I>(3, 3, {{0, 1, 5.0}, {2, 0, 7.0}});
  const auto s = symmetrize(m);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(s.at(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(s.at(0, 2), 7.0);
  EXPECT_EQ(s.nnz(), 4);
}

TEST(Symmetrize, RequiresSquare) {
  EXPECT_THROW(symmetrize(M(2, 3)), PreconditionError);
}

TEST(RemoveDiagonal, DropsOnlyDiagonal) {
  const auto m = csr_from_triplets<double, I>(
      3, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}, {2, 0, 4.0}, {2, 2, 5.0}});
  const auto r = remove_diagonal(m);
  EXPECT_EQ(r.nnz(), 2);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r.at(2, 0), 4.0);
  EXPECT_FALSE(r.contains(0, 0));
  EXPECT_FALSE(r.contains(1, 1));
  EXPECT_FALSE(r.contains(2, 2));
}

TEST(TrilTriu, PartitionOffDiagonalEntries) {
  const auto m = test::random_matrix<double, I>(25, 25, 0.15, 11);
  const auto no_diag = remove_diagonal(m);
  const auto lower = tril(m);
  const auto upper = triu(m);
  EXPECT_EQ(lower.nnz() + upper.nnz(), no_diag.nnz());
  for (I i = 0; i < m.rows(); ++i) {
    for (const I j : lower.row_cols(i)) {
      EXPECT_LT(j, i);
    }
    for (const I j : upper.row_cols(i)) {
      EXPECT_GT(j, i);
    }
  }
}

TEST(TrilTriu, TriangularOfSymmetricAreTransposes) {
  const auto m = symmetrize(test::random_matrix<double, I>(20, 20, 0.15, 13));
  EXPECT_TRUE(test::csr_equal(transpose(tril(m)), triu(m)));
}

TEST(WithUniformValues, ReplacesValuesKeepsPattern) {
  const auto m = test::random_matrix<double, I>(10, 10, 0.2, 17);
  const auto u = with_uniform_values(m, 1.0);
  EXPECT_TRUE(same_pattern(m, u));
  for (const double v : u.values()) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(ConvertValues, CastsValueType) {
  const auto m = csr_from_triplets<double, I>(2, 2, {{0, 0, 2.5}, {1, 1, 3.0}});
  const auto c = convert_values<std::int64_t>(m);
  EXPECT_EQ(c.at(0, 0), 2);  // truncation
  EXPECT_EQ(c.at(1, 1), 3);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.nnz(), 2);
}

TEST(SamePattern, DetectsDifferences) {
  const auto a = csr_from_triplets<double, I>(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  const auto b = csr_from_triplets<double, I>(2, 2, {{0, 0, 9.0}, {1, 1, 8.0}});
  const auto c = csr_from_triplets<double, I>(2, 2, {{0, 1, 1.0}, {1, 1, 2.0}});
  EXPECT_TRUE(same_pattern(a, b));  // values differ, pattern equal
  EXPECT_FALSE(same_pattern(a, c));
  EXPECT_FALSE(same_pattern(a, M(2, 3)));
}

}  // namespace
}  // namespace tilq
