// Tests for PageRank.
#include "algos/pagerank.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "gen/rmat.hpp"
#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

double total(const std::vector<double>& rank) {
  return std::accumulate(rank.begin(), rank.end(), 0.0);
}

TEST(PageRank, UniformOnCycle) {
  // Directed cycle: perfect symmetry => uniform ranks.
  Coo<double, I> coo(5, 5);
  for (I v = 0; v < 5; ++v) {
    coo.push(v, (v + 1) % 5, 1.0);
  }
  const auto result = pagerank(build_csr(coo));
  for (const double r : result.rank) {
    EXPECT_NEAR(r, 0.2, 1e-8);
  }
  EXPECT_NEAR(total(result.rank), 1.0, 1e-9);
}

TEST(PageRank, SinkAttractsRank) {
  // 0 -> 2, 1 -> 2, 2 -> 0: vertex 2 collects two in-links.
  const auto g = csr_from_triplets<double, I>(
      3, 3, {{0, 2, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  const auto result = pagerank(g);
  EXPECT_GT(result.rank[2], result.rank[0]);
  EXPECT_GT(result.rank[0], result.rank[1]);
  EXPECT_NEAR(total(result.rank), 1.0, 1e-9);
}

TEST(PageRank, DanglingMassIsRedistributed) {
  // 0 -> 1, 1 dangles: rank must still sum to 1 and converge.
  const auto g = csr_from_triplets<double, I>(2, 2, {{0, 1, 1.0}});
  const auto result = pagerank(g);
  EXPECT_NEAR(total(result.rank), 1.0, 1e-9);
  EXPECT_GT(result.rank[1], result.rank[0]);
  EXPECT_LT(result.residual, 1e-8);
}

TEST(PageRank, ConvergesOnSocialGraph) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const auto g = generate_rmat(p);
  const auto result = pagerank(g);
  EXPECT_LT(result.iterations, 100);
  EXPECT_NEAR(total(result.rank), 1.0, 1e-6);
  // Ranks are a probability distribution.
  for (const double r : result.rank) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(PageRank, RespectsToleranceAndIterationCap) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  const auto g = generate_rmat(p);
  PageRankOptions strict;
  strict.tolerance = 0.0;  // never converges by tolerance
  strict.max_iterations = 7;
  EXPECT_EQ(pagerank(g, strict).iterations, 7);
}

TEST(PageRank, InvalidArgumentsThrow) {
  EXPECT_THROW(pagerank(Csr<double, I>(2, 3)), PreconditionError);
  const auto g = csr_from_triplets<double, I>(2, 2, {{0, 1, 1.0}});
  PageRankOptions bad;
  bad.damping = 1.5;
  EXPECT_THROW(pagerank(g, bad), PreconditionError);
}

TEST(PageRank, EmptyGraph) {
  const auto result = pagerank(Csr<double, I>(0, 0));
  EXPECT_TRUE(result.rank.empty());
}

}  // namespace
}  // namespace tilq
