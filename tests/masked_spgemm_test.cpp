// End-to-end tests for the masked_spgemm driver: every Config dimension
// against the dense oracle, shape/precondition checks, statistics
// reporting, and alternative semirings.
#include "core/masked_spgemm.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

struct Problem {
  Csr<double, I> mask;
  Csr<double, I> a;
  Csr<double, I> b;
};

Problem make_problem(std::uint64_t seed, I rows = 40, I inner = 35, I cols = 45,
                     double density = 0.12) {
  return {test::random_matrix<double, I>(rows, cols, density, seed),
          test::random_matrix<double, I>(rows, inner, density, seed + 1000),
          test::random_matrix<double, I>(inner, cols, density, seed + 2000)};
}

// ---------------------------------------------------------------------------
// Full configuration sweep against the oracle.
// ---------------------------------------------------------------------------

using ConfigTuple = std::tuple<MaskStrategy, AccumulatorKind, MarkerWidth,
                               ResetPolicy, Tiling, Schedule>;

class MaskedSpgemmConfigs : public ::testing::TestWithParam<ConfigTuple> {
 protected:
  static Config config_from(const ConfigTuple& tuple) {
    Config config;
    config.strategy = std::get<0>(tuple);
    config.accumulator = std::get<1>(tuple);
    config.marker_width = std::get<2>(tuple);
    config.reset = std::get<3>(tuple);
    config.tiling = std::get<4>(tuple);
    config.schedule = std::get<5>(tuple);
    config.num_tiles = 8;
    return config;
  }
};

TEST_P(MaskedSpgemmConfigs, MatchesOracle) {
  const Config config = config_from(GetParam());
  for (const std::uint64_t seed : {1u, 7u}) {
    const Problem p = make_problem(seed);
    const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
    const auto actual = masked_spgemm<SR>(p.mask, p.a, p.b, config);
    EXPECT_TRUE(actual.check());
    EXPECT_TRUE(test::csr_equal(expected, actual))
        << config.describe() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullSweep, MaskedSpgemmConfigs,
    ::testing::Combine(
        ::testing::Values(MaskStrategy::kVanilla, MaskStrategy::kMaskFirst,
                          MaskStrategy::kCoIterate, MaskStrategy::kHybrid),
        ::testing::Values(AccumulatorKind::kDense, AccumulatorKind::kHash),
        ::testing::Values(MarkerWidth::k8, MarkerWidth::k32),
        ::testing::Values(ResetPolicy::kMarker, ResetPolicy::kExplicit),
        ::testing::Values(Tiling::kUniform, Tiling::kFlopBalanced),
        ::testing::Values(Schedule::kStatic, Schedule::kDynamic)),
    [](const auto& param_info) {
      std::string name;
      name += to_string(std::get<0>(param_info.param));
      name += '_';
      name += to_string(std::get<1>(param_info.param));
      name += std::to_string(bits(std::get<2>(param_info.param)));
      name += '_';
      name += to_string(std::get<3>(param_info.param));
      name += '_';
      name += std::get<4>(param_info.param) == Tiling::kUniform ? "uni" : "bal";
      name += '_';
      name += to_string(std::get<5>(param_info.param));
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Bitmap accumulator (tilq extension) across strategies.
// ---------------------------------------------------------------------------

TEST(MaskedSpgemmBitmap, MatchesOracleAcrossStrategies) {
  Config config;
  config.accumulator = AccumulatorKind::kBitmap;
  const Problem p = make_problem(61);
  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  for (const MaskStrategy strategy :
       {MaskStrategy::kVanilla, MaskStrategy::kMaskFirst,
        MaskStrategy::kCoIterate, MaskStrategy::kHybrid}) {
    config.strategy = strategy;
    EXPECT_TRUE(test::csr_equal(expected,
                                masked_spgemm<SR>(p.mask, p.a, p.b, config)))
        << config.describe();
  }
}

TEST(MaskedSpgemmBitmap, ManyRowsNoStateLeak) {
  // The bitmap clears whole words per row; adjacent-column masks across
  // rows are the leak-prone pattern.
  Config config;
  config.accumulator = AccumulatorKind::kBitmap;
  const Problem p = make_problem(67, 500, 40, 40, 0.15);
  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  EXPECT_TRUE(
      test::csr_equal(expected, masked_spgemm<SR>(p.mask, p.a, p.b, config)));
}

// ---------------------------------------------------------------------------
// Marker widths (full set) on the default strategy.
// ---------------------------------------------------------------------------

class MaskedSpgemmWidths : public ::testing::TestWithParam<MarkerWidth> {};

TEST_P(MaskedSpgemmWidths, AllWidthsMatchOracle) {
  Config config;
  config.marker_width = GetParam();
  // Enough rows that the 8-bit marker wraps several times.
  const Problem p = make_problem(3, 600, 50, 50, 0.08);
  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  for (const AccumulatorKind acc :
       {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
    config.accumulator = acc;
    EXPECT_TRUE(test::csr_equal(expected,
                                masked_spgemm<SR>(p.mask, p.a, p.b, config)))
        << config.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MaskedSpgemmWidths,
                         ::testing::Values(MarkerWidth::k8, MarkerWidth::k16,
                                           MarkerWidth::k32, MarkerWidth::k64),
                         [](const auto& param_info) {
                           return "w" + std::to_string(bits(param_info.param));
                         });

// ---------------------------------------------------------------------------
// Tile-count sweep (the Fig 11 x-axis) stays correct.
// ---------------------------------------------------------------------------

class MaskedSpgemmTiles : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MaskedSpgemmTiles, AnyTileCountMatchesOracle) {
  Config config;
  config.num_tiles = GetParam();
  const Problem p = make_problem(11);
  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  ExecutionStats stats;
  const auto actual = masked_spgemm<SR>(p.mask, p.a, p.b, config, stats);
  EXPECT_TRUE(test::csr_equal(expected, actual));
  EXPECT_LE(stats.tiles, GetParam());
  EXPECT_GE(stats.tiles, 1);
}

INSTANTIATE_TEST_SUITE_P(TileCounts, MaskedSpgemmTiles,
                         ::testing::Values<std::int64_t>(1, 2, 3, 7, 16, 39, 40,
                                                         41, 1000));

// ---------------------------------------------------------------------------
// Kappa sweep correctness (Fig 14 x-axis).
// ---------------------------------------------------------------------------

class MaskedSpgemmKappa : public ::testing::TestWithParam<double> {};

TEST_P(MaskedSpgemmKappa, AnyKappaMatchesOracle) {
  Config config;
  config.strategy = MaskStrategy::kHybrid;
  config.coiteration_factor = GetParam();
  const Problem p = make_problem(13);
  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  EXPECT_TRUE(
      test::csr_equal(expected, masked_spgemm<SR>(p.mask, p.a, p.b, config)));
}

INSTANTIATE_TEST_SUITE_P(Kappas, MaskedSpgemmKappa,
                         ::testing::Values(0.001, 0.1, 1.0, 10.0, 1000.0));

// ---------------------------------------------------------------------------
// Shapes, preconditions, special matrices.
// ---------------------------------------------------------------------------

TEST(MaskedSpgemm, ShapeMismatchThrows) {
  const Csr<double, I> mask(3, 3), a(3, 4), b(4, 3), bad_b(5, 3), bad_mask(3, 4);
  EXPECT_NO_THROW(masked_spgemm<SR>(mask, a, b));
  EXPECT_THROW(masked_spgemm<SR>(mask, a, bad_b), PreconditionError);
  EXPECT_THROW(masked_spgemm<SR>(bad_mask, a, b), PreconditionError);
}

TEST(MaskedSpgemm, EmptyMaskGivesEmptyResult) {
  const Problem p = make_problem(17);
  const Csr<double, I> empty_mask(p.a.rows(), p.b.cols());
  const auto c = masked_spgemm<SR>(empty_mask, p.a, p.b);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.rows(), p.a.rows());
  EXPECT_EQ(c.cols(), p.b.cols());
}

TEST(MaskedSpgemm, EmptyOperandsGiveEmptyResult) {
  const Problem p = make_problem(19);
  const Csr<double, I> empty_a(p.a.rows(), p.a.cols());
  const auto c = masked_spgemm<SR>(p.mask, empty_a, p.b);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(MaskedSpgemm, IdentityTimesIdentityUnderFullMask) {
  const auto eye = csr_identity<double, I>(20);
  Coo<double, I> full(20, 20);
  for (I i = 0; i < 20; ++i) {
    for (I j = 0; j < 20; ++j) {
      full.push(i, j, 1.0);
    }
  }
  const auto c = masked_spgemm<SR>(build_csr(full), eye, eye);
  EXPECT_TRUE(test::csr_equal(eye, c));
}

TEST(MaskedSpgemm, MaskValuesAreIgnored) {
  // The mask is structural (§IV-A): replacing its values must not change
  // the result.
  const Problem p = make_problem(23);
  const auto shuffled_mask = with_uniform_values(p.mask, -123.0);
  const auto c1 = masked_spgemm<SR>(p.mask, p.a, p.b);
  const auto c2 = masked_spgemm<SR>(shuffled_mask, p.a, p.b);
  EXPECT_TRUE(test::csr_equal(c1, c2));
}

TEST(MaskedSpgemm, OutputNnzBoundedByMask) {
  const Problem p = make_problem(29);
  const auto c = masked_spgemm<SR>(p.mask, p.a, p.b);
  EXPECT_LE(c.nnz(), p.mask.nnz());
  for (I i = 0; i < c.rows(); ++i) {
    EXPECT_LE(c.row_nnz(i), p.mask.row_nnz(i));
  }
}

TEST(MaskedSpgemm, SelfMaskedSquareMatchesOracle) {
  // The paper's exact benchmark kernel: C = A ⊙ (A x A).
  const auto a = test::random_matrix<double, I>(50, 50, 0.1, 31);
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  const auto actual = masked_spgemm<SR>(a, a, a);
  EXPECT_TRUE(test::csr_equal(expected, actual));
}

TEST(MaskedSpgemm, StatsArePopulated) {
  const Problem p = make_problem(37);
  Config config;
  config.num_tiles = 4;
  ExecutionStats stats;
  const auto c = masked_spgemm<SR>(p.mask, p.a, p.b, config, stats);
  EXPECT_EQ(stats.output_nnz, c.nnz());
  EXPECT_GE(stats.tiles, 1);
  EXPECT_LE(stats.tiles, 4);
  EXPECT_GE(stats.analyze_ms, 0.0);
  EXPECT_GE(stats.compute_ms, 0.0);
  EXPECT_GE(stats.compact_ms, 0.0);
}

TEST(MaskedSpgemm, NarrowMarkerReportsFullResets) {
  // 8-bit marker + enough rows per thread => the stats must surface resets.
  Config config;
  config.marker_width = MarkerWidth::k8;
  config.accumulator = AccumulatorKind::kDense;
  config.threads = 1;
  const Problem p = make_problem(41, 600, 30, 30, 0.1);
  ExecutionStats stats;
  (void)masked_spgemm<SR>(p.mask, p.a, p.b, config, stats);
  EXPECT_GT(stats.accumulator_full_resets, 0u);
}

// ---------------------------------------------------------------------------
// Alternative semirings: catch accidental +/* hard-coding.
// ---------------------------------------------------------------------------

TEST(MaskedSpgemm, PlusPairCountsIntersections) {
  const auto a = convert_values<std::int64_t>(
      test::random_matrix<double, I>(30, 30, 0.2, 43));
  using PP = PlusPair<std::int64_t>;
  const auto expected = test::reference_masked_spgemm<PP>(a, a, a);
  const auto actual = masked_spgemm<PP>(a, a, a);
  EXPECT_TRUE(test::csr_equal(expected, actual));
}

TEST(MaskedSpgemm, MinPlusShortestHops) {
  using MP = MinPlus<std::int64_t>;
  const auto a = convert_values<std::int64_t>(
      test::random_matrix<double, I>(25, 25, 0.2, 47));
  const auto expected = test::reference_masked_spgemm<MP>(a, a, a);
  for (const AccumulatorKind acc :
       {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
    Config config;
    config.accumulator = acc;
    EXPECT_TRUE(
        test::csr_equal(expected, masked_spgemm<MP>(a, a, a, config)));
  }
}

TEST(MaskedSpgemm, ThreadCountDoesNotChangeResult) {
  const Problem p = make_problem(53);
  Config config1;
  config1.threads = 1;
  Config config4;
  config4.threads = 4;
  config4.num_tiles = 64;
  const auto c1 = masked_spgemm<SR>(p.mask, p.a, p.b, config1);
  const auto c4 = masked_spgemm<SR>(p.mask, p.a, p.b, config4);
  EXPECT_TRUE(test::csr_equal(c1, c4));
}

}  // namespace
}  // namespace tilq
