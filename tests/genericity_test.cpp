// Genericity tests: the containers and kernels are templated on value and
// index types; everything else in the suite instantiates <double, int64>.
// These tests pin down that 32-bit indices and float/int values work, so
// the templates don't silently rot into the one instantiation.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/masked_spgemm.hpp"
#include "sparse/build.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace tilq {
namespace {

template <class T, class I>
Csr<T, I> random_matrix(I rows, I cols, double density, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo<T, I> coo(rows, cols);
  for (I i = 0; i < rows; ++i) {
    for (I j = 0; j < cols; ++j) {
      if (rng.bernoulli(density)) {
        coo.push_unchecked(i, j, static_cast<T>(1 + rng.uniform_below(5)));
      }
    }
  }
  return build_csr(coo, DupPolicy::kError);
}

TEST(Genericity, Int32IndicesFloatValues) {
  using M = Csr<float, std::int32_t>;
  const M a = random_matrix<float, std::int32_t>(40, 40, 0.15, 1);
  EXPECT_TRUE(a.check());

  using SR = PlusTimes<float>;
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  const M c = masked_spgemm<SR>(a, a, a, config);
  EXPECT_TRUE(c.check());
  EXPECT_LE(c.nnz(), a.nnz());

  // All four strategies and both other accumulators agree.
  for (const MaskStrategy strategy :
       {MaskStrategy::kVanilla, MaskStrategy::kMaskFirst,
        MaskStrategy::kCoIterate, MaskStrategy::kHybrid}) {
    for (const AccumulatorKind acc :
         {AccumulatorKind::kDense, AccumulatorKind::kHash,
          AccumulatorKind::kBitmap}) {
      Config variant;
      variant.strategy = strategy;
      variant.accumulator = acc;
      EXPECT_EQ(c, masked_spgemm<SR>(a, a, a, variant))
          << variant.describe();
    }
  }
}

TEST(Genericity, Int32ValuesWithPlusPair) {
  using M = Csr<std::int32_t, std::int32_t>;
  const M a = random_matrix<std::int32_t, std::int32_t>(30, 30, 0.2, 2);
  using SR = PlusPair<std::int32_t>;
  const M c = masked_spgemm<SR>(a, a, a);
  // PLUS_PAIR values are structural counts bounded by the row degree.
  for (std::int32_t i = 0; i < c.rows(); ++i) {
    for (const std::int32_t v : c.row_vals(i)) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, a.row_nnz(i));
    }
  }
}

TEST(Genericity, StructuralOpsOnInt32) {
  using M = Csr<float, std::int32_t>;
  const M a = random_matrix<float, std::int32_t>(25, 30, 0.2, 3);
  const M t = transpose(a);
  EXPECT_EQ(t.rows(), 30);
  EXPECT_EQ(t.cols(), 25);
  EXPECT_EQ(transpose(t), a);
  EXPECT_TRUE(same_pattern(a, with_uniform_values(a, 1.0f)));
}

TEST(Genericity, TilingWorksForAnyIndexWidth) {
  using M = Csr<float, std::int32_t>;
  const M a = random_matrix<float, std::int32_t>(100, 100, 0.1, 4);
  Config config;
  config.num_tiles = 17;
  config.tiling = Tiling::kFlopBalanced;
  ExecutionStats stats;
  const M c = masked_spgemm<PlusTimes<float>>(a, a, a, config, stats);
  EXPECT_TRUE(c.check());
  EXPECT_GE(stats.tiles, 1);
  EXPECT_LE(stats.tiles, 17);
}

}  // namespace
}  // namespace tilq
