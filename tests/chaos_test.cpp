// Chaos soak (docs/ROBUSTNESS.md): replay a mixed submission stream
// through the batch engine while several fault sites fire probabilistically
// at ~1% rates, and assert the resilience contract end to end:
//
//   * every job either completes BIT-IDENTICAL to its fault-free oracle or
//     fails with a typed taxonomy error (tilq::Error) — never a foreign
//     exception, never std::terminate;
//   * the engine's counters conserve: submitted = completed + failed, and
//     nothing is left in flight;
//   * after the fault burst plus two clean health epochs, the engine
//     reports kHealthy again.
//
// The rates are seeded (fault::set_seed), so a failure here replays
// exactly. The standalone bench/chaos_soak binary runs the same contract
// at larger scale under ASan in CI. Suite name matters: the sanitizer
// matrix runs --gtest_filter=*Chaos*.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/masked_spgemm.hpp"
#include "support/fault.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

struct Problem {
  Csr<double, I> mask;
  Csr<double, I> a;
  Csr<double, I> b;
  Csr<double, I> oracle;
  Config config;
};

class ChaosSoakTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::disarm_all();
    fault::set_seed(0);
  }
};

TEST_F(ChaosSoakTest, MixedStreamUnderRandomFaultsKeepsTheContract) {
  // A small zoo of shapes x configs so the stream exercises the 1D, 2D,
  // and blocked execution spaces and all three accumulators.
  std::vector<Problem> problems;
  std::uint64_t seed = 300;
  const AccumulatorKind accumulators[] = {
      AccumulatorKind::kHash, AccumulatorKind::kDense,
      AccumulatorKind::kBitmap};
  for (int shape = 0; shape < 2; ++shape) {
    const I rows = shape == 0 ? 48 : 72;
    const I inner = shape == 0 ? 40 : 64;
    const I cols = shape == 0 ? 44 : 56;
    for (int mode = 0; mode < 3; ++mode) {
      Problem p;
      p.mask = test::random_matrix<double, I>(rows, cols, 0.12, seed);
      p.a = test::random_matrix<double, I>(rows, inner, 0.12, seed + 1);
      p.b = test::random_matrix<double, I>(inner, cols, 0.12, seed + 2);
      seed += 10;
      p.config.accumulator = accumulators[mode];
      if (mode == 1) {
        p.config.mode = Strategy::k2D;
        p.config.num_col_tiles = 2;
      } else if (mode == 2) {
        p.config.mode = Strategy::kBlocked;
      }
      p.oracle = masked_spgemm<SR>(p.mask, p.a, p.b, p.config);
      problems.push_back(std::move(p));
    }
  }

  EngineOptions options;
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 0.0;  // soak throughput over realism
  options.memory_budget_bytes = 8ull << 20;
  options.health.epoch_events = 32;
  Engine<SR> engine(options);

  fault::set_seed(20240808);
  // >= 3 engine-level sites at ~1% rates, via the TILQ_FAULT grammar so
  // the env path is exercised too.
  fault::configure(
      "engine-submit-alloc@0.01,engine-pool-reserve@0.02,"
      "plan-fingerprint@0.01,engine-retry-replan@0.01");

  constexpr int kJobs = 512;
  constexpr std::size_t kWindow = 8;  // < shed bound: no admission sheds
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::vector<std::pair<Engine<SR>::JobHandle, std::size_t>> window;
  const auto drain_one = [&](std::pair<Engine<SR>::JobHandle, std::size_t>& slot) {
    try {
      const Csr<double, I> got = slot.first.get();
      ASSERT_TRUE(test::csr_equal(problems[slot.second].oracle, got))
          << "job survived faults but was not bit-identical";
      ++completed;
    } catch (const Error&) {
      ++failed;  // typed taxonomy error: the allowed failure outcome
    }
    // Anything else (std::bad_alloc, foreign exceptions) escapes and
    // fails the test — that IS the assertion.
  };
  for (int i = 0; i < kJobs; ++i) {
    const std::size_t which = static_cast<std::size_t>(i) % problems.size();
    const Problem& p = problems[which];
    window.emplace_back(engine.submit(p.mask, p.a, p.b, p.config), which);
    if (window.size() >= kWindow) {
      drain_one(window.front());
      window.erase(window.begin());
    }
  }
  for (auto& slot : window) {
    drain_one(slot);
  }
  window.clear();

  EXPECT_GT(failed, 0u) << "no job ever failed: the soak tested nothing";
  EXPECT_GT(completed, failed) << "most of the stream should survive";
  EngineStats stats = engine.stats();
  EXPECT_GT(stats.retries, 0u);
  // Counter conservation: every admitted job is accounted exactly once.
  EXPECT_EQ(stats.jobs_submitted, completed + failed);
  EXPECT_EQ(stats.jobs_completed, completed);
  EXPECT_EQ(stats.jobs_failed, failed);
  EXPECT_EQ(stats.in_flight, 0u);

  // Recovery: disarm everything and run two clean health epochs.
  fault::disarm_all();
  const Problem& p = problems.front();
  for (std::uint64_t i = 0; i < 2 * options.health.epoch_events; ++i) {
    EXPECT_TRUE(test::csr_equal(p.oracle,
                                engine.submit(p.mask, p.a, p.b, p.config)
                                    .get()));
  }
  EXPECT_EQ(engine.stats().health, EngineHealth::kHealthy);
}

}  // namespace
}  // namespace tilq
