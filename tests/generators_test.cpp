// Tests for the graph generators: structural invariants (valid CSR, no
// self-loops, symmetry where promised), determinism by seed, and the
// kind-defining properties each generator exists to produce (degree skew,
// rail rows, lattice locality).
#include <gtest/gtest.h>

#include <cstdint>

#include "gen/circuit.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/road_network.hpp"
#include "gen/watts_strogatz.hpp"
#include "gen/web_graph.hpp"
#include "sparse/ops.hpp"
#include "sparse/stats.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

void expect_valid_graph(const GraphMatrix& g, bool symmetric) {
  EXPECT_TRUE(g.check());
  EXPECT_EQ(g.rows(), g.cols());
  for (I i = 0; i < g.rows(); ++i) {
    EXPECT_FALSE(g.contains(i, i)) << "self-loop at " << i;
  }
  if (symmetric) {
    EXPECT_TRUE(test::csr_equal(g, transpose(g)));
  }
}

// --- R-MAT ---------------------------------------------------------------

TEST(Rmat, ValidSymmetricGraph) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  expect_valid_graph(generate_rmat(p), /*symmetric=*/true);
}

TEST(Rmat, DeterministicBySeed) {
  RmatParams p;
  p.scale = 9;
  p.seed = 5;
  EXPECT_EQ(generate_rmat(p), generate_rmat(p));
  p.seed = 6;
  EXPECT_NE(generate_rmat(p), generate_rmat({.scale = 9, .seed = 5}));
}

TEST(Rmat, HasDegreeSkew) {
  // The point of R-MAT: hubs. Max degree must far exceed the mean.
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const auto stats = compute_stats(generate_rmat(p));
  EXPECT_GT(static_cast<double>(stats.max_row_nnz), 8.0 * stats.mean_row_nnz);
}

TEST(Rmat, BadParamsThrow) {
  EXPECT_THROW(generate_rmat({.scale = 0}), PreconditionError);
  EXPECT_THROW(generate_rmat({.scale = 10, .edge_factor = 0}), PreconditionError);
  EXPECT_THROW(generate_rmat({.scale = 10, .a = 0.9, .b = 0.9, .c = 0.1, .d = 0.1}),
               PreconditionError);
}

// --- Erdős–Rényi ----------------------------------------------------------

TEST(ErdosRenyi, ValidAndRoughlyTargetSize) {
  ErdosRenyiParams p;
  p.nodes = 2000;
  p.edges = 10000;
  const auto g = generate_erdos_renyi(p);
  expect_valid_graph(g, /*symmetric=*/true);
  // Symmetrized, deduped: nnz close to 2x requested edges.
  EXPECT_GT(g.nnz(), 15000);
  EXPECT_LE(g.nnz(), 20000);
}

TEST(ErdosRenyi, NoDegreeSkew) {
  ErdosRenyiParams p;
  p.nodes = 4000;
  p.edges = 40000;
  const auto stats = compute_stats(generate_erdos_renyi(p));
  EXPECT_LT(static_cast<double>(stats.max_row_nnz), 4.0 * stats.mean_row_nnz);
}

TEST(ErdosRenyi, DirectedVariant) {
  ErdosRenyiParams p;
  p.nodes = 500;
  p.edges = 2000;
  p.symmetric = false;
  const auto g = generate_erdos_renyi(p);
  EXPECT_TRUE(g.check());
  // A directed ER graph is essentially never symmetric.
  EXPECT_FALSE(test::csr_equal(g, transpose(g)));
}

// --- Watts–Strogatz ---------------------------------------------------------

TEST(WattsStrogatz, ValidWithNearUniformDegree) {
  WattsStrogatzParams p;
  p.nodes = 2000;
  p.k = 4;
  p.beta = 0.1;
  const auto g = generate_watts_strogatz(p);
  expect_valid_graph(g, /*symmetric=*/true);
  const auto stats = compute_stats(g);
  EXPECT_NEAR(stats.mean_row_nnz, 8.0, 1.0);  // degree ~ 2k
  EXPECT_LT(stats.max_row_nnz, 24);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  WattsStrogatzParams p;
  p.nodes = 100;
  p.k = 2;
  p.beta = 0.0;
  const auto g = generate_watts_strogatz(p);
  const auto stats = compute_stats(g);
  EXPECT_EQ(stats.max_row_nnz, 4);
  EXPECT_EQ(stats.nnz, 400);  // exactly 2k per node
}

TEST(WattsStrogatz, BadParamsThrow) {
  EXPECT_THROW(generate_watts_strogatz({.nodes = 2}), PreconditionError);
  EXPECT_THROW(generate_watts_strogatz({.nodes = 10, .k = 5}), PreconditionError);
  EXPECT_THROW(generate_watts_strogatz({.nodes = 10, .k = 2, .beta = 1.5}),
               PreconditionError);
}

// --- Web graph -------------------------------------------------------------

TEST(WebGraph, ValidDirectedGraphWithInDegreeSkew) {
  WebGraphParams p;
  p.nodes = 4000;
  p.out_degree = 8;
  const auto g = generate_web_graph(p);
  expect_valid_graph(g, /*symmetric=*/false);
  // In-degree (column) skew from preferential copying.
  const auto stats = compute_stats(transpose(g));
  EXPECT_GT(static_cast<double>(stats.max_row_nnz), 10.0 * stats.mean_row_nnz);
}

TEST(WebGraph, DeterministicBySeed) {
  WebGraphParams p;
  p.nodes = 1000;
  p.seed = 9;
  EXPECT_EQ(generate_web_graph(p), generate_web_graph(p));
}

TEST(WebGraph, SymmetricVariant) {
  WebGraphParams p;
  p.nodes = 800;
  p.symmetric = true;
  expect_valid_graph(generate_web_graph(p), /*symmetric=*/true);
}

// --- Road network ------------------------------------------------------------

TEST(RoadNetwork, ValidWithTinyUniformDegrees) {
  RoadNetworkParams p;
  p.width = 60;
  p.height = 50;
  const auto g = generate_road_network(p);
  expect_valid_graph(g, /*symmetric=*/true);
  EXPECT_EQ(g.rows(), 3000);
  const auto stats = compute_stats(g);
  EXPECT_LT(stats.mean_row_nnz, 5.0);
  EXPECT_LE(stats.max_row_nnz, 8);  // 4 lattice + up to 4 diagonal
}

TEST(RoadNetwork, DeletionThinsTheLattice) {
  RoadNetworkParams dense_params{.width = 50, .height = 50, .deletion_prob = 0.0,
                                 .shortcut_prob = 0.0};
  RoadNetworkParams sparse_params{.width = 50, .height = 50, .deletion_prob = 0.4,
                                  .shortcut_prob = 0.0};
  const auto full = generate_road_network(dense_params);
  const auto thinned = generate_road_network(sparse_params);
  // Full 50x50 lattice: 2 * (2*50*49) directed entries.
  EXPECT_EQ(full.nnz(), 2 * 2 * 50 * 49);
  EXPECT_LT(thinned.nnz(), full.nnz());
  EXPECT_NEAR(static_cast<double>(thinned.nnz()),
              0.6 * static_cast<double>(full.nnz()),
              0.05 * static_cast<double>(full.nnz()));
}

// --- Circuit -----------------------------------------------------------------

TEST(Circuit, ValidWithRailRows) {
  CircuitParams p;
  p.nodes = 4000;
  p.band = 3;
  p.rails = 4;
  p.rail_coverage = 0.3;
  const auto g = generate_circuit(p);
  expect_valid_graph(g, /*symmetric=*/true);
  const auto stats = compute_stats(g);
  // Rail rows must be orders of magnitude denser than the band rows —
  // the circuit5M signature that breaks linear scanning (Fig 14d).
  EXPECT_GT(static_cast<double>(stats.max_row_nnz), 50.0 * stats.mean_row_nnz);
  EXPECT_GT(stats.max_row_nnz, static_cast<I>(0.2 * 4000));
}

TEST(Circuit, NoRailsGivesPureBand) {
  CircuitParams p;
  p.nodes = 1000;
  p.band = 3;
  p.rails = 0;
  const auto stats = compute_stats(generate_circuit(p));
  EXPECT_LE(stats.max_row_nnz, 2 * (3 + 2));  // band + jitter, symmetrized
}

}  // namespace
}  // namespace tilq
