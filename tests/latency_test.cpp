// LatencyHistogram tests: the bucket math (index/upper-edge round trip),
// and the quantile exactness bound — a reported quantile is never below
// the true nearest-rank sample and at most +25% above it (the kSubBuckets
// guarantee docs/SERVING.md relies on), pinned against a sorted-vector
// oracle over adversarial and randomized sample sets.
#include "support/latency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "support/rng.hpp"

namespace tilq {
namespace {

/// Exact nearest-rank quantile of a sample set, the definition
/// quantile_ms() approximates: the smallest sample whose rank reaches
/// ceil(q * n).
double oracle_quantile_ms(std::vector<std::uint64_t> ns, double q) {
  std::sort(ns.begin(), ns.end());
  const double scaled = q * static_cast<double>(ns.size());
  auto rank = static_cast<std::size_t>(std::ceil(scaled));
  rank = std::clamp<std::size_t>(rank, 1, ns.size());
  return static_cast<double>(ns[rank - 1]) / 1e6;
}

/// The histogram's contract versus the oracle: never below, at most +25%
/// (plus one absolute nanosecond for the integer bucket edges).
void expect_within_bound(const LatencyHistogram& hist,
                         const std::vector<std::uint64_t>& samples, double q) {
  const double oracle = oracle_quantile_ms(samples, q);
  const double reported = hist.quantile_ms(q);
  EXPECT_GE(reported, oracle) << "q=" << q;
  EXPECT_LE(reported, oracle * 1.25 + 1e-6) << "q=" << q;
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile_ms(0.5), 0.0);
  EXPECT_EQ(hist.max_ms(), 0.0);
  EXPECT_EQ(hist.mean_ms(), 0.0);
  const LatencySummary summary = hist.summary();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.p99_ms, 0.0);
}

TEST(LatencyHistogramTest, BucketIndexRoundTripsThroughUpperEdge) {
  // Every bucket's upper edge must map back into that bucket, and the
  // value one past it into a later bucket — the grid has no gaps or
  // overlaps.
  for (int index = 0; index < LatencyHistogram::kBucketCount - 1; ++index) {
    const std::uint64_t upper = LatencyHistogram::bucket_upper_ns(index);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper), index) << upper;
    EXPECT_GT(LatencyHistogram::bucket_index(upper + 1), index) << upper;
  }
}

TEST(LatencyHistogramTest, BucketEdgesAreStrictlyIncreasing) {
  for (int index = 1; index < LatencyHistogram::kBucketCount; ++index) {
    EXPECT_GT(LatencyHistogram::bucket_upper_ns(index),
              LatencyHistogram::bucket_upper_ns(index - 1));
  }
}

TEST(LatencyHistogramTest, ExtremesSaturateSafely) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kBucketCount - 1);
  LatencyHistogram hist;
  hist.record_ms(-3.0);  // negative clamps into the zero bucket
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.quantile_ms(0.5), 0.0);
}

TEST(LatencyHistogramTest, CountMeanAndMaxAreExact) {
  // Count, mean, and max come from exact counters, not buckets.
  LatencyHistogram hist;
  const std::vector<std::uint64_t> samples = {1'000'000, 3'000'000, 8'000'000};
  for (const std::uint64_t ns : samples) {
    hist.record_ns(ns);
  }
  EXPECT_EQ(hist.count(), samples.size());
  EXPECT_DOUBLE_EQ(hist.max_ms(), 8.0);
  EXPECT_DOUBLE_EQ(hist.mean_ms(), 4.0);
}

TEST(LatencyHistogramTest, QuantilesMatchOracleOnHeavyTail) {
  // The serving shape: many cheap samples, a few expensive ones. The p99
  // must land on the tail, within the +25% bound.
  LatencyHistogram hist;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 980; ++i) {
    samples.push_back(1'000'000 + static_cast<std::uint64_t>(i) * 1000);
  }
  for (int i = 0; i < 20; ++i) {
    samples.push_back(50'000'000 + static_cast<std::uint64_t>(i) * 100'000);
  }
  for (const std::uint64_t ns : samples) {
    hist.record_ns(ns);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    expect_within_bound(hist, samples, q);
  }
  // p99 of 1000 samples ranks into the 20-sample tail.
  EXPECT_GE(hist.quantile_ms(0.99), 50.0);
}

TEST(LatencyHistogramTest, QuantilesMatchOracleOnRandomSamples) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    LatencyHistogram hist;
    std::vector<std::uint64_t> samples;
    const int n = 1 + static_cast<int>(rng.uniform_below(2000));
    for (int i = 0; i < n; ++i) {
      // Log-uniform over ~9 decades, the histogram's intended regime.
      const double exponent = 18.0 * rng.uniform();
      samples.push_back(
          static_cast<std::uint64_t>(std::exp2(exponent)));
      hist.record_ns(samples.back());
    }
    for (const double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
      expect_within_bound(hist, samples, q);
    }
  }
}

TEST(LatencyHistogramTest, QuantileIsMonotoneInQ) {
  Xoshiro256 rng(11);
  LatencyHistogram hist;
  for (int i = 0; i < 500; ++i) {
    hist.record_ns(rng.uniform_below(1'000'000'000));
  }
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = hist.quantile_ms(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(LatencyHistogramTest, MergeMatchesRecordingIntoOne) {
  // Merging two histograms must equal recording every sample into one:
  // same grid, so bucket counts add exactly.
  LatencyHistogram left;
  LatencyHistogram right;
  LatencyHistogram combined;
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(rng.uniform_below(100'000'000));
    (i % 2 == 0 ? left : right).record_ns(samples.back());
    combined.record_ns(samples.back());
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.max_ms(), combined.max_ms());
  EXPECT_DOUBLE_EQ(left.mean_ms(), combined.mean_ms());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(left.quantile_ms(q), combined.quantile_ms(q));
  }
}

TEST(LatencyHistogramTest, SnapshotDeltaEmptyWindowIsAllZeros) {
  LatencyHistogram hist;
  LatencyHistogram::Counts since;
  // First window over an empty histogram, and a second window with no
  // recording in between: both must be the zero summary.
  for (int round = 0; round < 2; ++round) {
    const LatencySummary window = hist.snapshot_delta(since);
    EXPECT_EQ(window.count, 0u);
    EXPECT_EQ(window.p50_ms, 0.0);
    EXPECT_EQ(window.p99_ms, 0.0);
    EXPECT_EQ(window.max_ms, 0.0);
    EXPECT_EQ(window.mean_ms, 0.0);
  }
}

TEST(LatencyHistogramTest, SnapshotDeltaSeesOnlyItsOwnWindow) {
  // Two disjoint recording bursts with very different magnitudes; each
  // window's percentiles must match the oracle over that burst alone —
  // the earlier (and much larger) history must not bleed through.
  LatencyHistogram hist;
  LatencyHistogram::Counts since;
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 500; ++i) {
    first.push_back(400'000'000 + static_cast<std::uint64_t>(i) * 1'000'000);
    hist.record_ns(first.back());
  }
  LatencySummary window = hist.snapshot_delta(since);
  EXPECT_EQ(window.count, first.size());

  std::vector<std::uint64_t> second;
  for (int i = 0; i < 50; ++i) {
    second.push_back(1'000'000 + static_cast<std::uint64_t>(i) * 10'000);
    hist.record_ns(second.back());
  }
  window = hist.snapshot_delta(since);
  EXPECT_EQ(window.count, second.size());
  for (const double q : {0.5, 0.95, 0.99}) {
    const double oracle = oracle_quantile_ms(second, q);
    const double reported = q == 0.5   ? window.p50_ms
                            : q == 0.95 ? window.p95_ms
                                        : window.p99_ms;
    EXPECT_GE(reported, oracle) << "q=" << q;
    EXPECT_LE(reported, oracle * 1.25 + 1e-6) << "q=" << q;
  }
  // The window max is the whole point: ~1.5 ms here, not the 900 ms the
  // lifetime histogram would report. Same +25% bucket-edge bound.
  const double oracle_max = oracle_quantile_ms(second, 1.0);
  EXPECT_GE(window.max_ms, oracle_max);
  EXPECT_LE(window.max_ms, oracle_max * 1.25 + 1e-6);
  const double oracle_mean =
      static_cast<double>(std::accumulate(second.begin(), second.end(),
                                          std::uint64_t{0})) /
      (1e6 * static_cast<double>(second.size()));
  EXPECT_NEAR(window.mean_ms, oracle_mean, 1e-9);
}

TEST(LatencyHistogramTest, SnapshotDeltaWindowsPartitionRandomStreams) {
  // Random bursts through random window boundaries: every window matches
  // its own oracle, and the window counts sum to the lifetime count.
  Xoshiro256 rng(29);
  LatencyHistogram hist;
  LatencyHistogram::Counts since;
  std::uint64_t windowed_total = 0;
  for (int window_index = 0; window_index < 30; ++window_index) {
    std::vector<std::uint64_t> burst;
    const int n = static_cast<int>(rng.uniform_below(200));
    for (int i = 0; i < n; ++i) {
      const double exponent = 18.0 * rng.uniform();
      burst.push_back(static_cast<std::uint64_t>(std::exp2(exponent)));
      hist.record_ns(burst.back());
    }
    const LatencySummary window = hist.snapshot_delta(since);
    ASSERT_EQ(window.count, static_cast<std::uint64_t>(n));
    windowed_total += window.count;
    if (n == 0) {
      EXPECT_EQ(window.p99_ms, 0.0);
      continue;
    }
    for (const double q : {0.5, 0.95, 0.99}) {
      const double oracle = oracle_quantile_ms(burst, q);
      const double reported = q == 0.5   ? window.p50_ms
                              : q == 0.95 ? window.p95_ms
                                          : window.p99_ms;
      EXPECT_GE(reported, oracle) << "window " << window_index << " q=" << q;
      EXPECT_LE(reported, oracle * 1.25 + 1e-6)
          << "window " << window_index << " q=" << q;
    }
  }
  EXPECT_EQ(windowed_total, hist.count());
}

TEST(LatencyHistogramTest, SnapshotDeltaUnderConcurrentRecordingConserves) {
  // Recorders hammer the histogram while a sampler takes windows; no
  // sample may be lost or double-counted across windows (each relaxed
  // bucket increment lands in exactly one delta).
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::uint64_t windowed_total = 0;
  LatencyHistogram::Counts since;
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      windowed_total += hist.snapshot_delta(since).count;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record_ns(static_cast<std::uint64_t>(i) * 1000);
      }
    });
  }
  for (std::thread& thread : recorders) {
    thread.join();
  }
  stop.store(true, std::memory_order_release);
  sampler.join();
  windowed_total += hist.snapshot_delta(since).count;  // the final window
  EXPECT_EQ(windowed_total,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(windowed_total, hist.count());
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNoSamples) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record_ns(static_cast<std::uint64_t>(t) * 1'000'000 +
                       static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const LatencySummary summary = hist.summary();
  EXPECT_EQ(summary.count, hist.count());
  EXPECT_GT(summary.p99_ms, 0.0);
}

}  // namespace
}  // namespace tilq
