// LatencyHistogram tests: the bucket math (index/upper-edge round trip),
// and the quantile exactness bound — a reported quantile is never below
// the true nearest-rank sample and at most +25% above it (the kSubBuckets
// guarantee docs/SERVING.md relies on), pinned against a sorted-vector
// oracle over adversarial and randomized sample sets.
#include "support/latency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/rng.hpp"

namespace tilq {
namespace {

/// Exact nearest-rank quantile of a sample set, the definition
/// quantile_ms() approximates: the smallest sample whose rank reaches
/// ceil(q * n).
double oracle_quantile_ms(std::vector<std::uint64_t> ns, double q) {
  std::sort(ns.begin(), ns.end());
  const double scaled = q * static_cast<double>(ns.size());
  auto rank = static_cast<std::size_t>(std::ceil(scaled));
  rank = std::clamp<std::size_t>(rank, 1, ns.size());
  return static_cast<double>(ns[rank - 1]) / 1e6;
}

/// The histogram's contract versus the oracle: never below, at most +25%
/// (plus one absolute nanosecond for the integer bucket edges).
void expect_within_bound(const LatencyHistogram& hist,
                         const std::vector<std::uint64_t>& samples, double q) {
  const double oracle = oracle_quantile_ms(samples, q);
  const double reported = hist.quantile_ms(q);
  EXPECT_GE(reported, oracle) << "q=" << q;
  EXPECT_LE(reported, oracle * 1.25 + 1e-6) << "q=" << q;
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile_ms(0.5), 0.0);
  EXPECT_EQ(hist.max_ms(), 0.0);
  EXPECT_EQ(hist.mean_ms(), 0.0);
  const LatencySummary summary = hist.summary();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.p99_ms, 0.0);
}

TEST(LatencyHistogramTest, BucketIndexRoundTripsThroughUpperEdge) {
  // Every bucket's upper edge must map back into that bucket, and the
  // value one past it into a later bucket — the grid has no gaps or
  // overlaps.
  for (int index = 0; index < LatencyHistogram::kBucketCount - 1; ++index) {
    const std::uint64_t upper = LatencyHistogram::bucket_upper_ns(index);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper), index) << upper;
    EXPECT_GT(LatencyHistogram::bucket_index(upper + 1), index) << upper;
  }
}

TEST(LatencyHistogramTest, BucketEdgesAreStrictlyIncreasing) {
  for (int index = 1; index < LatencyHistogram::kBucketCount; ++index) {
    EXPECT_GT(LatencyHistogram::bucket_upper_ns(index),
              LatencyHistogram::bucket_upper_ns(index - 1));
  }
}

TEST(LatencyHistogramTest, ExtremesSaturateSafely) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kBucketCount - 1);
  LatencyHistogram hist;
  hist.record_ms(-3.0);  // negative clamps into the zero bucket
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.quantile_ms(0.5), 0.0);
}

TEST(LatencyHistogramTest, CountMeanAndMaxAreExact) {
  // Count, mean, and max come from exact counters, not buckets.
  LatencyHistogram hist;
  const std::vector<std::uint64_t> samples = {1'000'000, 3'000'000, 8'000'000};
  for (const std::uint64_t ns : samples) {
    hist.record_ns(ns);
  }
  EXPECT_EQ(hist.count(), samples.size());
  EXPECT_DOUBLE_EQ(hist.max_ms(), 8.0);
  EXPECT_DOUBLE_EQ(hist.mean_ms(), 4.0);
}

TEST(LatencyHistogramTest, QuantilesMatchOracleOnHeavyTail) {
  // The serving shape: many cheap samples, a few expensive ones. The p99
  // must land on the tail, within the +25% bound.
  LatencyHistogram hist;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 980; ++i) {
    samples.push_back(1'000'000 + static_cast<std::uint64_t>(i) * 1000);
  }
  for (int i = 0; i < 20; ++i) {
    samples.push_back(50'000'000 + static_cast<std::uint64_t>(i) * 100'000);
  }
  for (const std::uint64_t ns : samples) {
    hist.record_ns(ns);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    expect_within_bound(hist, samples, q);
  }
  // p99 of 1000 samples ranks into the 20-sample tail.
  EXPECT_GE(hist.quantile_ms(0.99), 50.0);
}

TEST(LatencyHistogramTest, QuantilesMatchOracleOnRandomSamples) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    LatencyHistogram hist;
    std::vector<std::uint64_t> samples;
    const int n = 1 + static_cast<int>(rng.uniform_below(2000));
    for (int i = 0; i < n; ++i) {
      // Log-uniform over ~9 decades, the histogram's intended regime.
      const double exponent = 18.0 * rng.uniform();
      samples.push_back(
          static_cast<std::uint64_t>(std::exp2(exponent)));
      hist.record_ns(samples.back());
    }
    for (const double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
      expect_within_bound(hist, samples, q);
    }
  }
}

TEST(LatencyHistogramTest, QuantileIsMonotoneInQ) {
  Xoshiro256 rng(11);
  LatencyHistogram hist;
  for (int i = 0; i < 500; ++i) {
    hist.record_ns(rng.uniform_below(1'000'000'000));
  }
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = hist.quantile_ms(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(LatencyHistogramTest, MergeMatchesRecordingIntoOne) {
  // Merging two histograms must equal recording every sample into one:
  // same grid, so bucket counts add exactly.
  LatencyHistogram left;
  LatencyHistogram right;
  LatencyHistogram combined;
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(rng.uniform_below(100'000'000));
    (i % 2 == 0 ? left : right).record_ns(samples.back());
    combined.record_ns(samples.back());
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.max_ms(), combined.max_ms());
  EXPECT_DOUBLE_EQ(left.mean_ms(), combined.mean_ms());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(left.quantile_ms(q), combined.quantile_ms(q));
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNoSamples) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record_ns(static_cast<std::uint64_t>(t) * 1'000'000 +
                       static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const LatencySummary summary = hist.summary();
  EXPECT_EQ(summary.count, hist.count());
  EXPECT_GT(summary.p99_ms, 0.0);
}

}  // namespace
}  // namespace tilq
