// Tests for the COO container and the COO -> CSR builder (duplicate
// policies, sorting, determinism).
#include "sparse/build.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sparse/coo.hpp"
#include "support/rng.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

TEST(Coo, PushBoundsChecked) {
  Coo<double, I> coo(2, 2);
  EXPECT_NO_THROW(coo.push(0, 0, 1.0));
  EXPECT_NO_THROW(coo.push(1, 1, 1.0));
  EXPECT_THROW(coo.push(2, 0, 1.0), PreconditionError);
  EXPECT_THROW(coo.push(0, 2, 1.0), PreconditionError);
  EXPECT_THROW(coo.push(-1, 0, 1.0), PreconditionError);
  EXPECT_EQ(coo.nnz(), 2);
}

TEST(BuildCsr, SortsColumnsWithinRows) {
  Coo<double, I> coo(2, 5);
  coo.push(0, 4, 1.0);
  coo.push(0, 1, 2.0);
  coo.push(0, 3, 3.0);
  coo.push(1, 2, 4.0);
  coo.push(1, 0, 5.0);
  const auto m = build_csr(coo);
  EXPECT_TRUE(m.check());
  const auto cols0 = m.row_cols(0);
  EXPECT_EQ(cols0[0], 1);
  EXPECT_EQ(cols0[1], 3);
  EXPECT_EQ(cols0[2], 4);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 5.0);
}

TEST(BuildCsr, EmptyCooGivesEmptyMatrix) {
  const Coo<double, I> coo(4, 4);
  const auto m = build_csr(coo);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.check());
}

TEST(BuildCsr, DupPolicySumAddsValues) {
  Coo<double, I> coo(1, 3);
  coo.push(0, 1, 2.0);
  coo.push(0, 1, 3.0);
  coo.push(0, 1, 5.0);
  const auto m = build_csr(coo, DupPolicy::kSum);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 10.0);
}

TEST(BuildCsr, DupPolicyKeepFirstUsesFirstInsertion) {
  Coo<double, I> coo(1, 3);
  coo.push(0, 1, 2.0);
  coo.push(0, 1, 3.0);
  const auto m = build_csr(coo, DupPolicy::kKeepFirst);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
}

TEST(BuildCsr, DupPolicyErrorThrows) {
  Coo<double, I> coo(1, 3);
  coo.push(0, 1, 2.0);
  coo.push(0, 1, 3.0);
  EXPECT_THROW(build_csr(coo, DupPolicy::kError), PreconditionError);
}

TEST(BuildCsr, NoDuplicatesPassesErrorPolicy) {
  Coo<double, I> coo(2, 2);
  coo.push(0, 0, 1.0);
  coo.push(1, 1, 2.0);
  EXPECT_NO_THROW(build_csr(coo, DupPolicy::kError));
}

TEST(BuildCsr, RandomRoundTripPreservesEntries) {
  // Property: for duplicate-free input, build_csr is a bijection of the
  // entry set regardless of insertion order.
  Xoshiro256 rng(5);
  Coo<double, I> coo(50, 50);
  std::vector<Triplet<double, I>> truth;
  for (I i = 0; i < 50; ++i) {
    for (I j = 0; j < 50; ++j) {
      if (rng.bernoulli(0.1)) {
        const double v = rng.uniform();
        truth.push_back({i, j, v});
      }
    }
  }
  // Insert in shuffled order.
  std::vector<std::size_t> order(truth.size());
  for (std::size_t p = 0; p < order.size(); ++p) {
    order[p] = p;
  }
  for (std::size_t p = order.size(); p > 1; --p) {
    std::swap(order[p - 1], order[rng.uniform_below(p)]);
  }
  for (const std::size_t p : order) {
    coo.push(truth[p].row, truth[p].col, truth[p].value);
  }
  const auto m = build_csr(coo, DupPolicy::kError);
  EXPECT_TRUE(m.check());
  EXPECT_EQ(static_cast<std::size_t>(m.nnz()), truth.size());
  for (const auto& t : truth) {
    EXPECT_DOUBLE_EQ(m.at(t.row, t.col), t.value);
  }
}

TEST(CsrFromTriplets, Convenience) {
  const auto m = csr_from_triplets<double, I>(2, 2, {{0, 1, 3.0}, {1, 0, 4.0}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
}

TEST(CsrIdentity, IsIdentity) {
  const auto eye = csr_identity<double, I>(5);
  EXPECT_EQ(eye.nnz(), 5);
  EXPECT_TRUE(eye.check());
  for (I i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(eye.at(i, i), 1.0);
    EXPECT_EQ(eye.row_nnz(i), 1);
  }
}

}  // namespace
}  // namespace tilq
