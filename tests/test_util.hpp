// Shared test utilities: the dense reference oracle for the masked product,
// random sparse matrix builders, and comparison helpers. The oracle shares
// no code with the sparse kernels (it multiplies dense expansions), so
// agreement is meaningful evidence of correctness.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/semiring.hpp"
#include "sparse/build.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "support/rng.hpp"

namespace tilq::test {

/// Reference masked product over an arbitrary semiring, computed densely:
/// C[i,j] = Σ_k A[i,k]·B[k,j] wherever M has an entry AND at least one
/// product term exists structurally (GraphBLAS structural semantics: an
/// output entry exists iff the mask allows it and the intersection of
/// A[i,:] and B[:,j] patterns is non-empty, even if the sum equals the
/// semiring zero).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> reference_masked_spgemm(const Csr<T, I>& mask, const Csr<T, I>& a,
                                  const Csr<T, I>& b) {
  const I rows = a.rows();
  const I cols = b.cols();
  std::vector<I> row_ptr(static_cast<std::size_t>(rows) + 1, I{0});
  std::vector<I> col_idx;
  std::vector<T> values;

  for (I i = 0; i < rows; ++i) {
    for (const I j : mask.row_cols(i)) {
      T sum = SR::zero();
      bool structural = false;
      for (const I k : a.row_cols(i)) {
        if (b.contains(k, j)) {
          structural = true;
          sum = SR::add(sum, SR::mul(a.at(i, k), b.at(k, j)));
        }
      }
      if (structural) {
        col_idx.push_back(j);
        values.push_back(sum);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<I>(col_idx.size());
  }
  return Csr<T, I>(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Uniform random sparse matrix with ~density fraction of entries, values
/// in {1, ..., 9} (exact in double and int alike, so semiring results
/// compare exactly).
template <class T = double, class I = std::int64_t>
Csr<T, I> random_matrix(I rows, I cols, double density, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo<T, I> coo(rows, cols);
  for (I i = 0; i < rows; ++i) {
    for (I j = 0; j < cols; ++j) {
      if (rng.bernoulli(density)) {
        coo.push_unchecked(i, j, static_cast<T>(1 + rng.uniform_below(9)));
      }
    }
  }
  return build_csr(coo, DupPolicy::kError);
}

/// GoogleTest helper: asserts two CSR matrices are identical (shape,
/// pattern, values) with a readable failure message.
template <class T, class I>
::testing::AssertionResult csr_equal(const Csr<T, I>& expected,
                                     const Csr<T, I>& actual) {
  if (expected.rows() != actual.rows() || expected.cols() != actual.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: expected " << expected.rows() << "x"
           << expected.cols() << ", got " << actual.rows() << "x"
           << actual.cols();
  }
  for (I i = 0; i < expected.rows(); ++i) {
    const auto e_cols = expected.row_cols(i);
    const auto a_cols = actual.row_cols(i);
    if (!std::ranges::equal(e_cols, a_cols)) {
      return ::testing::AssertionFailure()
             << "pattern mismatch in row " << i << ": expected "
             << e_cols.size() << " entries, got " << a_cols.size();
    }
    const auto e_vals = expected.row_vals(i);
    const auto a_vals = actual.row_vals(i);
    for (std::size_t p = 0; p < e_vals.size(); ++p) {
      if (e_vals[p] != a_vals[p]) {
        return ::testing::AssertionFailure()
               << "value mismatch at (" << i << ", " << e_cols[p]
               << "): expected " << e_vals[p] << ", got " << a_vals[p];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace tilq::test
