// Tests for the Eq-2 work estimator and FLOP counting.
#include "core/work_estimate.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sparse/build.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

TEST(RowWork, MatchesEquationTwoByHand) {
  // A = [x x .]   B row nnz = {1, 2, 3}   M row nnz = {2, 0, 1}
  //     [. . x]
  //     [x . x]
  const auto a = csr_from_triplets<double, I>(
      3, 3, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}, {2, 2, 1.0}});
  const auto b = csr_from_triplets<double, I>(
      3, 3,
      {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}, {2, 0, 1.0}, {2, 1, 1.0}, {2, 2, 1.0}});
  const auto mask = csr_from_triplets<double, I>(
      3, 3, {{0, 0, 1.0}, {0, 1, 1.0}, {2, 2, 1.0}});

  const auto work = row_work(mask, a, b);
  ASSERT_EQ(work.size(), 3u);
  EXPECT_EQ(work[0], 2 + (1 + 2));  // nnz(M[0]) + nnz(B[0]) + nnz(B[1])
  EXPECT_EQ(work[1], 0 + 3);        // nnz(M[1]) + nnz(B[2])
  EXPECT_EQ(work[2], 1 + (1 + 3));  // nnz(M[2]) + nnz(B[0]) + nnz(B[2])
}

TEST(RowWork, PrefixIsCumulative) {
  const auto a = test::random_matrix<double, I>(30, 30, 0.1, 1);
  const auto b = test::random_matrix<double, I>(30, 30, 0.1, 2);
  const auto mask = test::random_matrix<double, I>(30, 30, 0.1, 3);
  const auto work = row_work(mask, a, b);
  const auto prefix = row_work_prefix(mask, a, b);
  ASSERT_EQ(prefix.size(), work.size() + 1);
  EXPECT_EQ(prefix[0], 0);
  for (std::size_t i = 0; i < work.size(); ++i) {
    EXPECT_EQ(prefix[i + 1] - prefix[i], work[i]);
  }
}

TEST(RowWork, ShapeMismatchThrows) {
  const Csr<double, I> a(3, 4), b(4, 3), mask(2, 3), bad_b(5, 3);
  EXPECT_THROW(row_work(mask, a, b), PreconditionError);  // mask rows != a rows
  const Csr<double, I> mask_ok(3, 3);
  EXPECT_THROW(row_work(mask_ok, a, bad_b), PreconditionError);  // inner dim
}

TEST(TotalFlops, MatchesBruteForce) {
  const auto a = test::random_matrix<double, I>(25, 20, 0.15, 4);
  const auto b = test::random_matrix<double, I>(20, 25, 0.15, 5);
  std::int64_t expected = 0;
  for (I i = 0; i < a.rows(); ++i) {
    for (const I k : a.row_cols(i)) {
      expected += b.row_nnz(k);
    }
  }
  EXPECT_EQ(total_flops(a, b), expected);
}

TEST(TotalFlops, ZeroForEmptyOperands) {
  EXPECT_EQ(total_flops(Csr<double, I>(5, 5), Csr<double, I>(5, 5)), 0);
}

TEST(RowFlopBound, CapsAtColumnCount) {
  // One row of A hitting a B row with many entries: bound <= b.cols().
  const auto a = csr_from_triplets<double, I>(
      1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  Coo<double, I> bcoo(2, 4);
  for (I j = 0; j < 4; ++j) {
    bcoo.push(0, j, 1.0);
    bcoo.push(1, j, 1.0);
  }
  const auto b = build_csr(bcoo);
  // Raw bound is 8, but only 4 columns exist.
  EXPECT_EQ(row_flop_bound(a, b, I{0}), 4);
}

}  // namespace
}  // namespace tilq
