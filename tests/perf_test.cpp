// Tests for the hardware-counter layer (support/perf.hpp): HwCounters
// algebra, the PerfScope fallback contract (inactive scopes are free and
// return zeros), the runtime override, and the TILQ_PERF classifier.
// These tests must pass identically on machines with and without working
// perf_event_open — the fallback IS the behavior under test.
#include "support/perf.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "support/metrics.hpp"

namespace tilq {
namespace {

TEST(HwCountersTest, AccumulateAndSaturatingMinus) {
  HwCounters a;
  a.cycles = 1000;
  a.instructions = 800;
  a.llc_loads = 50;
  a.llc_misses = 10;
  a.branch_misses = 5;
  a.stalled_cycles = 200;

  HwCounters b = a;
  b += a;
  EXPECT_EQ(b.cycles, 2000u);
  EXPECT_EQ(b.instructions, 1600u);
  EXPECT_EQ(b.stalled_cycles, 400u);

  const HwCounters d = b.minus(a);
  EXPECT_EQ(d.cycles, 1000u);
  EXPECT_EQ(d.llc_misses, 10u);
  // Saturating: a - b clamps to zero field-wise instead of wrapping.
  EXPECT_TRUE(a.minus(b).all_zero());
}

TEST(HwCountersTest, AllZeroDetectsAnyField) {
  EXPECT_TRUE(HwCounters{}.all_zero());
  HwCounters h;
  h.branch_misses = 1;
  EXPECT_FALSE(h.all_zero());
  h = HwCounters{};
  h.stalled_cycles = 1;
  EXPECT_FALSE(h.all_zero());
}

TEST(PerfTest, EnvClassifierMatchesDocumentedSpellings) {
  EXPECT_TRUE(perf_env_disables("0"));
  EXPECT_TRUE(perf_env_disables("off"));
  EXPECT_TRUE(perf_env_disables("OFF"));
  EXPECT_TRUE(perf_env_disables("false"));
  EXPECT_TRUE(perf_env_disables("False"));
  EXPECT_FALSE(perf_env_disables(nullptr));  // unset: first open decides
  EXPECT_FALSE(perf_env_disables(""));
  EXPECT_FALSE(perf_env_disables("1"));
  EXPECT_FALSE(perf_env_disables("on"));
  EXPECT_FALSE(perf_env_disables("yes"));
}

TEST(PerfTest, DisabledScopeIsInactiveAndZero) {
  if (!kMetricsCompiled) {
    GTEST_SKIP() << "perf compiled out (TILQ_METRICS=OFF build)";
  }
  set_perf_enabled(false);
  EXPECT_FALSE(perf_available());
  const PerfScope scope;
  EXPECT_FALSE(scope.active());
  EXPECT_TRUE(scope.delta().all_zero());
  EXPECT_TRUE(perf_read_thread().all_zero());
  set_perf_enabled(true);  // let later tests see the machine's real state
}

TEST(PerfTest, ExplicitlyDisabledScopeIgnoresAvailability) {
  const PerfScope scope(/*enable=*/false);
  EXPECT_FALSE(scope.active());
  EXPECT_TRUE(scope.delta().all_zero());
}

TEST(PerfTest, ScopeDeltaIsMonotoneWhenActive) {
  const PerfScope scope;
  if (!scope.active()) {
    // Fallback path (container without perf permissions): the scope must
    // read as zeros, never garbage.
    EXPECT_TRUE(scope.delta().all_zero());
    return;
  }
  // Burn some cycles so the delta is observably non-zero.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    sink = sink + i * i;
  }
  const HwCounters first = scope.delta();
  for (std::uint64_t i = 0; i < 100000; ++i) {
    sink = sink + i * i;
  }
  const HwCounters second = scope.delta();
  EXPECT_GT(first.cycles, 0u);
  EXPECT_GE(second.cycles, first.cycles);
  EXPECT_GE(second.instructions, first.instructions);
}

TEST(PerfTest, CompiledOutBuildIsInert) {
  if (kMetricsCompiled) {
    GTEST_SKIP() << "only meaningful in a TILQ_METRICS=OFF build";
  }
  EXPECT_FALSE(perf_available());
  EXPECT_EQ(perf_unavailable_notices(), 0);
  EXPECT_TRUE(perf_read_thread().all_zero());
  const PerfScope scope;
  EXPECT_FALSE(scope.active());
  EXPECT_TRUE(scope.delta().all_zero());
}

}  // namespace
}  // namespace tilq
