// Tests for the masked SpMV / SpMSpV kernels against brute-force oracles.
#include "core/spmv.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;
using V = SparseVector<double, I>;

V random_vector(I dim, double density, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<I> indices;
  std::vector<double> values;
  for (I i = 0; i < dim; ++i) {
    if (rng.bernoulli(density)) {
      indices.push_back(i);
      values.push_back(static_cast<double>(1 + rng.uniform_below(9)));
    }
  }
  return {dim, std::move(indices), std::move(values)};
}

/// Brute-force oracle for y = mask ⊙ (A·x).
V oracle_masked_spmv(const V& mask, const Csr<double, I>& a, const V& x) {
  std::vector<I> indices;
  std::vector<double> values;
  for (const I i : mask.indices()) {
    double sum = 0.0;
    bool structural = false;
    for (const I k : a.row_cols(i)) {
      if (x.contains(k)) {
        structural = true;
        sum += a.at(i, k) * x.at(k);
      }
    }
    if (structural) {
      indices.push_back(i);
      values.push_back(sum);
    }
  }
  return {a.rows(), std::move(indices), std::move(values)};
}

TEST(MaskedSpmv, MatchesOracleOnRandomProblems) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto a = test::random_matrix<double, I>(30, 25, 0.2, seed);
    const V x = random_vector(25, 0.3, seed + 10);
    const V mask = random_vector(30, 0.4, seed + 20);
    const V expected = oracle_masked_spmv(mask, a, x);
    const V actual = masked_spmv<SR>(mask, a, x);
    EXPECT_EQ(actual, expected) << "seed " << seed;
    EXPECT_TRUE(actual.check());
  }
}

TEST(MaskedSpmv, EmptyMaskGivesEmptyOutput) {
  const auto a = test::random_matrix<double, I>(10, 10, 0.3, 5);
  const V x = random_vector(10, 0.5, 6);
  EXPECT_TRUE(masked_spmv<SR>(V(10), a, x).empty());
}

TEST(MaskedSpmv, DimensionMismatchThrows) {
  const auto a = test::random_matrix<double, I>(10, 8, 0.3, 5);
  EXPECT_THROW(masked_spmv<SR>(V(9), a, random_vector(8, 0.5, 6)),
               PreconditionError);
  EXPECT_THROW(masked_spmv<SR>(V(10), a, random_vector(9, 0.5, 6)),
               PreconditionError);
}

TEST(ComplementMaskedSpmspv, MatchesOracle) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const auto at = test::random_matrix<double, I>(20, 20, 0.2, seed);
    const V x = random_vector(20, 0.3, seed + 1);
    const V visited = random_vector(20, 0.3, seed + 2);

    // Oracle: y[j] = Σ_{k∈x} At[k,j]·x[k] for j not visited.
    std::vector<double> dense(20, 0.0);
    std::vector<bool> structural(20, false);
    for (const I k : x.indices()) {
      for (const I j : at.row_cols(k)) {
        if (!visited.contains(j)) {
          dense[static_cast<std::size_t>(j)] += at.at(k, j) * x.at(k);
          structural[static_cast<std::size_t>(j)] = true;
        }
      }
    }
    const V actual = complement_masked_spmspv<SR>(visited, at, x);
    EXPECT_TRUE(actual.check());
    for (I j = 0; j < 20; ++j) {
      if (structural[static_cast<std::size_t>(j)]) {
        EXPECT_TRUE(actual.contains(j)) << "seed " << seed << " j " << j;
        EXPECT_DOUBLE_EQ(actual.at(j), dense[static_cast<std::size_t>(j)]);
      } else {
        EXPECT_FALSE(actual.contains(j)) << "seed " << seed << " j " << j;
      }
    }
  }
}

TEST(ComplementMaskedSpmspv, VisitedEntriesNeverAppear) {
  const auto at = test::random_matrix<double, I>(15, 15, 0.4, 11);
  const V x = random_vector(15, 0.5, 12);
  const V visited = random_vector(15, 0.5, 13);
  const V y = complement_masked_spmspv<SR>(visited, at, x);
  for (const I j : y.indices()) {
    EXPECT_FALSE(visited.contains(j));
  }
}

TEST(SpmvDense, MatchesDenseOracle) {
  const auto a = test::random_matrix<double, I>(12, 9, 0.3, 17);
  std::vector<double> x(9);
  for (std::size_t k = 0; k < x.size(); ++k) {
    x[k] = static_cast<double>(k + 1);
  }
  const auto y = spmv_dense<SR>(a, std::span<const double>(x));
  ASSERT_EQ(y.size(), 12u);
  for (I i = 0; i < 12; ++i) {
    double expected = 0.0;
    for (const I k : a.row_cols(i)) {
      expected += a.at(i, k) * x[static_cast<std::size_t>(k)];
    }
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], expected);
  }
}

TEST(SpmvDense, MinPlusSemiring) {
  // One relaxation step of (min,+) shortest paths.
  using MP = MinPlus<std::int64_t>;
  const auto a = csr_from_triplets<std::int64_t, I>(
      2, 2, {{0, 1, 4}, {1, 0, 2}, {1, 1, 1}});
  const std::vector<std::int64_t> x = {0, MP::zero()};
  const auto y = spmv_dense<MP>(a, std::span<const std::int64_t>(x));
  EXPECT_EQ(y[0], MP::zero());  // row 0 only reaches x[1] = inf
  EXPECT_EQ(y[1], 2);           // min(2 + 0, 1 + inf)
}

}  // namespace
}  // namespace tilq
