// Tests for SparseVector.
#include "sparse/vector.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace tilq {
namespace {

using I = std::int64_t;
using V = SparseVector<double, I>;

TEST(SparseVector, DefaultIsEmpty) {
  const V v;
  EXPECT_EQ(v.dim(), 0);
  EXPECT_EQ(v.nnz(), 0);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.check());
}

TEST(SparseVector, UnitVector) {
  const V v = V::unit(10, 3, 2.5);
  EXPECT_EQ(v.nnz(), 1);
  EXPECT_TRUE(v.contains(3));
  EXPECT_DOUBLE_EQ(v.at(3), 2.5);
  EXPECT_DOUBLE_EQ(v.at(4), 0.0);
  EXPECT_THROW(V::unit(10, 10), PreconditionError);
  EXPECT_THROW(V::unit(10, -1), PreconditionError);
}

TEST(SparseVector, AdoptedArraysAreValidated) {
  EXPECT_NO_THROW(V(5, {1, 3}, {1.0, 2.0}));
  EXPECT_THROW(V(5, {1, 3}, {1.0}), PreconditionError);  // length mismatch
  EXPECT_THROW(V(-1, {}, {}), PreconditionError);
}

TEST(SparseVector, CheckDetectsViolations) {
  V unsorted(5, {3, 1}, {1.0, 2.0});
  EXPECT_FALSE(unsorted.check());
  V duplicate(5, {2, 2}, {1.0, 2.0});
  EXPECT_FALSE(duplicate.check());
  V out_of_range(5, {7}, {1.0});
  EXPECT_FALSE(out_of_range.check());
}

TEST(SparseVector, ContainsAndAt) {
  const V v(8, {0, 4, 7}, {1.0, 2.0, 3.0});
  EXPECT_TRUE(v.contains(0));
  EXPECT_TRUE(v.contains(4));
  EXPECT_TRUE(v.contains(7));
  EXPECT_FALSE(v.contains(1));
  EXPECT_DOUBLE_EQ(v.at(4), 2.0);
  EXPECT_DOUBLE_EQ(v.at(5), 0.0);
}

TEST(MakeSparseVector, SortsAndCombines) {
  const auto v = make_sparse_vector<double, I>(10, {{7, 1.0}, {2, 2.0}, {7, 3.0}});
  EXPECT_EQ(v.nnz(), 2);
  EXPECT_DOUBLE_EQ(v.at(2), 2.0);
  EXPECT_DOUBLE_EQ(v.at(7), 3.0);  // keep-last
  EXPECT_TRUE(v.check());
}

TEST(PatternComplement, CoversAllMissingIndices) {
  const V v(6, {1, 4}, {1.0, 1.0});
  const auto complement = pattern_complement(v);
  EXPECT_EQ(complement, (std::vector<I>{0, 2, 3, 5}));
}

TEST(PatternComplement, EmptyAndFull) {
  EXPECT_EQ(pattern_complement(V(3)).size(), 3u);
  const V full(3, {0, 1, 2}, {1.0, 1.0, 1.0});
  EXPECT_TRUE(pattern_complement(full).empty());
}

}  // namespace
}  // namespace tilq
