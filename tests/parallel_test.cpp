// Tests for the OpenMP helpers: parallel_for coverage and the blocked
// parallel exclusive scan against a serial oracle, across sizes that hit
// both the serial cutoff and the parallel path.
#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace tilq {
namespace {

TEST(ParallelFor, VisitsEveryIndexOnce) {
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(std::int64_t{0}, kN, [&](std::int64_t i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

class ExclusiveScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExclusiveScanSizes, MatchesSerialOracle) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n);
  std::vector<std::int64_t> counts(n);
  for (auto& c : counts) {
    c = static_cast<std::int64_t>(rng.uniform_below(100));
  }

  std::vector<std::int64_t> expected(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    expected[i + 1] = expected[i] + counts[i];
  }

  std::vector<std::int64_t> offsets(n + 1);
  const std::int64_t total =
      exclusive_scan<std::int64_t>(counts, std::span<std::int64_t>(offsets));
  EXPECT_EQ(total, expected[n]);
  EXPECT_EQ(offsets, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExclusiveScanSizes,
                         ::testing::Values(0, 1, 2, 100, (1 << 14) - 1, 1 << 14,
                                           (1 << 14) + 1, 100000, 250000));

TEST(ExclusiveScan, AllZeros) {
  std::vector<std::int64_t> counts(50000, 0);
  std::vector<std::int64_t> offsets(counts.size() + 1);
  EXPECT_EQ(exclusive_scan<std::int64_t>(counts, std::span<std::int64_t>(offsets)), 0);
  EXPECT_EQ(offsets.back(), 0);
  EXPECT_EQ(offsets.front(), 0);
}

TEST(ExclusiveScan, VectorOverloadAllocates) {
  const std::vector<std::int64_t> counts = {3, 1, 4, 1, 5};
  const std::vector<std::int64_t> offsets = exclusive_scan<std::int64_t>(counts);
  const std::vector<std::int64_t> expected = {0, 3, 4, 8, 9, 14};
  EXPECT_EQ(offsets, expected);
}

TEST(ExclusiveScan, WrongOffsetSizeThrows) {
  const std::vector<std::int64_t> counts = {1, 2, 3};
  std::vector<std::int64_t> offsets(3);  // should be 4
  EXPECT_THROW(exclusive_scan<std::int64_t>(counts, std::span<std::int64_t>(offsets)),
               PreconditionError);
}

}  // namespace
}  // namespace tilq
