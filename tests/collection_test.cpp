// Tests for the synthetic matrix collection (the Table-I analogues).
#include "gen/collection.hpp"

#include <gtest/gtest.h>

#include "sparse/stats.hpp"
#include "support/common.hpp"

namespace tilq {
namespace {

TEST(Collection, HasTheTenTableOneEntries) {
  const auto names = collection_names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "arabic-2005");
  EXPECT_EQ(names.back(), "uk-2002");
}

TEST(Collection, EntriesCarryPaperSizes) {
  const auto& entry = collection_entry("com-Orkut");
  EXPECT_EQ(entry.kind, GraphKind::kSocial);
  EXPECT_EQ(entry.paper_n, 3072441);
  EXPECT_EQ(entry.paper_nnz, 234370166);
}

TEST(Collection, UnknownNameThrows) {
  EXPECT_THROW(collection_entry("nonexistent"), PreconditionError);
  EXPECT_THROW(make_collection_graph("nonexistent"), PreconditionError);
  EXPECT_THROW(make_collection_graph("GAP-road", -1.0), PreconditionError);
}

TEST(Collection, KindNames) {
  EXPECT_STREQ(to_string(GraphKind::kWeb), "web");
  EXPECT_STREQ(to_string(GraphKind::kCircuit), "circuit");
  EXPECT_STREQ(to_string(GraphKind::kSocial), "social");
  EXPECT_STREQ(to_string(GraphKind::kRoad), "road");
}

class CollectionGraphs : public ::testing::TestWithParam<std::string> {};

TEST_P(CollectionGraphs, GeneratesValidDeterministicGraphs) {
  // Smoke-scale instances: structural validity + determinism per name.
  const std::string name = GetParam();
  const auto g = make_collection_graph(name, /*scale=*/0.1, /*seed=*/3);
  EXPECT_TRUE(g.check());
  EXPECT_EQ(g.rows(), g.cols());
  EXPECT_GT(g.nnz(), 0);
  for (std::int64_t i = 0; i < g.rows(); ++i) {
    ASSERT_FALSE(g.contains(i, i)) << name << " has a self-loop at " << i;
  }
  EXPECT_EQ(g, make_collection_graph(name, 0.1, 3));
  EXPECT_NE(g, make_collection_graph(name, 0.1, 4));
}

INSTANTIATE_TEST_SUITE_P(AllNames, CollectionGraphs,
                         ::testing::ValuesIn(collection_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (auto& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST(Collection, ScaleGrowsTheGraph) {
  const auto small = make_collection_graph("GAP-road", 0.05);
  const auto large = make_collection_graph("GAP-road", 0.2);
  EXPECT_GT(large.rows(), small.rows());
  EXPECT_GT(large.nnz(), small.nnz());
}

TEST(Collection, RoadAnaloguesHaveTinyDegrees) {
  for (const char* name : {"europe_osm", "GAP-road"}) {
    const auto stats = compute_stats(make_collection_graph(name, 0.2));
    EXPECT_LT(stats.mean_row_nnz, 4.0) << name;
    EXPECT_LE(stats.max_row_nnz, 10) << name;
  }
}

TEST(Collection, SocialAnaloguesHaveSkew) {
  for (const char* name : {"com-Orkut", "hollywood-2009"}) {
    const auto stats = compute_stats(make_collection_graph(name, 0.25));
    EXPECT_GT(static_cast<double>(stats.max_row_nnz), 5.0 * stats.mean_row_nnz)
        << name;
  }
}

TEST(Collection, CircuitAnalogueHasRailRows) {
  const auto g = make_collection_graph("circuit5M", 0.25);
  const auto stats = compute_stats(g);
  // The rails must reach a large fraction of the matrix dimension.
  EXPECT_GT(stats.max_row_nnz, g.rows() / 5);
}

TEST(Collection, DirectedWebAnaloguesAreAsymmetric) {
  const auto g = make_collection_graph("uk-2002", 0.1);
  bool found_asymmetry = false;
  for (std::int64_t i = 0; i < g.rows() && !found_asymmetry; ++i) {
    for (const std::int64_t j : g.row_cols(i)) {
      if (!g.contains(j, i)) {
        found_asymmetry = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_asymmetry);
}

}  // namespace
}  // namespace tilq
