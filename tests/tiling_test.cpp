// Tests for the tiling strategies (§III-A): coverage invariants for both
// tilers and balance quality for the FLOP-balanced one.
#include "core/tiling.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {
namespace {

/// Checks tiles are non-empty, contiguous, and exactly cover [0, rows).
void expect_covering(const std::vector<Tile>& tiles, std::int64_t rows) {
  if (rows == 0) {
    EXPECT_TRUE(tiles.empty());
    return;
  }
  ASSERT_FALSE(tiles.empty());
  EXPECT_EQ(tiles.front().row_begin, 0);
  EXPECT_EQ(tiles.back().row_end, rows);
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    EXPECT_LT(tiles[t].row_begin, tiles[t].row_end) << "tile " << t;
    if (t > 0) {
      EXPECT_EQ(tiles[t].row_begin, tiles[t - 1].row_end) << "tile " << t;
    }
  }
}

std::vector<std::int64_t> prefix_of(const std::vector<std::int64_t>& work) {
  std::vector<std::int64_t> prefix(work.size() + 1, 0);
  std::partial_sum(work.begin(), work.end(), prefix.begin() + 1);
  return prefix;
}

TEST(UniformTiles, CoversAndBalancesRowCounts) {
  const auto tiles = make_uniform_tiles(1000, 7);
  expect_covering(tiles, 1000);
  EXPECT_EQ(tiles.size(), 7u);
  for (const Tile& tile : tiles) {
    EXPECT_GE(tile.rows(), 1000 / 7);
    EXPECT_LE(tile.rows(), 1000 / 7 + 1);
  }
}

TEST(UniformTiles, MoreTilesThanRowsGivesSingletons) {
  const auto tiles = make_uniform_tiles(5, 100);
  expect_covering(tiles, 5);
  EXPECT_EQ(tiles.size(), 5u);
  for (const Tile& tile : tiles) {
    EXPECT_EQ(tile.rows(), 1);
  }
}

TEST(UniformTiles, SingleTileTakesEverything) {
  const auto tiles = make_uniform_tiles(42, 1);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], (Tile{0, 42}));
}

TEST(UniformTiles, ZeroRows) { expect_covering(make_uniform_tiles(0, 4), 0); }

TEST(UniformTiles, InvalidArgumentsThrow) {
  EXPECT_THROW(make_uniform_tiles(-1, 4), PreconditionError);
  EXPECT_THROW(make_uniform_tiles(10, 0), PreconditionError);
}

TEST(BalancedTiles, UniformWorkBehavesLikeUniformTiling) {
  const std::vector<std::int64_t> work(100, 5);
  const auto tiles = make_flop_balanced_tiles(prefix_of(work), 10);
  expect_covering(tiles, 100);
  EXPECT_EQ(tiles.size(), 10u);
  for (const Tile& tile : tiles) {
    EXPECT_EQ(tile.rows(), 10);
  }
}

TEST(BalancedTiles, SkewedWorkSplitsAtWorkQuantiles) {
  // One row carries half the work; it must sit alone-ish while the light
  // rows pack together.
  std::vector<std::int64_t> work(100, 1);
  work[0] = 100;
  const auto prefix = prefix_of(work);
  const auto tiles = make_flop_balanced_tiles(prefix, 4);
  expect_covering(tiles, 100);
  // First tile: just the heavy row (its work alone exceeds a quantile).
  EXPECT_EQ(tiles[0], (Tile{0, 1}));
  // No light tile should hold more than ~2x the fair share of light rows.
  for (std::size_t t = 1; t < tiles.size(); ++t) {
    EXPECT_LE(tile_work(tiles[t], prefix), 2 * (199 / 4 + 1));
  }
}

TEST(BalancedTiles, HeavySingleRowCannotBeSplit) {
  // All work in one row: progress guarantee must still produce covering
  // tiles with the heavy row in a singleton.
  std::vector<std::int64_t> work(10, 0);
  work[5] = 1000;
  const auto tiles = make_flop_balanced_tiles(prefix_of(work), 4);
  expect_covering(tiles, 10);
  bool heavy_found = false;
  for (const Tile& tile : tiles) {
    if (tile.row_begin <= 5 && 5 < tile.row_end) {
      heavy_found = true;
    }
  }
  EXPECT_TRUE(heavy_found);
}

TEST(BalancedTiles, ZeroTotalWorkFallsBackToUniform) {
  const std::vector<std::int64_t> work(20, 0);
  const auto tiles = make_flop_balanced_tiles(prefix_of(work), 4);
  expect_covering(tiles, 20);
  EXPECT_EQ(tiles.size(), 4u);
}

TEST(BalancedTiles, EmptyMatrix) {
  const std::vector<std::int64_t> prefix = {0};
  EXPECT_TRUE(make_flop_balanced_tiles(prefix, 4).empty());
}

TEST(BalancedTiles, InvalidArgumentsThrow) {
  EXPECT_THROW(make_flop_balanced_tiles({}, 4), PreconditionError);
  const std::vector<std::int64_t> prefix = {0, 1};
  EXPECT_THROW(make_flop_balanced_tiles(prefix, 0), PreconditionError);
}

class BalancedTilesRandom
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(BalancedTilesRandom, BalanceQualityProperty) {
  // Property: for random work vectors, every tile's work is at most
  // max(per-tile quota, heaviest single row) + quota — i.e. balanced up to
  // the granularity limit of whole rows.
  const auto [seed, num_tiles] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  std::vector<std::int64_t> work(500);
  std::int64_t max_row = 0;
  for (auto& w : work) {
    w = static_cast<std::int64_t>(rng.uniform_below(1000));
    max_row = std::max(max_row, w);
  }
  const auto prefix = prefix_of(work);
  const std::int64_t total = prefix.back();
  const auto tiles = make_flop_balanced_tiles(prefix, num_tiles);
  expect_covering(tiles, 500);
  const std::int64_t quota = ceil_div(total, num_tiles);
  for (const Tile& tile : tiles) {
    EXPECT_LE(tile_work(tile, prefix), std::max(quota, max_row) + quota)
        << "tile [" << tile.row_begin << ", " << tile.row_end << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, BalancedTilesRandom,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values<std::int64_t>(1, 2, 8, 64, 499, 500,
                                                       2000)));

TEST(TileWork, ComputesRangeSum) {
  const std::vector<std::int64_t> work = {5, 3, 7, 1};
  const auto prefix = prefix_of(work);
  EXPECT_EQ(tile_work({0, 4}, prefix), 16);
  EXPECT_EQ(tile_work({1, 3}, prefix), 10);
  EXPECT_EQ(tile_work({2, 2}, prefix), 0);
}

}  // namespace
}  // namespace tilq
