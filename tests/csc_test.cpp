// Tests for the CSC container and the column-wise masked-SpGEMM (the
// §II-A symmetry made executable).
#include "sparse/csc.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/column_spgemm.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

TEST(Csc, RoundTripThroughCsr) {
  const auto a = test::random_matrix<double, I>(20, 30, 0.15, 1);
  const auto csc = Csc<double, I>::from_csr(a);
  EXPECT_EQ(csc.rows(), 20);
  EXPECT_EQ(csc.cols(), 30);
  EXPECT_EQ(csc.nnz(), a.nnz());
  EXPECT_TRUE(csc.check());
  EXPECT_TRUE(test::csr_equal(a, csc.to_csr()));
}

TEST(Csc, ColumnAccessors) {
  const auto a = csr_from_triplets<double, I>(
      3, 2, {{0, 0, 1.0}, {1, 0, 2.0}, {2, 1, 3.0}});
  const auto csc = Csc<double, I>::from_csr(a);
  const auto col0 = csc.col_rows(0);
  ASSERT_EQ(col0.size(), 2u);
  EXPECT_EQ(col0[0], 0);
  EXPECT_EQ(col0[1], 1);
  EXPECT_DOUBLE_EQ(csc.col_vals(0)[1], 2.0);
  EXPECT_EQ(csc.col_nnz(1), 1);
  EXPECT_TRUE(csc.contains(2, 1));
  EXPECT_FALSE(csc.contains(0, 1));
  EXPECT_DOUBLE_EQ(csc.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(csc.at(0, 1), 0.0);
}

TEST(ColumnSpgemm, MatchesRowWiseResult) {
  for (const std::uint64_t seed : {3u, 7u}) {
    const auto mask = test::random_matrix<double, I>(25, 30, 0.15, seed);
    const auto a = test::random_matrix<double, I>(25, 20, 0.15, seed + 1);
    const auto b = test::random_matrix<double, I>(20, 30, 0.15, seed + 2);

    const auto expected = masked_spgemm<SR>(mask, a, b);
    const auto actual = masked_spgemm_csc<SR>(Csc<double, I>::from_csr(mask),
                                              Csc<double, I>::from_csr(a),
                                              Csc<double, I>::from_csr(b));
    EXPECT_TRUE(test::csr_equal(expected, actual.to_csr())) << "seed " << seed;
  }
}

TEST(ColumnSpgemm, EveryStrategyWorksOnTheDual) {
  const auto a = test::random_matrix<double, I>(30, 30, 0.15, 11);
  const auto a_csc = Csc<double, I>::from_csr(a);
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  for (const MaskStrategy strategy :
       {MaskStrategy::kMaskFirst, MaskStrategy::kCoIterate,
        MaskStrategy::kHybrid, MaskStrategy::kVanilla}) {
    Config config;
    config.strategy = strategy;
    const auto actual = masked_spgemm_csc<SR>(a_csc, a_csc, a_csc, config);
    EXPECT_TRUE(test::csr_equal(expected, actual.to_csr()))
        << to_string(strategy);
  }
}

TEST(ColumnSpgemm, StatsFlowThrough) {
  const auto a = test::random_matrix<double, I>(20, 20, 0.2, 13);
  const auto a_csc = Csc<double, I>::from_csr(a);
  Config config;
  config.num_tiles = 4;
  ExecutionStats stats;
  const auto c = masked_spgemm_csc<SR>(a_csc, a_csc, a_csc, config, stats);
  EXPECT_EQ(stats.output_nnz, c.nnz());
  EXPECT_GE(stats.tiles, 1);
}

}  // namespace
}  // namespace tilq
