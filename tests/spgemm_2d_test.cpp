// Tests for the 2D-tiled masked-SpGEMM: agreement with the dense oracle and
// with the 1D driver across column tile counts, strategies, and
// accumulators.
#include "core/masked_spgemm_2d.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "core/masked_spgemm.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

struct Problem {
  Csr<double, I> mask;
  Csr<double, I> a;
  Csr<double, I> b;
};

Problem make_problem(std::uint64_t seed) {
  return {test::random_matrix<double, I>(35, 45, 0.15, seed),
          test::random_matrix<double, I>(35, 30, 0.15, seed + 1),
          test::random_matrix<double, I>(30, 45, 0.15, seed + 2)};
}

class Spgemm2dColTiles
    : public ::testing::TestWithParam<std::tuple<std::int64_t, MaskStrategy, AccumulatorKind>> {
};

TEST_P(Spgemm2dColTiles, MatchesOracle) {
  Config config;
  config.num_col_tiles = std::get<0>(GetParam());
  config.strategy = std::get<1>(GetParam());
  config.accumulator = std::get<2>(GetParam());
  config.num_tiles = 6;
  for (const std::uint64_t seed : {1u, 5u}) {
    const Problem p = make_problem(seed);
    const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
    const auto actual = masked_spgemm_2d<SR>(p.mask, p.a, p.b, config);
    EXPECT_TRUE(actual.check());
    EXPECT_TRUE(test::csr_equal(expected, actual))
        << "col_tiles=" << config.num_col_tiles << " "
        << config.describe() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Spgemm2dColTiles,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 3, 7, 45, 100),
                       ::testing::Values(MaskStrategy::kMaskFirst,
                                         MaskStrategy::kCoIterate,
                                         MaskStrategy::kHybrid),
                       ::testing::Values(AccumulatorKind::kDense,
                                         AccumulatorKind::kHash)));

TEST(Spgemm2d, SingleColumnTileEqualsOneDimensional) {
  const Problem p = make_problem(9);
  Config config;
  config.num_col_tiles = 1;
  const auto two_d = masked_spgemm_2d<SR>(p.mask, p.a, p.b, config);
  Config plain = config;
  plain.num_col_tiles = 1;
  const auto one_d = masked_spgemm<SR>(p.mask, p.a, p.b, plain);
  EXPECT_TRUE(test::csr_equal(one_d, two_d));
}

TEST(Spgemm2d, VanillaStrategyIsRejected) {
  const Problem p = make_problem(11);
  Config config;
  config.strategy = MaskStrategy::kVanilla;
  EXPECT_THROW(masked_spgemm_2d<SR>(p.mask, p.a, p.b, config),
               PreconditionError);
}

TEST(Spgemm2d, StatsCountRowByColumnTiles) {
  const Problem p = make_problem(13);
  Config config;
  config.num_tiles = 4;
  config.num_col_tiles = 3;
  ExecutionStats stats;
  (void)masked_spgemm_2d<SR>(p.mask, p.a, p.b, config, stats);
  EXPECT_EQ(stats.tiles, 12);
}

TEST(Spgemm2d, EmptyMask) {
  const Problem p = make_problem(17);
  const Csr<double, I> empty_mask(p.a.rows(), p.b.cols());
  Config config;
  config.num_col_tiles = 4;
  const auto c = masked_spgemm_2d<SR>(empty_mask, p.a, p.b, config);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(Spgemm2d, SelfMaskedKernelAcrossMarkerWidths) {
  const auto a = test::random_matrix<double, I>(60, 60, 0.1, 21);
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  for (const MarkerWidth width : {MarkerWidth::k8, MarkerWidth::k64}) {
    Config config;
    config.num_col_tiles = 5;
    config.marker_width = width;
    EXPECT_TRUE(
        test::csr_equal(expected, masked_spgemm_2d<SR>(a, a, a, config)))
        << bits(width);
  }
}

TEST(Spgemm2d, ExplicitResetPolicy) {
  const Problem p = make_problem(23);
  Config config;
  config.num_col_tiles = 4;
  config.reset = ResetPolicy::kExplicit;
  const auto expected = test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  EXPECT_TRUE(test::csr_equal(expected,
                              masked_spgemm_2d<SR>(p.mask, p.a, p.b, config)));
}

}  // namespace
}  // namespace tilq
