// Batch engine tests: bit-identity with the single-call path across
// configs (including 2D tiling and degradation), exact plan-cache
// accounting under serial and concurrent submission, backpressure
// (EngineSaturatedError + jobs_rejected), per-job failure isolation under
// fault injection, run_batch ordering, JobStats sanity, and the metrics-v3
// engine counters — plus the serving layer (docs/SERVING.md): deadline
// expiry, the shed/defer overload policies, cost-model classification,
// and the per-job latency histograms. The concurrent sections double as
// the PlanCache and mixed-priority hammers for the TSan CI job.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "core/masked_spgemm_2d.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

struct Problem {
  Csr<double, I> mask;
  Csr<double, I> a;
  Csr<double, I> b;
};

Problem make_problem(std::uint64_t seed, I rows = 48, I inner = 40, I cols = 44,
                     double density = 0.12) {
  return {test::random_matrix<double, I>(rows, cols, density, seed),
          test::random_matrix<double, I>(rows, inner, density, seed + 1000),
          test::random_matrix<double, I>(inner, cols, density, seed + 2000)};
}

/// Same sparsity, different values — the cache-hit case that must still be
/// numerically correct (plans capture structure only).
Csr<double, I> scale_values(const Csr<double, I>& m, double factor) {
  std::vector<I> row_ptr(m.row_ptr().begin(), m.row_ptr().end());
  std::vector<I> col_idx(m.col_idx().begin(), m.col_idx().end());
  std::vector<double> values(m.values().begin(), m.values().end());
  for (double& v : values) {
    v *= factor;
  }
  return Csr<double, I>(m.rows(), m.cols(), std::move(row_ptr),
                        std::move(col_idx), std::move(values));
}

class EngineTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(EngineTest, BitIdenticalToSingleCallPathAcrossConfigs) {
  const Problem p = make_problem(7);
  std::vector<Config> configs;
  for (const MaskStrategy strategy :
       {MaskStrategy::kMaskFirst, MaskStrategy::kCoIterate,
        MaskStrategy::kHybrid, MaskStrategy::kVanilla}) {
    for (const AccumulatorKind acc :
         {AccumulatorKind::kHash, AccumulatorKind::kDense,
          AccumulatorKind::kBitmap}) {
      Config config;
      config.strategy = strategy;
      config.accumulator = acc;
      configs.push_back(config);
    }
  }
  {
    Config two_d;
    two_d.num_col_tiles = 3;
    configs.push_back(two_d);
  }
  for (const AccumulatorKind acc :
       {AccumulatorKind::kHash, AccumulatorKind::kDense,
        AccumulatorKind::kBitmap}) {
    Config blocked;
    blocked.mode = Strategy::kBlocked;
    blocked.block_cols = 9;
    blocked.accumulator = acc;
    configs.push_back(blocked);
  }
  Engine<SR> engine;
  for (const Config& config : configs) {
    const Csr<double, I> oracle = masked_spgemm<SR>(p.mask, p.a, p.b, config);
    auto handle = engine.submit(p.mask, p.a, p.b, config);
    const Csr<double, I> got = handle.get();
    EXPECT_TRUE(test::csr_equal(oracle, got))
        << "config: " << config.describe();
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_completed, configs.size());
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST_F(EngineTest, PlanCacheAccountingIsExact) {
  const Problem p = make_problem(11);
  const Problem q = make_problem(23, 32, 28, 30);
  Config hash_config;
  hash_config.accumulator = AccumulatorKind::kHash;
  Config dense_config;
  dense_config.accumulator = AccumulatorKind::kDense;

  Engine<SR> engine;
  // 3 distinct (structure, config) keys, each resubmitted twice.
  for (int round = 0; round < 3; ++round) {
    (void)engine.submit(p.mask, p.a, p.b, hash_config).get();
    (void)engine.submit(p.mask, p.a, p.b, dense_config).get();
    (void)engine.submit(q.mask, q.a, q.b, hash_config).get();
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan_builds, 3u);
  EXPECT_EQ(stats.plan_hits, 6u);
  EXPECT_EQ(stats.jobs_submitted, 9u);
  EXPECT_EQ(stats.jobs_completed, 9u);
}

TEST_F(EngineTest, CallerThreadCountDoesNotFragmentTheCache) {
  const Problem p = make_problem(13);
  Engine<SR> engine;
  Config first;
  first.threads = 3;
  Config second;
  second.threads = 7;
  (void)engine.submit(p.mask, p.a, p.b, first).get();
  (void)engine.submit(p.mask, p.a, p.b, second).get();
  // Engine mode pins the tile grid to the pool width, so two callers that
  // differ only in Config::threads share one plan.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan_builds, 1u);
  EXPECT_EQ(stats.plan_hits, 1u);
}

TEST_F(EngineTest, ValueOnlyUpdatesHitTheCacheAndStayCorrect) {
  const Problem p = make_problem(17);
  Engine<SR> engine;
  auto first = engine.submit(p.mask, p.a, p.b);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, p.a, p.b),
                      first.get()));
  const Csr<double, I> a2 = scale_values(p.a, 2.0);
  const Csr<double, I> b2 = scale_values(p.b, 0.5);
  auto second = engine.submit(p.mask, a2, b2);
  EXPECT_TRUE(test::csr_equal(
      test::reference_masked_spgemm<SR>(p.mask, a2, b2), second.get()));
  EXPECT_TRUE(second.stats().plan_cache_hit);
  EXPECT_FALSE(first.stats().plan_cache_hit);
  EXPECT_EQ(engine.stats().plan_builds, 1u);
}

TEST_F(EngineTest, BlockedValueOnlyUpdatesHitTheCacheAndStayCorrect) {
  const Problem p = make_problem(19);
  Config config;
  config.mode = Strategy::kBlocked;
  config.block_cols = 11;
  Engine<SR> engine;
  auto first = engine.submit(p.mask, p.a, p.b, config);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, p.a, p.b),
                      first.get()));
  const Csr<double, I> a2 = scale_values(p.a, -3.0);
  const Csr<double, I> b2 = scale_values(p.b, 0.25);
  auto second = engine.submit(p.mask, a2, b2, config);
  EXPECT_TRUE(test::csr_equal(
      test::reference_masked_spgemm<SR>(p.mask, a2, b2), second.get()));
  EXPECT_TRUE(second.stats().plan_cache_hit);
  EXPECT_EQ(engine.stats().plan_builds, 1u);
}

TEST_F(EngineTest, RunBatchReturnsResultsInQueryOrder) {
  std::vector<Problem> problems;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    problems.push_back(make_problem(100 + seed, 24 + static_cast<I>(seed), 20,
                                    22 + static_cast<I>(seed)));
  }
  std::vector<Engine<SR>::Query> queries;
  for (const Problem& p : problems) {
    queries.push_back({&p.mask, &p.a, &p.b, Config{}});
  }
  EngineOptions options;
  options.max_in_flight = 2;  // force the blocking admission path
  Engine<SR> engine(options);
  const std::vector<Csr<double, I>> results = engine.run_batch(queries);
  ASSERT_EQ(results.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    EXPECT_TRUE(test::csr_equal(
        test::reference_masked_spgemm<SR>(problems[i].mask, problems[i].a,
                                          problems[i].b),
        results[i]))
        << "query " << i;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_completed, problems.size());
  EXPECT_LE(stats.peak_in_flight, 2u);
}

TEST_F(EngineTest, SaturationThrowsAndIsCounted) {
  // A deliberately heavy first job (one pool worker, many rows) so the
  // immediate second submit finds the admission slot still taken.
  const Problem heavy = make_problem(29, 600, 400, 500, 0.08);
  const Problem light = make_problem(31, 16, 12, 14);
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 1;
  Engine<SR> engine(options);
  auto handle = engine.submit(heavy.mask, heavy.a, heavy.b);
  std::uint64_t rejected = 0;
  try {
    auto second = engine.submit(light.mask, light.a, light.b);
    second.wait();  // raced past the heavy job: legal, just not rejected
  } catch (const EngineSaturatedError&) {
    ++rejected;
  }
  handle.wait();
  engine.wait_idle();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_rejected, rejected);
  EXPECT_EQ(stats.jobs_submitted + stats.jobs_rejected, 2u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  // The rejection is also a CapacityError — callers may catch at taxonomy
  // granularity.
  static_assert(std::is_base_of_v<CapacityError, EngineSaturatedError>);
}

TEST_F(EngineTest, FaultedJobFailsAloneAndTheEngineSurvives) {
  const Problem p = make_problem(37);
  EngineOptions options;
  options.threads = 1;  // one workspace slot => the armed fault hits job 1
  Engine<SR> engine(options);
  fault::arm(FaultSite::kPoolAllocation, 1);
  auto doomed = engine.submit(p.mask, p.a, p.b);
  EXPECT_THROW(doomed.wait(), CapacityError);
  EXPECT_THROW(doomed.wait(), CapacityError);  // repeatable rethrow
  fault::disarm_all();
  auto healthy = engine.submit(p.mask, p.a, p.b);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, p.a, p.b),
                      healthy.get()));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_TRUE(doomed.stats().plan_cache_hit == false);
  EXPECT_EQ(doomed.stats().output_nnz, 0);
}

TEST_F(EngineTest, DegradedJobsStayBitIdentical) {
  const Problem p = make_problem(41, 64, 48, 56, 0.2);
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  const Csr<double, I> oracle = masked_spgemm<SR>(p.mask, p.a, p.b, config);
  EngineOptions one_thread;
  one_thread.threads = 1;
  Engine<SR> engine(one_thread);
  // First submit warms the plan + workspace; the second runs with the
  // saturation fault armed so at least one row degrades to the dense
  // fallback mid-flight.
  (void)engine.submit(p.mask, p.a, p.b, config).get();
  fault::arm(FaultSite::kHashSaturation, 3);
  auto handle = engine.submit(p.mask, p.a, p.b, config);
  const Csr<double, I> got = handle.get();
  fault::disarm_all();
  EXPECT_TRUE(test::csr_equal(oracle, got));
  EXPECT_GE(handle.stats().degrades, 1u);
}

TEST_F(EngineTest, EmptyMaskCompletesThroughTheFinalizerOnlyPath) {
  Csr<double, I> empty_mask(24, 22, std::vector<I>(25, I{0}), {}, {});
  const Csr<double, I> a = test::random_matrix<double, I>(24, 20, 0.2, 5);
  const Csr<double, I> b = test::random_matrix<double, I>(20, 22, 0.2, 6);
  Engine<SR> engine;
  const Csr<double, I> got = engine.submit(empty_mask, a, b).get();
  EXPECT_EQ(got.nnz(), 0);
  EXPECT_EQ(got.rows(), 24);
  EXPECT_EQ(got.cols(), 22);
}

TEST_F(EngineTest, JobStatsAreCoherent) {
  const Problem p = make_problem(43);
  Engine<SR> engine;
  auto handle = engine.submit(p.mask, p.a, p.b);
  const Csr<double, I> got = handle.get();
  const JobStats stats = handle.stats();
  EXPECT_GT(stats.id, 0u);
  EXPECT_GT(stats.tasks, 0);
  EXPECT_EQ(stats.output_nnz, got.nnz());
  EXPECT_GE(stats.queue_ms, 0.0);
  EXPECT_GE(stats.run_ms, 0.0);
  EXPECT_GE(stats.total_ms, stats.queue_ms);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(EngineTest, GetIsSingleUse) {
  const Problem p = make_problem(47);
  Engine<SR> engine;
  auto handle = engine.submit(p.mask, p.a, p.b);
  (void)handle.get();
  EXPECT_THROW((void)handle.get(), PreconditionError);
}

TEST_F(EngineTest, ShapeDefectsFailOnTheCallingThread) {
  const Problem p = make_problem(53);
  const Csr<double, I> wrong = test::random_matrix<double, I>(8, 8, 0.3, 9);
  Engine<SR> engine;
  EXPECT_THROW((void)engine.submit(p.mask, p.a, wrong), PreconditionError);
  engine.wait_idle();
  // The failed admission was rolled back: the engine is still serviceable.
  EXPECT_EQ(engine.stats().jobs_submitted, 0u);
  (void)engine.submit(p.mask, p.a, p.b).get();
}

// The PlanCache hammer: N submitter threads mixing cache hits, replans
// (fresh structures), and config changes against one engine. Runs under
// TSan in CI. Accounting must come out exact because plan builds are
// serialized under the cache lock.
TEST_F(EngineTest, ConcurrentSubmittersKeepCacheAccountingExact) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<Problem> shared;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    shared.push_back(make_problem(200 + seed, 40, 36, 38));
  }
  Config hash_config;
  hash_config.accumulator = AccumulatorKind::kHash;
  Config dense_config;
  dense_config.accumulator = AccumulatorKind::kDense;
  const std::vector<Config> configs = {hash_config, dense_config};

  Engine<SR> engine;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const Problem& p = shared[static_cast<std::size_t>(
            (t + round) % static_cast<int>(shared.size()))];
        const Config& config =
            configs[static_cast<std::size_t>(round % 2)];
        try {
          const Csr<double, I> got =
              engine.run_batch(std::vector<Engine<SR>::Query>{
                                   {&p.mask, &p.a, &p.b, config}})
                  .front();
          if (!test::csr_equal(
                  test::reference_masked_spgemm<SR>(p.mask, p.a, p.b), got)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (...) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  engine.wait_idle();
  EXPECT_EQ(failures.load(), 0);
  const EngineStats stats = engine.stats();
  const auto total = static_cast<std::uint64_t>(kThreads * kRounds);
  EXPECT_EQ(stats.jobs_completed, total);
  // 3 structures x 2 configs, built exactly once each no matter the
  // interleaving; every other submission is a hit.
  EXPECT_EQ(stats.plan_builds, 6u);
  EXPECT_EQ(stats.plan_hits, total - 6u);
}

TEST_F(EngineTest, InterleavedJobsShareThePoolWithoutCrosstalk) {
  const Problem p = make_problem(61, 80, 64, 72, 0.1);
  const Problem q = make_problem(67, 56, 48, 52, 0.15);
  const Csr<double, I> p_oracle =
      test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  const Csr<double, I> q_oracle =
      test::reference_masked_spgemm<SR>(q.mask, q.a, q.b);
  Engine<SR> engine;
  std::vector<Engine<SR>::JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    const Problem& prob = (i % 2 == 0) ? p : q;
    handles.push_back(engine.submit(prob.mask, prob.a, prob.b));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        test::csr_equal((i % 2 == 0) ? p_oracle : q_oracle, handles[i].get()))
        << "job " << i;
  }
}

TEST_F(EngineTest, DeadlineExpiryCancelsTheJobAndCountsTheMiss) {
  // A deadline no tile can meet: the first tile to start finds it past
  // and cancels the job through its guard, so the handle rethrows the
  // taxonomy type and the engine counts exactly one miss.
  const Problem heavy = make_problem(29, 600, 400, 500, 0.08);
  EngineOptions options;
  options.threads = 1;
  Engine<SR> engine(options);
  SubmitOptions impossible;
  impossible.deadline_ms = 1e-6;
  auto doomed = engine.submit(heavy.mask, heavy.a, heavy.b, Config{},
                              impossible);
  EXPECT_THROW(doomed.wait(), DeadlineExpiredError);
  EXPECT_THROW(doomed.wait(), DeadlineExpiredError);  // repeatable rethrow
  EXPECT_DOUBLE_EQ(doomed.stats().deadline_ms, 1e-6);
  // A missed deadline is a capacity signal, not a defect.
  static_assert(std::is_base_of_v<CapacityError, DeadlineExpiredError>);

  // The engine survives and keeps serving: same structure, no deadline.
  auto healthy = engine.submit(heavy.mask, heavy.a, heavy.b);
  EXPECT_GT(healthy.get().nnz(), 0);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
}

TEST_F(EngineTest, GenerousDeadlineDoesNotFire) {
  const Problem p = make_problem(73);
  Engine<SR> engine;
  SubmitOptions generous;
  generous.deadline_ms = 60'000.0;
  auto handle = engine.submit(p.mask, p.a, p.b, Config{}, generous);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, p.a, p.b),
                      handle.get()));
  EXPECT_EQ(engine.stats().deadline_misses, 0u);
}

TEST_F(EngineTest, ShedPolicyRefusesExpensiveJobsAtTheShedBound) {
  // expensive_flops=1 prices every job expensive; with max_in_flight=4
  // the shed bound is 3. Three heavy jobs on a one-worker pool hold the
  // slots while the fourth submit arrives — it should be shed, though a
  // fast pool may legally finish a heavy job first (racy-tolerant, the
  // SaturationThrowsAndIsCounted pattern).
  const Problem heavy = make_problem(79, 400, 300, 350, 0.08);
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 4;
  options.expensive_flops = 1;
  options.overload_policy = OverloadPolicy::kShed;
  Engine<SR> engine(options);
  std::vector<Engine<SR>::JobHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(engine.submit(heavy.mask, heavy.a, heavy.b));
  }
  std::uint64_t shed = 0;
  try {
    handles.push_back(engine.submit(heavy.mask, heavy.a, heavy.b));
  } catch (const EngineSaturatedError&) {
    ++shed;
  }
  for (auto& handle : handles) {
    handle.wait();
  }
  engine.wait_idle();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_shed, shed);
  EXPECT_EQ(stats.jobs_submitted + stats.jobs_shed, 4u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  // Every admitted job priced expensive under the 1-FLOP threshold.
  EXPECT_EQ(stats.jobs_expensive, stats.jobs_submitted);
}

TEST_F(EngineTest, DeferPolicyDemotesExpensiveJobsButCompletesThem) {
  const Problem heavy = make_problem(83, 400, 300, 350, 0.08);
  const Csr<double, I> oracle =
      test::reference_masked_spgemm<SR>(heavy.mask, heavy.a, heavy.b);
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 4;
  options.expensive_flops = 1;
  options.overload_policy = OverloadPolicy::kDefer;
  Engine<SR> engine(options);
  std::vector<Engine<SR>::JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(engine.submit(heavy.mask, heavy.a, heavy.b));
  }
  std::uint64_t deferred = 0;
  for (auto& handle : handles) {
    EXPECT_TRUE(test::csr_equal(oracle, handle.get()));
    if (handle.stats().deferred) {
      ++deferred;
    }
  }
  engine.wait_idle();
  const EngineStats stats = engine.stats();
  // Deferral demotes, never drops: everything completed, and the books
  // match the per-job flags exactly.
  EXPECT_EQ(stats.jobs_completed, 4u);
  EXPECT_EQ(stats.jobs_deferred, deferred);
  EXPECT_EQ(stats.jobs_shed, 0u);
}

TEST_F(EngineTest, ExplicitPriorityIsNeverDeferred) {
  const Problem heavy = make_problem(89, 400, 300, 350, 0.08);
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 4;
  options.expensive_flops = 1;
  options.overload_policy = OverloadPolicy::kDefer;
  Engine<SR> engine(options);
  std::vector<Engine<SR>::JobHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(engine.submit(heavy.mask, heavy.a, heavy.b));
  }
  // kDefer only touches kAuto submissions; a pinned lane is honored even
  // for an expensive job past the shed bound.
  SubmitOptions pinned;
  pinned.priority = JobPriority::kHigh;
  auto high = engine.submit(heavy.mask, heavy.a, heavy.b, Config{}, pinned);
  for (auto& handle : handles) {
    handle.wait();
  }
  high.wait();
  EXPECT_FALSE(high.stats().deferred);
}

TEST_F(EngineTest, AdaptiveCostModelPricesTheOutlier) {
  // No explicit threshold: the first two jobs build the baseline, then a
  // job pricing more than twice the running mean classifies expensive.
  const Problem cheap = make_problem(97, 24, 20, 22);
  const Problem heavy = make_problem(101, 600, 400, 500, 0.08);
  Engine<SR> engine;
  auto first = engine.submit(cheap.mask, cheap.a, cheap.b);
  (void)first.get();
  auto second = engine.submit(cheap.mask, cheap.a, cheap.b);
  (void)second.get();
  EXPECT_FALSE(first.stats().expensive);
  EXPECT_FALSE(second.stats().expensive);
  EXPECT_GT(first.stats().flop_estimate, 0);
  auto outlier = engine.submit(heavy.mask, heavy.a, heavy.b);
  (void)outlier.get();
  EXPECT_TRUE(outlier.stats().expensive);
  EXPECT_GT(outlier.stats().flop_estimate, first.stats().flop_estimate);
  EXPECT_EQ(engine.stats().jobs_expensive, 1u);
}

TEST_F(EngineTest, LatencyHistogramsCoverEveryFinishedJob) {
  const Problem p = make_problem(103);
  Engine<SR> engine;
  constexpr int kJobs = 6;
  for (int i = 0; i < kJobs; ++i) {
    (void)engine.submit(p.mask, p.a, p.b).get();
  }
  engine.wait_idle();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.latency.count, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.queue_latency.count, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.run_latency.count, static_cast<std::uint64_t>(kJobs));
  EXPECT_GT(stats.latency.p50_ms, 0.0);
  EXPECT_GE(stats.latency.p99_ms, stats.latency.p50_ms);
  EXPECT_GE(stats.latency.max_ms, 0.0);
  // The percentile block round-trips into the metrics record object.
  const EngineLatencyRecord record = engine_latency_record(stats);
  EXPECT_TRUE(record.present);
  EXPECT_EQ(record.jobs, static_cast<std::uint64_t>(kJobs));
  EXPECT_DOUBLE_EQ(record.p99_ms, stats.latency.p99_ms);
}

// The serving-path hammer: submitter threads mixing every lane request,
// deadlines that never fire, and both cheap and heavy structures against
// one priority-scheduling engine. Results must stay bit-identical no
// matter the lane interleaving. Runs under TSan in CI.
TEST_F(EngineTest, MixedPrioritySubmittersStayBitIdentical) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  const Problem small = make_problem(107, 40, 36, 38);
  const Problem big = make_problem(109, 96, 80, 88, 0.1);
  const Csr<double, I> small_oracle =
      test::reference_masked_spgemm<SR>(small.mask, small.a, small.b);
  const Csr<double, I> big_oracle =
      test::reference_masked_spgemm<SR>(big.mask, big.a, big.b);
  const JobPriority lanes[] = {JobPriority::kAuto, JobPriority::kHigh,
                               JobPriority::kNormal,
                               JobPriority::kBackground};

  Engine<SR> engine;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const bool use_big = (t + round) % 3 == 0;
        const Problem& p = use_big ? big : small;
        SubmitOptions sopts;
        sopts.priority = lanes[(t + round) % 4];
        sopts.deadline_ms = (round % 2 == 0) ? 0.0 : 60'000.0;
        try {
          auto handle =
              engine.submit(p.mask, p.a, p.b, Config{}, sopts);
          if (!test::csr_equal(use_big ? big_oracle : small_oracle,
                               handle.get())) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (...) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  engine.wait_idle();
  EXPECT_EQ(failures.load(), 0);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_completed,
            static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.latency.count, stats.jobs_completed);
}

#if TILQ_METRICS_ENABLED
TEST_F(EngineTest, EngineCountersFlowIntoTheMetricsRegistry) {
  const Problem p = make_problem(71);
  set_metrics_enabled(true);
  const MetricsSnapshot before = metrics_snapshot();
  Engine<SR> engine;
  constexpr int kJobs = 5;
  for (int i = 0; i < kJobs; ++i) {
    (void)engine.submit(p.mask, p.a, p.b).get();
  }
  engine.wait_idle();
  const MetricsSnapshot delta = metrics_delta(before, metrics_snapshot());
  set_metrics_enabled(false);
  EXPECT_EQ(delta.total.engine_jobs, static_cast<std::uint64_t>(kJobs));
  EXPECT_GT(delta.total.engine_job_ns, 0u);
  // Tiles + one finalizer-bearing task accounting: every pool task is an
  // engine task.
  EXPECT_GE(delta.total.engine_tasks, static_cast<std::uint64_t>(kJobs));
  EXPECT_GT(delta.total.tiles_executed, 0u);
  EXPECT_GT(delta.total.rows_processed, 0u);
}
#endif

TEST_F(EngineTest, TelemetryEnabledEngineStaysBitIdenticalAndRecordsFlights) {
  const Problem p = make_problem(41);
  const Csr<double, I> oracle = masked_spgemm<SR>(p.mask, p.a, p.b, Config{});

  EngineOptions options;
  options.telemetry.enabled = true;
  options.telemetry.sample_interval_ms = 5.0;
  Engine<SR> engine(options);
  ASSERT_NE(engine.telemetry(), nullptr);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        test::csr_equal(oracle, engine.submit(p.mask, p.a, p.b).get()));
  }

  // Every job left a full lifecycle trail in the flight recorder.
  const FlightRecorder& flight = engine.telemetry()->flight();
  std::uint64_t submitted = 0;
  std::uint64_t finalized = 0;
  std::uint64_t first_tiles = 0;
  for (const FlightEvent& event : flight.events()) {
    submitted += event.kind == FlightEventKind::kSubmitted ? 1 : 0;
    finalized += event.kind == FlightEventKind::kFinalized ? 1 : 0;
    first_tiles += event.kind == FlightEventKind::kFirstTile ? 1 : 0;
  }
  EXPECT_EQ(submitted, 4u);
  EXPECT_EQ(finalized, 4u);
  EXPECT_EQ(first_tiles, 4u);

  // The sampler ticked (the constructor takes an eager first sample) and
  // its totals flow into EngineStats and the latest sample.
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.telemetry_samples, 1u);
  EXPECT_EQ(stats.jobs_stuck, 0u);
  EXPECT_GT(stats.uptime_ms, 0.0);
  engine.telemetry()->sample_now();
  const auto sample = engine.telemetry()->latest();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->jobs_completed, 4u);
  EXPECT_EQ(sample->in_flight, 0u);
  EXPECT_FALSE(sample->workers.empty());
}

TEST_F(EngineTest, TelemetryDisabledLeavesNoHub) {
  Engine<SR> engine;
  EXPECT_EQ(engine.telemetry(), nullptr);
  const Problem p = make_problem(43);
  (void)engine.submit(p.mask, p.a, p.b).get();
  EXPECT_EQ(engine.stats().telemetry_samples, 0u);
}

/// Kill switch for the watchdog test: while set, every multiply blocks, so
/// an in-flight job wedges deterministically without burning CPU.
std::atomic<bool> g_wedge{false};

struct WedgeSemiring {
  using value_type = double;
  static double zero() noexcept { return 0.0; }
  static double add(double a, double b) noexcept { return a + b; }
  static double mul(double a, double b) {
    while (g_wedge.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return a * b;
  }
};

TEST_F(EngineTest, WatchdogFlagsWedgedJobAndFlightRecordNamesIt) {
  const Problem p = make_problem(47);
  EngineOptions options;
  options.telemetry.enabled = true;
  options.telemetry.sample_interval_ms = 5.0;
  options.telemetry.watchdog_factor = 2.0;
  options.telemetry.watchdog_floor_ms = 25.0;
  Engine<WedgeSemiring> engine(options);

  // Clean completions first: the watchdog refuses to flag until it has a
  // FLOPs/ms baseline, so a cold engine cannot false-positive.
  for (int i = 0; i < 3; ++i) {
    (void)engine.submit(p.mask, p.a, p.b).get();
  }
  ASSERT_EQ(engine.stats().jobs_stuck, 0u);

  g_wedge.store(true, std::memory_order_release);
  auto handle = engine.submit(p.mask, p.a, p.b);
  bool flagged = false;
  for (int i = 0; i < 2000 && !flagged; ++i) {
    flagged = engine.stats().jobs_stuck >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  g_wedge.store(false, std::memory_order_release);
  (void)handle.get();
  ASSERT_TRUE(flagged) << "watchdog never fired on a wedged job";
  EXPECT_EQ(engine.stats().jobs_stuck, 1u);  // flagged once, not per scan

  // The flight record pins the flag on the right job: the one stuck event
  // belongs to the fourth (wedged) submission.
  ASSERT_NE(engine.telemetry(), nullptr);
  const FlightRecorder& flight = engine.telemetry()->flight();
  std::vector<std::uint64_t> submitted_jobs;
  std::vector<FlightEvent> stuck_events;
  for (const FlightEvent& event : flight.events()) {
    if (event.kind == FlightEventKind::kSubmitted) {
      submitted_jobs.push_back(event.job);
    } else if (event.kind == FlightEventKind::kStuck) {
      stuck_events.push_back(event);
    }
  }
  ASSERT_EQ(stuck_events.size(), 1u);
  ASSERT_EQ(submitted_jobs.size(), 4u);
  EXPECT_EQ(stuck_events[0].job, submitted_jobs.back());
  const std::string dump = flight.to_json(stuck_events[0].job);
  EXPECT_NE(dump.find("\"event\":\"stuck\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"event\":\"submitted\""), std::string::npos);
  EXPECT_NE(dump.find("\"event\":\"finalized\""), std::string::npos);
}

// --- Retry layer (docs/ROBUSTNESS.md) ---------------------------------
// Suite name matters: CI's sanitizer matrix runs --gtest_filter=*Retry*.

class EngineRetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::disarm_all();
    fault::set_seed(0);
  }
};

TEST_F(EngineRetryTest, StaleErrorAutoReplansBitIdenticalToFreshSubmit) {
  const Problem p = make_problem(53);
  const Csr<double, I> oracle =
      test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  EngineOptions options;
  options.threads = 1;  // one worker => the armed fault hits this job
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 0.0;  // no sleeping in tests
  Engine<SR> engine(options);
  fault::arm(FaultSite::kPlanFingerprint, 1);
  auto handle = engine.submit(p.mask, p.a, p.b);
  EXPECT_TRUE(test::csr_equal(oracle, handle.get()));
  const JobStats stats = handle.stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_TRUE(stats.retried);
  EXPECT_FALSE(stats.degraded_config);  // replan keeps the config
  const EngineStats es = engine.stats();
  EXPECT_EQ(es.retries, 1u);
  EXPECT_EQ(es.jobs_retried, 1u);
  EXPECT_EQ(es.jobs_failed, 0u);
  EXPECT_EQ(es.jobs_completed, 1u);
  // The replan rebuilt the plan instead of reusing the stale entry.
  EXPECT_EQ(es.plan_builds, 2u);
}

TEST_F(EngineRetryTest, TransientCapacityErrorRetriesOnDegradedConfig) {
  const Problem p = make_problem(59);
  Config config;
  config.accumulator = AccumulatorKind::kDense;
  const Csr<double, I> oracle = masked_spgemm<SR>(p.mask, p.a, p.b, config);
  EngineOptions options;
  options.threads = 1;
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 0.0;
  Engine<SR> engine(options);
  fault::arm(FaultSite::kEngineSubmitAlloc, 1);
  auto handle = engine.submit(p.mask, p.a, p.b, config);
  EXPECT_TRUE(test::csr_equal(oracle, handle.get()));
  const JobStats stats = handle.stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_TRUE(stats.retried);
  // The memory-degradation ladder stepped dense -> hash (bit-identical
  // output either way — the repo's accumulator contract).
  EXPECT_TRUE(stats.degraded_config);
}

TEST_F(EngineRetryTest, SaturationPastDegradationRetriesOnDense) {
  const Problem p = make_problem(61, 64, 48, 56, 0.2);
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  config.degrade_on_saturation = false;  // saturation is terminal per-attempt
  const Csr<double, I> oracle = masked_spgemm<SR>(p.mask, p.a, p.b, config);
  EngineOptions options;
  options.threads = 1;
  options.retry.max_attempts = 2;
  options.retry.backoff_base_ms = 0.0;
  Engine<SR> engine(options);
  fault::arm(FaultSite::kHashSaturation, 3);
  auto handle = engine.submit(p.mask, p.a, p.b, config);
  EXPECT_TRUE(test::csr_equal(oracle, handle.get()));
  const JobStats stats = handle.stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_TRUE(stats.degraded_config);  // hash -> dense, which never saturates
}

TEST_F(EngineRetryTest, ExhaustedAttemptsSurfaceTheFailureAndEngineSurvives) {
  const Problem p = make_problem(67);
  EngineOptions options;
  options.threads = 1;
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 0.0;
  Engine<SR> engine(options);
  fault::arm_rate(FaultSite::kEnginePoolReserve, 1.0);  // every probe fires
  auto doomed = engine.submit(p.mask, p.a, p.b);
  EXPECT_THROW(doomed.wait(), CapacityError);
  EXPECT_EQ(doomed.stats().attempts, 3u);
  const EngineStats after = engine.stats();
  EXPECT_EQ(after.retries, 2u);
  EXPECT_EQ(after.jobs_failed, 1u);
  fault::disarm_all();
  auto healthy = engine.submit(p.mask, p.a, p.b);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, p.a, p.b),
                      healthy.get()));
}

TEST_F(EngineRetryTest, ReplanFaultSurfacesTheOriginalError) {
  const Problem p = make_problem(71);
  EngineOptions options;
  options.threads = 1;
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 0.0;
  Engine<SR> engine(options);
  fault::arm(FaultSite::kPlanFingerprint, 1);
  fault::arm(FaultSite::kEngineRetryReplan, 1);
  auto handle = engine.submit(p.mask, p.a, p.b);
  // The recovery path failed, so the caller sees the ORIGINAL staleness,
  // not the replan's CapacityError.
  EXPECT_THROW(handle.wait(), StaleError);
  EXPECT_EQ(handle.stats().attempts, 1u);
}

TEST_F(EngineRetryTest, DeadlineExpiryIsNeverRetried) {
  const Problem p = make_problem(73);
  EngineOptions options;
  options.threads = 1;
  options.retry.max_attempts = 5;
  options.retry.backoff_base_ms = 0.0;
  Engine<SR> engine(options);
  SubmitOptions sopts;
  sopts.deadline_ms = 1e-6;  // expires before the first tile starts
  auto handle = engine.submit(p.mask, p.a, p.b, Config{}, sopts);
  EXPECT_THROW(handle.wait(), DeadlineExpiredError);
  EXPECT_EQ(handle.stats().attempts, 1u);
  EXPECT_EQ(engine.stats().retries, 0u);
}

TEST_F(EngineRetryTest, PerSubmitMaxAttemptsOverridesThePolicy) {
  const Problem p = make_problem(79);
  EngineOptions options;
  options.threads = 1;
  options.retry.max_attempts = 1;  // engine-wide: retries off
  options.retry.backoff_base_ms = 0.0;
  Engine<SR> engine(options);
  fault::arm(FaultSite::kPlanFingerprint, 1);
  SubmitOptions sopts;
  sopts.max_attempts = 2;  // ...but this job may retry once
  auto handle = engine.submit(p.mask, p.a, p.b, Config{}, sopts);
  EXPECT_TRUE(
      test::csr_equal(test::reference_masked_spgemm<SR>(p.mask, p.a, p.b),
                      handle.get()));
  EXPECT_EQ(handle.stats().attempts, 2u);
}

// The determinism contract (docs/ROBUSTNESS.md): same retry seed + same
// fault schedule => identical attempt counts, identical backoff sleeps,
// bit-identical outputs across two independent runs.
TEST_F(EngineRetryTest, SameSeedAndFaultScheduleIsFullyDeterministic) {
  const Problem p = make_problem(83);
  struct RunRecord {
    std::vector<std::uint32_t> attempts;
    std::vector<double> backoff_ms;
    std::vector<Csr<double, I>> results;  // successes only
    std::vector<bool> failed;  // jobs that exhausted every attempt
  };
  const auto run_stream = [&]() {
    RunRecord record;
    fault::disarm_all();
    fault::set_seed(7);
    fault::arm_rate(FaultSite::kEnginePoolReserve, 0.5);
    EngineOptions options;
    options.threads = 1;  // serial probes => a reproducible probe sequence
    options.retry.max_attempts = 4;
    options.retry.backoff_base_ms = 0.01;  // exercise the jitter math
    options.retry.backoff_cap_ms = 0.05;
    options.retry.seed = 42;
    Engine<SR> engine(options);
    for (int i = 0; i < 8; ++i) {
      auto handle = engine.submit(p.mask, p.a, p.b);
      try {
        record.results.push_back(handle.get());
        record.failed.push_back(false);
      } catch (const CapacityError&) {
        // At rate 0.5 a job can deterministically exhaust all 4 attempts;
        // which jobs do so is part of the reproducibility contract.
        record.failed.push_back(true);
      }
      record.attempts.push_back(handle.stats().attempts);
      record.backoff_ms.push_back(handle.stats().backoff_total_ms);
    }
    return record;
  };
  const RunRecord first = run_stream();
  const RunRecord second = run_stream();
  ASSERT_EQ(first.attempts, second.attempts);
  ASSERT_EQ(first.backoff_ms, second.backoff_ms);  // exact, not approximate
  ASSERT_EQ(first.failed, second.failed);
  EXPECT_TRUE(std::any_of(first.attempts.begin(), first.attempts.end(),
                          [](std::uint32_t a) { return a > 1; }))
      << "fault rate 0.5 never fired; the determinism check was vacuous";
  const Csr<double, I> oracle =
      test::reference_masked_spgemm<SR>(p.mask, p.a, p.b);
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_TRUE(test::csr_equal(first.results[i], second.results[i]));
    EXPECT_TRUE(test::csr_equal(oracle, first.results[i]));
  }
}

// --- Memory governor + health (docs/ROBUSTNESS.md) --------------------

TEST_F(EngineRetryTest, MemoryBudgetBrownoutDegradesPlansInsteadOfFailing) {
  const Problem p = make_problem(89, 96, 80, 88, 0.15);
  Config config;
  config.accumulator = AccumulatorKind::kDense;
  const Csr<double, I> oracle = masked_spgemm<SR>(p.mask, p.a, p.b, config);
  EngineOptions options;
  options.threads = 2;
  options.memory_budget_bytes = 1024;  // absurdly small: trips immediately
  Engine<SR> engine(options);
  // Two submissions: the first trips the brownout while running; the
  // second is planned in reduced-footprint mode. Both must still complete
  // bit-identically — brownout changes footprint, never results.
  EXPECT_TRUE(test::csr_equal(oracle, engine.submit(p.mask, p.a, p.b,
                                                    config).get()));
  EXPECT_TRUE(test::csr_equal(oracle, engine.submit(p.mask, p.a, p.b,
                                                    config).get()));
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.brownouts, 1u);
  EXPECT_GT(stats.memory_high_water_bytes, stats.memory_budget_bytes);
  EXPECT_EQ(stats.memory_budget_bytes, 1024u);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST_F(EngineRetryTest, UnlimitedBudgetStillTracksUsage) {
  const Problem p = make_problem(97);
  Engine<SR> engine;
  (void)engine.submit(p.mask, p.a, p.b).get();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.memory_budget_bytes, 0u);
  EXPECT_EQ(stats.brownouts, 0u);
  EXPECT_GT(stats.memory_high_water_bytes, 0u);
  EXPECT_EQ(stats.health, EngineHealth::kHealthy);
}

TEST_F(EngineRetryTest, HealthDegradesUnderRetryStormAndRecovers) {
  const Problem p = make_problem(101);
  EngineOptions options;
  options.threads = 1;
  options.retry.max_attempts = 2;
  options.retry.backoff_base_ms = 0.0;
  options.health.epoch_events = 4;  // small window: the test stays fast
  Engine<SR> engine(options);
  EXPECT_EQ(engine.stats().health, EngineHealth::kHealthy);
  fault::arm_rate(FaultSite::kEnginePoolReserve, 1.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(engine.submit(p.mask, p.a, p.b).wait(), CapacityError);
  }
  EXPECT_EQ(engine.stats().health, EngineHealth::kDegraded);
  fault::disarm_all();
  // Two clean epochs retire the burst from the rate window.
  for (int i = 0; i < 8; ++i) {
    (void)engine.submit(p.mask, p.a, p.b).get();
  }
  EXPECT_EQ(engine.stats().health, EngineHealth::kHealthy);
}

}  // namespace
}  // namespace tilq
