// Tests for the unmasked Gustavson SpGEMM, mask application, and the
// two-phase masked product (the disjoint-code oracle chain).
#include "core/spgemm.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sparse/dense.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

/// Dense-multiply oracle for the unmasked product (structural: an entry
/// exists iff some A[i,k], B[k,j] pair exists).
Csr<double, I> dense_spgemm_oracle(const Csr<double, I>& a,
                                   const Csr<double, I>& b) {
  Coo<double, I> out(a.rows(), b.cols());
  for (I i = 0; i < a.rows(); ++i) {
    for (I j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      bool structural = false;
      for (const I k : a.row_cols(i)) {
        if (b.contains(k, j)) {
          structural = true;
          sum += a.at(i, k) * b.at(k, j);
        }
      }
      if (structural) {
        out.push(i, j, sum);
      }
    }
  }
  return build_csr(out, DupPolicy::kError);
}

TEST(Spgemm, MatchesDenseOracle) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = test::random_matrix<double, I>(30, 25, 0.15, seed);
    const auto b = test::random_matrix<double, I>(25, 35, 0.15, seed + 10);
    EXPECT_TRUE(test::csr_equal(dense_spgemm_oracle(a, b), spgemm<SR>(a, b)))
        << "seed " << seed;
  }
}

TEST(Spgemm, IdentityIsNeutral) {
  const auto a = test::random_matrix<double, I>(20, 20, 0.2, 5);
  const auto eye = csr_identity<double, I>(20);
  EXPECT_TRUE(test::csr_equal(a, spgemm<SR>(a, eye)));
  EXPECT_TRUE(test::csr_equal(a, spgemm<SR>(eye, a)));
}

TEST(Spgemm, DimensionMismatchThrows) {
  EXPECT_THROW(spgemm<SR>(Csr<double, I>(2, 3), Csr<double, I>(4, 2)),
               PreconditionError);
}

TEST(Spgemm, EmptyOperands) {
  const auto c = spgemm<SR>(Csr<double, I>(3, 4), Csr<double, I>(4, 5));
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 5);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(ApplyMask, KeepsOnlyMaskedPositions) {
  const auto c = csr_from_triplets<double, I>(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const auto mask = csr_from_triplets<double, I>(
      2, 3, {{0, 2, 9.0}, {1, 0, 9.0}, {1, 1, 9.0}});
  const auto filtered = apply_mask(mask, c);
  EXPECT_EQ(filtered.nnz(), 2);
  EXPECT_DOUBLE_EQ(filtered.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(filtered.at(1, 1), 3.0);
  EXPECT_FALSE(filtered.contains(0, 0));
}

TEST(ApplyMask, ShapeMismatchThrows) {
  EXPECT_THROW(apply_mask(Csr<double, I>(2, 2), Csr<double, I>(2, 3)),
               PreconditionError);
}

TEST(ApplyMask, FullMaskIsNeutral) {
  const auto c = test::random_matrix<double, I>(15, 15, 0.3, 7);
  Coo<double, I> full(15, 15);
  for (I i = 0; i < 15; ++i) {
    for (I j = 0; j < 15; ++j) {
      full.push(i, j, 1.0);
    }
  }
  EXPECT_TRUE(test::csr_equal(c, apply_mask(build_csr(full), c)));
}

TEST(TwoPhase, AgreesWithReferenceMaskedSpgemm) {
  for (const std::uint64_t seed : {11u, 13u, 17u}) {
    const auto mask = test::random_matrix<double, I>(25, 30, 0.15, seed);
    const auto a = test::random_matrix<double, I>(25, 20, 0.15, seed + 1);
    const auto b = test::random_matrix<double, I>(20, 30, 0.15, seed + 2);
    const auto expected = test::reference_masked_spgemm<SR>(mask, a, b);
    const auto actual = two_phase_masked_spgemm<SR>(mask, a, b);
    EXPECT_TRUE(test::csr_equal(expected, actual)) << "seed " << seed;
  }
}

TEST(Spgemm, PlusPairSemiring) {
  using PP = PlusPair<std::int64_t>;
  const auto a = convert_values<std::int64_t>(
      test::random_matrix<double, I>(20, 20, 0.2, 19));
  const auto c = spgemm<PP>(a, a);
  // Every value counts structural k-paths: positive and bounded by row nnz.
  for (I i = 0; i < c.rows(); ++i) {
    for (const std::int64_t v : c.row_vals(i)) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, a.row_nnz(i));
    }
  }
}

}  // namespace
}  // namespace tilq
