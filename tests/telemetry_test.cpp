// Telemetry tests (docs/TELEMETRY.md): flight-recorder publish/read
// semantics (ordering, wrap, torn-slot rejection under concurrent
// writers), the env-var option overlay, the sampler hub's ring and
// serialization contract, Prometheus text rendering, and the loopback
// /metrics listener end to end.
#include "support/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define TILQ_TEST_HAVE_SOCKETS 1
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define TILQ_TEST_HAVE_SOCKETS 0
#endif

namespace tilq {
namespace {

/// Scoped setenv/unsetenv so env tests cannot leak into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      old_ = old;
      had_old_ = true;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(FlightRecorderTest, RecordsEventsInOrderWithFields) {
  FlightRecorder recorder(64);
  recorder.record(7, FlightEventKind::kSubmitted, -1, 1000);
  recorder.record(7, FlightEventKind::kLaneAssigned, 2, 1000);
  recorder.record(7, FlightEventKind::kFinalized);
  const std::vector<FlightEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].job, 7u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kSubmitted);
  EXPECT_EQ(events[0].lane, -1);
  EXPECT_EQ(events[0].flops, 1000);
  EXPECT_EQ(events[1].kind, FlightEventKind::kLaneAssigned);
  EXPECT_EQ(events[1].lane, 2);
  EXPECT_EQ(events[2].kind, FlightEventKind::kFinalized);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_LT(events[0].sequence, events[1].sequence);
  EXPECT_EQ(recorder.recorded(), 3u);
}

TEST(FlightRecorderTest, JsonDumpNamesEventsAndJobs) {
  FlightRecorder recorder(16);
  recorder.record(42, FlightEventKind::kSubmitted, -1, 99);
  recorder.record(42, FlightEventKind::kFinalized);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"event\":\"submitted\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"event\":\"finalized\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"job\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"flops\":99"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(FlightRecorderTest, PerJobFilterAndDump) {
  FlightRecorder recorder(64);
  recorder.record(1, FlightEventKind::kSubmitted);
  recorder.record(2, FlightEventKind::kSubmitted);
  recorder.record(1, FlightEventKind::kFinalized);
  const std::vector<FlightEvent> one = recorder.events_for(1);
  ASSERT_EQ(one.size(), 2u);
  EXPECT_EQ(one[0].kind, FlightEventKind::kSubmitted);
  EXPECT_EQ(one[1].kind, FlightEventKind::kFinalized);
  const std::string json = recorder.to_json(2);
  EXPECT_NE(json.find("\"job\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"job\":1"), std::string::npos);
}

TEST(FlightRecorderTest, WrapsKeepingTheMostRecentEvents) {
  FlightRecorder recorder(8);  // power of two already
  EXPECT_EQ(recorder.capacity(), 8u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    recorder.record(i, FlightEventKind::kSubmitted);
  }
  EXPECT_EQ(recorder.recorded(), 100u);
  const std::vector<FlightEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the last 8, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].job, 92 + i);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(9);
  EXPECT_EQ(recorder.capacity(), 16u);
  FlightRecorder tiny(0);
  EXPECT_GE(tiny.capacity(), 2u);
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearSlots) {
  // Writers race on the same small ring while readers scan it; the seqlock
  // must reject mixed slots, so every event a reader returns satisfies the
  // writer-side invariant flops == 3 * job.
  FlightRecorder recorder(32);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20'000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scanned{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightEvent& event : recorder.events()) {
        ASSERT_EQ(event.flops, static_cast<std::int64_t>(event.job) * 3);
        scanned.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const auto job = static_cast<std::uint64_t>(w) * kPerWriter +
                         static_cast<std::uint64_t>(i);
        recorder.record(job, FlightEventKind::kSubmitted, -1,
                        static_cast<std::int64_t>(job) * 3);
      }
    });
  }
  for (std::thread& thread : writers) {
    thread.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(recorder.events().size(), recorder.capacity());
}

TEST(FlightEventKindTest, EveryKindHasAStableName) {
  EXPECT_STREQ(to_string(FlightEventKind::kSubmitted), "submitted");
  EXPECT_STREQ(to_string(FlightEventKind::kPlanned), "planned");
  EXPECT_STREQ(to_string(FlightEventKind::kAdmitted), "admitted");
  EXPECT_STREQ(to_string(FlightEventKind::kLaneAssigned), "lane-assigned");
  EXPECT_STREQ(to_string(FlightEventKind::kFirstTile), "first-tile");
  EXPECT_STREQ(to_string(FlightEventKind::kFinalized), "finalized");
  EXPECT_STREQ(to_string(FlightEventKind::kShed), "shed");
  EXPECT_STREQ(to_string(FlightEventKind::kDeferred), "deferred");
  EXPECT_STREQ(to_string(FlightEventKind::kDeadlineMiss), "deadline-miss");
  EXPECT_STREQ(to_string(FlightEventKind::kStuck), "stuck");
}

TEST(TelemetryOptionsTest, EnvOverlayParsesSwitchIntervalPortAndDump) {
  {
    const ScopedEnv env("TILQ_TELEMETRY", "on");
    const TelemetryOptions options =
        telemetry_options_from_env(TelemetryOptions{});
    EXPECT_TRUE(options.enabled);
    EXPECT_DOUBLE_EQ(options.sample_interval_ms, 100.0);  // base untouched
  }
  {
    const ScopedEnv env("TILQ_TELEMETRY", "off");
    TelemetryOptions base;
    base.enabled = true;  // env wins over code
    EXPECT_FALSE(telemetry_options_from_env(base).enabled);
  }
  {
    const ScopedEnv env("TILQ_TELEMETRY", "0");
    TelemetryOptions base;
    base.enabled = true;
    EXPECT_FALSE(telemetry_options_from_env(base).enabled);
  }
  {
    // A numeric value is both the switch and the sample interval.
    const ScopedEnv env("TILQ_TELEMETRY", "25");
    const TelemetryOptions options =
        telemetry_options_from_env(TelemetryOptions{});
    EXPECT_TRUE(options.enabled);
    EXPECT_DOUBLE_EQ(options.sample_interval_ms, 25.0);
  }
  {
    const ScopedEnv env("TILQ_TELEMETRY_PORT", "8080");
    EXPECT_EQ(telemetry_options_from_env(TelemetryOptions{}).port, 8080);
  }
  {
    const ScopedEnv env("TILQ_TELEMETRY_DUMP", "/tmp/flight.json");
    EXPECT_EQ(telemetry_options_from_env(TelemetryOptions{}).dump_path,
              "/tmp/flight.json");
  }
}

TEST(RenderPrometheusTest, FreeFunctionEmitsEveryCounterWithTypeLines) {
  std::string out;
  render_prometheus(out);
  // Spot-check the schema anchors; the full name list is linted against
  // docs/TELEMETRY.md by tools/check_metrics_docs.py --telemetry-doc.
  EXPECT_NE(out.find("# TYPE tilq_flops counter"), std::string::npos);
  EXPECT_NE(out.find("# HELP tilq_flops"), std::string::npos);
  EXPECT_NE(out.find("\ntilq_flops "), std::string::npos);
  EXPECT_NE(out.find("# TYPE tilq_engine_jobs_stuck counter"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE tilq_engine_telemetry_samples counter"),
            std::string::npos);
  // Text exposition ends in a newline (the format requires it).
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

TelemetryOptions quiet_options() {
  TelemetryOptions options;
  options.enabled = true;
  options.sample_interval_ms = 1000.0;  // ticks driven by sample_now()
  options.port = -1;
  return options;
}

TEST(TelemetryHubTest, CollectorFeedsTheRingAndLatest) {
  std::atomic<int> calls{0};
  TelemetryOptions options = quiet_options();
  TelemetryHub hub(options, [&calls] {
    TelemetrySample sample;
    sample.jobs_completed =
        static_cast<std::uint64_t>(calls.fetch_add(1) + 1);
    sample.uptime_ms = 12.0;
    return sample;
  });
  // The constructor takes the first sample eagerly.
  EXPECT_GE(hub.sample_count(), 1u);
  hub.sample_now();
  hub.sample_now();
  EXPECT_GE(hub.sample_count(), 3u);
  const auto latest = hub.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->uptime_ms, 12.0);
  const std::vector<TelemetrySample> samples = hub.samples();
  EXPECT_GE(samples.size(), 3u);
  // Samples are oldest first and carry monotone hub timestamps.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].t_ms, samples[i].t_ms);
    EXPECT_LT(samples[i - 1].jobs_completed, samples[i].jobs_completed);
  }
}

TEST(TelemetryHubTest, RingTrimsToCapacityButCountKeepsGrowing) {
  TelemetryOptions options = quiet_options();
  options.ring_capacity = 4;
  TelemetryHub hub(options, [] { return TelemetrySample{}; });
  for (int i = 0; i < 20; ++i) {
    hub.sample_now();
  }
  EXPECT_LE(hub.samples().size(), 4u);
  EXPECT_GE(hub.sample_count(), 21u);
}

TEST(TelemetryHubTest, SamplerThreadTicksOnItsOwn) {
  TelemetryOptions options = quiet_options();
  options.sample_interval_ms = 1.0;
  TelemetryHub hub(options, [] { return TelemetrySample{}; });
  const std::uint64_t before = hub.sample_count();
  for (int i = 0; i < 200 && hub.sample_count() <= before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(hub.sample_count(), before);
}

TEST(TelemetryHubTest, MemberRenderAddsEngineGauges) {
  TelemetryOptions options = quiet_options();
  TelemetryHub hub(options, [] {
    TelemetrySample sample;
    sample.uptime_ms = 2500.0;
    sample.in_flight = 3;
    sample.plan_hit_rate = 0.75;
    sample.workers.push_back({10, 2});
    sample.workers.push_back({11, 0});
    return sample;
  });
  hub.sample_now();
  std::string out;
  hub.render_prometheus(out);
  EXPECT_NE(out.find("tilq_engine_up 1"), std::string::npos) << out;
  EXPECT_NE(out.find("tilq_engine_uptime_seconds 2.5"), std::string::npos);
  EXPECT_NE(out.find("tilq_engine_in_flight 3"), std::string::npos);
  EXPECT_NE(out.find("tilq_engine_plan_hit_rate 0.75"), std::string::npos);
  EXPECT_NE(out.find("tilq_engine_worker_executed{worker=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(out.find("tilq_engine_worker_stolen{worker=\"1\"} 0"),
            std::string::npos);
  // The process-wide counters from the free function are included too.
  EXPECT_NE(out.find("# TYPE tilq_flops counter"), std::string::npos);
}

TEST(TelemetryHubTest, FlightDumpIsWrittenAtDestruction) {
  const std::string path = ::testing::TempDir() + "tilq_flight_dump.json";
  std::remove(path.c_str());
  {
    TelemetryOptions options = quiet_options();
    options.dump_path = path;
    TelemetryHub hub(options, [] { return TelemetrySample{}; });
    hub.flight().record(5, FlightEventKind::kSubmitted);
    hub.flight().record(5, FlightEventKind::kFinalized);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr) << path;
  std::string contents(1 << 14, '\0');
  const std::size_t n = std::fread(contents.data(), 1, contents.size(), file);
  std::fclose(file);
  contents.resize(n);
  EXPECT_NE(contents.find("\"event\":\"finalized\""), std::string::npos);
  EXPECT_NE(contents.find("\"job\":5"), std::string::npos);
  std::remove(path.c_str());
}

#if TILQ_TEST_HAVE_SOCKETS
/// Minimal loopback HTTP GET, enough to exercise the hub's listener.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(TelemetryHubTest, HttpListenerServesMetricsHealthzAnd404) {
  TelemetryOptions options = quiet_options();
  options.port = 0;  // ephemeral
  TelemetryHub hub(options, [] {
    TelemetrySample sample;
    sample.jobs_completed = 17;
    return sample;
  });
  if (hub.port() < 0) {
    GTEST_SKIP() << "loopback bind unavailable in this environment";
  }
  const std::string metrics = http_get(hub.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("tilq_engine_up 1"), std::string::npos);
  EXPECT_NE(metrics.find("tilq_engine_jobs_submitted"), std::string::npos);

  const std::string healthz = http_get(hub.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string missing = http_get(hub.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
}

// /healthz follows the engine health state machine (docs/ROBUSTNESS.md):
// degraded still answers 200 (serving, investigate), browned-out answers
// 503 so load balancers stop routing new work here.
TEST(TelemetryHubTest, HealthzReflectsTheHealthProvider) {
  TelemetryOptions options = quiet_options();
  options.port = 0;
  std::atomic<EngineHealth> health{EngineHealth::kDegraded};
  TelemetryHub hub(
      options, [] { return TelemetrySample{}; },
      [&health] { return health.load(); });
  if (hub.port() < 0) {
    GTEST_SKIP() << "loopback bind unavailable in this environment";
  }
  const std::string degraded = http_get(hub.port(), "/healthz");
  EXPECT_NE(degraded.find("HTTP/1.1 200"), std::string::npos) << degraded;
  EXPECT_NE(degraded.find("degraded"), std::string::npos);

  health.store(EngineHealth::kBrownedOut);
  const std::string browned = http_get(hub.port(), "/healthz");
  EXPECT_NE(browned.find("HTTP/1.1 503"), std::string::npos) << browned;
  EXPECT_NE(browned.find("browned-out"), std::string::npos);

  health.store(EngineHealth::kHealthy);
  const std::string healthy = http_get(hub.port(), "/healthz");
  EXPECT_NE(healthy.find("HTTP/1.1 200"), std::string::npos);
  // "ok" stays the healthy body: pre-resilience probes match on it.
  EXPECT_NE(healthy.find("ok"), std::string::npos);
}
#endif  // TILQ_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace tilq
