// Tests for the GraphBLAS-flavoured façade: semirings, descriptors
// (transposes, complement, structural/value masks), element-wise ops, and
// reduction.
#include "grb/grb.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using grb::Descriptor;
using grb::Matrix;
using grb::SemiringOp;
using grb::Vector;

Matrix random(I rows, I cols, std::uint64_t seed, double density = 0.2) {
  return test::random_matrix<double, I>(rows, cols, density, seed);
}

TEST(GrbMxm, UnmaskedEqualsSpgemm) {
  const Matrix a = random(20, 15, 1);
  const Matrix b = random(15, 25, 2);
  const Matrix c = grb::mxm(nullptr, SemiringOp::kPlusTimes, a, b);
  EXPECT_TRUE(test::csr_equal(spgemm<PlusTimes<double>>(a, b), c));
}

TEST(GrbMxm, MaskedEqualsMaskedSpgemm) {
  const Matrix a = random(20, 15, 3);
  const Matrix b = random(15, 25, 4);
  const Matrix mask = random(20, 25, 5);
  const Matrix c = grb::mxm(&mask, SemiringOp::kPlusTimes, a, b);
  EXPECT_TRUE(test::csr_equal(
      test::reference_masked_spgemm<PlusTimes<double>>(mask, a, b), c));
}

TEST(GrbMxm, TransposeDescriptors) {
  const Matrix a = random(15, 20, 6);  // Aᵀ is 20x15
  const Matrix b = random(25, 15, 7);  // Bᵀ is 15x25
  Descriptor desc;
  desc.transpose_a = true;
  desc.transpose_b = true;
  const Matrix c = grb::mxm(nullptr, SemiringOp::kPlusTimes, a, b, desc);
  EXPECT_TRUE(test::csr_equal(
      spgemm<PlusTimes<double>>(transpose(a), transpose(b)), c));
  EXPECT_EQ(c.rows(), 20);
  EXPECT_EQ(c.cols(), 25);
}

TEST(GrbMxm, ValueMaskDropsStoredZeros) {
  // Default GraphBLAS semantics: mask entries holding 0 do not allow
  // output; GrB_STRUCTURE makes them allow it.
  const Matrix a = csr_from_triplets<double, I>(1, 1, {{0, 0, 2.0}});
  const Matrix zero_mask = csr_from_triplets<double, I>(1, 1, {{0, 0, 0.0}});

  Descriptor by_value;  // default
  const Matrix c_value =
      grb::mxm(&zero_mask, SemiringOp::kPlusTimes, a, a, by_value);
  EXPECT_EQ(c_value.nnz(), 0);

  Descriptor structural;
  structural.mask_structural = true;
  const Matrix c_struct =
      grb::mxm(&zero_mask, SemiringOp::kPlusTimes, a, a, structural);
  EXPECT_EQ(c_struct.nnz(), 1);
  EXPECT_DOUBLE_EQ(c_struct.at(0, 0), 4.0);
}

TEST(GrbMxm, ComplementMask) {
  const Matrix a = random(15, 15, 8);
  const Matrix mask = random(15, 15, 9);
  Descriptor desc;
  desc.mask_complement = true;
  desc.mask_structural = true;
  const Matrix c = grb::mxm(&mask, SemiringOp::kPlusTimes, a, a, desc);
  // Complemented result + masked result partition the unmasked product.
  const Matrix full = grb::mxm(nullptr, SemiringOp::kPlusTimes, a, a);
  const Matrix masked = grb::mxm(&mask, SemiringOp::kPlusTimes, a, a);
  EXPECT_EQ(c.nnz() + masked.nnz(), full.nnz());
  for (I i = 0; i < c.rows(); ++i) {
    for (const I j : c.row_cols(i)) {
      EXPECT_FALSE(mask.contains(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(GrbMxm, PlusPairCountsWitnesses) {
  // The triangle-counting semiring through the façade: values irrelevant.
  const Matrix a = with_uniform_values(random(20, 20, 10), 123.0);
  const Matrix c = grb::mxm(&a, SemiringOp::kPlusPair, a, a);
  const auto expected =
      test::reference_masked_spgemm<PlusPair<double>>(a, a, a);
  EXPECT_TRUE(test::csr_equal(expected, c));
}

TEST(GrbMxv, MaskedVectorProduct) {
  const Matrix a = random(10, 8, 11);
  const Vector u(8, {1, 4, 6}, {1.0, 2.0, 3.0});
  const Vector mask(10, {0, 3, 7}, {1.0, 1.0, 1.0});
  const Vector w = grb::mxv(&mask, SemiringOp::kPlusTimes, a, u);
  // Every output index must be in the mask.
  for (const I i : w.indices()) {
    EXPECT_TRUE(mask.contains(i));
  }
  // Spot-check one value against a manual dot product.
  for (const I i : w.indices()) {
    double expected = 0.0;
    for (const I k : u.indices()) {
      expected += a.at(i, k) * u.at(k);
    }
    EXPECT_DOUBLE_EQ(w.at(i), expected);
  }
}

TEST(GrbMxv, UnmaskedAndComplement) {
  const Matrix a = random(8, 8, 12, 0.4);
  const Vector u(8, {0, 2}, {1.0, 1.0});
  const Vector none(8);
  const auto full = grb::mxv(nullptr, SemiringOp::kPlusTimes, a, u);
  Descriptor desc;
  desc.mask_complement = true;
  const auto complement_of_empty =
      grb::mxv(&none, SemiringOp::kPlusTimes, a, u, desc);
  EXPECT_EQ(full, complement_of_empty);  // ¬∅ allows everything
}

TEST(GrbEwise, MultIntersectsAddUnions) {
  const Matrix a = csr_from_triplets<double, I>(2, 2, {{0, 0, 2.0}, {0, 1, 3.0}});
  const Matrix b = csr_from_triplets<double, I>(2, 2, {{0, 1, 4.0}, {1, 1, 5.0}});

  const Matrix m = grb::ewise_mult(SemiringOp::kPlusTimes, a, b);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 12.0);

  const Matrix s = grb::ewise_add(SemiringOp::kPlusTimes, a, b);
  EXPECT_EQ(s.nnz(), 3);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 5.0);
}

TEST(GrbEwise, MinPlusSemantics) {
  const Matrix a = csr_from_triplets<double, I>(1, 2, {{0, 0, 5.0}, {0, 1, 2.0}});
  const Matrix b = csr_from_triplets<double, I>(1, 2, {{0, 0, 3.0}, {0, 1, 9.0}});
  const Matrix s = grb::ewise_add(SemiringOp::kMinPlus, a, b);  // add = min
  EXPECT_DOUBLE_EQ(s.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 2.0);
  const Matrix m = grb::ewise_mult(SemiringOp::kMinPlus, a, b);  // mul = +
  EXPECT_DOUBLE_EQ(m.at(0, 0), 8.0);
}

TEST(GrbReduce, SumAndMin) {
  const Matrix a = csr_from_triplets<double, I>(2, 2, {{0, 0, 3.0}, {1, 1, 4.0}});
  EXPECT_DOUBLE_EQ(grb::reduce(SemiringOp::kPlusTimes, a), 7.0);
  EXPECT_DOUBLE_EQ(grb::reduce(SemiringOp::kMinPlus, a), 3.0);
}

TEST(GrbMxm, TriangleCountEndToEnd) {
  // The full §II-B pipeline: C<M> = A x A with PLUS_PAIR, reduce, /6.
  Coo<double, I> coo(4, 4);
  for (I i = 0; i < 4; ++i) {
    for (I j = 0; j < 4; ++j) {
      if (i != j) {
        coo.push(i, j, 1.0);
      }
    }
  }
  const Matrix k4 = build_csr(coo);
  const Matrix c = grb::mxm(&k4, SemiringOp::kPlusPair, k4, k4);
  EXPECT_DOUBLE_EQ(grb::reduce(SemiringOp::kPlusTimes, c) / 6.0, 4.0);  // K4: C(4,3)
}

}  // namespace
}  // namespace tilq
