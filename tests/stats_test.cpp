// Tests for matrix statistics (sparse/stats.hpp).
#include "sparse/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

TEST(Stats, EmptyMatrix) {
  const auto s = compute_stats(Csr<double, I>(0, 0));
  EXPECT_EQ(s.rows, 0);
  EXPECT_EQ(s.nnz, 0);
}

TEST(Stats, KnownMatrix) {
  // rows with 3, 0, 1 entries
  const auto m = csr_from_triplets<double, I>(
      3, 4, {{0, 0, 1.0}, {0, 1, 1.0}, {0, 3, 1.0}, {2, 2, 1.0}});
  const auto s = compute_stats(m);
  EXPECT_EQ(s.rows, 3);
  EXPECT_EQ(s.cols, 4);
  EXPECT_EQ(s.nnz, 4);
  EXPECT_EQ(s.max_row_nnz, 3);
  EXPECT_EQ(s.empty_rows, 1);
  EXPECT_NEAR(s.mean_row_nnz, 4.0 / 3.0, 1e-12);
}

TEST(Stats, StddevIsZeroForUniformRows) {
  const auto eye = csr_identity<double, I>(10);
  const auto s = compute_stats(eye);
  EXPECT_NEAR(s.row_nnz_stddev, 0.0, 1e-12);
  EXPECT_EQ(s.max_row_nnz, 1);
  EXPECT_EQ(s.p99_row_nnz, 1);
}

TEST(Stats, P99CapturesSkew) {
  // 99 rows of 1 entry, 1 row of 100 entries.
  Coo<double, I> coo(100, 200);
  for (I i = 0; i < 99; ++i) {
    coo.push(i, i, 1.0);
  }
  for (I j = 0; j < 100; ++j) {
    coo.push(99, j, 1.0);
  }
  const auto s = compute_stats(build_csr(coo));
  EXPECT_EQ(s.max_row_nnz, 100);
  EXPECT_EQ(s.p99_row_nnz, 100);  // the hub sits exactly at the 99th pct
}

TEST(MaxRowNnz, FullAndSubrange) {
  const auto m = csr_from_triplets<double, I>(
      4, 4, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}, {1, 2, 1.0}, {3, 3, 1.0}});
  EXPECT_EQ(max_row_nnz(m), 3);
  EXPECT_EQ(max_row_nnz(m, I{2}, I{4}), 1);
  EXPECT_EQ(max_row_nnz(m, I{0}, I{1}), 1);
  EXPECT_EQ(max_row_nnz(m, I{2}, I{2}), 0);  // empty range
}

}  // namespace
}  // namespace tilq
