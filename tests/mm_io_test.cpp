// Tests for Matrix Market I/O: round trips, symmetry expansion, pattern
// matrices, and malformed-input handling.
#include "sparse/mm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

TEST(MatrixMarket, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 7.25\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 7.25);
}

TEST(MatrixMarket, SymmetricIsExpanded) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 2.0\n"
      "3 2 3.0\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 5);  // diagonal not mirrored
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
  EXPECT_TRUE(test::csr_equal(m, transpose(m)));
}

TEST(MatrixMarket, SkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 4.0\n");
  const auto m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -4.0);
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 42\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 42.0);
}

TEST(MatrixMarket, DuplicatesAreSummed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 2\n"
      "1 1 1.0\n"
      "1 1 2.5\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(MatrixMarket, RoundTripThroughStream) {
  const auto original = test::random_matrix<double, I>(20, 30, 0.1, 3);
  std::ostringstream out;
  write_matrix_market(out, original);
  std::istringstream in(out.str());
  const auto reread = read_matrix_market(in);
  EXPECT_TRUE(test::csr_equal(original, reread));
}

TEST(MatrixMarket, RoundTripThroughFile) {
  const auto original = test::random_matrix<double, I>(15, 15, 0.2, 9);
  const std::string path = ::testing::TempDir() + "/tilq_roundtrip.mtx";
  write_matrix_market_file(path, original);
  const auto reread = read_matrix_market_file(path);
  EXPECT_TRUE(test::csr_equal(original, reread));
}

TEST(MatrixMarket, MissingBannerThrows) {
  std::istringstream in("not a matrix market file\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, UnsupportedFormatThrows) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, OutOfRangeIndexThrows) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, TruncatedEntriesThrow) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path/x.mtx"),
               MatrixMarketError);
}

TEST(MatrixMarket, EmptyMatrixRoundTrip) {
  const Csr<double, I> empty(5, 5);
  std::ostringstream out;
  write_matrix_market(out, empty);
  std::istringstream in(out.str());
  const auto reread = read_matrix_market(in);
  EXPECT_EQ(reread.rows(), 5);
  EXPECT_EQ(reread.nnz(), 0);
}

}  // namespace
}  // namespace tilq
