// Tests for Matrix Market I/O: round trips, symmetry expansion, pattern
// matrices, and malformed-input handling.
#include "sparse/mm_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

TEST(MatrixMarket, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 7.25\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 7.25);
}

TEST(MatrixMarket, SymmetricIsExpanded) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 2.0\n"
      "3 2 3.0\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 5);  // diagonal not mirrored
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
  EXPECT_TRUE(test::csr_equal(m, transpose(m)));
}

TEST(MatrixMarket, SkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 4.0\n");
  const auto m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -4.0);
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 42\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 42.0);
}

TEST(MatrixMarket, DuplicatesAreSummed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 2\n"
      "1 1 1.0\n"
      "1 1 2.5\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(MatrixMarket, RoundTripThroughStream) {
  const auto original = test::random_matrix<double, I>(20, 30, 0.1, 3);
  std::ostringstream out;
  write_matrix_market(out, original);
  std::istringstream in(out.str());
  const auto reread = read_matrix_market(in);
  EXPECT_TRUE(test::csr_equal(original, reread));
}

TEST(MatrixMarket, RoundTripThroughFile) {
  const auto original = test::random_matrix<double, I>(15, 15, 0.2, 9);
  const std::string path = ::testing::TempDir() + "/tilq_roundtrip.mtx";
  write_matrix_market_file(path, original);
  const auto reread = read_matrix_market_file(path);
  EXPECT_TRUE(test::csr_equal(original, reread));
}

TEST(MatrixMarket, MissingBannerThrows) {
  std::istringstream in("not a matrix market file\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, UnsupportedFormatThrows) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, OutOfRangeIndexThrows) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, TruncatedEntriesThrow) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path/x.mtx"),
               MatrixMarketError);
}

TEST(MatrixMarket, IndexOverflowThrows) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "99999999999999999999999999 1 1.0\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected MatrixMarketError";
  } catch (const MatrixMarketError& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos)
        << e.what();
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

TEST(MatrixMarket, ValueOverflowThrows) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0e99999\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, NonNumericTokenThrows) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "one 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, SizeLineWithExtraTokenThrows) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1 7\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, HugeDeclaredNnzFailsWithoutPreallocating) {
  // 9e18 declared entries must fail at the first missing entry, not OOM in
  // the up-front reservation (mm_io caps the reserve).
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 9000000000000000000\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

// Corpus sweep: every file in tests/data/bad_mtx is malformed in exactly one
// way and must produce a typed error with a useful message — never a crash,
// never a silently-wrong matrix.
TEST(MatrixMarket, MalformedCorpusAllThrowTypedErrors) {
  const std::filesystem::path dir =
      std::filesystem::path(TILQ_TEST_DATA_DIR) / "bad_mtx";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int swept = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".mtx") {
      continue;
    }
    ++swept;
    try {
      read_matrix_market_file(entry.path().string());
      FAIL() << entry.path().filename() << " loaded without error";
    } catch (const MatrixMarketError& e) {
      EXPECT_FALSE(std::string(e.what()).empty()) << entry.path().filename();
      EXPECT_EQ(e.kind(), ErrorKind::kIo);
    } catch (const std::exception& e) {
      FAIL() << entry.path().filename() << " threw a non-taxonomy exception: "
             << e.what();
    }
  }
  EXPECT_GE(swept, 10) << "corpus unexpectedly small in " << dir;
}

TEST(MatrixMarket, EmptyMatrixRoundTrip) {
  const Csr<double, I> empty(5, 5);
  std::ostringstream out;
  write_matrix_market(out, empty);
  std::istringstream in(out.str());
  const auto reread = read_matrix_market(in);
  EXPECT_EQ(reread.rows(), 5);
  EXPECT_EQ(reread.nnz(), 0);
}

}  // namespace
}  // namespace tilq
