// Tests for vertex reordering: permutation algebra, semantic invariance of
// the masked product under relabeling, and the orderings' defining
// properties (degree monotonicity, RCM bandwidth reduction).
#include "sparse/reorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "core/masked_spgemm.hpp"
#include "gen/rmat.hpp"
#include "gen/road_network.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

TEST(Permutation, Validation) {
  EXPECT_TRUE(is_permutation({0, 1, 2}));
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_TRUE(is_permutation({}));
  EXPECT_FALSE(is_permutation({0, 0, 1}));   // duplicate
  EXPECT_FALSE(is_permutation({0, 1, 3}));   // out of range
  EXPECT_FALSE(is_permutation({0, 1, -1}));  // negative
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation perm = {3, 1, 4, 0, 2};
  const Permutation inverse = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inverse[static_cast<std::size_t>(perm[i])],
              static_cast<I>(i));
  }
  EXPECT_THROW(invert_permutation({0, 0}), PreconditionError);
}

TEST(PermuteSymmetric, IdentityIsNoop) {
  const auto a = symmetrize(test::random_matrix<double, I>(20, 20, 0.15, 1));
  Permutation identity(20);
  std::iota(identity.begin(), identity.end(), I{0});
  EXPECT_TRUE(test::csr_equal(a, permute_symmetric(a, identity)));
}

TEST(PermuteSymmetric, EntriesMoveWithTheirVertices) {
  const auto a = csr_from_triplets<double, I>(
      3, 3, {{0, 1, 5.0}, {1, 0, 5.0}, {1, 2, 7.0}, {2, 1, 7.0}});
  // perm = {2, 0, 1}: new vertex 0 is old 2, new 1 is old 0, new 2 is old 1.
  const auto p = permute_symmetric(a, {2, 0, 1});
  EXPECT_DOUBLE_EQ(p.at(1, 2), 5.0);  // old (0,1)
  EXPECT_DOUBLE_EQ(p.at(2, 0), 7.0);  // old (1,2)
  EXPECT_EQ(p.nnz(), a.nnz());
}

TEST(PermuteSymmetric, PreservesMaskedProductUpToRelabeling) {
  // Semantic invariance: P(M ⊙ (A x A))Pᵀ == PMPᵀ ⊙ (PAPᵀ x PAPᵀ).
  const auto a = symmetrize(test::random_matrix<double, I>(30, 30, 0.15, 7));
  const Permutation perm = random_order(30, 99);
  const auto pa = permute_symmetric(a, perm);
  const auto direct = permute_symmetric(masked_spgemm<SR>(a, a, a), perm);
  const auto relabeled = masked_spgemm<SR>(pa, pa, pa);
  EXPECT_TRUE(test::csr_equal(direct, relabeled));
}

TEST(DegreeOrder, SortsByDescendingDegree) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  const auto a = generate_rmat(params);
  const Permutation perm = degree_order(a);
  ASSERT_TRUE(is_permutation(perm));
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(a.row_nnz(perm[i - 1]), a.row_nnz(perm[i]));
  }
  // After permutation, row degrees must be non-increasing.
  const auto p = permute_symmetric(a, perm);
  for (I i = 1; i < p.rows(); ++i) {
    EXPECT_GE(p.row_nnz(i - 1), p.row_nnz(i));
  }
}

TEST(RcmOrder, ReducesLatticeBandwidthUnderRandomLabels) {
  // A lattice whose labels were scrambled: RCM must bring the bandwidth
  // back to O(side) rather than O(n).
  RoadNetworkParams params;
  params.width = 40;
  params.height = 40;
  params.deletion_prob = 0.0;
  params.shortcut_prob = 0.0;
  const auto lattice = generate_road_network(params);
  const auto scrambled = permute_symmetric(lattice, random_order(1600, 5));
  ASSERT_GT(bandwidth(scrambled), 800);  // scrambling destroys locality

  const auto restored = permute_symmetric(scrambled, rcm_order(scrambled));
  EXPECT_LT(bandwidth(restored), 4 * 40);  // RCM: bandwidth ~ lattice side
}

TEST(RcmOrder, CoversDisconnectedGraphs) {
  const auto a = csr_from_triplets<double, I>(
      5, 5, {{0, 1, 1.0}, {1, 0, 1.0}, {3, 4, 1.0}, {4, 3, 1.0}});
  const Permutation perm = rcm_order(a);
  EXPECT_TRUE(is_permutation(perm));
  EXPECT_EQ(perm.size(), 5u);
}

TEST(RandomOrder, SeededAndValid) {
  const Permutation a = random_order(100, 3);
  const Permutation b = random_order(100, 3);
  const Permutation c = random_order(100, 4);
  EXPECT_TRUE(is_permutation(a));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Bandwidth, KnownValues) {
  EXPECT_EQ(bandwidth(Csr<double, I>(4, 4)), 0);
  EXPECT_EQ(bandwidth(csr_identity<double, I>(4)), 0);
  const auto a = csr_from_triplets<double, I>(4, 4, {{0, 3, 1.0}, {2, 1, 1.0}});
  EXPECT_EQ(bandwidth(a), 3);
}

}  // namespace
}  // namespace tilq
