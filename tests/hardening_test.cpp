// The hardened execution layer end-to-end (docs/ROBUSTNESS.md): the error
// taxonomy, ParallelGuard exception propagation out of OpenMP regions,
// deterministic fault injection at every site, graceful hash-accumulator
// degradation with bit-identical output, structural validation at plan
// boundaries, and the TILQ_CHECK promotion.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/masked_spgemm.hpp"
#include "core/plan.hpp"
#include "sparse/validate.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/panic.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

// Every test leaves the fault framework clean even on assertion failure.
class Hardening : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

// Declared first so it observes the static-init arming before any other
// test's TearDown clears it. The sanitizer CI runs the suite once with
// TILQ_FAULT=pool-alloc:2 to drive this; without the variable it skips.
TEST_F(Hardening, EnvSpecArmsAtStaticInit) {
  const char* spec = std::getenv("TILQ_FAULT");
  if (spec == nullptr || std::string(spec) != "pool-alloc:2") {
    GTEST_SKIP() << "TILQ_FAULT=pool-alloc:2 not set";
  }
  EXPECT_TRUE(fault::armed(FaultSite::kPoolAllocation));
  EXPECT_FALSE(fault::armed(FaultSite::kHashSaturation));
}

// ---------------------------------------------------------------- taxonomy

TEST_F(Hardening, TaxonomyKindsAndStdBases) {
  const PreconditionError pre("p");
  EXPECT_EQ(pre.kind(), ErrorKind::kPrecondition);
  const CapacityError cap("c");
  EXPECT_EQ(cap.kind(), ErrorKind::kCapacity);
  const StaleError stale("s");
  EXPECT_EQ(stale.kind(), ErrorKind::kStale);
  const IoError io("i");
  EXPECT_EQ(io.kind(), ErrorKind::kIo);
  const InternalError internal("x");
  EXPECT_EQ(internal.kind(), ErrorKind::kInternal);

  // The standard bases the taxonomy promises (pre-taxonomy catch sites).
  EXPECT_THROW(throw PreconditionError("p"), std::invalid_argument);
  EXPECT_THROW(throw CapacityError("c"), std::runtime_error);
  EXPECT_THROW(throw StaleError("s"), std::invalid_argument);
  EXPECT_THROW(throw IoError("i"), std::runtime_error);
  EXPECT_THROW(throw InternalError("x"), std::runtime_error);

  // StaleError narrows kind() but stays a PreconditionError.
  EXPECT_THROW(throw StaleError("s"), PreconditionError);

  // One catch clause for the whole taxonomy, kind() to branch.
  try {
    throw CapacityError("over budget");
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCapacity);
    EXPECT_STREQ(e.message(), "over budget");
  }

  EXPECT_STREQ(to_string(ErrorKind::kStale), "stale");
  EXPECT_STREQ(to_string(ErrorKind::kInternal), "internal");
}

TEST_F(Hardening, ErrorMixinDoesNotAmbiguateStdException) {
  // catch (const std::exception&) must stay unambiguous — the mixin has no
  // std::exception base of its own.
  try {
    throw InternalError("broken invariant");
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos);
  }
}

// ------------------------------------------------------------ ParallelGuard

TEST_F(Hardening, GuardCapturesFirstExceptionAndCancels) {
  ParallelGuard guard;
  EXPECT_FALSE(guard.cancelled());
  guard.run([] { throw PreconditionError("first"); });
  EXPECT_TRUE(guard.cancelled());
  // Later bodies are skipped entirely once cancelled.
  bool second_ran = false;
  guard.run([&] { second_ran = true; });
  EXPECT_FALSE(second_ran);
  try {
    guard.rethrow_if_failed();
    FAIL() << "expected rethrow";
  } catch (const PreconditionError& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST_F(Hardening, GuardMapsForeignExceptionsIntoTaxonomy) {
  {
    ParallelGuard guard;
    guard.run([] { throw std::logic_error("user payload"); });
    try {
      guard.rethrow_if_failed();
      FAIL() << "expected rethrow";
    } catch (const InternalError& e) {
      EXPECT_NE(std::string(e.what()).find("user payload"), std::string::npos);
    }
  }
  {
    ParallelGuard guard;
    guard.run([] { throw std::bad_alloc(); });
    EXPECT_THROW(guard.rethrow_if_failed(), CapacityError);
  }
  {
    ParallelGuard guard;
    guard.run([] { throw 42; });  // not even a std::exception
    EXPECT_THROW(guard.rethrow_if_failed(), InternalError);
  }
}

TEST_F(Hardening, GuardNoFailureIsNoOp) {
  ParallelGuard guard;
  int runs = 0;
  guard.run([&] { ++runs; });
  guard.run([&] { ++runs; });
  EXPECT_EQ(runs, 2);
  EXPECT_NO_THROW(guard.rethrow_if_failed());
}

// A semiring whose mul throws once a sentinel value shows up — the "user
// callback throws inside the parallel region" scenario. The sentinel rides
// in the matrix values, so the throw happens deep inside the numeric phase
// on whichever thread owns that row.
struct ThrowingSemiring {
  using value_type = double;
  static double zero() noexcept { return 0.0; }
  static double add(double a, double b) noexcept { return a + b; }
  static double mul(double a, double b) {
    if (a == kPoison || b == kPoison) {
      throw std::runtime_error("semiring callback exploded");
    }
    return a * b;
  }
  static constexpr double kPoison = 255.0;
};
static_assert(Semiring<ThrowingSemiring>);

TEST_F(Hardening, ThrowingSemiringCallbackPropagatesFromParallelExecute) {
  auto a = test::random_matrix<double, I>(96, 96, 0.2, 11);
  ASSERT_GT(a.nnz(), 0);
  // Poison one value somewhere in the middle so a worker thread hits it.
  a.mutable_values()[a.nnz() / 2] = ThrowingSemiring::kPoison;

  Config config;
  config.threads = 8;
  for (const AccumulatorKind acc :
       {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
    config.accumulator = acc;
    try {
      masked_spgemm<ThrowingSemiring>(a, a, a, config);
      FAIL() << "expected the callback exception to propagate";
    } catch (const Error& e) {
      // Foreign std::runtime_error -> InternalError, payload preserved.
      EXPECT_EQ(e.kind(), ErrorKind::kInternal);
      EXPECT_NE(std::string(e.message()).find("semiring callback exploded"),
                std::string::npos);
    }
  }
}

TEST_F(Hardening, ThrowingBodyPropagatesFromParallelFor) {
  EXPECT_THROW(parallel_for(I{0}, I{1000},
                            [](I i) {
                              if (i == 637) {
                                throw CapacityError("worker 637");
                              }
                            }),
               CapacityError);
}

// ------------------------------------------------------------ fault sites

TEST_F(Hardening, FaultArmDisarmAndCounters) {
  EXPECT_FALSE(fault::armed(FaultSite::kPoolAllocation));
  fault::arm(FaultSite::kPoolAllocation, 2);
  EXPECT_TRUE(fault::armed(FaultSite::kPoolAllocation));
  EXPECT_FALSE(fault::should_fire(FaultSite::kPoolAllocation));  // hit 1 of 2
  EXPECT_TRUE(fault::should_fire(FaultSite::kPoolAllocation));   // hit 2 fires
  // One-shot: fired once, self-disarmed.
  EXPECT_FALSE(fault::armed(FaultSite::kPoolAllocation));
  EXPECT_FALSE(fault::should_fire(FaultSite::kPoolAllocation));
  EXPECT_EQ(fault::hits(FaultSite::kPoolAllocation), 2u);
  EXPECT_EQ(fault::triggered(FaultSite::kPoolAllocation), 1u);
  fault::disarm_all();
  EXPECT_EQ(fault::hits(FaultSite::kPoolAllocation), 0u);
  EXPECT_EQ(fault::triggered(FaultSite::kPoolAllocation), 0u);
}

TEST_F(Hardening, FaultSpecGrammar) {
  fault::configure("pool-alloc:3,hash-sat");
  EXPECT_TRUE(fault::armed(FaultSite::kPoolAllocation));
  EXPECT_TRUE(fault::armed(FaultSite::kHashSaturation));
  EXPECT_FALSE(fault::armed(FaultSite::kMarkerWrap));
  fault::disarm_all();

  fault::configure("");  // empty spec is a no-op
  for (const FaultSite site :
       {FaultSite::kPoolAllocation, FaultSite::kMarkerWrap,
        FaultSite::kHashSaturation, FaultSite::kPlanFingerprint}) {
    EXPECT_FALSE(fault::armed(site)) << to_string(site);
  }

  EXPECT_THROW(fault::configure("no-such-site"), PreconditionError);
  EXPECT_THROW(fault::configure("pool-alloc:"), PreconditionError);
  EXPECT_THROW(fault::configure("pool-alloc:0"), PreconditionError);
  EXPECT_THROW(fault::configure("pool-alloc:abc"), PreconditionError);
}

TEST_F(Hardening, PoolAllocFaultIsCleanCapacityErrorAndRecoverable) {
  const auto a = test::random_matrix<double, I>(64, 64, 0.15, 21);
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  Config config;
  config.threads = 2;

  fault::arm(FaultSite::kPoolAllocation);
  try {
    masked_spgemm<SR>(a, a, a, config);
    FAIL() << "expected the injected pool fault to surface";
  } catch (const CapacityError& e) {
    EXPECT_NE(std::string(e.what()).find("pool-alloc"), std::string::npos);
  }
  EXPECT_EQ(fault::triggered(FaultSite::kPoolAllocation), 1u);

  // The fault self-disarmed; the very next call must succeed and be right.
  EXPECT_TRUE(test::csr_equal(expected, masked_spgemm<SR>(a, a, a, config)));
}

TEST_F(Hardening, PlanFingerprintFaultRaisesStalePlanError) {
  const auto a = test::random_matrix<double, I>(40, 40, 0.2, 31);
  Executor<SR> exec;
  exec.plan(a, a, a);
  fault::arm(FaultSite::kPlanFingerprint);
  try {
    exec.execute(a, a, a);
    FAIL() << "expected StalePlanError";
  } catch (const StalePlanError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kStale);
  }
  // Recovery: the plan itself is fine once the fault has fired.
  EXPECT_TRUE(test::csr_equal(test::reference_masked_spgemm<SR>(a, a, a),
                              exec.execute(a, a, a)));
}

TEST_F(Hardening, MarkerWrapFaultForcesFullResetNotAnError) {
  // marker-wrap is the one site that exercises a correctness-preserving
  // path instead of an error: the forced wrap must cost a full reset and
  // nothing else.
  const auto a = test::random_matrix<double, I>(48, 48, 0.2, 41);
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  for (const AccumulatorKind acc :
       {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
    Config config;
    config.accumulator = acc;
    config.reset = ResetPolicy::kMarker;
    config.threads = 1;
    fault::arm(FaultSite::kMarkerWrap);
    ExecutionStats stats;
    const auto c = masked_spgemm<SR>(a, a, a, config, stats);
    EXPECT_TRUE(test::csr_equal(expected, c)) << to_string(acc);
    EXPECT_GE(stats.accumulator_full_resets, 1u) << to_string(acc);
    EXPECT_EQ(fault::triggered(FaultSite::kMarkerWrap), 1u);
    fault::disarm_all();
  }
}

TEST_F(Hardening, HashSaturationEscalatesWhenDegradationDisabled) {
  const auto a = test::random_matrix<double, I>(64, 64, 0.15, 51);
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  config.degrade_on_saturation = false;
  config.threads = 1;
  fault::arm(FaultSite::kHashSaturation);
  try {
    masked_spgemm<SR>(a, a, a, config);
    FAIL() << "expected AccumulatorSaturatedError";
  } catch (const AccumulatorSaturatedError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCapacity);
  }
  // Recovery after the one-shot fault.
  EXPECT_TRUE(test::csr_equal(test::reference_masked_spgemm<SR>(a, a, a),
                              masked_spgemm<SR>(a, a, a, config)));
}

// ------------------------------------------------------------- degradation

TEST_F(Hardening, SaturationDegradesToDenseBitIdentical) {
  const auto a = test::random_matrix<double, I>(80, 80, 0.2, 61);
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  config.threads = 2;
  ASSERT_TRUE(config.degrade_on_saturation);  // the default

  fault::arm(FaultSite::kHashSaturation);
  ExecutionStats stats;
  const auto c = masked_spgemm<SR>(a, a, a, config, stats);
  EXPECT_EQ(fault::triggered(FaultSite::kHashSaturation), 1u);
  EXPECT_TRUE(test::csr_equal(expected, c));
  EXPECT_TRUE(stats.degraded);
  EXPECT_GE(stats.accum_degrades, 1u);
}

TEST_F(Hardening, DegradationWorksUnder2dTiling) {
  const auto a = test::random_matrix<double, I>(72, 72, 0.2, 71);
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  config.strategy = MaskStrategy::kMaskFirst;
  config.num_col_tiles = 3;
  config.threads = 2;
  fault::arm(FaultSite::kHashSaturation);
  ExecutionStats stats;
  Executor<SR> exec;
  exec.plan(a, a, a, config);
  const auto c = exec.execute(a, a, a, stats);
  EXPECT_TRUE(test::csr_equal(test::reference_masked_spgemm<SR>(a, a, a), c));
  EXPECT_TRUE(stats.degraded);
  EXPECT_GE(stats.accum_degrades, 1u);
}

TEST_F(Hardening, DegradedExecutorStaysHealthyAfterwards) {
  const auto a = test::random_matrix<double, I>(64, 64, 0.2, 81);
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  config.threads = 1;
  Executor<SR> exec;
  exec.plan(a, a, a, config);

  fault::arm(FaultSite::kHashSaturation);
  ExecutionStats degraded_stats;
  EXPECT_TRUE(
      test::csr_equal(expected, exec.execute(a, a, a, degraded_stats)));
  EXPECT_TRUE(degraded_stats.degraded);

  // The hash workspace survived abort_row(): later executes run clean.
  ExecutionStats clean_stats;
  EXPECT_TRUE(test::csr_equal(expected, exec.execute(a, a, a, clean_stats)));
  EXPECT_FALSE(clean_stats.degraded);
  EXPECT_EQ(clean_stats.accum_degrades, 0u);
}

TEST_F(Hardening, DegradationShowsUpInMetricsJson) {
  if (!kMetricsCompiled) {
    GTEST_SKIP() << "metrics instrumentation compiled out";
  }
  const auto a = test::random_matrix<double, I>(64, 64, 0.2, 91);
  Config config;
  config.accumulator = AccumulatorKind::kHash;
  config.threads = 1;

  set_metrics_enabled(true);
  metrics_reset();
  fault::arm(FaultSite::kHashSaturation);
  masked_spgemm<SR>(a, a, a, config);
  const MetricsSnapshot snapshot = metrics_snapshot();
  set_metrics_enabled(false);

  EXPECT_GE(snapshot.total.accum_degrades, 1u);
  MetricsRecord record;
  record.source = "hardening_test";
  const std::string json = format_metrics_record(record, snapshot);
  EXPECT_NE(json.find("\"accum_degrades\":"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"accum_degrades\":0,"), std::string::npos) << json;
}

// -------------------------------------------------------------- validation

Csr<double, I> small_valid() {
  return test::random_matrix<double, I>(12, 12, 0.3, 101);
}

TEST_F(Hardening, ValidateAcceptsHealthyMatrix) {
  const auto report = validate(small_valid());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.summary(), "structurally valid");
}

TEST_F(Hardening, ValidateLocatesUnsortedColumns) {
  auto m = small_valid();
  auto row_with_two = I{-1};
  for (I i = 0; i < m.rows(); ++i) {
    if (m.row_nnz(i) >= 2) {
      row_with_two = i;
      break;
    }
  }
  ASSERT_GE(row_with_two, 0);
  auto& cols = m.mutable_col_idx();
  const auto p = static_cast<std::size_t>(m.row_ptr()[static_cast<std::size_t>(row_with_two)]);
  std::swap(cols[p], cols[p + 1]);

  const auto report = validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.defects.front().kind, DefectKind::kUnsortedColumns);
  EXPECT_EQ(report.defects.front().row, row_with_two);
  EXPECT_NE(report.summary().find("unsorted-columns"), std::string::npos);
}

TEST_F(Hardening, ValidateLocatesOutOfRangeColumn) {
  auto m = small_valid();
  ASSERT_GT(m.nnz(), 0);
  m.mutable_col_idx()[0] = m.cols() + 5;
  const auto report = validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.defects.front().kind, DefectKind::kColumnOutOfRange);
}

TEST_F(Hardening, ValidateStopsAtBrokenRowPtr) {
  auto m = small_valid();
  ASSERT_GE(m.rows(), 3);
  m.mutable_row_ptr()[2] = I{-7};
  const auto report = validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.defects.front().kind, DefectKind::kRowPtrNonMonotone);
}

TEST_F(Hardening, ValidateReportsLengthMismatchAsNnzOverflow) {
  auto m = small_valid();
  ASSERT_GT(m.nnz(), 0);
  m.mutable_col_idx().pop_back();
  const auto report = validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.defects.front().kind, DefectKind::kNnzOverflow);
}

TEST_F(Hardening, ValidateCapsCollectedDefectsButCountsAll) {
  auto m = small_valid();
  auto& cols = m.mutable_col_idx();
  for (auto& c : cols) {
    c = m.cols() + 1;  // every entry out of range
  }
  const auto report = validate(m, 4);
  EXPECT_EQ(report.defects.size(), 4u);
  EXPECT_EQ(report.defect_count, static_cast<std::int64_t>(cols.size()));
}

TEST_F(Hardening, PlanRejectsCorruptOperandWhenValidationOn) {
  const auto good = small_valid();
  auto bad = small_valid();
  ASSERT_GT(bad.nnz(), 0);
  bad.mutable_col_idx()[0] = bad.cols() + 9;

  Config config;
  config.validate_inputs = true;
  Executor<SR> exec;
  try {
    exec.plan(good, bad, good, config);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'A'"), std::string::npos) << what;
    EXPECT_NE(what.find("column-out-of-range"), std::string::npos) << what;
  }
}

TEST_F(Hardening, ValidationOffSkipsTheScan) {
  // Unsorted (but in-range) columns: safe to hand to plan(), yet a defect
  // the validator must flag. With the knob off, plan() accepts it.
  auto unsorted = small_valid();
  I row_with_two = -1;
  for (I i = 0; i < unsorted.rows(); ++i) {
    if (unsorted.row_nnz(i) >= 2) {
      row_with_two = i;
      break;
    }
  }
  ASSERT_GE(row_with_two, 0);
  auto& cols = unsorted.mutable_col_idx();
  const auto p = static_cast<std::size_t>(
      unsorted.row_ptr()[static_cast<std::size_t>(row_with_two)]);
  std::swap(cols[p], cols[p + 1]);

  Executor<SR> exec;
  Config config;
  config.validate_inputs = true;
  EXPECT_THROW(exec.plan(unsorted, small_valid(), small_valid(), config),
               PreconditionError);
  config.validate_inputs = false;
  EXPECT_NO_THROW(exec.plan(unsorted, small_valid(), small_valid(), config));
}

// ----------------------------------------------------- TILQ_CHECK promotion

TEST_F(Hardening, HardenedBoundsChecksThrowTyped) {
#if TILQ_HARDENED
  const auto m = small_valid();
  EXPECT_THROW((void)m.row_cols(m.rows()), PreconditionError);
  EXPECT_THROW((void)m.row_vals(I{-1}), PreconditionError);
  DenseMatrix<double, I> dense(2, 2);
  EXPECT_THROW((void)dense(I{9}, I{0}), PreconditionError);
#else
  GTEST_SKIP() << "TILQ_HARDENED is off in this build";
#endif
}

// ------------------------------------------------------- marker wrap sweep

// An 8-bit marker wraps mid-batch on any matrix with enough rows; the
// wrap must cost full resets, never correctness, for both accumulators.
TEST_F(Hardening, EightBitMarkerWrapsMidBatchStaysExact) {
  const I n = 400;  // > 2*127 rows: several wraps per thread
  const auto a = test::random_matrix<double, I>(n, n, 0.03, 111);

  Config reference_config;
  reference_config.marker_width = MarkerWidth::k64;
  reference_config.reset = ResetPolicy::kMarker;
  reference_config.accumulator = AccumulatorKind::kDense;
  const auto expected = masked_spgemm<SR>(a, a, a, reference_config);

  for (const AccumulatorKind acc :
       {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
    Config config;
    config.accumulator = acc;
    config.marker_width = MarkerWidth::k8;
    config.reset = ResetPolicy::kMarker;
    config.threads = 2;
    ExecutionStats stats;
    const auto c = masked_spgemm<SR>(a, a, a, config, stats);
    EXPECT_TRUE(test::csr_equal(expected, c)) << to_string(acc);
    EXPECT_GE(stats.accumulator_full_resets, 1u)
        << to_string(acc) << ": expected the 8-bit marker to wrap";
  }
}

}  // namespace
}  // namespace tilq
