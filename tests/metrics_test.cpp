// Tests for the observability layer (support/metrics.hpp, support/trace.hpp):
// counter aggregation across threads against hand-computed event counts,
// agreement with ExecutionStats, the disabled mode counting nothing, the
// JSON-lines record format, and Chrome-trace JSON validity. Every test
// skips itself when the instrumentation is compiled out (TILQ_METRICS=OFF).
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "core/masked_spgemm.hpp"
#include "core/masked_spgemm_2d.hpp"
#include "support/trace.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

// --- minimal JSON validator ----------------------------------------------
// Recursive-descent acceptor for the JSON grammar subset the sinks emit
// (objects, arrays, strings without escapes-beyond-\", numbers, literals).
// Shares no code with the serializers, so acceptance is meaningful.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;  // accept any escaped character
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing '"'
    return true;
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- hand-computed expectations ------------------------------------------

/// Mask-first FLOP count (Eq 2's dominant term): every B[k,:] entry is
/// read once per A[i,k] nonzero, for every row whose mask is non-empty.
std::uint64_t expected_mask_first_flops(const Csr<double, I>& mask,
                                        const Csr<double, I>& a,
                                        const Csr<double, I>& b) {
  std::uint64_t flops = 0;
  for (I i = 0; i < a.rows(); ++i) {
    if (mask.row_cols(i).empty()) {
      continue;
    }
    for (const I k : a.row_cols(i)) {
      flops += b.row_cols(k).size();
    }
  }
  return flops;
}

/// Number of (i, k) pairs the hybrid kernel classifies: one per A[i,k]
/// nonzero in rows with a non-empty mask.
std::uint64_t expected_hybrid_decisions(const Csr<double, I>& mask,
                                        const Csr<double, I>& a) {
  std::uint64_t pairs = 0;
  for (I i = 0; i < a.rows(); ++i) {
    if (!mask.row_cols(i).empty()) {
      pairs += a.row_cols(i).size();
    }
  }
  return pairs;
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsCompiled) {
      GTEST_SKIP() << "instrumentation compiled out (TILQ_METRICS=OFF)";
    }
    set_metrics_enabled(true);
    metrics_reset();
  }

  void TearDown() override {
    set_metrics_enabled(false);
    set_trace_path("");
    trace_clear();
  }
};

TEST_F(MetricsTest, MaskFirstFlopsMatchHandCount) {
  const auto a = test::random_matrix<double, I>(80, 80, 0.06, 7);
  Config config;
  config.strategy = MaskStrategy::kMaskFirst;
  (void)masked_spgemm<SR>(a, a, a, config);

  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_EQ(snapshot.total.flops, expected_mask_first_flops(a, a, a));
  EXPECT_EQ(snapshot.total.rows_processed,
            static_cast<std::uint64_t>(a.rows()));
  EXPECT_EQ(snapshot.total.binary_search_steps, 0u)
      << "mask-first performs no binary searches";
  EXPECT_GT(snapshot.total.accum_inserts, 0u);
}

TEST_F(MetricsTest, TotalsEqualPerThreadSumAcrossThreads) {
  const auto a = test::random_matrix<double, I>(120, 120, 0.05, 11);
  Config config;
  config.strategy = MaskStrategy::kMaskFirst;
  config.threads = 4;
  config.num_tiles = 16;
  ExecutionStats stats;
  (void)masked_spgemm<SR>(a, a, a, config, stats);

  const MetricsSnapshot snapshot = metrics_snapshot();
  MetricCounters summed;
  for (const ThreadMetrics& thread : snapshot.per_thread) {
    EXPECT_FALSE(thread.counters.all_zero())
        << "all-zero threads must be omitted from per_thread";
    summed += thread.counters;
  }
  EXPECT_EQ(summed.flops, snapshot.total.flops);
  EXPECT_EQ(summed.accum_inserts, snapshot.total.accum_inserts);
  EXPECT_EQ(summed.tiles_executed, snapshot.total.tiles_executed);
  EXPECT_EQ(summed.rows_processed, snapshot.total.rows_processed);

  // Counters and ExecutionStats are two views of the same events.
  EXPECT_EQ(snapshot.total.tiles_executed,
            static_cast<std::uint64_t>(stats.tiles));
  EXPECT_EQ(snapshot.total.accum_inserts, stats.accum_inserts);
  EXPECT_EQ(snapshot.total.accum_rejects, stats.accum_rejects);
  EXPECT_EQ(snapshot.total.hash_probes, stats.hash_probes);
  EXPECT_EQ(snapshot.total.hash_collisions, stats.hash_collisions);
  EXPECT_EQ(snapshot.total.marker_row_resets, stats.marker_row_resets);
  EXPECT_EQ(snapshot.total.explicit_reset_slots, stats.explicit_reset_slots);
  EXPECT_EQ(snapshot.total.marker_overflow_resets,
            stats.accumulator_full_resets);
}

TEST_F(MetricsTest, CoIterationCountsBinarySearchSteps) {
  const auto a = test::random_matrix<double, I>(60, 60, 0.1, 13);
  Config config;
  config.strategy = MaskStrategy::kCoIterate;
  (void)masked_spgemm<SR>(a, a, a, config);
  EXPECT_GT(metrics_snapshot().total.binary_search_steps, 0u);
}

TEST_F(MetricsTest, HybridDecisionsPartitionTheIterationPairs) {
  const auto a = test::random_matrix<double, I>(60, 60, 0.1, 17);
  Config config;
  config.strategy = MaskStrategy::kHybrid;
  config.coiteration_factor = 1.0;
  (void)masked_spgemm<SR>(a, a, a, config);

  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_EQ(snapshot.total.hybrid_coiter_picks +
                snapshot.total.hybrid_linear_picks,
            expected_hybrid_decisions(a, a));
}

TEST_F(MetricsTest, DisabledAtRuntimeCountsNothing) {
  set_metrics_enabled(false);
  const auto a = test::random_matrix<double, I>(50, 50, 0.1, 19);
  (void)masked_spgemm<SR>(a, a, a, Config{});
  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_TRUE(snapshot.total.all_zero());
  EXPECT_TRUE(snapshot.per_thread.empty());
}

TEST_F(MetricsTest, ResetClearsEveryThreadSlot) {
  const auto a = test::random_matrix<double, I>(50, 50, 0.1, 23);
  Config config;
  config.threads = 2;
  (void)masked_spgemm<SR>(a, a, a, config);
  ASSERT_FALSE(metrics_snapshot().total.all_zero());
  metrics_reset();
  EXPECT_TRUE(metrics_snapshot().total.all_zero());
}

TEST_F(MetricsTest, DeltaIsolatesOneMeasuredRegion) {
  const auto a = test::random_matrix<double, I>(50, 50, 0.1, 29);
  Config config;
  config.strategy = MaskStrategy::kMaskFirst;
  (void)masked_spgemm<SR>(a, a, a, config);  // counted, then excluded
  const MetricsSnapshot before = metrics_snapshot();
  (void)masked_spgemm<SR>(a, a, a, config);
  const MetricsSnapshot delta = metrics_delta(before, metrics_snapshot());
  EXPECT_EQ(delta.total.flops, expected_mask_first_flops(a, a, a));
}

TEST_F(MetricsTest, TwoDimensionalDriverCountsCells) {
  const auto a = test::random_matrix<double, I>(60, 60, 0.1, 31);
  Config config;
  config.strategy = MaskStrategy::kMaskFirst;
  config.num_col_tiles = 4;
  ExecutionStats stats;
  (void)masked_spgemm_2d<SR>(a, a, a, config, stats);

  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_EQ(snapshot.total.tiles_executed,
            static_cast<std::uint64_t>(stats.tiles));
  EXPECT_GT(snapshot.total.flops, 0u);
  EXPECT_EQ(snapshot.total.accum_inserts, stats.accum_inserts);
}

TEST_F(MetricsTest, RecordFormatsAsSchemaThreeJson) {
  const auto a = test::random_matrix<double, I>(50, 50, 0.1, 37);
  Config config;
  config.threads = 2;
  (void)masked_spgemm<SR>(a, a, a, config);

  MetricsRecord record;
  record.source = "metrics_test";
  record.matrix = "random50 \"quoted\"";  // exercises string escaping
  record.config = config.describe();
  record.runs = 1;
  record.median_ms = 1.25;
  const std::string line = format_metrics_record(record, metrics_snapshot());

  EXPECT_TRUE(JsonChecker(line).valid()) << line;
  EXPECT_EQ(line.find("{\"tilq_metrics\":3,"), 0u);
  for (const char* field :
       {"\"source\"", "\"matrix\"", "\"config\"", "\"runs\"", "\"median_ms\"",
        "\"counters\"", "\"hw\"", "\"imbalance\"", "\"threads\"", "\"flops\"",
        "\"accum_inserts\"", "\"binary_search_steps\"", "\"tiles_executed\"",
        "\"rows_processed\"", "\"busy_ns\"", "\"engine_jobs\"",
        "\"engine_steals\""}) {
    EXPECT_NE(line.find(field), std::string::npos) << "missing " << field;
  }
}

TEST_F(MetricsTest, RecordCarriesImbalanceAndExplicitHwNull) {
  const auto a = test::random_matrix<double, I>(60, 60, 0.08, 59);
  Config config;
  config.threads = 2;
  config.num_tiles = 8;
  (void)masked_spgemm<SR>(a, a, a, config);
  const MetricsSnapshot snapshot = metrics_snapshot();

  // The drivers always record per-thread busy time, so the imbalance
  // object must be a populated object, never null, after a kernel run.
  EXPECT_GT(snapshot.total.busy_ns, 0u);
  MetricsRecord record;
  record.source = "metrics_test";
  record.runs = 1;
  const std::string line = format_metrics_record(record, snapshot);
  EXPECT_TRUE(JsonChecker(line).valid()) << line;
  EXPECT_EQ(line.find("\"imbalance\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"imbalance\":{\"threads\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"max_busy_ms\""), std::string::npos);
  EXPECT_NE(line.find("\"ratio\""), std::string::npos);
  EXPECT_NE(line.find("\"cv\""), std::string::npos);

  // hw is either a populated object (perf counters readable) or an
  // explicit null (the fallback contract) — never absent.
  if (snapshot.hw_total.all_zero()) {
    EXPECT_NE(line.find("\"hw\":null"), std::string::npos) << line;
  } else {
    EXPECT_NE(line.find("\"hw\":{\"cycles\":"), std::string::npos) << line;
  }
}

TEST_F(MetricsTest, EmptySnapshotEmitsNullHwAndImbalance) {
  metrics_reset();
  MetricsRecord record;
  record.source = "metrics_test";
  const std::string line = format_metrics_record(record, metrics_snapshot());
  EXPECT_TRUE(JsonChecker(line).valid()) << line;
  EXPECT_NE(line.find("\"hw\":null"), std::string::npos);
  EXPECT_NE(line.find("\"imbalance\":null"), std::string::npos);
}

TEST_F(MetricsTest, ExecutionStatsCarryPerThreadWork) {
  const auto a = test::random_matrix<double, I>(120, 120, 0.05, 61);
  Config config;
  config.threads = 2;
  config.num_tiles = 8;
  ExecutionStats stats;
  (void)masked_spgemm<SR>(a, a, a, config, stats);

  ASSERT_FALSE(stats.thread_work.empty());
  EXPECT_LE(stats.thread_work.size(), 2u);
  std::int64_t tiles = 0;
  std::int64_t rows = 0;
  for (std::size_t t = 0; t < stats.thread_work.size(); ++t) {
    EXPECT_EQ(stats.thread_work[t].thread, static_cast<int>(t));
    tiles += stats.thread_work[t].tiles;
    rows += stats.thread_work[t].rows;
  }
  EXPECT_EQ(tiles, stats.tiles);
  EXPECT_EQ(rows, static_cast<std::int64_t>(a.rows()));
  EXPECT_GE(stats.imbalance_ratio, 1.0);
  EXPECT_GE(stats.busy_cv, 0.0);

  // The same invariants through the 2D driver: every row is visited once
  // per column tile.
  Config config2d = config;
  config2d.num_col_tiles = 3;
  ExecutionStats stats2d;
  (void)masked_spgemm_2d<SR>(a, a, a, config2d, stats2d);
  std::int64_t rows2d = 0;
  for (const ThreadWork& t : stats2d.thread_work) {
    rows2d += t.rows;
  }
  EXPECT_EQ(rows2d, static_cast<std::int64_t>(a.rows()) * 3);
  EXPECT_GE(stats2d.imbalance_ratio, 1.0);
}

TEST_F(MetricsTest, HwDeltaMachineryIsConsistent) {
  // Whether or not the machine grants perf counters, the snapshot/delta
  // algebra over hw must hold: delta(before, after) isolates the region.
  HwCounters a;
  a.cycles = 100;
  a.llc_misses = 7;
  HwCounters b = a;
  b.cycles = 250;
  b.instructions = 40;
  const HwCounters d = b.minus(a);
  EXPECT_EQ(d.cycles, 150u);
  EXPECT_EQ(d.instructions, 40u);
  EXPECT_EQ(d.llc_misses, 0u);
  EXPECT_FALSE(d.all_zero());
  EXPECT_TRUE(a.minus(b).all_zero() || a.minus(b).cycles == 0u);

  MetricsSnapshot before;
  MetricsSnapshot after;
  after.hw_total = b;
  after.per_thread.push_back({0, MetricCounters{}, b});
  before.hw_total = a;
  before.per_thread.push_back({0, MetricCounters{}, a});
  const MetricsSnapshot delta = metrics_delta(before, after);
  EXPECT_EQ(delta.hw_total.cycles, 150u);
  ASSERT_EQ(delta.per_thread.size(), 1u);
  EXPECT_EQ(delta.per_thread[0].hw.cycles, 150u);
}

TEST_F(MetricsTest, SinkFileReceivesOneLinePerRecord) {
  const std::string path = ::testing::TempDir() + "tilq_metrics_sink.jsonl";
  std::remove(path.c_str());
  set_metrics_sink_path(path);

  const auto a = test::random_matrix<double, I>(40, 40, 0.1, 41);
  (void)masked_spgemm<SR>(a, a, a, Config{});
  MetricsRecord record;
  record.source = "metrics_test";
  record.runs = 1;
  emit_metrics_record(record, metrics_snapshot());
  emit_metrics_record(record, metrics_snapshot());
  set_metrics_sink_path("");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST_F(MetricsTest, TraceFileIsLoadableChromeJson) {
  const std::string path = ::testing::TempDir() + "tilq_trace.json";
  std::remove(path.c_str());
  trace_clear();
  set_trace_path(path);

  const auto a = test::random_matrix<double, I>(50, 50, 0.1, 43);
  Config config;
  config.num_tiles = 4;
  (void)masked_spgemm<SR>(a, a, a, config);
  ASSERT_TRUE(trace_flush());
  EXPECT_GE(trace_event_count(), 3u) << "phases + tiles expected";

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text.substr(0, 400);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"spgemm.compute\""), std::string::npos);
  EXPECT_NE(text.find("\"tile\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(MetricsTest, DisabledTraceRecordsNoSpans) {
  set_trace_path("");
  trace_clear();
  const auto a = test::random_matrix<double, I>(40, 40, 0.1, 47);
  (void)masked_spgemm<SR>(a, a, a, Config{});
  EXPECT_EQ(trace_event_count(), 0u);
}

// Compiled-out builds still expose the whole API as no-ops; this test runs
// in BOTH modes and pins down the "no-op mode returns zeros" contract.
TEST(MetricsNoOp, SnapshotIsZeroWhenNothingCounts) {
  set_metrics_enabled(false);
  metrics_reset();  // drop counts left behind by the gated fixture tests
  const auto a = test::random_matrix<double, I>(30, 30, 0.1, 53);
  (void)masked_spgemm<SR>(a, a, a, Config{});
  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_TRUE(snapshot.total.all_zero());
  EXPECT_TRUE(snapshot.per_thread.empty());
  EXPECT_TRUE(metrics_delta(snapshot, snapshot).total.all_zero());
}

}  // namespace
}  // namespace tilq
