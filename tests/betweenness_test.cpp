// Tests for betweenness centrality: closed-form values on structured
// graphs and a brute-force all-pairs oracle on random graphs.
#include "algos/betweenness.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>

#include "gen/erdos_renyi.hpp"
#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

Csr<double, I> graph(I n, const std::vector<std::pair<I, I>>& edges) {
  Coo<double, I> coo(n, n);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

/// Brute-force Brandes oracle: independent BFS + path counting per pair,
/// O(n^2 m). Endpoint-exclusive, undirected normalization.
std::vector<double> oracle_betweenness(const Csr<double, I>& adj) {
  const I n = adj.rows();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  // For every ordered (s, t): distribute 1 unit over shortest s-t paths.
  for (I s = 0; s < n; ++s) {
    // BFS from s, with path counts.
    std::vector<I> dist(static_cast<std::size_t>(n), -1);
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    std::queue<I> q;
    q.push(s);
    while (!q.empty()) {
      const I u = q.front();
      q.pop();
      for (const I v : adj.row_cols(u)) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          q.push(v);
        }
        if (dist[static_cast<std::size_t>(v)] ==
            dist[static_cast<std::size_t>(u)] + 1) {
          sigma[static_cast<std::size_t>(v)] += sigma[static_cast<std::size_t>(u)];
        }
      }
    }
    // For each target t, count per-vertex path shares via backward counts.
    for (I t = 0; t < n; ++t) {
      if (t == s || dist[static_cast<std::size_t>(t)] <= 0) {
        continue;
      }
      // sigma_t(v): shortest s-t paths through v = sigma(v) * sigma_rev(v),
      // computed with a reverse BFS from t over the DAG.
      std::vector<double> sigma_rev(static_cast<std::size_t>(n), 0.0);
      sigma_rev[static_cast<std::size_t>(t)] = 1.0;
      for (I d = dist[static_cast<std::size_t>(t)]; d > 0; --d) {
        for (I v = 0; v < n; ++v) {
          if (dist[static_cast<std::size_t>(v)] != d) {
            continue;
          }
          for (const I u : adj.row_cols(v)) {
            if (dist[static_cast<std::size_t>(u)] == d - 1) {
              sigma_rev[static_cast<std::size_t>(u)] +=
                  sigma_rev[static_cast<std::size_t>(v)];
            }
          }
        }
      }
      for (I v = 0; v < n; ++v) {
        if (v == s || v == t || dist[static_cast<std::size_t>(v)] < 0) {
          continue;
        }
        bc[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] *
            sigma_rev[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(t)];
      }
    }
  }
  for (double& c : bc) {
    c *= 0.5;  // each undirected pair counted from both directions
  }
  return bc;
}

TEST(Betweenness, PathGraphCenter) {
  // Path 0-1-2: vertex 1 lies on the single 0-2 path => BC(1) = 1.
  const auto bc = betweenness_centrality(graph(3, {{0, 1}, {1, 2}}));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(Betweenness, StarCenterCarriesAllPairs) {
  // Star with k leaves: centre lies on all C(k,2) leaf pairs.
  const auto bc = betweenness_centrality(
      graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}));
  EXPECT_DOUBLE_EQ(bc[0], 6.0);  // C(4,2)
  for (int leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_DOUBLE_EQ(bc[static_cast<std::size_t>(leaf)], 0.0);
  }
}

TEST(Betweenness, CompleteGraphIsZero) {
  // Every pair is adjacent: no vertex is interior to any shortest path.
  Coo<double, I> coo(5, 5);
  for (I i = 0; i < 5; ++i) {
    for (I j = 0; j < 5; ++j) {
      if (i != j) {
        coo.push(i, j, 1.0);
      }
    }
  }
  const auto bc = betweenness_centrality(build_csr(coo));
  for (const double c : bc) {
    EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

TEST(Betweenness, EvenCycleSplitsTies) {
  // C6: each vertex is the unique middle of one distance-2 pair (+1) and
  // an interior of two opposite pairs at weight 1/2 each (+1): BC = 2.
  const auto bc = betweenness_centrality(
      graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}));
  for (const double c : bc) {
    EXPECT_NEAR(c, 2.0, 1e-12);
  }
}

TEST(Betweenness, MatchesBruteForceOracleOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    ErdosRenyiParams p;
    p.nodes = 40;
    p.edges = 120;
    p.seed = seed;
    const auto g = generate_erdos_renyi(p);
    const auto expected = oracle_betweenness(g);
    const auto actual = betweenness_centrality(g);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t v = 0; v < expected.size(); ++v) {
      EXPECT_NEAR(actual[v], expected[v], 1e-9) << "seed " << seed << " v " << v;
    }
  }
}

TEST(Betweenness, SampledApproximationIsUnbiasedOnSymmetricGraph) {
  // On a vertex-transitive graph every source contributes identically, so
  // any sample gives the exact answer (after scaling).
  const auto g = graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  BetweennessOptions options;
  options.sources = 3;
  const auto bc = betweenness_centrality(g, options);
  double total = 0.0;
  for (const double c : bc) {
    total += c;
  }
  EXPECT_NEAR(total, 12.0, 1e-9);  // exact total = 6 * 2
}

TEST(Betweenness, InvalidArgumentsThrow) {
  EXPECT_THROW(betweenness_centrality(Csr<double, I>(2, 3)), PreconditionError);
}

}  // namespace
}  // namespace tilq
