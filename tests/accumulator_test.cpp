// Typed tests for the shared sparse-accumulator protocol, instantiated for
// both implementations (dense / hash) across all four marker widths — every
// combination the Fig 13 sweep can select. Implementation-specific
// behaviour (overflow counting, hash growth) is covered in
// dense_accumulator_test.cpp / hash_accumulator_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "accum/accumulator.hpp"
#include "accum/bitmap_accumulator.hpp"
#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "core/semiring.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

constexpr I kCols = 64;

template <class Acc>
struct AccumulatorFactory;

template <class MarkerT>
struct AccumulatorFactory<DenseAccumulator<SR, I, MarkerT>> {
  static DenseAccumulator<SR, I, MarkerT> make(ResetPolicy policy) {
    return DenseAccumulator<SR, I, MarkerT>(kCols, policy);
  }
};

template <class MarkerT>
struct AccumulatorFactory<HashAccumulator<SR, I, MarkerT>> {
  static HashAccumulator<SR, I, MarkerT> make(ResetPolicy policy) {
    return HashAccumulator<SR, I, MarkerT>(kCols, policy);
  }
};

template <>
struct AccumulatorFactory<BitmapAccumulator<SR, I>> {
  // The bitmap representation is inherently explicit-reset; the policy
  // parameter is accepted for suite uniformity and ignored.
  static BitmapAccumulator<SR, I> make(ResetPolicy) {
    return BitmapAccumulator<SR, I>(kCols);
  }
};

template <class Acc>
class AccumulatorProtocol : public ::testing::Test {
 protected:
  static Acc make(ResetPolicy policy = ResetPolicy::kMarker) {
    return AccumulatorFactory<Acc>::make(policy);
  }

  static std::vector<std::pair<I, double>> gathered(
      Acc& acc, const std::vector<I>& mask_cols) {
    std::vector<std::pair<I, double>> out;
    acc.gather(std::span<const I>(mask_cols),
               [&](I col, double value) { out.emplace_back(col, value); });
    return out;
  }
};

using AccumulatorTypes = ::testing::Types<
    DenseAccumulator<SR, I, std::uint8_t>, DenseAccumulator<SR, I, std::uint16_t>,
    DenseAccumulator<SR, I, std::uint32_t>, DenseAccumulator<SR, I, std::uint64_t>,
    HashAccumulator<SR, I, std::uint8_t>, HashAccumulator<SR, I, std::uint16_t>,
    HashAccumulator<SR, I, std::uint32_t>, HashAccumulator<SR, I, std::uint64_t>,
    BitmapAccumulator<SR, I>>;
TYPED_TEST_SUITE(AccumulatorProtocol, AccumulatorTypes);

TYPED_TEST(AccumulatorProtocol, SatisfiesConcept) {
  static_assert(MaskedAccumulator<TypeParam, I>);
}

TYPED_TEST(AccumulatorProtocol, AccumulateHitsOnlyMaskedSlots) {
  auto acc = this->make();
  const std::vector<I> mask = {3, 10, 41};
  acc.set_mask(mask);
  EXPECT_TRUE(acc.accumulate(3, 1.0));
  EXPECT_TRUE(acc.accumulate(10, 2.0));
  EXPECT_FALSE(acc.accumulate(4, 9.0));   // not in mask
  EXPECT_FALSE(acc.accumulate(40, 9.0));  // not in mask
  EXPECT_TRUE(acc.accumulate(3, 5.0));    // repeat hit accumulates
  const auto out = this->gathered(acc, mask);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 3);
  EXPECT_DOUBLE_EQ(out[0].second, 6.0);
  EXPECT_EQ(out[1].first, 10);
  EXPECT_DOUBLE_EQ(out[1].second, 2.0);
}

TYPED_TEST(AccumulatorProtocol, IsMaskedReflectsMask) {
  auto acc = this->make();
  const std::vector<I> mask = {0, 7, 63};
  acc.set_mask(mask);
  EXPECT_TRUE(acc.is_masked(0));
  EXPECT_TRUE(acc.is_masked(7));
  EXPECT_TRUE(acc.is_masked(63));
  EXPECT_FALSE(acc.is_masked(1));
  EXPECT_FALSE(acc.is_masked(8));
}

TYPED_TEST(AccumulatorProtocol, UntouchedMaskSlotsAreNotEmitted) {
  auto acc = this->make();
  const std::vector<I> mask = {1, 2, 3};
  acc.set_mask(mask);
  acc.accumulate(2, 4.0);
  const auto out = this->gathered(acc, mask);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 2);
}

TYPED_TEST(AccumulatorProtocol, ZeroSumEntriesAreStillStructural) {
  // GraphBLAS structural semantics: a slot whose products cancel to the
  // semiring zero is still an output entry.
  auto acc = this->make();
  const std::vector<I> mask = {5};
  acc.set_mask(mask);
  acc.accumulate(5, 2.0);
  acc.accumulate(5, -2.0);
  const auto out = this->gathered(acc, mask);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].second, 0.0);
}

TYPED_TEST(AccumulatorProtocol, GatherPreservesMaskOrder) {
  auto acc = this->make();
  const std::vector<I> mask = {2, 17, 30, 55};
  acc.set_mask(mask);
  // Touch in reverse order.
  acc.accumulate(55, 1.0);
  acc.accumulate(30, 1.0);
  acc.accumulate(17, 1.0);
  acc.accumulate(2, 1.0);
  const auto out = this->gathered(acc, mask);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].first, 2);
  EXPECT_EQ(out[1].first, 17);
  EXPECT_EQ(out[2].first, 30);
  EXPECT_EQ(out[3].first, 55);
}

TYPED_TEST(AccumulatorProtocol, FinishRowInvalidatesState) {
  for (const ResetPolicy policy : {ResetPolicy::kMarker, ResetPolicy::kExplicit}) {
    auto acc = this->make(policy);
    const std::vector<I> mask = {4, 9};
    acc.set_mask(mask);
    acc.accumulate(4, 3.0);
    acc.finish_row(mask);
    // After finishing the row, old slots must not be masked or gatherable.
    EXPECT_FALSE(acc.is_masked(4)) << to_string(policy);
    EXPECT_FALSE(acc.is_masked(9)) << to_string(policy);
    EXPECT_TRUE(this->gathered(acc, mask).empty()) << to_string(policy);
  }
}

TYPED_TEST(AccumulatorProtocol, ManyRowsStayIsolated) {
  // Stale state from earlier rows must never leak — across enough rows to
  // force overflow resets for the narrow marker widths.
  for (const ResetPolicy policy : {ResetPolicy::kMarker, ResetPolicy::kExplicit}) {
    auto acc = this->make(policy);
    for (int row = 0; row < 1000; ++row) {
      const I base = row % (kCols - 2);
      const std::vector<I> mask = {base, base + 1};
      acc.set_mask(mask);
      EXPECT_TRUE(acc.accumulate(base, static_cast<double>(row)));
      const auto out = this->gathered(acc, mask);
      ASSERT_EQ(out.size(), 1u) << "row " << row << " policy " << to_string(policy);
      EXPECT_EQ(out[0].first, base);
      EXPECT_DOUBLE_EQ(out[0].second, static_cast<double>(row));
      acc.finish_row(mask);
    }
  }
}

TYPED_TEST(AccumulatorProtocol, EmptyMaskMakesEverythingMiss) {
  auto acc = this->make();
  acc.set_mask(std::span<const I>{});
  EXPECT_FALSE(acc.accumulate(0, 1.0));
  EXPECT_FALSE(acc.is_masked(0));
  acc.finish_row(std::span<const I>{});
}

TYPED_TEST(AccumulatorProtocol, UnmaskedProtocolAccumulatesAndSorts) {
  auto acc = this->make();
  acc.begin_unmasked_row(kCols);
  acc.accumulate_any(40, 1.0);
  acc.accumulate_any(3, 2.0);
  acc.accumulate_any(40, 4.0);
  acc.accumulate_any(21, 8.0);
  std::vector<std::pair<I, double>> out;
  acc.gather_unmasked([&](I col, double value) { out.emplace_back(col, value); });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 3);
  EXPECT_DOUBLE_EQ(out[0].second, 2.0);
  EXPECT_EQ(out[1].first, 21);
  EXPECT_DOUBLE_EQ(out[1].second, 8.0);
  EXPECT_EQ(out[2].first, 40);
  EXPECT_DOUBLE_EQ(out[2].second, 5.0);
  acc.finish_row(std::span<const I>{});
}

TYPED_TEST(AccumulatorProtocol, UnmaskedThenMaskedRowsInterleave) {
  for (const ResetPolicy policy : {ResetPolicy::kMarker, ResetPolicy::kExplicit}) {
    auto acc = this->make(policy);
    // Unmasked row...
    acc.begin_unmasked_row(kCols);
    acc.accumulate_any(10, 1.0);
    acc.finish_row(std::span<const I>{});
    // ...must not leak into the next masked row.
    const std::vector<I> mask = {10, 11};
    acc.set_mask(mask);
    const auto out = this->gathered(acc, mask);
    EXPECT_TRUE(out.empty()) << to_string(policy);
    acc.finish_row(mask);
  }
}

}  // namespace
}  // namespace tilq
