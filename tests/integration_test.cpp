// End-to-end integration tests: the complete pipelines a user would run —
// generate / load, tune, compute, analyze — crossing every module boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "tilq/tilq.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

TEST(Integration, CollectionToTriangleCountsThroughEveryBaseline) {
  // One small analogue per graph kind through generation -> symmetrize ->
  // count via tuned kernel and both baseline policies: all must agree.
  for (const char* name : {"GAP-road", "com-Orkut", "circuit5M", "uk-2002"}) {
    const auto g = symmetrize(make_collection_graph(name, 0.05));
    using SR = PlusPair<std::int64_t>;
    const auto a = convert_values<std::int64_t>(g);

    const auto tuned = masked_spgemm<SR>(a, a, a);
    const auto via_ssgb = baselines::ssgb_like<SR>(a, a, a);
    const auto via_grb = baselines::grb_like<SR>(a, a, a);
    EXPECT_EQ(tuned, via_ssgb) << name;
    EXPECT_EQ(tuned, via_grb) << name;
  }
}

TEST(Integration, MatrixMarketRoundTripPreservesKernelResults) {
  // Generate -> write .mtx -> read back -> identical masked product.
  const auto g = make_collection_graph("as-Skitter", 0.05);
  std::ostringstream buffer;
  write_matrix_market(buffer, g);
  std::istringstream in(buffer.str());
  const auto reloaded = read_matrix_market(in);
  ASSERT_EQ(g, reloaded);

  using SR = PlusTimes<double>;
  EXPECT_EQ(masked_spgemm<SR>(g, g, g), masked_spgemm<SR>(reloaded, reloaded, reloaded));
}

TEST(Integration, TunedConfigBeatsNothingButStaysCorrect) {
  // Full Fig-12 flow on a real analogue; the winner must reproduce the
  // default config's result bit-for-bit.
  const auto g = make_collection_graph("circuit5M", 0.08);
  TunerOptions options;
  options.tile_counts = {8, 64};
  options.kappas = {0.1, 1.0};
  options.timing.budget_seconds = 0.02;
  options.timing.max_iterations = 2;
  options.timing.min_iterations = 1;
  using SR = PlusTimes<double>;
  const TunerReport report = tune<SR>(g, g, g, options);
  EXPECT_EQ(masked_spgemm<SR>(g, g, g),
            masked_spgemm<SR>(g, g, g, report.best));
}

TEST(Integration, GraphAnalyticsPipelineIsConsistent) {
  // One graph through every analytic: the invariants that tie them together.
  const auto g = symmetrize(make_collection_graph("com-LiveJournal", 0.08));
  const I n = g.rows();

  // Components partition the vertices.
  const auto comps = connected_components(g);
  EXPECT_LE(comps.largest_size, n);

  // BFS (direct and LA) from the giant component agree everywhere.
  const I source = largest_component_member(g);
  const auto direct = bfs(g, source);
  const auto la = bfs_linear_algebra(g, source);
  EXPECT_EQ(direct.level, la.level);
  // BFS reach equals the source's component size.
  EXPECT_EQ(direct.reached, comps.largest_size);

  // Triangles: the k-truss with k = 3 keeps exactly the edges with
  // support >= 1, so a graph with zero triangles has an empty 3-truss.
  const auto triangles = count_triangles(g);
  const auto truss = ktruss(g, 3);
  if (triangles == 0) {
    EXPECT_EQ(truss.edges, 0);
  } else {
    EXPECT_GT(truss.edges, 0);
  }

  // Degeneracy bounds: any k-truss edge needs k-2 triangles through it, so
  // the max truss is at most degeneracy + 1; core numbers bound degrees.
  const auto cores = kcore_decomposition(g);
  EXPECT_LE(max_truss(g), cores.degeneracy + 1);

  // PageRank is a distribution over the vertices.
  const auto pr = pagerank(g);
  double total = 0.0;
  for (const double r : pr.rank) {
    total += r;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Integration, CscPipelineMatchesCsr) {
  const auto g = make_collection_graph("stokes", 0.05);
  using SR = PlusTimes<double>;
  const auto row_wise = masked_spgemm<SR>(g, g, g);
  const auto csc = Csc<double, I>::from_csr(g);
  const auto col_wise = masked_spgemm_csc<SR>(csc, csc, csc);
  EXPECT_EQ(row_wise, col_wise.to_csr());
}

TEST(Integration, PredictorWorksAcrossTheCollection) {
  using SR = PlusTimes<double>;
  for (const std::string& name : collection_names()) {
    const auto g = make_collection_graph(name, 0.04);
    const Config config = predict_config(g, g, g);
    const auto expected = masked_spgemm<SR>(g, g, g);
    EXPECT_EQ(expected, masked_spgemm<SR>(g, g, g, config)) << name;
  }
}

}  // namespace
}  // namespace tilq
