// Tests for the k-truss decomposition.
#include "algos/ktruss.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "algos/triangle_count.hpp"
#include "gen/rmat.hpp"
#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

Csr<double, I> graph(I n, const std::vector<std::pair<I, I>>& edges) {
  Coo<double, I> coo(n, n);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

Csr<double, I> complete_graph(I n) {
  Coo<double, I> coo(n, n);
  for (I i = 0; i < n; ++i) {
    for (I j = 0; j < n; ++j) {
      if (i != j) {
        coo.push(i, j, 1.0);
      }
    }
  }
  return build_csr(coo);
}

TEST(Ktruss, CompleteGraphIsItsOwnNTruss) {
  // K_n is an n-truss (every edge in n-2 triangles) but not an (n+1)-truss.
  const auto k5 = complete_graph(5);
  const auto t5 = ktruss(k5, 5);
  EXPECT_EQ(t5.edges, 10);
  EXPECT_EQ(t5.truss.nnz(), k5.nnz());
  const auto t6 = ktruss(k5, 6);
  EXPECT_EQ(t6.edges, 0);
}

TEST(Ktruss, TriangleWithPendantEdge) {
  // Triangle {0,1,2} plus pendant edge {2,3}: the 3-truss drops the pendant.
  const auto g = graph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto t = ktruss(g, 3);
  EXPECT_EQ(t.edges, 3);
  EXPECT_TRUE(t.truss.contains(0, 1));
  EXPECT_FALSE(t.truss.contains(2, 3));
  EXPECT_FALSE(t.truss.contains(3, 2));
}

TEST(Ktruss, CascadingRemoval) {
  // Chain of triangles sharing single edges: 4-truss removal cascades until
  // nothing is left (no edge is in 2 triangles after its neighbour dies).
  const auto g = graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}, {3, 4},
                           {2, 4}});
  const auto t4 = ktruss(g, 4);
  EXPECT_EQ(t4.edges, 0);
  EXPECT_GT(t4.iterations, 1);  // removal must cascade, not converge at once
}

TEST(Ktruss, TwoTrussKeepsEverything) {
  const auto g = graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto t = ktruss(g, 2);
  EXPECT_EQ(t.edges, 3);
}

TEST(Ktruss, InvalidArgumentsThrow) {
  EXPECT_THROW(ktruss(Csr<double, I>(2, 3), 3), PreconditionError);
  EXPECT_THROW(ktruss(complete_graph(3), 1), PreconditionError);
}

TEST(Ktruss, MonotoneInK) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  const auto g = generate_rmat(p);
  std::int64_t previous = g.nnz() / 2;
  for (int k = 3; k <= 6; ++k) {
    const auto t = ktruss(g, k);
    EXPECT_LE(t.edges, previous) << "k=" << k;
    previous = t.edges;
  }
}

TEST(Ktruss, ResultIsActuallyAKTruss) {
  // Post-condition: every edge of the k-truss is in >= k-2 triangles
  // *within the truss*.
  RmatParams p;
  p.scale = 7;
  p.edge_factor = 10;
  const auto g = generate_rmat(p);
  const int k = 4;
  const auto t = ktruss(g, k);
  if (t.edges > 0) {
    const auto support = edge_support(t.truss);
    for (I i = 0; i < support.rows(); ++i) {
      for (const std::int64_t s : support.row_vals(i)) {
        EXPECT_GE(s, k - 2);
      }
    }
    // Also: support pattern covers every truss edge (no unsupported edges).
    EXPECT_EQ(support.nnz(), t.truss.nnz());
  }
}

TEST(MaxTruss, KnownValues) {
  EXPECT_EQ(max_truss(complete_graph(5)), 5);
  EXPECT_EQ(max_truss(graph(4, {{0, 1}, {1, 2}, {2, 3}})), 2);
  EXPECT_EQ(max_truss(graph(3, {{0, 1}, {1, 2}, {0, 2}})), 3);
}

}  // namespace
}  // namespace tilq
