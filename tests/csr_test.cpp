// Tests for the Csr container: construction, invariants, accessors, and
// the structural validator.
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using M = Csr<double, I>;

M small_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return M(3, 3, {0, 2, 2, 4}, {0, 2, 0, 1}, {1.0, 2.0, 3.0, 4.0});
}

TEST(Csr, DefaultConstructedIsEmpty) {
  const M m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.check());
}

TEST(Csr, ShapeOnlyConstructor) {
  const M m(5, 7);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 7);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.check());
  for (I i = 0; i < 5; ++i) {
    EXPECT_EQ(m.row_nnz(i), 0);
  }
}

TEST(Csr, NegativeDimensionThrows) {
  EXPECT_THROW(M(-1, 3), PreconditionError);
  EXPECT_THROW(M(3, -1), PreconditionError);
}

TEST(Csr, ArrayConstructorBasics) {
  const M m = small_matrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_TRUE(m.check());
}

TEST(Csr, MismatchedArraysThrow) {
  // row_ptr too short.
  EXPECT_THROW(M(3, 3, {0, 2, 4}, {0, 2, 0, 1}, {1, 2, 3, 4}), PreconditionError);
  // col/val length mismatch.
  EXPECT_THROW(M(3, 3, {0, 2, 2, 4}, {0, 2, 0, 1}, {1, 2, 3}), PreconditionError);
  // row_ptr not ending at nnz.
  EXPECT_THROW(M(3, 3, {0, 2, 2, 3}, {0, 2, 0, 1}, {1, 2, 3, 4}), PreconditionError);
}

TEST(Csr, RowAccessors) {
  const M m = small_matrix();
  EXPECT_EQ(m.row_nnz(0), 2);
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.row_nnz(2), 2);

  const auto cols0 = m.row_cols(0);
  ASSERT_EQ(cols0.size(), 2u);
  EXPECT_EQ(cols0[0], 0);
  EXPECT_EQ(cols0[1], 2);

  const auto vals2 = m.row_vals(2);
  ASSERT_EQ(vals2.size(), 2u);
  EXPECT_DOUBLE_EQ(vals2[0], 3.0);
  EXPECT_DOUBLE_EQ(vals2[1], 4.0);

  EXPECT_TRUE(m.row_cols(1).empty());
}

TEST(Csr, ContainsAndAt) {
  const M m = small_matrix();
  EXPECT_TRUE(m.contains(0, 0));
  EXPECT_TRUE(m.contains(0, 2));
  EXPECT_FALSE(m.contains(0, 1));
  EXPECT_FALSE(m.contains(1, 0));
  EXPECT_TRUE(m.contains(2, 1));

  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);  // missing entry reads as T{}
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
}

TEST(Csr, EqualityComparesEverything) {
  EXPECT_EQ(small_matrix(), small_matrix());
  const M different_value(3, 3, {0, 2, 2, 4}, {0, 2, 0, 1}, {1.0, 2.0, 3.0, 5.0});
  EXPECT_NE(small_matrix(), different_value);
}

TEST(CsrCheck, DetectsUnsortedRow) {
  M m = small_matrix();
  std::swap(m.mutable_col_idx()[0], m.mutable_col_idx()[1]);
  EXPECT_FALSE(m.check());
}

TEST(CsrCheck, DetectsDuplicateColumn) {
  M m = small_matrix();
  m.mutable_col_idx()[1] = 0;  // row 0 becomes {0, 0}
  EXPECT_FALSE(m.check());
}

TEST(CsrCheck, DetectsOutOfRangeColumn) {
  M m = small_matrix();
  m.mutable_col_idx()[3] = 99;
  EXPECT_FALSE(m.check());
}

TEST(CsrCheck, DetectsNonMonotoneRowPtr) {
  M m = small_matrix();
  m.mutable_row_ptr()[1] = 3;
  m.mutable_row_ptr()[2] = 2;
  EXPECT_FALSE(m.check());
}

}  // namespace
}  // namespace tilq
