// Implementation-specific tests for the dense accumulator: marker overflow
// accounting (the width-vs-reset trade of Fig 13) and reset-policy
// differences.
#include "accum/dense_accumulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/semiring.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

TEST(DenseAccumulator, NegativeColsThrows) {
  using Acc = DenseAccumulator<SR, I, std::uint32_t>;
  EXPECT_THROW(Acc(-1), PreconditionError);
}

TEST(DenseAccumulator, EightBitMarkerOverflowsEvery127Rows) {
  // With an 8-bit marker, epochs 1..127 fit (2*127+1 = 255); the 128th
  // finish_row must perform a full reset.
  DenseAccumulator<SR, I, std::uint8_t> acc(16);
  const std::vector<I> mask = {0};
  for (int row = 0; row < 127; ++row) {
    acc.set_mask(mask);
    acc.finish_row(mask);
  }
  EXPECT_EQ(acc.counters().full_resets, 1u);
  for (int row = 0; row < 127; ++row) {
    acc.set_mask(mask);
    acc.finish_row(mask);
  }
  EXPECT_EQ(acc.counters().full_resets, 2u);
}

TEST(DenseAccumulator, SixtyFourBitMarkerNeverOverflowsInPractice) {
  DenseAccumulator<SR, I, std::uint64_t> acc(16);
  const std::vector<I> mask = {0};
  for (int row = 0; row < 100000; ++row) {
    acc.set_mask(mask);
    acc.finish_row(mask);
  }
  EXPECT_EQ(acc.counters().full_resets, 0u);
}

TEST(DenseAccumulator, WiderMarkersResetLessOften) {
  // The paper's trade-off, quantified: full resets per 10k rows must be
  // monotonically non-increasing in marker width.
  const std::vector<I> mask = {0};
  auto resets_for = [&](auto acc) {
    for (int row = 0; row < 10000; ++row) {
      acc.set_mask(mask);
      acc.finish_row(mask);
    }
    return acc.counters().full_resets;
  };
  const auto r8 = resets_for(DenseAccumulator<SR, I, std::uint8_t>(8));
  const auto r16 = resets_for(DenseAccumulator<SR, I, std::uint16_t>(8));
  const auto r32 = resets_for(DenseAccumulator<SR, I, std::uint32_t>(8));
  EXPECT_GT(r8, r16);
  EXPECT_GE(r16, r32);
  EXPECT_EQ(r32, 0u);
  EXPECT_EQ(r8, 10000u / 127u);
}

TEST(DenseAccumulator, ExplicitPolicyNeverFullResets) {
  DenseAccumulator<SR, I, std::uint8_t> acc(16, ResetPolicy::kExplicit);
  const std::vector<I> mask = {0, 1, 2};
  for (int row = 0; row < 1000; ++row) {
    acc.set_mask(mask);
    acc.accumulate(1, 1.0);
    acc.finish_row(mask);
  }
  EXPECT_EQ(acc.counters().full_resets, 0u);
  EXPECT_EQ(acc.policy(), ResetPolicy::kExplicit);
}

TEST(DenseAccumulator, CorrectAcrossOverflowBoundary) {
  // Values accumulated in the row right after a full reset must be exact.
  DenseAccumulator<SR, I, std::uint8_t> acc(8);
  const std::vector<I> mask = {2, 5};
  double expected_row_value = 0.0;
  for (int row = 0; row < 400; ++row) {
    acc.set_mask(mask);
    expected_row_value = static_cast<double>(row + 1);
    acc.accumulate(5, expected_row_value);
    double seen = -1.0;
    acc.gather(std::span<const I>(mask), [&](I col, double v) {
      if (col == 5) {
        seen = v;
      }
    });
    ASSERT_DOUBLE_EQ(seen, expected_row_value) << "row " << row;
    acc.finish_row(mask);
  }
  EXPECT_GE(acc.counters().full_resets, 3u);
}

TEST(DenseAccumulator, MinPlusSemiringUsesItsZero) {
  // With MinPlus, zero() is +inf-like; set_mask must initialize slots to it
  // so the first accumulate wins the min.
  using MP = MinPlus<std::int64_t>;
  DenseAccumulator<MP, I, std::uint32_t> acc(4);
  const std::vector<I> mask = {1};
  acc.set_mask(mask);
  acc.accumulate(1, 7);
  acc.accumulate(1, 3);
  acc.accumulate(1, 9);
  std::int64_t seen = -1;
  acc.gather(std::span<const I>(mask), [&](I, std::int64_t v) { seen = v; });
  EXPECT_EQ(seen, 3);
}

}  // namespace
}  // namespace tilq
