// Tests for triangle counting: exact counts on known graphs, method
// agreement (all three formulations count the same triangles), and
// config-independence (every kernel variant counts the same).
#include "algos/triangle_count.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "sparse/build.hpp"
#include "sparse/ops.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

/// Undirected graph from an edge list.
Csr<double, I> graph(I n, const std::vector<std::pair<I, I>>& edges) {
  Coo<double, I> coo(n, n);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

/// Complete graph K_n: C(n, 3) triangles.
Csr<double, I> complete_graph(I n) {
  Coo<double, I> coo(n, n);
  for (I i = 0; i < n; ++i) {
    for (I j = 0; j < n; ++j) {
      if (i != j) {
        coo.push(i, j, 1.0);
      }
    }
  }
  return build_csr(coo);
}

/// Brute-force oracle: enumerate ordered vertex triples.
std::int64_t brute_force_triangles(const Csr<double, I>& adj) {
  std::int64_t count = 0;
  for (I u = 0; u < adj.rows(); ++u) {
    for (const I v : adj.row_cols(u)) {
      if (v <= u) {
        continue;
      }
      for (const I w : adj.row_cols(v)) {
        if (w > v && adj.contains(u, w)) {
          ++count;
        }
      }
    }
  }
  return count;
}

constexpr TriangleMethod kAllMethods[] = {
    TriangleMethod::kBurkhardt, TriangleMethod::kCohen, TriangleMethod::kSandia};

TEST(TriangleCount, SingleTriangle) {
  const auto g = graph(3, {{0, 1}, {1, 2}, {0, 2}});
  for (const TriangleMethod m : kAllMethods) {
    EXPECT_EQ(count_triangles(g, m), 1) << to_string(m);
  }
}

TEST(TriangleCount, PathHasNoTriangles) {
  const auto g = graph(4, {{0, 1}, {1, 2}, {2, 3}});
  for (const TriangleMethod m : kAllMethods) {
    EXPECT_EQ(count_triangles(g, m), 0) << to_string(m);
  }
}

TEST(TriangleCount, StarHasNoTriangles) {
  const auto g = graph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  EXPECT_EQ(count_triangles(g), 0);
}

TEST(TriangleCount, CompleteGraphs) {
  // K_n has C(n,3) triangles.
  for (const I n : {4, 5, 7, 10}) {
    const std::int64_t expected = n * (n - 1) * (n - 2) / 6;
    for (const TriangleMethod m : kAllMethods) {
      EXPECT_EQ(count_triangles(complete_graph(n), m), expected)
          << "K" << n << " " << to_string(m);
    }
  }
}

TEST(TriangleCount, TwoDisjointTriangles) {
  const auto g = graph(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(count_triangles(g), 2);
}

TEST(TriangleCount, BowtieSharingAVertex) {
  const auto g = graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  EXPECT_EQ(count_triangles(g), 2);
}

class TriangleMethodsAgree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriangleMethodsAgree, OnRandomGraphsAndMatchBruteForce) {
  ErdosRenyiParams p;
  p.nodes = 120;
  p.edges = 900;
  p.seed = GetParam();
  const auto g = generate_erdos_renyi(p);
  const std::int64_t expected = brute_force_triangles(g);
  for (const TriangleMethod m : kAllMethods) {
    EXPECT_EQ(count_triangles(g, m), expected)
        << to_string(m) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleMethodsAgree,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TriangleCount, ConfigIndependence) {
  // Every kernel/accumulator combination must count identically.
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 6;
  const auto g = generate_rmat(p);
  const std::int64_t expected = brute_force_triangles(g);
  for (const MaskStrategy strategy :
       {MaskStrategy::kVanilla, MaskStrategy::kMaskFirst,
        MaskStrategy::kCoIterate, MaskStrategy::kHybrid}) {
    for (const AccumulatorKind acc :
         {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
      Config config;
      config.strategy = strategy;
      config.accumulator = acc;
      EXPECT_EQ(count_triangles(g, TriangleMethod::kSandia, config), expected)
          << config.describe();
    }
  }
}

TEST(TriangleCount, RequiresSquare) {
  EXPECT_THROW(count_triangles(Csr<double, I>(2, 3)), PreconditionError);
}

TEST(EdgeSupport, CountsTrianglesPerEdge) {
  // Bowtie: edges of each triangle have support 1 except none shared.
  const auto g = graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  const auto support = edge_support(g);
  EXPECT_EQ(support.at(0, 1), 1);
  EXPECT_EQ(support.at(1, 2), 1);
  EXPECT_EQ(support.at(3, 4), 1);
  // Support pattern is a subset of the adjacency pattern.
  EXPECT_LE(support.nnz(), g.nnz());
}

TEST(EdgeSupport, CompleteGraphSupportIsNMinusTwo) {
  const auto support = edge_support(complete_graph(6));
  for (I i = 0; i < 6; ++i) {
    for (const std::int64_t v : support.row_vals(i)) {
      EXPECT_EQ(v, 4);  // each edge of K6 is in n-2 triangles
    }
  }
}

}  // namespace
}  // namespace tilq
