// Tests for the staged tuner (Fig 12): with a synthetic cost model the
// winner of each stage must be found, stages must run in the paper's order,
// and the real tune() must return a config that actually computes correctly.
#include "core/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

TunerOptions small_options() {
  TunerOptions options;
  options.tile_counts = {2, 8, 32};
  options.kappas = {0.1, 1.0, 10.0};
  options.timing = {.budget_seconds = 0.01, .max_iterations = 2,
                    .min_iterations = 1, .warmup = false};
  return options;
}

TEST(TunerWith, FindsTheSyntheticOptimum) {
  // Cost model with a unique optimum: hash accumulator, balanced tiling,
  // dynamic scheduling, 8 tiles, kappa = 1, 16-bit marker.
  const Evaluate model = [](const Config& config) {
    double cost = 100.0;
    cost += config.accumulator == AccumulatorKind::kHash ? 0.0 : 10.0;
    cost += config.tiling == Tiling::kFlopBalanced ? 0.0 : 5.0;
    cost += config.schedule == Schedule::kDynamic ? 0.0 : 3.0;
    cost += std::abs(static_cast<double>(config.num_tiles) - 8.0);
    if (config.strategy == MaskStrategy::kHybrid) {
      cost -= 20.0 / (1.0 + std::abs(std::log10(config.coiteration_factor)));
    }
    cost += config.marker_width == MarkerWidth::k16 ? -2.0 : 0.0;
    return cost;
  };

  const TunerReport report = tune_with(model, small_options());
  EXPECT_EQ(report.best.accumulator, AccumulatorKind::kHash);
  EXPECT_EQ(report.best.tiling, Tiling::kFlopBalanced);
  EXPECT_EQ(report.best.schedule, Schedule::kDynamic);
  EXPECT_EQ(report.best.num_tiles, 8);
  EXPECT_EQ(report.best.strategy, MaskStrategy::kHybrid);
  EXPECT_DOUBLE_EQ(report.best.coiteration_factor, 1.0);
  EXPECT_EQ(report.best.marker_width, MarkerWidth::k16);
  EXPECT_DOUBLE_EQ(report.best_ms, model(report.best));
}

TEST(TunerWith, StageOneSweepsTheFullCross) {
  int calls = 0;
  const Evaluate model = [&](const Config&) {
    ++calls;
    return 1.0;
  };
  const TunerOptions options = small_options();
  const TunerReport report = tune_with(model, options);
  // Stage 1: 2 accumulators x 2 tilings x 2 schedules x 3 tile counts.
  EXPECT_EQ(report.stage_tiling.size(), 24u);
  // Stage 2: 3 kappas. Stage 3: 3 non-incumbent widths.
  EXPECT_EQ(report.stage_coiteration.size(), 3u);
  EXPECT_EQ(report.stage_accumulator.size(), 3u);
  EXPECT_EQ(calls, 24 + 3 + 3);
}

TEST(TunerWith, StageOneUsesMaskFirstOnly) {
  const Evaluate model = [](const Config& config) {
    EXPECT_NE(config.strategy, MaskStrategy::kVanilla);
    return 1.0;
  };
  const TunerReport report = tune_with(model, small_options());
  for (const TunerTrial& trial : report.stage_tiling) {
    EXPECT_EQ(trial.config.strategy, MaskStrategy::kMaskFirst);
  }
  for (const TunerTrial& trial : report.stage_coiteration) {
    EXPECT_EQ(trial.config.strategy, MaskStrategy::kHybrid);
  }
}

TEST(TunerWith, MaskFirstWinsWhenCoiterationHurts) {
  // If every hybrid candidate is worse, the stage-1 winner must survive.
  const Evaluate model = [](const Config& config) {
    return config.strategy == MaskStrategy::kHybrid ? 50.0 : 10.0;
  };
  const TunerReport report = tune_with(model, small_options());
  EXPECT_EQ(report.best.strategy, MaskStrategy::kMaskFirst);
}

TEST(TunerWith, EmptySweepsThrow) {
  const Evaluate model = [](const Config&) { return 1.0; };
  TunerOptions options = small_options();
  options.tile_counts.clear();
  EXPECT_THROW(tune_with(model, options), PreconditionError);
  options = small_options();
  options.kappas.clear();
  EXPECT_THROW(tune_with(model, options), PreconditionError);
}

TEST(Tune, EndToEndProducesAValidConfig) {
  const auto a = test::random_matrix<double, I>(60, 60, 0.08, 99);
  TunerOptions options = small_options();
  const TunerReport report = tune<SR>(a, a, a, options);
  // The tuned config must reproduce the oracle result.
  const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
  const auto actual = masked_spgemm<SR>(a, a, a, report.best);
  EXPECT_TRUE(test::csr_equal(expected, actual));
  EXPECT_GT(report.best_ms, 0.0);
  EXPECT_FALSE(report.stage_tiling.empty());
}

TEST(Tune, WinnerDecisionsShowUpInEmittedMetrics) {
  if (!kMetricsCompiled) {
    GTEST_SKIP() << "instrumentation compiled out (TILQ_METRICS=OFF)";
  }
  const auto a = test::random_matrix<double, I>(60, 60, 0.08, 99);
  const TunerReport report = tune<SR>(a, a, a, small_options());

  // Re-run the winner with counting on: the counters must reflect the
  // decisions the tuner made (tiling granularity, iteration strategy).
  set_metrics_enabled(true);
  metrics_reset();
  ExecutionStats stats;
  (void)masked_spgemm<SR>(a, a, a, report.best, stats);
  const MetricsSnapshot snapshot = metrics_snapshot();
  set_metrics_enabled(false);

  EXPECT_EQ(snapshot.total.tiles_executed,
            static_cast<std::uint64_t>(stats.tiles));
  EXPECT_EQ(snapshot.total.rows_processed,
            static_cast<std::uint64_t>(a.rows()));
  EXPECT_GT(snapshot.total.flops, 0u);
  EXPECT_EQ(snapshot.total.accum_inserts, stats.accum_inserts);
  switch (report.best.strategy) {
    case MaskStrategy::kMaskFirst:
    case MaskStrategy::kVanilla:
      EXPECT_EQ(snapshot.total.binary_search_steps, 0u);
      EXPECT_EQ(snapshot.total.hybrid_coiter_picks, 0u);
      EXPECT_EQ(snapshot.total.hybrid_linear_picks, 0u);
      break;
    case MaskStrategy::kCoIterate:
      EXPECT_GT(snapshot.total.binary_search_steps, 0u);
      break;
    case MaskStrategy::kHybrid:
      EXPECT_GT(snapshot.total.hybrid_coiter_picks +
                    snapshot.total.hybrid_linear_picks,
                0u);
      break;
  }
}

}  // namespace
}  // namespace tilq
