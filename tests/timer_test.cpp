// Tests for the measurement protocol (support/timer.hpp).
#include "support/timer.hpp"

#include <gtest/gtest.h>

namespace tilq {
namespace {

TEST(WallTimer, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  const double t1 = timer.seconds();
  const double t2 = timer.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1.0;
  }
  const double before = timer.seconds();
  timer.reset();
  EXPECT_LE(timer.seconds(), before + 1.0);
}

TEST(Measure, HonorsMinIterations) {
  int calls = 0;
  TimingOptions options;
  options.budget_seconds = 0.0;  // budget exhausted immediately
  options.min_iterations = 5;
  options.warmup = false;
  const TimingResult result = measure([&] { ++calls; }, options);
  EXPECT_EQ(result.iterations, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(result.samples_ms.size(), 5u);
}

TEST(Measure, WarmupRunsExtraCall) {
  int calls = 0;
  TimingOptions options;
  options.budget_seconds = 0.0;
  options.min_iterations = 3;
  options.warmup = true;
  const TimingResult result = measure([&] { ++calls; }, options);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_EQ(calls, 4);  // 3 measured + 1 warmup
}

TEST(Measure, HonorsMaxIterations) {
  int calls = 0;
  TimingOptions options;
  options.budget_seconds = 60.0;  // would run forever without the cap
  options.max_iterations = 7;
  options.min_iterations = 1;
  options.warmup = false;
  const TimingResult result = measure([&] { ++calls; }, options);
  EXPECT_EQ(result.iterations, 7);
}

TEST(Measure, StatisticsAreOrdered) {
  TimingOptions options;
  options.budget_seconds = 0.0;
  options.min_iterations = 10;
  options.warmup = false;
  volatile double sink = 0.0;
  const TimingResult result = measure(
      [&] {
        for (int i = 0; i < 1000; ++i) {
          sink = sink + 1.0;
        }
      },
      options);
  EXPECT_LE(result.min_ms, result.median_ms);
  EXPECT_LE(result.median_ms, result.max_ms);
  EXPECT_LE(result.min_ms, result.mean_ms);
  EXPECT_LE(result.mean_ms, result.max_ms);
  EXPECT_TRUE(std::is_sorted(result.samples_ms.begin(), result.samples_ms.end()));
}

}  // namespace
}  // namespace tilq
