// Tests for feature extraction and the model-based config predictor.
#include "core/model.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/masked_spgemm.hpp"
#include "gen/circuit.hpp"
#include "gen/collection.hpp"
#include "gen/road_network.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

TEST(Features, KnownSmallProblem) {
  const auto a = csr_from_triplets<double, I>(
      2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}});
  const auto f = extract_features(a, a, a);
  EXPECT_EQ(f.rows, 2);
  EXPECT_EQ(f.cols, 2);
  EXPECT_EQ(f.mask_nnz, 3);
  EXPECT_EQ(f.a_nnz, 3);
  // flops: row 0 hits B rows 0 (nnz 2) and 1 (nnz 1); row 1 hits B row 1.
  EXPECT_EQ(f.flops, 2 + 1 + 1);
  EXPECT_EQ(f.max_mask_row, 2);
  EXPECT_DOUBLE_EQ(f.mean_mask_row, 1.5);
  EXPECT_EQ(f.max_b_row, 2);
}

TEST(Features, RowWorkCvSeparatesGraphKinds) {
  RoadNetworkParams road;
  road.width = 60;
  road.height = 60;
  const auto r = generate_road_network(road);
  const auto road_features = extract_features(r, r, r);

  CircuitParams circuit;
  circuit.nodes = 3600;
  circuit.rails = 4;
  const auto c = generate_circuit(circuit);
  const auto circuit_features = extract_features(c, c, c);

  // Road work is near-uniform; rail rows and rail-adjacency skew circuit
  // work far more (CV several times higher).
  EXPECT_LT(road_features.row_work_cv, 0.5);
  EXPECT_GT(circuit_features.row_work_cv, 3.0 * road_features.row_work_cv);
  EXPECT_GT(circuit_features.row_work_cv, 0.5);
}

TEST(Predict, FollowsThePapersTilingRules) {
  ProblemFeatures f;
  f.rows = 100000;
  f.cols = 100000;
  f.row_work_cv = 4.0;
  f.max_b_row = 1000;
  f.mean_mask_row = 10.0;
  const Config config = predict_config(f, 8);
  EXPECT_EQ(config.tiling, Tiling::kFlopBalanced);
  EXPECT_EQ(config.schedule, Schedule::kDynamic);
  EXPECT_GE(config.num_tiles, 16);      // at least 2p
  EXPECT_LE(config.num_tiles, 2048);    // intermediate cap
  EXPECT_EQ(config.marker_width, MarkerWidth::k32);
  EXPECT_EQ(config.threads, 8);
}

TEST(Predict, HybridOnlyWhenCoiterationCanWin) {
  ProblemFeatures heavy_rows;
  heavy_rows.rows = 1000;
  heavy_rows.cols = 1000;
  heavy_rows.max_b_row = 4096;  // log2 = 12, mask 8 -> 96 < 4096
  heavy_rows.mean_mask_row = 8.0;
  EXPECT_EQ(predict_config(heavy_rows, 1).strategy, MaskStrategy::kHybrid);

  ProblemFeatures tiny_rows;
  tiny_rows.rows = 1000;
  tiny_rows.cols = 1000;
  tiny_rows.max_b_row = 3;  // binary search can never beat a 3-entry scan
  tiny_rows.mean_mask_row = 8.0;
  EXPECT_EQ(predict_config(tiny_rows, 1).strategy, MaskStrategy::kMaskFirst);
}

TEST(Predict, AccumulatorSwitchesOnDimension) {
  ProblemFeatures small_dim;
  small_dim.rows = 10000;
  small_dim.cols = 10000;  // 120 KB dense state: cache resident
  small_dim.flops = 1000;
  EXPECT_EQ(predict_config(small_dim, 1).accumulator, AccumulatorKind::kDense);

  ProblemFeatures huge_dim;
  huge_dim.rows = 50'000'000;
  huge_dim.cols = 50'000'000;  // 600 MB dense state
  huge_dim.flops = 1000;       // and sparse writes
  EXPECT_EQ(predict_config(huge_dim, 1).accumulator, AccumulatorKind::kHash);
}

TEST(Predict, PredictedConfigComputesCorrectly) {
  // End to end: the predicted config must produce the oracle result on the
  // paper's kernel shape for several collection analogues.
  for (const char* name : {"GAP-road", "circuit5M"}) {
    const auto a = make_collection_graph(name, 0.05);
    const Config config = predict_config(a, a, a);
    const auto expected = test::reference_masked_spgemm<SR>(a, a, a);
    EXPECT_TRUE(test::csr_equal(expected, masked_spgemm<SR>(a, a, a, config)))
        << name << ": " << config.describe();
  }
}

TEST(Predict, CircuitAnaloguePrefersHybrid) {
  // The rail rows are exactly the case co-iteration exists for.
  const auto c = make_collection_graph("circuit5M", 0.2);
  const Config config = predict_config(c, c, c);
  EXPECT_EQ(config.strategy, MaskStrategy::kHybrid);
}

}  // namespace
}  // namespace tilq
