// Tests for the SS:GB-like and GrB-like baseline policies: both must agree
// with the reference product, and their Configs must encode the documented
// policy points.
#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "gen/collection.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

TEST(GrbConfig, EncodesTheGrbPolicy) {
  const Config config = baselines::make_grb_config(/*threads=*/8);
  EXPECT_EQ(config.num_tiles, 8);  // p tiles for p threads
  EXPECT_EQ(config.tiling, Tiling::kFlopBalanced);
  EXPECT_EQ(config.schedule, Schedule::kStatic);
  EXPECT_EQ(config.strategy, MaskStrategy::kMaskFirst);  // no co-iteration
  EXPECT_EQ(config.reset, ResetPolicy::kExplicit);
  EXPECT_EQ(config.accumulator, AccumulatorKind::kHash);
}

TEST(GrbConfig, AccumulatorFlagIsRespected) {
  const Config config =
      baselines::make_grb_config(4, AccumulatorKind::kDense);
  EXPECT_EQ(config.accumulator, AccumulatorKind::kDense);
}

TEST(SsgbConfig, EncodesTheSsgbPolicy) {
  MatrixStats<I> stats;
  stats.cols = 1000;
  const Config config =
      baselines::make_ssgb_config(stats, /*flops=*/100, /*threads=*/8);
  EXPECT_EQ(config.num_tiles, 16);  // 2p balanced tiles
  EXPECT_EQ(config.tiling, Tiling::kFlopBalanced);
  EXPECT_EQ(config.schedule, Schedule::kDynamic);
  EXPECT_EQ(config.strategy, MaskStrategy::kHybrid);  // push-pull
  EXPECT_EQ(config.reset, ResetPolicy::kMarker);
  EXPECT_EQ(config.marker_width, MarkerWidth::k64);
}

TEST(SsgbConfig, AccumulatorHeuristicSwitchesOnFlopDensity) {
  MatrixStats<I> stats;
  stats.cols = 1000;
  // Few flops relative to dimension -> hash.
  EXPECT_EQ(baselines::make_ssgb_config(stats, 100, 4).accumulator,
            AccumulatorKind::kHash);
  // Many flops relative to dimension -> dense.
  EXPECT_EQ(baselines::make_ssgb_config(stats, 1'000'000, 4).accumulator,
            AccumulatorKind::kDense);
}

TEST(Baselines, BothMatchOracleOnRandomProblems) {
  for (const std::uint64_t seed : {1u, 2u}) {
    const auto mask = test::random_matrix<double, I>(35, 40, 0.12, seed);
    const auto a = test::random_matrix<double, I>(35, 30, 0.12, seed + 5);
    const auto b = test::random_matrix<double, I>(30, 40, 0.12, seed + 9);
    const auto expected = test::reference_masked_spgemm<SR>(mask, a, b);
    EXPECT_TRUE(
        test::csr_equal(expected, baselines::ssgb_like<SR>(mask, a, b)));
    EXPECT_TRUE(test::csr_equal(expected, baselines::grb_like<SR>(mask, a, b)));
    EXPECT_TRUE(test::csr_equal(
        expected,
        baselines::grb_like<SR>(mask, a, b, 2, AccumulatorKind::kDense)));
  }
}

TEST(Baselines, AgreeOnACollectionGraph) {
  // The paper's kernel shape on a small collection analogue.
  const auto g = make_collection_graph("GAP-road", 0.05);
  const auto c_ssgb = baselines::ssgb_like<SR>(g, g, g);
  const auto c_grb = baselines::grb_like<SR>(g, g, g);
  EXPECT_TRUE(test::csr_equal(c_ssgb, c_grb));
  EXPECT_LE(c_ssgb.nnz(), g.nnz());
}

TEST(Baselines, StatsAreReported) {
  const auto g = make_collection_graph("GAP-road", 0.05);
  ExecutionStats stats;
  (void)baselines::ssgb_like<SR>(g, g, g, 2, stats);
  EXPECT_EQ(stats.tiles, 4);  // 2p with p=2
}

}  // namespace
}  // namespace tilq
