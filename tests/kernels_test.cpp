// Row-kernel tests: each of the four iteration strategies (Figs 3/5/7/9)
// against the dense oracle at single-row granularity, with both accumulator
// implementations, plus the hybrid switch behaviour at extreme κ.
#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "sparse/stats.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

struct RowCase {
  Csr<double, I> mask;
  Csr<double, I> a;
  Csr<double, I> b;
};

RowCase make_case(std::uint64_t seed) {
  return {test::random_matrix<double, I>(12, 16, 0.25, seed),
          test::random_matrix<double, I>(12, 14, 0.25, seed + 100),
          test::random_matrix<double, I>(14, 16, 0.25, seed + 200)};
}

template <class Acc>
std::vector<std::pair<I, double>> run_row(MaskStrategy strategy, double kappa,
                                          const RowCase& c, I row, Acc& acc) {
  std::vector<std::pair<I, double>> out;
  compute_row<SR>(strategy, kappa, c.mask, c.a, c.b, row, acc,
                  [&](I col, double value) { out.emplace_back(col, value); });
  return out;
}

std::vector<std::pair<I, double>> oracle_row(const RowCase& c, I row) {
  const auto ref = test::reference_masked_spgemm<SR>(c.mask, c.a, c.b);
  std::vector<std::pair<I, double>> out;
  const auto cols = ref.row_cols(row);
  const auto vals = ref.row_vals(row);
  for (std::size_t p = 0; p < cols.size(); ++p) {
    out.emplace_back(cols[p], vals[p]);
  }
  return out;
}

class KernelStrategies
    : public ::testing::TestWithParam<std::tuple<MaskStrategy, bool>> {};

TEST_P(KernelStrategies, EveryRowMatchesOracle) {
  const auto [strategy, use_hash] = GetParam();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const RowCase c = make_case(seed);
    DenseAccumulator<SR, I, std::uint32_t> dense(c.b.cols());
    HashAccumulator<SR, I, std::uint32_t> hash(
        std::max<I>(max_row_nnz(c.mask), 64));
    for (I row = 0; row < c.a.rows(); ++row) {
      const auto expected = oracle_row(c, row);
      const auto actual = use_hash ? run_row(strategy, 1.0, c, row, hash)
                                   : run_row(strategy, 1.0, c, row, dense);
      ASSERT_EQ(actual, expected)
          << "strategy=" << to_string(strategy) << " hash=" << use_hash
          << " seed=" << seed << " row=" << row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, KernelStrategies,
    ::testing::Combine(::testing::Values(MaskStrategy::kVanilla,
                                         MaskStrategy::kMaskFirst,
                                         MaskStrategy::kCoIterate,
                                         MaskStrategy::kHybrid),
                       ::testing::Bool()),
    [](const auto& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name + (std::get<1>(param_info.param) ? "_hash" : "_dense");
    });

TEST(HybridKernel, ExtremeKappaMatchesPureStrategies) {
  // κ -> 0 must behave exactly like mask-first (all linear scans); κ -> ∞
  // exactly like co-iterate. All three must agree with the oracle, so
  // equality between them is implied — this checks they take the intended
  // branch by comparing against each other on every row.
  const RowCase c = make_case(42);
  DenseAccumulator<SR, I, std::uint32_t> acc(c.b.cols());
  for (I row = 0; row < c.a.rows(); ++row) {
    const auto linear = run_row(MaskStrategy::kMaskFirst, 1.0, c, row, acc);
    const auto hybrid_linear = run_row(MaskStrategy::kHybrid, 0.0, c, row, acc);
    const auto coiter = run_row(MaskStrategy::kCoIterate, 1.0, c, row, acc);
    const auto hybrid_coiter = run_row(MaskStrategy::kHybrid, 1e18, c, row, acc);
    EXPECT_EQ(hybrid_linear, linear) << "row " << row;
    EXPECT_EQ(hybrid_coiter, coiter) << "row " << row;
  }
}

TEST(PreferCoiteration, CostModelCrossover) {
  // mask_nnz * log2(b_nnz) < kappa * b_nnz
  EXPECT_TRUE(detail::prefer_coiteration(1, 1024, 1.0));    // 10 < 1024
  EXPECT_FALSE(detail::prefer_coiteration(1024, 1024, 1.0));  // 10240 > 1024
  EXPECT_FALSE(detail::prefer_coiteration(1, 1024, 0.001));   // 10 > 1.024
  EXPECT_TRUE(detail::prefer_coiteration(1024, 1024, 100.0));
}

TEST(Kernels, EmptyMaskRowEmitsNothing) {
  // Mask with an empty row: every strategy must emit nothing for it.
  const auto mask = csr_from_triplets<double, I>(2, 2, {{0, 0, 1.0}});
  const auto a = csr_from_triplets<double, I>(2, 2, {{1, 0, 2.0}, {1, 1, 2.0}});
  const auto b = csr_from_triplets<double, I>(2, 2, {{0, 0, 3.0}, {1, 1, 3.0}});
  const RowCase c{mask, a, b};
  DenseAccumulator<SR, I, std::uint32_t> acc(2);
  for (const MaskStrategy strategy :
       {MaskStrategy::kVanilla, MaskStrategy::kMaskFirst,
        MaskStrategy::kCoIterate, MaskStrategy::kHybrid}) {
    EXPECT_TRUE(run_row(strategy, 1.0, c, I{1}, acc).empty())
        << to_string(strategy);
  }
}

TEST(Kernels, StrategyNamesRoundTrip) {
  EXPECT_STREQ(to_string(MaskStrategy::kVanilla), "vanilla");
  EXPECT_STREQ(to_string(MaskStrategy::kMaskFirst), "mask-first");
  EXPECT_STREQ(to_string(MaskStrategy::kCoIterate), "co-iterate");
  EXPECT_STREQ(to_string(MaskStrategy::kHybrid), "hybrid");
}

}  // namespace
}  // namespace tilq
