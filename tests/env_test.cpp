// Tests for the runtime environment controls.
#include "support/env.hpp"

#include <gtest/gtest.h>

#include "support/common.hpp"

namespace tilq {
namespace {

TEST(Env, ScheduleRoundTrips) {
  set_runtime_schedule(Schedule::kDynamic);
  EXPECT_EQ(runtime_schedule(), Schedule::kDynamic);
  set_runtime_schedule(Schedule::kStatic);
  EXPECT_EQ(runtime_schedule(), Schedule::kStatic);
}

TEST(Env, ScheduleNames) {
  EXPECT_STREQ(to_string(Schedule::kStatic), "static");
  EXPECT_STREQ(to_string(Schedule::kDynamic), "dynamic");
}

TEST(Env, ThreadControl) {
  const int original = max_threads();
  set_threads(2);
  EXPECT_EQ(max_threads(), 2);
  set_threads(original);
  EXPECT_EQ(max_threads(), original);
  EXPECT_THROW(set_threads(0), PreconditionError);
}

TEST(Env, SummaryMentionsKeyFields) {
  const std::string summary = environment_summary();
  EXPECT_NE(summary.find("threads="), std::string::npos);
  EXPECT_NE(summary.find("openmp="), std::string::npos);
  EXPECT_NE(summary.find("schedule="), std::string::npos);
}

}  // namespace
}  // namespace tilq
