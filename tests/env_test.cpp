// Tests for the runtime environment controls.
#include "support/env.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/common.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/perf.hpp"

namespace tilq {
namespace {

TEST(Env, ScheduleRoundTrips) {
  set_runtime_schedule(Schedule::kDynamic);
  EXPECT_EQ(runtime_schedule(), Schedule::kDynamic);
  set_runtime_schedule(Schedule::kStatic);
  EXPECT_EQ(runtime_schedule(), Schedule::kStatic);
}

TEST(Env, ScheduleNames) {
  EXPECT_STREQ(to_string(Schedule::kStatic), "static");
  EXPECT_STREQ(to_string(Schedule::kDynamic), "dynamic");
}

TEST(Env, ThreadControl) {
  const int original = max_threads();
  set_threads(2);
  EXPECT_EQ(max_threads(), 2);
  set_threads(original);
  EXPECT_EQ(max_threads(), original);
  EXPECT_THROW(set_threads(0), PreconditionError);
}

TEST(Env, PerfDisableSpellings) {
  // The TILQ_PERF classifier accepts exactly the documented disabling
  // spellings; everything else (including unset) defers to the first open.
  for (const char* off : {"0", "off", "OFF", "Off", "false", "FALSE"}) {
    EXPECT_TRUE(perf_env_disables(off)) << off;
  }
  for (const char* on : {"1", "on", "yes", "true", ""}) {
    EXPECT_FALSE(perf_env_disables(on)) << on;
  }
  EXPECT_FALSE(perf_env_disables(nullptr));
}

TEST(Env, PerfFallbackIsSilentExceptOneNotice) {
  // The fallback contract: no matter how many scopes are opened on a
  // machine without usable hardware counters, at most ONE one-line notice
  // is ever printed — and none at all unless metrics are runtime-enabled.
  set_metrics_enabled(true);
  for (int i = 0; i < 200; ++i) {
    const PerfScope scope;
    (void)scope.delta();
  }
  EXPECT_LE(perf_unavailable_notices(), 1);
  if (perf_available()) {
    // Counters work on this machine: the notice must never have fired.
    EXPECT_EQ(perf_unavailable_notices(), 0);
  }
  set_metrics_enabled(false);
}

// The TILQ_FAULT spec grammar: site[:nth|@rate], comma-separated. At
// static initialization a malformed spec must not throw; init_from_env
// catches exactly these errors and prints a one-time stderr notice
// carrying the message below — so the messages must name the bad token,
// or the operator is debugging blind.
TEST(Env, FaultSpecGrammarAcceptsBothTriggerModes) {
  fault::configure("pool-alloc:3,engine-pool-reserve@0.25,hash-sat");
  EXPECT_TRUE(fault::armed(FaultSite::kPoolAllocation));
  EXPECT_TRUE(fault::armed(FaultSite::kEnginePoolReserve));
  EXPECT_TRUE(fault::armed(FaultSite::kHashSaturation));
  EXPECT_FALSE(fault::armed(FaultSite::kMarkerWrap));
  fault::disarm_all();
}

TEST(Env, FaultSpecErrorsNameTheBadToken) {
  const auto message_of = [](const char* spec) {
    try {
      fault::configure(spec);
    } catch (const PreconditionError& e) {
      return std::string(e.message());
    }
    return std::string();  // no throw: the EXPECTs below fail loudly
  };
  EXPECT_NE(message_of("no-such-site").find("no-such-site"),
            std::string::npos);
  EXPECT_NE(message_of("pool-alloc:x").find("pool-alloc:x"),
            std::string::npos);
  EXPECT_NE(message_of("pool-alloc:0").find("pool-alloc:0"),
            std::string::npos);
  EXPECT_NE(message_of("hash-sat@1.5").find("hash-sat@1.5"),
            std::string::npos);
  EXPECT_NE(message_of("hash-sat@").find("hash-sat@"), std::string::npos);
  // A failed configure may leave earlier entries armed; static init
  // disarms on catch, tests do it here.
  fault::disarm_all();
}

TEST(Env, SummaryMentionsKeyFields) {
  const std::string summary = environment_summary();
  EXPECT_NE(summary.find("threads="), std::string::npos);
  EXPECT_NE(summary.find("openmp="), std::string::npos);
  EXPECT_NE(summary.find("schedule="), std::string::npos);
}

}  // namespace
}  // namespace tilq
