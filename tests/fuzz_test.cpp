// Randomized stress tests ("fuzz"): random shapes, densities, and Configs
// against the dense oracle, plus determinism and cross-implementation
// agreement sweeps. These are the tests that caught real bugs during
// development (the hash explicit-reset chain-break surfaced under exactly
// this kind of load), so they run wide by design.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/blocked.hpp"
#include "core/masked_spgemm.hpp"
#include "core/masked_spgemm_2d.hpp"
#include "core/spgemm.hpp"
#include "sparse/ops.hpp"
#include "sparse/validate.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

Config random_config(Xoshiro256& rng) {
  Config config;
  config.strategy = static_cast<MaskStrategy>(rng.uniform_below(4));
  config.accumulator = static_cast<AccumulatorKind>(rng.uniform_below(3));
  switch (rng.uniform_below(4)) {
    case 0:
      config.marker_width = MarkerWidth::k8;
      break;
    case 1:
      config.marker_width = MarkerWidth::k16;
      break;
    case 2:
      config.marker_width = MarkerWidth::k32;
      break;
    default:
      config.marker_width = MarkerWidth::k64;
      break;
  }
  config.reset = rng.bernoulli(0.5) ? ResetPolicy::kMarker : ResetPolicy::kExplicit;
  config.tiling = rng.bernoulli(0.5) ? Tiling::kUniform : Tiling::kFlopBalanced;
  config.schedule = rng.bernoulli(0.5) ? Schedule::kStatic : Schedule::kDynamic;
  config.num_tiles = static_cast<std::int64_t>(1 + rng.uniform_below(300));
  config.coiteration_factor = std::pow(10.0, rng.uniform() * 6.0 - 3.0);
  config.threads = static_cast<int>(1 + rng.uniform_below(4));
  return config;
}

class FuzzRounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRounds, RandomProblemRandomConfigMatchesOracle) {
  Xoshiro256 rng(GetParam() * 7919);
  for (int round = 0; round < 8; ++round) {
    const I rows = static_cast<I>(1 + rng.uniform_below(64));
    const I inner = static_cast<I>(1 + rng.uniform_below(64));
    const I cols = static_cast<I>(1 + rng.uniform_below(64));
    const double density = 0.02 + 0.3 * rng.uniform();
    const auto mask =
        test::random_matrix<double, I>(rows, cols, density, rng());
    const auto a = test::random_matrix<double, I>(rows, inner, density, rng());
    const auto b = test::random_matrix<double, I>(inner, cols, density, rng());
    const Config config = random_config(rng);

    const auto expected = test::reference_masked_spgemm<SR>(mask, a, b);
    const auto actual = masked_spgemm<SR>(mask, a, b, config);
    ASSERT_TRUE(actual.check()) << config.describe();
    ASSERT_TRUE(test::csr_equal(expected, actual))
        << config.describe() << " shape " << rows << "x" << inner << "x"
        << cols << " density " << density;
  }
}

TEST_P(FuzzRounds, TwoDeeTilingAgreesWithOneDee) {
  Xoshiro256 rng(GetParam() * 104729);
  for (int round = 0; round < 6; ++round) {
    const I n = static_cast<I>(8 + rng.uniform_below(80));
    const auto a = test::random_matrix<double, I>(n, n, 0.1 + 0.2 * rng.uniform(),
                                                  rng());
    Config config = random_config(rng);
    if (config.strategy == MaskStrategy::kVanilla) {
      config.strategy = MaskStrategy::kHybrid;  // unsupported in 2D
    }
    Config one_d_config = config;  // same knobs, 1D execution space
    config.num_col_tiles = static_cast<std::int64_t>(1 + rng.uniform_below(20));

    const auto one_d = masked_spgemm<SR>(a, a, a, one_d_config);
    const auto two_d = masked_spgemm_2d<SR>(a, a, a, config);
    ASSERT_TRUE(test::csr_equal(one_d, two_d))
        << one_d_config.describe() << " col_tiles " << config.num_col_tiles;
  }
}

TEST_P(FuzzRounds, BlockedTilingAgreesWithOneDee) {
  Xoshiro256 rng(GetParam() * 49979687);
  for (int round = 0; round < 6; ++round) {
    const I n = static_cast<I>(8 + rng.uniform_below(80));
    const auto a = test::random_matrix<double, I>(n, n, 0.1 + 0.2 * rng.uniform(),
                                                  rng());
    Config config = random_config(rng);
    if (config.strategy == MaskStrategy::kVanilla) {
      config.strategy = MaskStrategy::kHybrid;  // unsupported when blocked
    }
    Config one_d_config = config;
    config.mode = Strategy::kBlocked;
    config.block_cols = static_cast<std::int64_t>(1 + rng.uniform_below(
                                                          static_cast<std::uint64_t>(n) + 8));

    const auto one_d = masked_spgemm<SR>(a, a, a, one_d_config);
    const auto blocked = masked_spgemm<SR>(a, a, a, config);
    ASSERT_TRUE(test::csr_equal(one_d, blocked))
        << one_d_config.describe() << " block_cols " << config.block_cols;
  }
}

// Block-boundary fuzzer: random (including degenerate, zero-width) column
// blocks must slice any valid CSR into segments that reassemble the source
// exactly — local columns remap back via the block origin, and entry_begin
// recovers every value segment. The reassembled matrix must also pass the
// structural validator, closing the loop with CorruptedStructureIsAlways-
// CaughtByValidate below.
TEST_P(FuzzRounds, BlockSliceExtractionRoundTrips) {
  Xoshiro256 rng(GetParam() * 67867967);
  for (int round = 0; round < 12; ++round) {
    const I rows = static_cast<I>(1 + rng.uniform_below(48));
    const I cols = static_cast<I>(1 + rng.uniform_below(96));
    const auto m = test::random_matrix<double, I>(
        rows, cols, 0.02 + 0.3 * rng.uniform(), rng());
    // Random sorted boundaries: 0 and cols always present; interior cuts
    // may collide, producing empty blocks on purpose.
    std::vector<I> block_begin{0};
    const std::uint64_t cuts = rng.uniform_below(6);
    for (std::uint64_t c = 0; c < cuts; ++c) {
      block_begin.push_back(
          static_cast<I>(rng.uniform_below(static_cast<std::uint64_t>(cols) + 1)));
    }
    block_begin.push_back(cols);
    std::sort(block_begin.begin(), block_begin.end());

    const auto slices =
        extract_block_slices(m, std::span<const I>(block_begin));
    ASSERT_EQ(slices.size(), block_begin.size() - 1);

    // Reassemble row by row, in block order.
    std::vector<I> out_row_ptr{0};
    std::vector<I> out_cols;
    std::vector<double> out_vals;
    for (I i = 0; i < rows; ++i) {
      for (std::size_t t = 0; t + 1 < block_begin.size(); ++t) {
        const auto seg = slices[t].row_local_cols(i);
        const auto base = static_cast<std::size_t>(
            slices[t].entry_begin[static_cast<std::size_t>(i)]);
        for (std::size_t q = 0; q < seg.size(); ++q) {
          out_cols.push_back(static_cast<I>(seg[q] + block_begin[t]));
          out_vals.push_back(m.values()[base + q]);
        }
      }
      out_row_ptr.push_back(static_cast<I>(out_cols.size()));
    }
    const Csr<double, I> rebuilt(rows, cols, std::move(out_row_ptr),
                                 std::move(out_cols), std::move(out_vals));
    ASSERT_TRUE(rebuilt.check());
    ASSERT_TRUE(validate(rebuilt).ok()) << validate(rebuilt).summary();
    ASSERT_TRUE(test::csr_equal(m, rebuilt)) << "blocks " << slices.size();
  }
}

TEST_P(FuzzRounds, AllStrategiesAgreeWithEachOther) {
  Xoshiro256 rng(GetParam() * 15485863);
  const I n = static_cast<I>(16 + rng.uniform_below(48));
  const auto a = test::random_matrix<double, I>(n, n, 0.15, rng());
  Csr<double, I> reference;
  bool first = true;
  for (const MaskStrategy strategy :
       {MaskStrategy::kVanilla, MaskStrategy::kMaskFirst,
        MaskStrategy::kCoIterate, MaskStrategy::kHybrid}) {
    for (const AccumulatorKind acc :
         {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
      Config config;
      config.strategy = strategy;
      config.accumulator = acc;
      const auto c = masked_spgemm<SR>(a, a, a, config);
      if (first) {
        reference = c;
        first = false;
      } else {
        ASSERT_TRUE(test::csr_equal(reference, c)) << config.describe();
      }
    }
  }
  // The two-phase pipeline computed with disjoint code must agree too.
  ASSERT_TRUE(test::csr_equal(reference, two_phase_masked_spgemm<SR>(a, a, a)));
}

TEST_P(FuzzRounds, RepeatedRunsAreDeterministic) {
  Xoshiro256 rng(GetParam() * 32452843);
  const auto a = test::random_matrix<double, I>(50, 50, 0.2, rng());
  Config config = random_config(rng);
  config.threads = 4;  // oversubscribed: exercises the parallel path
  const auto first = masked_spgemm<SR>(a, a, a, config);
  for (int run = 0; run < 5; ++run) {
    ASSERT_TRUE(test::csr_equal(first, masked_spgemm<SR>(a, a, a, config)))
        << "run " << run << " " << config.describe();
  }
}

// Structure-corruption fuzzer (docs/ROBUSTNESS.md): mutate one structural
// array of a valid CSR at random and assert the validator reports the
// damage — so the plan()-boundary validation (Config::validate_inputs)
// rejects the operand instead of handing corrupt extents to the kernels.
TEST_P(FuzzRounds, CorruptedStructureIsAlwaysCaughtByValidate) {
  Xoshiro256 rng(GetParam() * 86028121);
  for (int round = 0; round < 24; ++round) {
    const I rows = static_cast<I>(2 + rng.uniform_below(40));
    const I cols = rows;  // square: the corrupt operand fits every slot
    auto m = test::random_matrix<double, I>(rows, cols, 0.25, rng());
    if (m.nnz() < 2) {
      continue;
    }
    ASSERT_TRUE(validate(m).ok());

    bool corrupted = true;
    switch (rng.uniform_below(5)) {
      case 0: {  // column out of range (high)
        const auto p = rng.uniform_below(static_cast<std::uint64_t>(m.nnz()));
        m.mutable_col_idx()[p] = cols + static_cast<I>(rng.uniform_below(100));
        break;
      }
      case 1: {  // column out of range (negative)
        const auto p = rng.uniform_below(static_cast<std::uint64_t>(m.nnz()));
        m.mutable_col_idx()[p] = -1 - static_cast<I>(rng.uniform_below(100));
        break;
      }
      case 2: {  // rowptr non-monotone
        const auto r =
            1 + rng.uniform_below(static_cast<std::uint64_t>(rows));
        auto& ptr = m.mutable_row_ptr();
        if (ptr[r] == 0) {
          corrupted = false;  // decrement would go negative of front()==0
          break;
        }
        ptr[r] = static_cast<I>(-ptr[r]);
        break;
      }
      case 3: {  // unsorted / duplicate columns inside one row
        I victim = -1;
        for (I i = 0; i < rows; ++i) {
          if (m.row_nnz(i) >= 2) {
            victim = i;
            break;
          }
        }
        if (victim < 0) {
          corrupted = false;
          break;
        }
        auto& idx = m.mutable_col_idx();
        const auto p = static_cast<std::size_t>(
            m.row_ptr()[static_cast<std::size_t>(victim)]);
        if (rng.bernoulli(0.5)) {
          std::swap(idx[p], idx[p + 1]);  // order violation
        } else {
          idx[p + 1] = idx[p];  // duplicate
        }
        break;
      }
      default: {  // length mismatch between col_idx and row_ptr.back()
        m.mutable_col_idx().pop_back();
        break;
      }
    }
    if (!corrupted) {
      continue;
    }

    const auto report = validate(m);
    ASSERT_FALSE(report.ok()) << "round " << round;
    ASSERT_FALSE(report.summary().empty());

    Config config;
    config.validate_inputs = true;
    Executor<SR> exec;
    const auto ok = test::random_matrix<double, I>(rows, cols, 0.25, rng());
    // Validation runs before any kernel touches the operand's extents, so
    // the corrupt matrix is safe to hand to plan() — it must be rejected.
    EXPECT_THROW(exec.plan(m, ok, ok, config), PreconditionError)
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRounds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace tilq
