// Tests for k-core decomposition against known graphs and a naive peeling
// oracle.
#include "algos/kcore.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "gen/rmat.hpp"
#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

Csr<double, I> graph(I n, const std::vector<std::pair<I, I>>& edges) {
  Coo<double, I> coo(n, n);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

Csr<double, I> complete_graph(I n) {
  Coo<double, I> coo(n, n);
  for (I i = 0; i < n; ++i) {
    for (I j = 0; j < n; ++j) {
      if (i != j) {
        coo.push(i, j, 1.0);
      }
    }
  }
  return build_csr(coo);
}

/// Naive O(n^2 m) peeling oracle: repeatedly remove min-degree vertices.
std::vector<I> oracle_core(const Csr<double, I>& adj) {
  const I n = adj.rows();
  std::vector<I> degree(static_cast<std::size_t>(n));
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  std::vector<I> core(static_cast<std::size_t>(n), 0);
  for (I v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] = adj.row_nnz(v);
  }
  // Core number = running maximum of the degree at peel time.
  I running_max = 0;
  for (I step = 0; step < n; ++step) {
    I best = -1;
    for (I v = 0; v < n; ++v) {
      if (alive[static_cast<std::size_t>(v)] &&
          (best < 0 || degree[static_cast<std::size_t>(v)] <
                           degree[static_cast<std::size_t>(best)])) {
        best = v;
      }
    }
    running_max = std::max(running_max, degree[static_cast<std::size_t>(best)]);
    core[static_cast<std::size_t>(best)] = running_max;
    alive[static_cast<std::size_t>(best)] = false;
    for (const I u : adj.row_cols(best)) {
      if (alive[static_cast<std::size_t>(u)]) {
        --degree[static_cast<std::size_t>(u)];
      }
    }
  }
  return core;
}

TEST(Kcore, CompleteGraph) {
  const auto r = kcore_decomposition(complete_graph(6));
  EXPECT_EQ(r.degeneracy, 5);
  for (const I c : r.core) {
    EXPECT_EQ(c, 5);
  }
}

TEST(Kcore, PathGraphIsOneCore) {
  const auto r = kcore_decomposition(graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
  EXPECT_EQ(r.degeneracy, 1);
  for (const I c : r.core) {
    EXPECT_EQ(c, 1);
  }
}

TEST(Kcore, TriangleWithTail) {
  // Triangle {0,1,2} + tail 2-3-4: triangle is 2-core, tail is 1-core.
  const auto r =
      kcore_decomposition(graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}));
  EXPECT_EQ(r.core[0], 2);
  EXPECT_EQ(r.core[1], 2);
  EXPECT_EQ(r.core[2], 2);
  EXPECT_EQ(r.core[3], 1);
  EXPECT_EQ(r.core[4], 1);
  EXPECT_EQ(r.degeneracy, 2);
}

TEST(Kcore, IsolatedVertexHasCoreZero) {
  const auto r = kcore_decomposition(graph(3, {{0, 1}}));
  EXPECT_EQ(r.core[2], 0);
}

TEST(Kcore, MatchesOracleOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    RmatParams p;
    p.scale = 7;
    p.edge_factor = 6;
    p.seed = seed;
    const auto g = generate_rmat(p);
    const auto expected = oracle_core(g);
    const auto actual = kcore_decomposition(g);
    EXPECT_EQ(actual.core, expected) << "seed " << seed;
  }
}

TEST(Kcore, MembersFilter) {
  const auto r =
      kcore_decomposition(graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}));
  EXPECT_EQ(kcore_members(r, 2), (std::vector<I>{0, 1, 2}));
  EXPECT_EQ(kcore_members(r, 1).size(), 5u);
  EXPECT_TRUE(kcore_members(r, 3).empty());
}

TEST(Kcore, InvalidArgumentsThrow) {
  EXPECT_THROW(kcore_decomposition(Csr<double, I>(2, 3)), PreconditionError);
}

TEST(Kcore, EmptyGraph) {
  const auto r = kcore_decomposition(Csr<double, I>(0, 0));
  EXPECT_EQ(r.degeneracy, 0);
  EXPECT_TRUE(r.core.empty());
}

}  // namespace
}  // namespace tilq
