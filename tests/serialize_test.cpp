// Tests for binary serialization: round trips, format validation, and
// corruption detection.
#include "sparse/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "gen/collection.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

TEST(Serialize, RoundTripThroughStream) {
  const auto original = test::random_matrix<double, I>(40, 30, 0.15, 3);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, original);
  EXPECT_TRUE(test::csr_equal(original, read_binary(buffer)));
}

TEST(Serialize, RoundTripThroughFile) {
  const auto original = make_collection_graph("as-Skitter", 0.05);
  const std::string path = ::testing::TempDir() + "/tilq_roundtrip.bin";
  write_binary_file(path, original);
  EXPECT_TRUE(test::csr_equal(original, read_binary_file(path)));
}

TEST(Serialize, EmptyMatrix) {
  const Csr<double, I> empty(7, 9);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, empty);
  const auto reread = read_binary(buffer);
  EXPECT_EQ(reread.rows(), 7);
  EXPECT_EQ(reread.cols(), 9);
  EXPECT_EQ(reread.nnz(), 0);
}

TEST(Serialize, ExactDoubleValuesSurvive) {
  // Binary format must preserve bit-exact values (unlike text round trips).
  const auto m = csr_from_triplets<double, I>(
      1, 3, {{0, 0, 0.1}, {0, 1, 1e-300}, {0, 2, -3.14159265358979}});
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, m);
  const auto reread = read_binary(buffer);
  EXPECT_EQ(m.values()[0], reread.values()[0]);
  EXPECT_EQ(m.values()[1], reread.values()[1]);
  EXPECT_EQ(m.values()[2], reread.values()[2]);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buffer("definitely not a tilq file");
  EXPECT_THROW(read_binary(buffer), SerializeError);
}

TEST(Serialize, TruncatedPayloadThrows) {
  const auto original = test::random_matrix<double, I>(20, 20, 0.2, 5);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, original);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_binary(truncated), SerializeError);
}

TEST(Serialize, CorruptedStructureThrows) {
  const auto original = test::random_matrix<double, I>(10, 10, 0.3, 7);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, original);
  std::string bytes = buffer.str();
  // Corrupt a byte inside the row_ptr region (just past the 36-byte header).
  bytes[50] = static_cast<char>(0xFF);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(read_binary(corrupted), SerializeError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/tilq.bin"), SerializeError);
}

}  // namespace
}  // namespace tilq
