// Online-tuning tests (docs/TUNING.md): the ConfigBandit in isolation —
// deterministic convergence onto a synthetic cost model's best arm,
// dead-arm handling, budget freezing, same-seed determinism — and the
// engine integration: arm switches stay bit-identical to the single-call
// oracle, deadline jobs and opted-out submissions never explore, the
// TILQ_AUTOTUNE overlay parses, and a concurrent-submitter hammer shares
// one arm table for the TSan CI job.
#include "core/autotune.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/masked_spgemm.hpp"
#include "core/model.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

/// Synthetic cost model: blocked+dense runs 10x faster than everything
/// else. Drives the bandit with select/report until the fingerprint
/// freezes; returns the number of draws it took.
double synthetic_cost(const Config& config) {
  return (config.effective_strategy() == Strategy::kBlocked &&
          config.accumulator == AccumulatorKind::kDense)
             ? 0.1
             : 1.0;
}

class AutotuneBanditTest : public ::testing::Test {};

TEST_F(AutotuneBanditTest, CandidateArmsStartWithSubmittedAndDeduplicate) {
  const Config submitted;
  const Config heuristic = submitted;  // degenerate: fully deduped
  const std::vector<Config> arms = candidate_arm_configs(submitted, heuristic);
  ASSERT_FALSE(arms.empty());
  EXPECT_TRUE(arms.front() == submitted);
  bool has_blocked = false;
  bool has_2d = false;
  bool has_hybrid = false;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    for (std::size_t j = i + 1; j < arms.size(); ++j) {
      EXPECT_FALSE(arms[i] == arms[j]) << "duplicate arms " << i << "," << j;
    }
    has_blocked |= arms[i].mode == Strategy::kBlocked;
    has_2d |= arms[i].mode == Strategy::k2D;
    has_hybrid |= arms[i].strategy == MaskStrategy::kHybrid;
  }
  EXPECT_TRUE(has_blocked);
  EXPECT_TRUE(has_2d);
  EXPECT_TRUE(has_hybrid);
}

TEST_F(AutotuneBanditTest, ConvergesOntoSyntheticBestArm) {
  AutotuneOptions options;
  options.enabled = true;
  options.min_pulls = 2;
  ConfigBandit bandit(options);
  const Config submitted;
  const Config heuristic = predict_config(ProblemFeatures{}, 4);
  const std::uint64_t fp = 42;
  int draws = 0;
  while (!bandit.converged(fp) && draws < 500) {
    const ArmDecision d = bandit.select(fp, submitted, heuristic,
                                        /*allow_explore=*/true);
    ASSERT_GE(d.arm, 0);
    bandit.report(fp, d.arm, synthetic_cost(d.config) * 10.0,
                  /*flop_estimate=*/10'000'000, /*degrades=*/0,
                  /*failed=*/false);
    ++draws;
  }
  ASSERT_TRUE(bandit.converged(fp)) << "no convergence in " << draws;
  const int best = bandit.best_arm(fp);
  const std::vector<ArmStats> arms = bandit.arms(fp);
  ASSERT_GE(best, 0);
  const Config& winner = arms[static_cast<std::size_t>(best)].config;
  EXPECT_EQ(winner.effective_strategy(), Strategy::kBlocked);
  EXPECT_EQ(winner.accumulator, AccumulatorKind::kDense);
  // Frozen: every further select serves the winner without exploring.
  for (int i = 0; i < 20; ++i) {
    const ArmDecision d = bandit.select(fp, submitted, heuristic, true);
    EXPECT_EQ(d.arm, best);
    EXPECT_FALSE(d.exploration);
  }
  EXPECT_EQ(bandit.stats().converged, 1u);
}

TEST_F(AutotuneBanditTest, FailedArmIsDeadForever) {
  AutotuneOptions options;
  options.enabled = true;
  options.epsilon = 1.0;  // explore as hard as possible
  options.min_pulls = 3;
  ConfigBandit bandit(options);
  const Config submitted;
  const std::uint64_t fp = 7;
  ArmDecision first = bandit.select(fp, submitted, submitted, true);
  ASSERT_TRUE(first.first_sighting);
  // Kill arm 1, then hammer: it must never be served again.
  bandit.report(fp, 1, 1.0, 1'000'000, 0, /*failed=*/true);
  for (int i = 0; i < 200; ++i) {
    const ArmDecision d = bandit.select(fp, submitted, submitted, true);
    EXPECT_NE(d.arm, 1);
    bandit.report(fp, d.arm, 1.0, 1'000'000, 0, false);
  }
  // A dead arm never blocks convergence either.
  EXPECT_TRUE(bandit.converged(fp));
}

TEST_F(AutotuneBanditTest, DisallowedDrawsNeverExplore) {
  AutotuneOptions options;
  options.enabled = true;
  options.epsilon = 1.0;
  ConfigBandit bandit(options);
  const Config submitted;
  const std::uint64_t fp = 11;
  (void)bandit.select(fp, submitted, submitted, true);
  bandit.report(fp, 0, 1.0, 1'000'000, 0, false);
  for (int i = 0; i < 100; ++i) {
    const ArmDecision d = bandit.select(fp, submitted, submitted,
                                        /*allow_explore=*/false);
    EXPECT_FALSE(d.exploration);
    EXPECT_EQ(d.arm, bandit.best_arm(fp));
  }
  EXPECT_EQ(bandit.stats().explorations, 0u);
}

TEST_F(AutotuneBanditTest, ExplorationBudgetFreezesTheFingerprint) {
  AutotuneOptions options;
  options.enabled = true;
  options.epsilon = 1.0;
  options.min_pulls = 1'000'000;  // unreachable: only the budget can freeze
  options.explore_budget = 4;
  ConfigBandit bandit(options);
  const Config submitted;
  const std::uint64_t fp = 3;
  for (int i = 0; i < 50 && !bandit.converged(fp); ++i) {
    const ArmDecision d = bandit.select(fp, submitted, submitted, true);
    bandit.report(fp, d.arm, 1.0, 1'000'000, 0, false);
  }
  EXPECT_TRUE(bandit.converged(fp));
  EXPECT_LE(bandit.stats().explorations, 4u);
}

TEST_F(AutotuneBanditTest, DegradesPenalizeAnOtherwiseFasterArm) {
  AutotuneOptions options;
  options.enabled = true;
  ConfigBandit bandit(options);
  const Config submitted;
  const std::uint64_t fp = 13;
  (void)bandit.select(fp, submitted, submitted, true);
  // Arm 1 is 20% faster on wall time but degraded; the 1.5x penalty must
  // make arm 0 the best.
  bandit.report(fp, 0, 10.0, 1'000'000, /*degrades=*/0, false);
  bandit.report(fp, 1, 8.0, 1'000'000, /*degrades=*/3, false);
  EXPECT_EQ(bandit.best_arm(fp), 0);
}

TEST_F(AutotuneBanditTest, SameSeedSameStreamSameChoices) {
  const auto run = [](std::uint64_t seed) {
    AutotuneOptions options;
    options.enabled = true;
    options.seed = seed;
    ConfigBandit bandit(options);
    const Config submitted;
    std::vector<int> arms;
    for (int i = 0; i < 120; ++i) {
      const ArmDecision d = bandit.select(9, submitted, submitted, true);
      arms.push_back(d.arm);
      bandit.report(9, d.arm, 1.0 + 0.01 * d.arm, 1'000'000, 0, false);
    }
    return arms;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // the seed actually feeds the draws
}

TEST_F(AutotuneBanditTest, EnvOverlayParses) {
  AutotuneOptions base;
  base.epsilon = 0.2;
  ::setenv("TILQ_AUTOTUNE", "on", 1);
  EXPECT_TRUE(autotune_options_from_env(base).enabled);
  ::setenv("TILQ_AUTOTUNE", "off", 1);
  EXPECT_FALSE(autotune_options_from_env(base).enabled);
  ::setenv("TILQ_AUTOTUNE", "0.35", 1);
  const AutotuneOptions eps = autotune_options_from_env(base);
  EXPECT_TRUE(eps.enabled);
  EXPECT_DOUBLE_EQ(eps.epsilon, 0.35);
  ::setenv("TILQ_AUTOTUNE", "garbage", 1);
  const AutotuneOptions bad = autotune_options_from_env(base);
  EXPECT_FALSE(bad.enabled);
  EXPECT_DOUBLE_EQ(bad.epsilon, 0.2);
  ::unsetenv("TILQ_AUTOTUNE");
  EXPECT_FALSE(autotune_options_from_env(base).enabled);
}

struct Problem {
  Csr<double, I> mask;
  Csr<double, I> a;
  Csr<double, I> b;
};

Problem make_problem(std::uint64_t seed, I rows = 48, I inner = 40,
                     I cols = 44, double density = 0.12) {
  return {test::random_matrix<double, I>(rows, cols, density, seed),
          test::random_matrix<double, I>(rows, inner, density, seed + 1000),
          test::random_matrix<double, I>(inner, cols, density, seed + 2000)};
}

class AutotuneEngineTest : public ::testing::Test {};

TEST_F(AutotuneEngineTest, OffByDefault) {
  Engine<SR> engine{};
  EXPECT_EQ(engine.autotune(), nullptr);
  const Problem p = make_problem(1);
  (void)engine.submit(p.mask, p.a, p.b).get();
  EXPECT_EQ(engine.stats().autotune_fingerprints, 0u);
}

TEST_F(AutotuneEngineTest, ArmSwitchesStayBitIdenticalToOracle) {
  const Problem p = make_problem(2);
  const Csr<double, I> oracle = masked_spgemm<SR>(p.mask, p.a, p.b);
  EngineOptions options;
  options.autotune.enabled = true;
  options.autotune.epsilon = 1.0;  // explore every eligible draw
  Engine<SR> engine(options);
  ASSERT_NE(engine.autotune(), nullptr);
  for (int i = 0; i < 60; ++i) {
    const Csr<double, I> got = engine.submit(p.mask, p.a, p.b).get();
    EXPECT_TRUE(test::csr_equal(oracle, got)) << "submission " << i;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.autotune_fingerprints, 1u);
  EXPECT_GT(stats.autotune_explorations, 0u);
  EXPECT_EQ(stats.autotune_converged, 1u);
  // Converged: the bandit froze onto a best arm for this fingerprint.
  const std::uint64_t fp = detail::structural_fingerprint(p.mask, p.a, p.b);
  EXPECT_TRUE(engine.autotune()->converged(fp));
  EXPECT_GE(engine.autotune()->best_arm(fp), 0);
}

TEST_F(AutotuneEngineTest, DeadlineJobsNeverExplore) {
  const Problem p = make_problem(3);
  EngineOptions options;
  options.autotune.enabled = true;
  options.autotune.epsilon = 1.0;
  Engine<SR> engine(options);
  SubmitOptions sopts;
  sopts.deadline_ms = 60'000.0;  // generous: carried, never missed
  for (int i = 0; i < 40; ++i) {
    (void)engine.submit(p.mask, p.a, p.b, Config{}, sopts).get();
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.autotune_fingerprints, 1u);
  EXPECT_EQ(stats.autotune_explorations, 0u);
}

TEST_F(AutotuneEngineTest, PerSubmissionOptOutBypassesTheBandit) {
  const Problem p = make_problem(4);
  EngineOptions options;
  options.autotune.enabled = true;
  Engine<SR> engine(options);
  SubmitOptions sopts;
  sopts.autotune = false;
  for (int i = 0; i < 10; ++i) {
    (void)engine.submit(p.mask, p.a, p.b, Config{}, sopts).get();
  }
  EXPECT_EQ(engine.stats().autotune_fingerprints, 0u);
}

TEST_F(AutotuneEngineTest, SameSeedStreamsAreFullyDeterministic) {
  const Problem p = make_problem(5);
  const std::uint64_t fp = detail::structural_fingerprint(p.mask, p.a, p.b);
  const auto run = [&] {
    EngineOptions options;
    options.autotune.enabled = true;
    options.autotune.seed = 77;
    // At epsilon = 1.0 every eligible learning draw explores the
    // fewest-pulled live arm, so the served-arm sequence up to
    // convergence depends only on the seed and the stream — never on the
    // measured costs. (Post-freeze draws exploit the measured-best arm,
    // which IS timing-dependent, so the stream stops at convergence.)
    options.autotune.epsilon = 1.0;
    Engine<SR> engine(options);
    for (int i = 0; i < 200 && !engine.autotune()->converged(fp); ++i) {
      (void)engine.submit(p.mask, p.a, p.b).get();
    }
    EXPECT_TRUE(engine.autotune()->converged(fp));
    std::vector<std::uint64_t> pulls;
    for (const ArmStats& arm : engine.autotune()->arms(fp)) {
      pulls.push_back(arm.pulls);
    }
    return pulls;
  };
  // Sequential same-seed streams make identical learning choices, so the
  // arm tables end the learning phase with identical pull counts.
  EXPECT_EQ(run(), run());
}

TEST_F(AutotuneEngineTest, ConcurrentSubmittersShareOneArmTable) {
  // The TSan hammer: many threads, two fingerprints, aggressive
  // exploration — select() and report() race from submitters and pool
  // workers against one bandit.
  const Problem p1 = make_problem(6);
  const Problem p2 = make_problem(7, 52, 36, 40);
  const Csr<double, I> oracle1 = masked_spgemm<SR>(p1.mask, p1.a, p1.b);
  const Csr<double, I> oracle2 = masked_spgemm<SR>(p2.mask, p2.a, p2.b);
  EngineOptions options;
  options.autotune.enabled = true;
  options.autotune.epsilon = 1.0;
  options.max_in_flight = 64;
  Engine<SR> engine(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool first = (t + i) % 2 == 0;
        const Problem& p = first ? p1 : p2;
        const Csr<double, I>& oracle = first ? oracle1 : oracle2;
        const Csr<double, I> got = engine.submit(p.mask, p.a, p.b).get();
        if (!test::csr_equal(oracle, got)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.autotune_fingerprints, 2u);
  EXPECT_EQ(stats.jobs_completed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace tilq
