// Tests for the Chrome-trace span layer (support/trace.hpp): span
// recording and nesting, the JSON shape trace_flush() writes, and the
// no-op contract when tracing is disabled (at run time and, via the
// TILQ_METRICS=OFF build, at compile time).
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "core/masked_spgemm.hpp"
#include "core/semiring.hpp"
#include "support/metrics.hpp"
#include "test_util.hpp"

namespace tilq {
namespace {

using I = std::int64_t;
using SR = PlusTimes<double>;

/// Structural JSON validator (balanced braces/brackets outside strings,
/// escape-aware). A full parser is overkill for asserting the trace file
/// is loadable; chrome://tracing only needs well-formed JSON.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) {
        return false;
      }
    }
  }
  return depth == 0 && !in_string;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The numeric value of `key` in the first event after `from` mentioning
/// `name` (events are one per line, so scanning forward is unambiguous).
double event_field(const std::string& json, const std::string& name,
                   const std::string& key) {
  const std::size_t at = json.find("\"name\":\"" + name + "\"");
  EXPECT_NE(at, std::string::npos) << "no event named " << name;
  const std::size_t field = json.find("\"" + key + "\":", at);
  EXPECT_NE(field, std::string::npos) << key << " missing on " << name;
  return std::stod(json.substr(field + key.size() + 3));
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsCompiled) {
      GTEST_SKIP() << "tracing compiled out (TILQ_METRICS=OFF build)";
    }
    path_ = ::testing::TempDir() + "tilq_trace_test.json";
    set_trace_path(path_);
    trace_clear();
  }

  void TearDown() override {
    if (kMetricsCompiled) {
      trace_clear();
      set_trace_path("");
      std::remove(path_.c_str());
    }
  }

  std::string path_;
};

TEST_F(TraceTest, NestedSpansRecordInDestructionOrder) {
  {
    TraceSpan outer("outer_span");
    {
      TraceSpan inner("inner_span", 7);
    }
  }
  EXPECT_EQ(trace_event_count(), 2u);
  ASSERT_TRUE(trace_flush());

  const std::string json = read_file(path_);
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"tilq\""), std::string::npos);
  // The inner span's arg rides along as args.id.
  EXPECT_NE(json.find("\"args\":{\"id\":7"), std::string::npos) << json;
  // Complete events are recorded at destruction: inner closes first.
  EXPECT_LT(json.find("inner_span"), json.find("outer_span"));
  // Nesting shows in the timestamps: the outer span starts no later than
  // the inner one and covers at least its duration.
  EXPECT_LE(event_field(json, "outer_span", "ts"),
            event_field(json, "inner_span", "ts"));
  EXPECT_GE(event_field(json, "outer_span", "dur"),
            event_field(json, "inner_span", "dur"));
}

TEST_F(TraceTest, KernelRunEmitsPhaseAndTileSpans) {
  const auto a = test::random_matrix<double, I>(80, 80, 0.05, 17);
  Config config;
  config.threads = 2;
  config.num_tiles = 4;
  (void)masked_spgemm<SR>(a, a, a, config);

  EXPECT_GE(trace_event_count(), 3u);  // analyze + compute + compact at least
  ASSERT_TRUE(trace_flush());
  const std::string json = read_file(path_);
  EXPECT_TRUE(json_balanced(json)) << json;
  for (const char* name : {"spgemm.analyze", "spgemm.compute",
                           "spgemm.compact", "\"name\":\"tile\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing span " << name;
  }
}

TEST_F(TraceTest, RepeatedFlushAlwaysLeavesCompleteFile) {
  {
    TraceSpan s("first_span");
  }
  ASSERT_TRUE(trace_flush());
  const std::string once = read_file(path_);
  {
    TraceSpan s("second_span");
  }
  ASSERT_TRUE(trace_flush());
  const std::string twice = read_file(path_);
  EXPECT_TRUE(json_balanced(once));
  EXPECT_TRUE(json_balanced(twice));
  EXPECT_NE(twice.find("first_span"), std::string::npos);
  EXPECT_NE(twice.find("second_span"), std::string::npos);
  EXPECT_GT(twice.size(), once.size());
}

TEST(Trace, DisabledTraceRecordsNothing) {
  set_trace_path("");
  trace_clear();
  EXPECT_FALSE(trace_enabled());
  {
    TraceSpan span("invisible");
  }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_FALSE(trace_flush());
}

TEST(Trace, CompiledOutBuildIsInert) {
  if (kMetricsCompiled) {
    GTEST_SKIP() << "only meaningful in a TILQ_METRICS=OFF build";
  }
  set_trace_path("/nonexistent/never-written.json");
  EXPECT_FALSE(trace_enabled());
  EXPECT_TRUE(trace_path().empty());
  {
    TraceSpan span("noop");
  }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_FALSE(trace_flush());
}

}  // namespace
}  // namespace tilq
