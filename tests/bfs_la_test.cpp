// Tests for linear-algebraic BFS: agreement with the direct implementation
// across graph kinds and forced modes.
#include "algos/bfs_la.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "algos/bfs.hpp"
#include "gen/rmat.hpp"
#include "gen/road_network.hpp"
#include "gen/watts_strogatz.hpp"
#include "sparse/build.hpp"

namespace tilq {
namespace {

using I = std::int64_t;

Csr<double, I> graph(I n, const std::vector<std::pair<I, I>>& edges) {
  Coo<double, I> coo(n, n);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

TEST(BfsLa, PathGraphLevels) {
  const auto g = graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto r = bfs_linear_algebra(g, 0);
  EXPECT_EQ(r.level, (std::vector<I>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.reached, 5);
}

TEST(BfsLa, DisconnectedVerticesStayUnreached) {
  const auto g = graph(5, {{0, 1}, {3, 4}});
  const auto r = bfs_linear_algebra(g, 0);
  EXPECT_EQ(r.level, (std::vector<I>{0, 1, -1, -1, -1}));
  EXPECT_EQ(r.reached, 2);
}

TEST(BfsLa, InvalidArgumentsThrow) {
  EXPECT_THROW(bfs_linear_algebra(Csr<double, I>(2, 3), 0), PreconditionError);
  EXPECT_THROW(bfs_linear_algebra(Csr<double, I>(2, 2), 5), PreconditionError);
}

class BfsLaAgreement : public ::testing::TestWithParam<int> {};

TEST_P(BfsLaAgreement, MatchesDirectBfsOnVariedGraphs) {
  const int which = GetParam();
  Csr<double, I> g;
  switch (which) {
    case 0: {
      RmatParams p;
      p.scale = 9;
      p.edge_factor = 8;
      g = generate_rmat(p);
      break;
    }
    case 1: {
      RoadNetworkParams p;
      p.width = 30;
      p.height = 30;
      g = generate_road_network(p);
      break;
    }
    default: {
      WattsStrogatzParams p;
      p.nodes = 500;
      p.k = 3;
      g = generate_watts_strogatz(p);
      break;
    }
  }
  const auto direct = bfs(g, 0);
  // All three LA modes must produce identical levels.
  for (const int mode : {0, 1, 2}) {
    BfsLaOptions options;
    options.force_mode = mode;
    const auto la = bfs_linear_algebra(g, 0, options);
    EXPECT_EQ(la.level, direct.level) << "graph " << which << " mode " << mode;
    EXPECT_EQ(la.reached, direct.reached);
    if (mode == 1) {
      EXPECT_EQ(la.pull_steps, 0);
    }
    if (mode == 2) {
      EXPECT_EQ(la.push_steps, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GraphKinds, BfsLaAgreement, ::testing::Values(0, 1, 2));

TEST(BfsLa, AutoModePullsOnDenseGraphs) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;
  const auto g = generate_rmat(p);
  const auto r = bfs_linear_algebra(g, 0);
  EXPECT_GT(r.pull_steps, 0);
}

}  // namespace
}  // namespace tilq
