// Runtime configuration of the masked-SpGEMM — the cross product of the
// paper's three performance dimensions plus thread count. A Config fully
// determines the executed code path; the benchmark harness sweeps Config
// fields to regenerate each figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accum/accumulator.hpp"
#include "core/kernels.hpp"
#include "core/tiling.hpp"
#include "support/common.hpp"
#include "support/env.hpp"

namespace tilq {

/// Execution-space strategy: how plan() decomposes the iteration space.
/// One Config field replaces the former Config2d type — a third strategy
/// cannot ship as yet another config-type-and-entry-point pair.
enum class Strategy {
  k1D,       ///< row tiles over the full column range (the reference path)
  k2D,       ///< row × column tile grid walking global CSR
  kBlocked,  ///< cache-blocked column slices with per-tile accumulators
};

[[nodiscard]] constexpr const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::k1D:
      return "1d";
    case Strategy::k2D:
      return "2d";
    case Strategy::kBlocked:
      return "blocked";
  }
  return "?";
}

struct Config {
  // Dimension 1: tiling & scheduling (§III-A, Figs 10/11).
  Tiling tiling = Tiling::kFlopBalanced;
  Schedule schedule = Schedule::kDynamic;
  /// Number of row tiles; 0 selects the default of 2 x threads (the
  /// SS:GB-observed policy).
  std::int64_t num_tiles = 0;

  // Execution-space strategy (docs/ARCHITECTURE.md).
  /// Strategy::k2D with num_col_tiles <= 1 degenerates to the 1D
  /// algorithm, and — for one deprecation cycle of the former Config2d —
  /// num_col_tiles > 1 under the default mode still selects 2D;
  /// effective_strategy() resolves both. The vanilla mask strategy is
  /// rejected for 2D and blocked plans (its unmasked merge phase has no
  /// column-restricted formulation that preserves its semantics).
  Strategy mode = Strategy::k1D;
  /// Column tile count for Strategy::k2D.
  std::int64_t num_col_tiles = 1;
  /// Column-block width for Strategy::kBlocked; 0 picks the auto width
  /// (kDefaultBlockCols, clamped to kMaxColumnBlocks blocks).
  std::int64_t block_cols = 0;

  // Dimension 2: iteration space (§III-B, Fig 14).
  MaskStrategy strategy = MaskStrategy::kMaskFirst;
  /// Co-iteration factor κ; only used by MaskStrategy::kHybrid.
  double coiteration_factor = 1.0;

  // Dimension 3: accumulator (§III-C, Fig 13).
  AccumulatorKind accumulator = AccumulatorKind::kHash;
  MarkerWidth marker_width = MarkerWidth::k32;
  ResetPolicy reset = ResetPolicy::kMarker;

  /// Threads for the parallel region; 0 uses the OpenMP default.
  int threads = 0;

  // Robustness knobs (docs/ROBUSTNESS.md). Deliberately NOT part of
  // describe(): they change error handling, never the executed kernel path,
  // and benchmark config strings must stay comparable across versions.
  /// Run the structural validator over mask/A/B at plan() boundaries and
  /// throw PreconditionError with a defect report on broken operands.
  /// Defaults on in hardened (Debug / sanitizer) builds.
  bool validate_inputs = TILQ_HARDENED != 0;
  /// When the hash accumulator saturates beyond its growth bound, fall back
  /// to a dense accumulator for the offending row/cell (bit-identical
  /// results, `accum_degrades` counts it). When false the saturation
  /// escalates as CapacityError instead.
  bool degrade_on_saturation = true;

  [[nodiscard]] bool operator==(const Config&) const = default;

  /// The strategy this config actually selects: blocked when mode says
  /// so, 2D whenever more than one column tile is requested (the former
  /// Config2d contract), 1D otherwise.
  [[nodiscard]] Strategy effective_strategy() const noexcept {
    if (mode == Strategy::kBlocked) {
      return Strategy::kBlocked;
    }
    return num_col_tiles > 1 ? Strategy::k2D : Strategy::k1D;
  }

  [[nodiscard]] std::string describe() const {
    std::string out;
    out += "strategy=";
    out += to_string(strategy);
    out += " acc=";
    out += to_string(accumulator);
    out += " marker=";
    out += std::to_string(bits(marker_width));
    out += " reset=";
    out += to_string(reset);
    out += " tiling=";
    out += to_string(tiling);
    out += " sched=";
    out += to_string(schedule);
    out += " tiles=";
    out += std::to_string(num_tiles);
    if (strategy == MaskStrategy::kHybrid) {
      out += " kappa=";
      out += std::to_string(coiteration_factor);
    }
    // Strategy tokens only when the config leaves the 1D default, so 1D
    // bench config strings stay comparable across versions.
    switch (effective_strategy()) {
      case Strategy::k1D:
        break;
      case Strategy::k2D:
        out += " col-tiles=";
        out += std::to_string(num_col_tiles);
        break;
      case Strategy::kBlocked:
        out += " mode=";
        out += to_string(Strategy::kBlocked);
        out += " block-cols=";
        out += std::to_string(block_cols);
        break;
    }
    return out;
  }
};

/// Deprecated alias, kept for one release cycle: the former 2D config
/// type collapsed into Config, whose Strategy field (`mode`, plus
/// `num_col_tiles` / `block_cols`) selects the execution space. Migrate
/// `Config2d{base, n}` to a Config with `num_col_tiles = n` (see
/// docs/API.md for the table).
using Config2d [[deprecated(
    "Config2d is now Config: select the execution space via "
    "Config::mode / num_col_tiles / block_cols")]] = Config;

/// One thread's share of a driver's compute phase — the measured side of
/// the load-imbalance story (the model's predicted CV lives in
/// ProblemFeatures::row_work_cv). busy_ms covers the thread's tile loop
/// only: accumulator construction and the region's entry/exit barriers are
/// excluded, so ragged tile schedules show up undiluted.
struct ThreadWork {
  int thread = 0;           ///< OpenMP thread number inside the region
  double busy_ms = 0.0;     ///< wall time spent executing tiles
  std::int64_t tiles = 0;   ///< tiles (1D) or cells (2D) this thread ran
  std::int64_t rows = 0;    ///< row visits this thread performed
};

/// Per-call execution statistics, filled in when the caller passes a
/// non-null pointer to masked_spgemm. The accumulator counters below the
/// timing fields are summed over threads; the ones past `hash_probes` are
/// populated only when the library is built with TILQ_METRICS (they stay
/// zero otherwise — see docs/METRICS.md). The per-thread work breakdown
/// and the derived imbalance statistics are always populated.
struct ExecutionStats {
  double analyze_ms = 0.0;  ///< work estimation + tiling
  double compute_ms = 0.0;  ///< parallel row computation
  double compact_ms = 0.0;  ///< output compaction
  std::int64_t tiles = 0;
  std::int64_t output_nnz = 0;
  std::uint64_t accumulator_full_resets = 0;  ///< summed over threads
  std::uint64_t hash_probes = 0;              ///< summed over threads
  std::uint64_t accum_inserts = 0;       ///< mask-hitting accumulate calls
  std::uint64_t accum_rejects = 0;       ///< accumulate calls outside the mask
  std::uint64_t hash_collisions = 0;     ///< hash inserts needing >=1 probe
  std::uint64_t marker_row_resets = 0;   ///< marker-policy epoch bumps
  std::uint64_t explicit_reset_slots = 0;  ///< slots cleared by explicit resets
  std::uint64_t accum_rehashes = 0;  ///< hash grow-and-rehash events
  std::uint64_t accum_degrades = 0;  ///< rows/cells escalated to dense
  /// True when any row/cell of this execute ran on the dense fallback after
  /// hash saturation (accum_degrades > 0).
  bool degraded = false;

  /// Compute-phase share of every thread in the team, indexed by OpenMP
  /// thread number (threads that drew no tiles appear with zero work —
  /// that IS the imbalance signal under static scheduling).
  std::vector<ThreadWork> thread_work;
  /// max(busy) / mean(busy) over the team: 1.0 is perfectly balanced, the
  /// team's wall time is the max, so ratio ~= achievable speedup left on
  /// the table. 0 when the team had one thread or never ran.
  double imbalance_ratio = 0.0;
  /// Coefficient of variation (stddev/mean) of per-thread busy time — the
  /// measured counterpart of the model's predicted row-work CV.
  double busy_cv = 0.0;
};

}  // namespace tilq
