// Runtime configuration of the masked-SpGEMM — the cross product of the
// paper's three performance dimensions plus thread count. A Config fully
// determines the executed code path; the benchmark harness sweeps Config
// fields to regenerate each figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accum/accumulator.hpp"
#include "core/kernels.hpp"
#include "core/tiling.hpp"
#include "support/common.hpp"
#include "support/env.hpp"

namespace tilq {

struct Config {
  // Dimension 1: tiling & scheduling (§III-A, Figs 10/11).
  Tiling tiling = Tiling::kFlopBalanced;
  Schedule schedule = Schedule::kDynamic;
  /// Number of row tiles; 0 selects the default of 2 x threads (the
  /// SS:GB-observed policy).
  std::int64_t num_tiles = 0;

  // Dimension 2: iteration space (§III-B, Fig 14).
  MaskStrategy strategy = MaskStrategy::kMaskFirst;
  /// Co-iteration factor κ; only used by MaskStrategy::kHybrid.
  double coiteration_factor = 1.0;

  // Dimension 3: accumulator (§III-C, Fig 13).
  AccumulatorKind accumulator = AccumulatorKind::kHash;
  MarkerWidth marker_width = MarkerWidth::k32;
  ResetPolicy reset = ResetPolicy::kMarker;

  /// Threads for the parallel region; 0 uses the OpenMP default.
  int threads = 0;

  // Robustness knobs (docs/ROBUSTNESS.md). Deliberately NOT part of
  // describe(): they change error handling, never the executed kernel path,
  // and benchmark config strings must stay comparable across versions.
  /// Run the structural validator over mask/A/B at plan() boundaries and
  /// throw PreconditionError with a defect report on broken operands.
  /// Defaults on in hardened (Debug / sanitizer) builds.
  bool validate_inputs = TILQ_HARDENED != 0;
  /// When the hash accumulator saturates beyond its growth bound, fall back
  /// to a dense accumulator for the offending row/cell (bit-identical
  /// results, `accum_degrades` counts it). When false the saturation
  /// escalates as CapacityError instead.
  bool degrade_on_saturation = true;

  [[nodiscard]] bool operator==(const Config&) const = default;

  [[nodiscard]] std::string describe() const {
    std::string out;
    out += "strategy=";
    out += to_string(strategy);
    out += " acc=";
    out += to_string(accumulator);
    out += " marker=";
    out += std::to_string(bits(marker_width));
    out += " reset=";
    out += to_string(reset);
    out += " tiling=";
    out += to_string(tiling);
    out += " sched=";
    out += to_string(schedule);
    out += " tiles=";
    out += std::to_string(num_tiles);
    if (strategy == MaskStrategy::kHybrid) {
      out += " kappa=";
      out += std::to_string(coiteration_factor);
    }
    return out;
  }
};

/// 2D configuration: the 1D Config plus a column tile count. A Config2d IS
/// a Config (public base) so every 1D field is accessed directly and the
/// two entry points cannot drift; `Config2d{config, n}` aggregate-extends a
/// 1D config. The vanilla strategy is not supported with num_col_tiles > 1
/// (its unmasked merge phase has no column-restricted formulation that
/// preserves its semantics). num_col_tiles = 1 degenerates to the 1D
/// algorithm.
struct Config2d : Config {
  std::int64_t num_col_tiles = 1;

  /// The shared 1D slice, for call sites that need an explicit `Config&`
  /// (e.g. handing a 2D config to a 1D entry point).
  [[nodiscard]] Config& base() noexcept { return *this; }
  [[nodiscard]] const Config& base() const noexcept { return *this; }

  [[nodiscard]] bool operator==(const Config2d&) const = default;

  [[nodiscard]] std::string describe() const {
    return Config::describe() + " col-tiles=" + std::to_string(num_col_tiles);
  }
};

/// One thread's share of a driver's compute phase — the measured side of
/// the load-imbalance story (the model's predicted CV lives in
/// ProblemFeatures::row_work_cv). busy_ms covers the thread's tile loop
/// only: accumulator construction and the region's entry/exit barriers are
/// excluded, so ragged tile schedules show up undiluted.
struct ThreadWork {
  int thread = 0;           ///< OpenMP thread number inside the region
  double busy_ms = 0.0;     ///< wall time spent executing tiles
  std::int64_t tiles = 0;   ///< tiles (1D) or cells (2D) this thread ran
  std::int64_t rows = 0;    ///< row visits this thread performed
};

/// Per-call execution statistics, filled in when the caller passes a
/// non-null pointer to masked_spgemm. The accumulator counters below the
/// timing fields are summed over threads; the ones past `hash_probes` are
/// populated only when the library is built with TILQ_METRICS (they stay
/// zero otherwise — see docs/METRICS.md). The per-thread work breakdown
/// and the derived imbalance statistics are always populated.
struct ExecutionStats {
  double analyze_ms = 0.0;  ///< work estimation + tiling
  double compute_ms = 0.0;  ///< parallel row computation
  double compact_ms = 0.0;  ///< output compaction
  std::int64_t tiles = 0;
  std::int64_t output_nnz = 0;
  std::uint64_t accumulator_full_resets = 0;  ///< summed over threads
  std::uint64_t hash_probes = 0;              ///< summed over threads
  std::uint64_t accum_inserts = 0;       ///< mask-hitting accumulate calls
  std::uint64_t accum_rejects = 0;       ///< accumulate calls outside the mask
  std::uint64_t hash_collisions = 0;     ///< hash inserts needing >=1 probe
  std::uint64_t marker_row_resets = 0;   ///< marker-policy epoch bumps
  std::uint64_t explicit_reset_slots = 0;  ///< slots cleared by explicit resets
  std::uint64_t accum_rehashes = 0;  ///< hash grow-and-rehash events
  std::uint64_t accum_degrades = 0;  ///< rows/cells escalated to dense
  /// True when any row/cell of this execute ran on the dense fallback after
  /// hash saturation (accum_degrades > 0).
  bool degraded = false;

  /// Compute-phase share of every thread in the team, indexed by OpenMP
  /// thread number (threads that drew no tiles appear with zero work —
  /// that IS the imbalance signal under static scheduling).
  std::vector<ThreadWork> thread_work;
  /// max(busy) / mean(busy) over the team: 1.0 is perfectly balanced, the
  /// team's wall time is the max, so ratio ~= achievable speedup left on
  /// the table. 0 when the team had one thread or never ran.
  double imbalance_ratio = 0.0;
  /// Coefficient of variation (stddev/mean) of per-thread busy time — the
  /// measured counterpart of the model's predicted row-work CV.
  double busy_cv = 0.0;
};

}  // namespace tilq
