// Cache-blocked column tiles with per-tile kernel specialization (§III-A/C
// and the Nagasaka-style column blocking in PAPERS.md): the plan() stage
// splits the column range of B/M into blocks narrow enough that a dense
// accumulator over one block fits in cache, extracts per-block CSR slices
// with block-local (remapped) column indices, and classifies every
// (row tile × column block) tile dense or sparse by mask density. Dense
// tiles run on a branchless DirectWindow (compact slots plus a
// column-to-slot map with a sink for rejected products), sparse tiles on
// the configured accumulator sized by the largest mask segment — the
// per-tile choice the paper argues a single per-matrix pick cannot make.
//
// The slices are structure-only, like every other plan artifact: values
// are read live from the source matrix through `entry_begin` (a mask/B row
// intersected with one column block is a CONTIGUOUS run of its sorted CSR
// row, so one flat start index recovers the value segment). A plan built
// over these slices therefore survives value-only updates, and the plan
// cache amortizes the extraction across Engine executes.
//
// Bit-identity to the 1D reference path: every output entry lives in
// exactly one column block, the A row is traversed in order per cell, and
// each B-row block segment preserves the source order — so each output
// slot receives exactly the contributions the 1D kernels would add, in the
// same order. The accumulator KIND never changes per-slot summation order
// (all accumulators add in arrival order and gather in mask order), which
// is what makes the per-tile dense/sparse choice a pure performance knob.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "accum/accumulator.hpp"
#include "accum/bitmap_accumulator.hpp"
#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "core/kernels.hpp"
#include "core/semiring.hpp"
#include "core/tiling.hpp"
#include "sparse/csr.hpp"
#include "support/common.hpp"
#include "support/parallel.hpp"

namespace tilq {

/// Auto width for Config::block_cols == 0: 4096 columns keeps a dense
/// block accumulator (values + 32-bit markers) around 48 KiB for double
/// semirings — inside L1/L2 on every target we bench.
inline constexpr std::int64_t kDefaultBlockCols = 4096;

/// Upper bound on column blocks per plan. The per-block slice row
/// pointers cost O(rows) each, so an explicit tiny Config::block_cols on
/// a wide matrix is clamped to this many (wider) blocks instead of
/// exploding plan memory.
inline constexpr std::int64_t kMaxColumnBlocks = 64;

/// Mask density at or above which a tile classifies dense. The block
/// width is capped (kMaxColumnBlocks clamps plan memory, and the auto
/// width keeps the dense segment cache-resident), so the dense
/// accumulator's direct indexing wins down to very thin masks; only
/// near-empty tiles stay on the sparse accumulator, where set_mask over
/// a dense segment would dominate the handful of real entries.
inline constexpr double kDenseTileDensity = 0.002;

/// Branchless window state for dense tiles (compute_block_cell_direct).
/// `map` (block width) sends every block-local column to a slot in a
/// COMPACT window: slot s+1 for the row's s-th mask column, slot 0 — the
/// *sink* — for everything else, which is also `map`'s rest state. The
/// linear kernel then runs with zero branches (a product outside the
/// mask lands in the sink and is discarded when the row closes), and the
/// live slots/touch span only mask-row-length entries, so they stay
/// L1-resident no matter how wide the block is. All three arrays are
/// restored to their rest state (zero / sink) after every row, so no
/// epoch markers are needed.
template <Semiring SR, class I>
struct DirectWindow {
  using value_type = typename SR::value_type;

  explicit DirectWindow(I width)
      : slots(static_cast<std::size_t>(width) + 1, SR::zero()),
        touch(static_cast<std::size_t>(width) + 1, 0),
        map(static_cast<std::size_t>(width), I{0}) {}

  std::vector<value_type> slots;
  std::vector<std::uint8_t> touch;
  std::vector<I> map;
};

/// One matrix restricted to one column block, as a structure-only CSR
/// slice. `row_ptr` (rows + 1) prefixes the per-row segment lengths;
/// `local_cols` holds the block-local column indices (source column minus
/// the block's first column), packed in slice order; `entry_begin` (rows)
/// is the flat index into the SOURCE matrix where row i's segment starts,
/// so values are read live as source.values()[entry_begin[i] + q].
template <class I>
struct BlockSlice {
  std::vector<I> row_ptr;
  std::vector<I> entry_begin;
  std::vector<I> local_cols;

  /// Block-local columns of row i's segment.
  [[nodiscard]] std::span<const I> row_local_cols(I i) const noexcept {
    const auto begin = static_cast<std::size_t>(
        row_ptr[static_cast<std::size_t>(i)]);
    const auto end = static_cast<std::size_t>(
        row_ptr[static_cast<std::size_t>(i) + 1]);
    return {local_cols.data() + begin, end - begin};
  }
};

/// Column-block boundaries for `cols` columns: uniform blocks of
/// `block_cols` columns (kDefaultBlockCols when <= 0), clamped to at most
/// kMaxColumnBlocks blocks. Returns nb + 1 boundaries starting at 0 and
/// ending at `cols`; always at least one block.
template <class I>
[[nodiscard]] std::vector<I> make_column_blocks(I cols,
                                                std::int64_t block_cols) {
  require(cols >= 0, "make_column_blocks: negative column count");
  const auto total = static_cast<std::int64_t>(cols);
  std::int64_t width = block_cols > 0 ? block_cols : kDefaultBlockCols;
  std::int64_t count = total <= 0 ? 1 : ceil_div(total, width);
  if (count > kMaxColumnBlocks) {
    count = kMaxColumnBlocks;
    width = ceil_div(total, count);
  }
  std::vector<I> begin(static_cast<std::size_t>(count) + 1);
  for (std::int64_t t = 0; t <= count; ++t) {
    begin[static_cast<std::size_t>(t)] =
        static_cast<I>(std::min(total, t * width));
  }
  begin.back() = cols;
  return begin;
}

/// Extracts one BlockSlice per column block of `source`. Because CSR rows
/// are sorted, each row is walked exactly once, splitting at the block
/// boundaries; total cost O(nnz + rows × blocks).
template <class T, class I>
[[nodiscard]] std::vector<BlockSlice<I>> extract_block_slices(
    const Csr<T, I>& source, std::span<const I> block_begin) {
  require(block_begin.size() >= 2,
          "extract_block_slices: need at least one block");
  const std::size_t blocks = block_begin.size() - 1;
  const I rows = source.rows();
  std::vector<BlockSlice<I>> slices(blocks);
  for (BlockSlice<I>& slice : slices) {
    slice.row_ptr.assign(static_cast<std::size_t>(rows) + 1, I{0});
    slice.entry_begin.assign(static_cast<std::size_t>(rows), I{0});
  }
  const auto row_ptr = source.row_ptr();
  const auto cols = source.col_idx();
  // Pass 1 (parallel over rows): segment boundaries. Row i's count for
  // block t lands in row_ptr[i + 1] (prefixed in pass 2); entry_begin is
  // final immediately.
  parallel_for(I{0}, rows, [&](I i) {
    const auto r = static_cast<std::size_t>(i);
    auto p = static_cast<std::size_t>(row_ptr[r]);
    const auto end = static_cast<std::size_t>(row_ptr[r + 1]);
    for (std::size_t t = 0; t < blocks; ++t) {
      const I hi = block_begin[t + 1];
      slices[t].entry_begin[r] = static_cast<I>(p);
      std::size_t q = p;
      while (q < end && cols[q] < hi) {
        ++q;
      }
      slices[t].row_ptr[r + 1] = static_cast<I>(q - p);
      p = q;
    }
  });
  // Pass 2 (parallel over blocks): prefix the counts and pack the
  // block-local columns.
  parallel_for(std::size_t{0}, blocks, [&](std::size_t t) {
    BlockSlice<I>& slice = slices[t];
    for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
      slice.row_ptr[r + 1] =
          static_cast<I>(slice.row_ptr[r] + slice.row_ptr[r + 1]);
    }
    slice.local_cols.resize(
        static_cast<std::size_t>(slice.row_ptr[static_cast<std::size_t>(rows)]));
    const I lo = block_begin[t];
    for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
      const auto out = static_cast<std::size_t>(slice.row_ptr[r]);
      const auto len =
          static_cast<std::size_t>(slice.row_ptr[r + 1]) - out;
      const auto src = static_cast<std::size_t>(slice.entry_begin[r]);
      for (std::size_t q = 0; q < len; ++q) {
        slice.local_cols[out + q] = static_cast<I>(cols[src + q] - lo);
      }
    }
  });
  return slices;
}

/// The blocked plan stage's output: column-block boundaries, the B and
/// mask slices, and the dense/sparse verdict per (row tile × block) tile.
/// Structure-only and immutable after build — shared by every execute
/// against the owning plan.
template <class I>
struct BlockedLayout {
  I block_width = 0;            ///< widest block (dense accumulator size)
  std::vector<I> block_begin;   ///< nb + 1 column boundaries
  std::vector<BlockSlice<I>> b_blocks;
  std::vector<BlockSlice<I>> m_blocks;
  /// Row-tile-major dense flags: tile_dense[rt * num_blocks() + t].
  std::vector<std::uint8_t> tile_dense;
  I max_seg_entries = 0;        ///< largest mask (row, block) segment
  std::int64_t dense_tiles = 0;
  std::int64_t sparse_tiles = 0;

  [[nodiscard]] std::int64_t num_blocks() const noexcept {
    return static_cast<std::int64_t>(block_begin.size()) - 1;
  }
  [[nodiscard]] bool dense_tile(std::size_t row_tile,
                                std::size_t block) const noexcept {
    return tile_dense[row_tile * static_cast<std::size_t>(num_blocks()) +
                      block] != 0;
  }
};

/// Builds the full blocked layout for one plan: column blocks over
/// b.cols(), B/M slices, the per-tile density classification against
/// `row_tiles`, and the sparse-accumulator bound.
template <class T, class I>
[[nodiscard]] BlockedLayout<I> build_blocked_layout(
    const Csr<T, I>& mask, const Csr<T, I>& b, std::span<const Tile> row_tiles,
    std::int64_t block_cols) {
  BlockedLayout<I> layout;
  layout.block_begin = make_column_blocks(b.cols(), block_cols);
  const auto blocks = static_cast<std::size_t>(layout.num_blocks());
  for (std::size_t t = 0; t < blocks; ++t) {
    layout.block_width = std::max<I>(
        layout.block_width,
        layout.block_begin[t + 1] - layout.block_begin[t]);
  }
  layout.b_blocks = extract_block_slices(b, std::span<const I>(layout.block_begin));
  layout.m_blocks = extract_block_slices(mask, std::span<const I>(layout.block_begin));
  const auto rows = static_cast<std::size_t>(mask.rows());
  for (std::size_t t = 0; t < blocks; ++t) {
    const BlockSlice<I>& slice = layout.m_blocks[t];
    for (std::size_t r = 0; r < rows; ++r) {
      layout.max_seg_entries = std::max<I>(
          layout.max_seg_entries, slice.row_ptr[r + 1] - slice.row_ptr[r]);
    }
  }
  layout.tile_dense.assign(row_tiles.size() * blocks, 0);
  for (std::size_t rt = 0; rt < row_tiles.size(); ++rt) {
    const Tile& tile = row_tiles[rt];
    for (std::size_t t = 0; t < blocks; ++t) {
      const BlockSlice<I>& slice = layout.m_blocks[t];
      const auto nnz = static_cast<double>(
          slice.row_ptr[static_cast<std::size_t>(tile.row_end)] -
          slice.row_ptr[static_cast<std::size_t>(tile.row_begin)]);
      const double area =
          static_cast<double>(tile.rows()) *
          static_cast<double>(layout.block_begin[t + 1] - layout.block_begin[t]);
      const bool dense = area > 0.0 && nnz >= kDenseTileDensity * area;
      layout.tile_dense[rt * blocks + t] = dense ? 1 : 0;
      if (dense) {
        ++layout.dense_tiles;
      } else {
        ++layout.sparse_tiles;
      }
    }
  }
  return layout;
}

/// Per-thread workspace for the blocked driver: a block-width dense
/// accumulator (dense tiles, and the saturation fallback) plus the
/// configured sparse-tile accumulator. Pooled via WorkspacePool like any
/// single accumulator; capability() orders (block width, sparse bound)
/// lexicographically so a wider resident workspace always covers — the
/// hash accumulator self-grows if its bound component was smaller.
template <Semiring SR, class I, class Marker, class SparseAcc>
class BlockedWorkspace {
 public:
  using value_type = typename SR::value_type;
  using dense_type = DenseAccumulator<SR, I, Marker>;

  BlockedWorkspace(I block_width, I seg_bound, ResetPolicy policy)
      : dense_(block_width, policy),
        direct_(block_width),
        sparse_(make_sparse(block_width, seg_bound, policy)) {}

  [[nodiscard]] dense_type& dense() noexcept { return dense_; }
  [[nodiscard]] DirectWindow<SR, I>& direct() noexcept { return direct_; }
  [[nodiscard]] SparseAcc& sparse() noexcept { return sparse_; }

  /// Resets the sparse accumulator's partial row state after a saturation
  /// abort (hash only; the dense/bitmap sparse variants cannot saturate).
  void abort_sparse_row() noexcept {
    if constexpr (requires(SparseAcc& acc) { acc.abort_row(); }) {
      sparse_.abort_row();
    }
  }

  /// Both accumulators' counters, summed (the drivers fold one delta per
  /// task, exactly as for a single accumulator).
  [[nodiscard]] AccumulatorCounters counters() const noexcept {
    AccumulatorCounters total = dense_.counters();
    const AccumulatorCounters& s = sparse_.counters();
    total.full_resets += s.full_resets;
    total.probes += s.probes;
    total.inserts += s.inserts;
    total.rejects += s.rejects;
    total.collisions += s.collisions;
    total.row_resets += s.row_resets;
    total.explicit_clears += s.explicit_clears;
    total.rehashes += s.rehashes;
    return total;
  }

  [[nodiscard]] static std::uint64_t capability(I block_width,
                                                I seg_bound) noexcept {
    const auto bound = static_cast<std::uint64_t>(seg_bound);
    return (static_cast<std::uint64_t>(block_width) << 32) |
           std::min<std::uint64_t>(bound, 0xffffffffULL);
  }

 private:
  [[nodiscard]] static SparseAcc make_sparse(I block_width, I seg_bound,
                                             ResetPolicy policy) {
    if constexpr (std::is_same_v<SparseAcc, BitmapAccumulator<SR, I>>) {
      (void)seg_bound;
      (void)policy;
      return SparseAcc(block_width);
    } else if constexpr (std::is_same_v<SparseAcc,
                                        DenseAccumulator<SR, I, Marker>>) {
      (void)seg_bound;
      return SparseAcc(block_width, policy);
    } else {
      (void)block_width;
      return SparseAcc(seg_bound, policy);
    }
  }

  dense_type dense_;
  DirectWindow<SR, I> direct_;
  SparseAcc sparse_;
};

namespace detail {

/// Trait steering run_tile_task's compile-time dispatch: a
/// BlockedWorkspace runs the blocked branch, a plain accumulator the
/// 1D/2D branches.
template <class Acc>
struct is_blocked_workspace : std::false_type {};
template <Semiring SR, class I, class Marker, class SparseAcc>
struct is_blocked_workspace<BlockedWorkspace<SR, I, Marker, SparseAcc>>
    : std::true_type {};
template <class Acc>
inline constexpr bool is_blocked_workspace_v = is_blocked_workspace<Acc>::value;

/// Computes one (row, column-block) cell over the extracted slices — the
/// blocked counterpart of compute_cell, with every per-cell binary search
/// over global CSR replaced by O(1) slice lookups. Values are read live
/// from `b` through the slice's entry_begin indirection; emitted columns
/// are translated back to global (col_base + local). Returns the number
/// of outputs written at out_cols/out_vals.
///
/// Per-slot contribution order is the A-row order, exactly as in the 1D
/// kernels, so results are bit-identical regardless of the strategy pick
/// or the accumulator handed in.
template <Semiring SR, class T, class I, class Acc>
I compute_block_cell(const BlockSlice<I>& mslice, const BlockSlice<I>& bslice,
                     const Csr<T, I>& a, const Csr<T, I>& b, I i, I col_base,
                     MaskStrategy strategy, double kappa, Acc& acc,
                     I* out_cols, T* out_vals) {
  const std::span<const I> mask_seg = mslice.row_local_cols(i);
  if (mask_seg.empty()) {
    return 0;
  }
  acc.set_mask(mask_seg);
  detail::KernelRowMetrics metrics;
  const auto mask_nnz = static_cast<std::int64_t>(mask_seg.size());
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  const T* b_values = b.values().data();
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const std::span<const I> b_seg = bslice.row_local_cols(k);
    if (b_seg.empty()) {
      continue;
    }
    const T* b_vals =
        b_values + static_cast<std::size_t>(
                       bslice.entry_begin[static_cast<std::size_t>(k)]);
    const bool coiterate =
        strategy == MaskStrategy::kCoIterate ||
        (strategy == MaskStrategy::kHybrid &&
         detail::prefer_coiteration(
             mask_nnz, static_cast<std::int64_t>(b_seg.size()), kappa));
    if (coiterate) {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_coiter_picks;
      }
      for (const I j : mask_seg) {
        const std::size_t q = detail::lower_bound_index(
            b_seg, 0, j, metrics.binary_search_steps);
        if (q < b_seg.size() && b_seg[q] == j) {
          ++metrics.flops;
          acc.accumulate(j, SR::mul(scale, b_vals[q]));
        }
      }
    } else {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_linear_picks;
      }
      metrics.flops += b_seg.size();
      for (std::size_t q = 0; q < b_seg.size(); ++q) {
        acc.accumulate(b_seg[q], SR::mul(scale, b_vals[q]));
      }
    }
  }
  I count = 0;
  acc.gather(mask_seg, [&](I j, T value) {
    out_cols[count] = static_cast<I>(col_base + j);
    out_vals[count] = value;
    ++count;
  });
  acc.finish_row(mask_seg);
  metrics.flush();
  return count;
}

/// The dense-tile specialization of compute_block_cell: instead of the
/// accumulator interface (marker load + compare + branch per product),
/// the linear kernel routes every product through the DirectWindow's
/// column map — the row's s-th mask column to compact slot s+1,
/// everything else to the sink at slot 0 — as one unconditional indexed
/// add. The co-iteration branch walks the mask by position, so it
/// indexes the compact window directly and never reads the map at all.
/// Emission is gated by the touch flags exactly like
/// DenseAccumulator::gather (touched slots, mask order), and per-slot
/// adds arrive in A-row order, so the result stays bit-identical to the
/// 1D reference.
template <Semiring SR, class T, class I>
I compute_block_cell_direct(const BlockSlice<I>& mslice,
                            const BlockSlice<I>& bslice, const Csr<T, I>& a,
                            const Csr<T, I>& b, I i, I col_base,
                            MaskStrategy strategy, double kappa,
                            DirectWindow<SR, I>& win, I* out_cols,
                            T* out_vals) {
  const std::span<const I> mask_seg = mslice.row_local_cols(i);
  if (mask_seg.empty()) {
    return 0;
  }
  T* const slots = win.slots.data();
  std::uint8_t* const touch = win.touch.data();
  I* const map = win.map.data();
  for (std::size_t s = 0; s < mask_seg.size(); ++s) {
    map[static_cast<std::size_t>(mask_seg[s])] = static_cast<I>(s + 1);
  }
  detail::KernelRowMetrics metrics;
  const auto mask_nnz = static_cast<std::int64_t>(mask_seg.size());
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  const T* b_values = b.values().data();
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const std::span<const I> b_seg = bslice.row_local_cols(k);
    if (b_seg.empty()) {
      continue;
    }
    const T* b_vals =
        b_values + static_cast<std::size_t>(
                       bslice.entry_begin[static_cast<std::size_t>(k)]);
    const bool coiterate =
        strategy == MaskStrategy::kCoIterate ||
        (strategy == MaskStrategy::kHybrid &&
         detail::prefer_coiteration(
             mask_nnz, static_cast<std::int64_t>(b_seg.size()), kappa));
    if (coiterate) {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_coiter_picks;
      }
      for (std::size_t s = 0; s < mask_seg.size(); ++s) {
        const std::size_t q = detail::lower_bound_index(
            b_seg, 0, mask_seg[s], metrics.binary_search_steps);
        if (q < b_seg.size() && b_seg[q] == mask_seg[s]) {
          ++metrics.flops;
          slots[s + 1] = SR::add(slots[s + 1], SR::mul(scale, b_vals[q]));
          touch[s + 1] = 1;
        }
      }
    } else {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_linear_picks;
      }
      metrics.flops += b_seg.size();
      for (std::size_t q = 0; q < b_seg.size(); ++q) {
        const auto s =
            static_cast<std::size_t>(map[static_cast<std::size_t>(b_seg[q])]);
        slots[s] = SR::add(slots[s], SR::mul(scale, b_vals[q]));
        touch[s] = 1;
      }
    }
  }
  I count = 0;
  for (std::size_t s = 0; s < mask_seg.size(); ++s) {
    if (touch[s + 1] != 0) {
      out_cols[count] = static_cast<I>(col_base + mask_seg[s]);
      out_vals[count] = slots[s + 1];
      ++count;
    }
    slots[s + 1] = SR::zero();
    touch[s + 1] = 0;
    map[static_cast<std::size_t>(mask_seg[s])] = I{0};
  }
  slots[0] = SR::zero();
  touch[0] = 0;
  metrics.flush();
  return count;
}

}  // namespace detail

}  // namespace tilq
