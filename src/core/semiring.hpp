// Semiring abstraction. GraphBLAS permits masked-SpGEMM over any semiring
// (§II-A: "We use R here for simplicity, but GraphBLAS permits the use of
// any semiring"); every tilq kernel is templated on one of these types so
// graph algorithms can pick the algebra they need:
//   - triangle counting:  PlusPair  (count path witnesses)
//   - BFS frontiers:      BoolOrAnd
//   - shortest paths:     MinPlus
//   - numeric products:   PlusTimes
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace tilq {

/// A semiring supplies the additive identity ("zero"), the additive
/// operation `add`, and the multiplicative operation `mul`. Kernels never
/// use `+`/`*` directly.
template <class SR>
concept Semiring = requires(typename SR::value_type a, typename SR::value_type b) {
  typename SR::value_type;
  { SR::zero() } -> std::same_as<typename SR::value_type>;
  { SR::add(a, b) } -> std::same_as<typename SR::value_type>;
  { SR::mul(a, b) } -> std::same_as<typename SR::value_type>;
};

/// Classic arithmetic (+, ×) semiring.
template <class T>
struct PlusTimes {
  using value_type = T;
  static constexpr T zero() noexcept { return T{0}; }
  static constexpr T add(T a, T b) noexcept { return a + b; }
  static constexpr T mul(T a, T b) noexcept { return a * b; }
};

/// (+, pair): mul ignores its inputs and yields 1, so the product counts
/// structural witnesses. This is the GraphBLAS PLUS_PAIR semiring used for
/// triangle counting (the values of A are irrelevant, only the pattern).
template <class T>
struct PlusPair {
  using value_type = T;
  static constexpr T zero() noexcept { return T{0}; }
  static constexpr T add(T a, T b) noexcept { return a + b; }
  static constexpr T mul(T, T) noexcept { return T{1}; }
};

/// (∨, ∧) over bool — reachability / BFS.
struct BoolOrAnd {
  using value_type = bool;
  static constexpr bool zero() noexcept { return false; }
  static constexpr bool add(bool a, bool b) noexcept { return a || b; }
  static constexpr bool mul(bool a, bool b) noexcept { return a && b; }
};

/// (min, +) tropical semiring — shortest paths. zero() is "infinity".
template <class T>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() noexcept { return std::numeric_limits<T>::max(); }
  static constexpr T add(T a, T b) noexcept { return a < b ? a : b; }
  static constexpr T mul(T a, T b) noexcept {
    // Saturating add so zero() ("infinity") absorbs.
    if (a == zero() || b == zero()) {
      return zero();
    }
    return a + b;
  }
};

static_assert(Semiring<PlusTimes<double>>);
static_assert(Semiring<PlusPair<std::int64_t>>);
static_assert(Semiring<BoolOrAnd>);
static_assert(Semiring<MinPlus<std::int64_t>>);

}  // namespace tilq
