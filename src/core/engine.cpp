#include "core/engine.hpp"

#include <atomic>

namespace tilq {

namespace engine_detail {

std::uint64_t next_job_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace engine_detail

std::string describe(const EngineStats& stats) {
  std::string out = "jobs=" + std::to_string(stats.jobs_completed);
  if (stats.jobs_failed > 0) {
    out += " failed=" + std::to_string(stats.jobs_failed);
  }
  if (stats.jobs_rejected > 0) {
    out += " rejected=" + std::to_string(stats.jobs_rejected);
  }
  out += " plan-builds=" + std::to_string(stats.plan_builds);
  out += " plan-hits=" + std::to_string(stats.plan_hits);
  out += " tasks=" + std::to_string(stats.tasks_executed);
  out += " steals=" + std::to_string(stats.tasks_stolen);
  out += " peak-in-flight=" + std::to_string(stats.peak_in_flight);
  out += " workspace-acquires=" + std::to_string(stats.workspace.acquisitions);
  out += " workspace-builds=" + std::to_string(stats.workspace.constructions);
  return out;
}

}  // namespace tilq
