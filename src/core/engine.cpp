#include "core/engine.hpp"

#include <atomic>
#include <cstdio>

namespace tilq {

namespace {
std::string fixed2(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", value);
  return buf;
}
}  // namespace

namespace engine_detail {

std::uint64_t next_job_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace engine_detail

std::string describe(const EngineStats& stats) {
  std::string out = "jobs=" + std::to_string(stats.jobs_completed);
  if (stats.jobs_failed > 0) {
    out += " failed=" + std::to_string(stats.jobs_failed);
  }
  if (stats.jobs_rejected > 0) {
    out += " rejected=" + std::to_string(stats.jobs_rejected);
  }
  if (stats.jobs_shed > 0) {
    out += " shed=" + std::to_string(stats.jobs_shed);
  }
  if (stats.jobs_deferred > 0) {
    out += " deferred=" + std::to_string(stats.jobs_deferred);
  }
  if (stats.jobs_expensive > 0) {
    out += " expensive=" + std::to_string(stats.jobs_expensive);
  }
  if (stats.deadline_misses > 0) {
    out += " deadline-misses=" + std::to_string(stats.deadline_misses);
  }
  if (stats.jobs_stuck > 0) {
    out += " stuck=" + std::to_string(stats.jobs_stuck);
  }
  if (stats.retries > 0) {
    out += " retries=" + std::to_string(stats.retries);
    out += " jobs-retried=" + std::to_string(stats.jobs_retried);
  }
  if (stats.brownouts > 0) {
    out += " brownouts=" + std::to_string(stats.brownouts);
  }
  if (stats.autotune_fingerprints > 0) {
    out += " autotune=" + std::to_string(stats.autotune_converged);
    out += "/" + std::to_string(stats.autotune_fingerprints) + "-converged";
    out += " explorations=" + std::to_string(stats.autotune_explorations);
  }
  if (stats.memory_budget_bytes > 0) {
    out += " mem=" + std::to_string(stats.memory_usage_bytes);
    out += "/" + std::to_string(stats.memory_budget_bytes) + "B";
  }
  out += " health=";
  out += to_string(stats.health);
  out += " plan-builds=" + std::to_string(stats.plan_builds);
  out += " plan-hits=" + std::to_string(stats.plan_hits);
  out += " tasks=" + std::to_string(stats.tasks_executed);
  out += " steals=" + std::to_string(stats.tasks_stolen);
  out += " peak-in-flight=" + std::to_string(stats.peak_in_flight);
  out += " workspace-acquires=" + std::to_string(stats.workspace.acquisitions);
  out += " workspace-builds=" + std::to_string(stats.workspace.constructions);
  if (stats.latency.count > 0) {
    out += " p50=" + fixed2(stats.latency.p50_ms) + "ms";
    out += " p95=" + fixed2(stats.latency.p95_ms) + "ms";
    out += " p99=" + fixed2(stats.latency.p99_ms) + "ms";
  }
  return out;
}

EngineLatencyRecord engine_latency_record(const EngineStats& stats) {
  EngineLatencyRecord record;
  if (stats.latency.count == 0) {
    return record;  // present stays false -> "engine_latency":null
  }
  record.present = true;
  record.jobs = stats.latency.count;
  record.p50_ms = stats.latency.p50_ms;
  record.p95_ms = stats.latency.p95_ms;
  record.p99_ms = stats.latency.p99_ms;
  record.max_ms = stats.latency.max_ms;
  record.queue_p50_ms = stats.queue_latency.p50_ms;
  record.queue_p99_ms = stats.queue_latency.p99_ms;
  record.run_p50_ms = stats.run_latency.p50_ms;
  record.run_p99_ms = stats.run_latency.p99_ms;
  return record;
}

}  // namespace tilq
