// Plan/execute split for the masked-SpGEMM — the symbolic/numeric
// separation of Milaković et al. and Deveci et al., applied to the paper's
// three performance dimensions. Iterative workloads (k-truss, triangle
// census, BFS levels) call the kernel repeatedly with the SAME mask/operand
// sparsity; everything that depends only on structure is computed once by
// plan() and amortized across execute() calls:
//
//   plan(M, A, B, config)      — structure phase, runs once:
//     * per-row work estimates (Eq 2) + FLOP-balanced tile boundaries
//     * per-(i,k) hybrid κ decisions (one flag per A nonzero)
//     * accumulator sizing (mask row bound; FLOP bound for vanilla)
//     * structural fingerprint (rowptr/colidx hash) of all three operands
//   execute(M, A, B [, stats]) — numeric phase, runs per iteration:
//     * compute + compact only, against pooled per-thread accumulators
//       (src/accum/workspace_pool.hpp) and reused bound buffers
//     * verifies the fingerprint first; a structure change since plan()
//       raises StalePlanError instead of computing garbage
//
// Values may change freely between executes — only the sparsity pattern is
// fingerprinted. Outputs are bit-identical to the one-shot masked_spgemm
// path: the planned hybrid kernel replays the exact per-entry decisions the
// inline κ test would make, so the floating-point summation order is
// unchanged, and pooled accumulators gather in mask order, so their reuse
// (continued marker epochs, retained hash capacity) cannot reorder sums.
//
// masked_spgemm / masked_spgemm_2d are thin wrappers over this machinery
// (plan once, execute once); see docs/API.md for the lifecycle and the
// migration table.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <typeinfo>
#include <utility>
#include <variant>
#include <vector>

#include "accum/bitmap_accumulator.hpp"
#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "accum/workspace_pool.hpp"
#include "core/blocked.hpp"
#include "core/config.hpp"
#include "core/kernels.hpp"
#include "core/tiling.hpp"
#include "core/work_estimate.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"
#include "sparse/validate.hpp"
#include "support/common.hpp"
#include "support/env.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/panic.hpp"
#include "support/parallel.hpp"
#include "support/perf.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace tilq {

/// Thrown by Executor::execute when the operands' structure no longer
/// matches the fingerprint recorded at plan() time. A StaleError
/// (kind() == kStale) that remains catchable as PreconditionError.
class StalePlanError : public StaleError {
 public:
  using StaleError::StaleError;
};

/// Structure-phase diagnostics, filled by plan().
struct PlanInfo {
  std::uint64_t fingerprint = 0;      ///< rowptr/colidx hash of M, A, B
  std::int64_t row_tiles = 0;
  std::int64_t col_tiles = 1;         ///< 1 on the 1D path
  std::int64_t accumulator_bound = 0; ///< per-row accumulator sizing
  std::int64_t hybrid_decisions = 0;  ///< precomputed per-(i,k) κ picks
  std::int64_t flop_total = 0;        ///< Eq-2 work total Σ_i W[i]
  std::int64_t dense_tiles = 0;       ///< blocked: tiles classified dense
  std::int64_t sparse_tiles = 0;      ///< blocked: tiles classified sparse
  std::int64_t hub_splits = 0;        ///< blocked: hub rows split out
  double build_ms = 0.0;              ///< wall time of the plan() call
};

namespace detail {

/// Mixes `size` bytes into `seed` (64-bit splitmix-style, word at a time);
/// defined in plan.cpp.
[[nodiscard]] std::uint64_t hash_bytes(const void* data, std::size_t size,
                                       std::uint64_t seed) noexcept;

/// Hash of everything structural about the triple (M, A, B): dimensions,
/// nnz, row pointers, and column indices. Values are deliberately excluded —
/// a plan stays valid under value-only updates.
template <class T, class I>
[[nodiscard]] std::uint64_t structural_fingerprint(const Csr<T, I>& mask,
                                                   const Csr<T, I>& a,
                                                   const Csr<T, I>& b) noexcept {
  const auto digest = [](const Csr<T, I>& m) {
    const std::int64_t dims[3] = {static_cast<std::int64_t>(m.rows()),
                                  static_cast<std::int64_t>(m.cols()),
                                  static_cast<std::int64_t>(m.nnz())};
    std::uint64_t h = hash_bytes(dims, sizeof dims, 0x9e3779b97f4a7c15ULL);
    h = hash_bytes(m.row_ptr().data(), m.row_ptr().size_bytes(), h);
    return hash_bytes(m.col_idx().data(), m.col_idx().size_bytes(), h);
  };
  // The triangle-census shape C = A ⊙ (A × A) passes one object three
  // times; same object now means same structure now, so digest it once.
  // Per-operand digests are combined through a seed chain, so the key
  // stays position-sensitive (swapping A and B changes it).
  const std::uint64_t dm = digest(mask);
  const std::uint64_t da = (&a == &mask) ? dm : digest(a);
  const std::uint64_t db =
      (&b == &mask) ? dm : ((&b == &a) ? da : digest(b));
  std::uint64_t h = hash_bytes(&dm, sizeof dm, 0x243f6a8885a308d3ULL);
  h = hash_bytes(&da, sizeof da, h);
  return hash_bytes(&db, sizeof db, h);
}

/// Reused driver-level scratch (distinct from the accumulators, which live
/// in the WorkspacePool): the mask-bounded output slots and per-row/cell
/// counts. ensure() only reallocates on growth, so steady-state executes
/// perform zero allocations here.
template <class T, class I>
struct DriverBuffers {
  std::vector<I> bound_cols;
  std::vector<T> bound_vals;
  std::vector<I> row_counts;
  std::vector<I> cell_counts;  ///< 2D only: rows x col_tiles, row-major
  std::uint64_t grows = 0;     ///< how many ensure() calls had to grow

  void ensure(std::size_t mask_nnz, std::size_t rows, std::size_t cells) {
    const bool grew = mask_nnz > bound_cols.capacity() ||
                      rows > row_counts.capacity() ||
                      cells > cell_counts.capacity();
    bound_cols.resize(mask_nnz);
    bound_vals.resize(mask_nnz);
    row_counts.assign(rows, I{0});
    cell_counts.assign(cells, I{0});
    if (grew) {
      ++grows;
    }
  }
};

}  // namespace detail

/// Everything plan() derives from structure. Immutable between plan() calls;
/// indexed by the operand triple's fingerprint.
template <class I = std::int64_t>
struct Plan {
  PlanInfo info;
  I rows = 0;
  I inner = 0;
  I cols = 0;
  std::int64_t mask_nnz = 0;
  std::vector<Tile> row_tiles;
  std::vector<Tile> col_tiles;  ///< single full-width tile on the 1D path
  /// Eq-2 work total Σ_i (nnz(M[i,:]) + Σ_{A[i,k]≠0} nnz(B[k,:])) — the
  /// cost model's per-query price tag. The batch engine's admission stage
  /// classifies jobs cheap/expensive from it (docs/SERVING.md), so a plan
  /// cache hit prices a repeat structure for free.
  std::int64_t flop_total = 0;
  I accumulator_bound = 0;
  /// One flag per A nonzero (flat index a.row_ptr[i] + p): the hybrid
  /// strategy's per-(i,k) κ choice. Empty unless the planned config uses
  /// MaskStrategy::kHybrid on the 1D or blocked path.
  std::vector<std::uint8_t> hybrid_coiterate;
  /// Whether the plan targets the 2D (row x column tile) driver.
  bool two_d = false;
  /// Blocked-strategy artifacts (column-block slices, per-tile dense
  /// verdicts); null unless the plan was built with Strategy::kBlocked.
  /// Shared so plan copies (the engine's cache hands plans around) do not
  /// duplicate the slices.
  std::shared_ptr<const BlockedLayout<I>> blocked;

  [[nodiscard]] bool two_dimensional() const noexcept { return two_d; }
  [[nodiscard]] bool is_blocked() const noexcept { return blocked != nullptr; }
  /// Cells one row tile fans out into: column blocks (blocked), column
  /// tiles (2D), or 1 (1D). task_count = row_tiles.size() x this.
  [[nodiscard]] std::size_t cells_per_row_tile() const noexcept {
    if (blocked != nullptr) {
      return static_cast<std::size_t>(blocked->num_blocks());
    }
    return two_d ? std::max<std::size_t>(1, col_tiles.size()) : 1;
  }
};

namespace detail {

/// Accumulator sizing (§III-C): the hash table is bounded by the maximal
/// mask-row nnz, except the vanilla strategy which fills the accumulator
/// before masking and therefore needs the per-row FLOP bound.
template <class T, class I>
I accumulator_row_bound(const Csr<T, I>& mask, const Csr<T, I>& a,
                        const Csr<T, I>& b, MaskStrategy strategy) {
  if (strategy != MaskStrategy::kVanilla) {
    return max_row_nnz(mask);
  }
  I bound = 0;
  for (I i = 0; i < a.rows(); ++i) {
    bound = std::max(bound, row_flop_bound(a, b, i));
  }
  return std::max(bound, max_row_nnz(mask));
}

/// Precomputes the hybrid kernel's per-(i,k) κ choices — exactly the
/// predicate row_hybrid evaluates inline, hoisted to plan time.
template <class T, class I>
void build_hybrid_decisions(Plan<I>& plan, const Csr<T, I>& mask,
                            const Csr<T, I>& a, const Csr<T, I>& b,
                            double kappa) {
  plan.hybrid_coiterate.assign(static_cast<std::size_t>(a.nnz()), 0);
  const auto a_row_ptr = a.row_ptr();
  parallel_for(I{0}, a.rows(), [&](I i) {
    const auto mask_nnz = static_cast<std::int64_t>(mask.row_nnz(i));
    if (mask_nnz == 0) {
      return;  // the kernel skips the row before reading any decision
    }
    const auto a_cols = a.row_cols(i);
    const auto base = static_cast<std::size_t>(a_row_ptr[static_cast<std::size_t>(i)]);
    for (std::size_t p = 0; p < a_cols.size(); ++p) {
      const auto b_nnz = static_cast<std::int64_t>(b.row_nnz(a_cols[p]));
      plan.hybrid_coiterate[base + p] =
          detail::prefer_coiteration(mask_nnz, b_nnz, kappa) ? 1 : 0;
    }
  });
}

/// The structure phase as a free function: validates shapes (and, under
/// Config::validate_inputs, the operands themselves), builds the
/// FLOP-balanced tile grid, sizes the accumulator, precomputes hybrid κ
/// decisions, and fingerprints the operand structure. Executor::plan and
/// the batch engine's shared plan cache (core/engine.hpp) both delegate
/// here, so a cached engine plan is the plan the Executor would have built.
/// Fills everything but PlanInfo::build_ms, which the caller times.
template <class T, class I>
[[nodiscard]] Plan<I> build_plan(const Csr<T, I>& mask, const Csr<T, I>& a,
                                 const Csr<T, I>& b, const Config& config) {
  require(a.cols() == b.rows(), "plan: inner dimensions must agree");
  require(mask.rows() == a.rows() && mask.cols() == b.cols(),
          "plan: mask shape must equal output shape");
  const Strategy space = config.effective_strategy();
  const bool two_d = space == Strategy::k2D;
  const bool blocked = space == Strategy::kBlocked;
  require(!((two_d || blocked) && config.strategy == MaskStrategy::kVanilla),
          "plan: the vanilla strategy has no column-tiled (2D/blocked) "
          "formulation");
  if (config.validate_inputs) {
    // Structural validation at the plan boundary (Config::validate_inputs,
    // on by default in hardened builds): a defect report beats the UB a
    // corrupt rowptr/colidx would cause inside the parallel kernels.
    require_valid(mask, "mask");
    require_valid(a, "A");
    require_valid(b, "B");
  }

  Plan<I> plan;
  plan.two_d = two_d;
  plan.rows = a.rows();
  plan.inner = a.cols();
  plan.cols = b.cols();
  plan.mask_nnz = static_cast<std::int64_t>(mask.nnz());

  const int threads = config.threads > 0 ? config.threads : max_threads();
  const std::int64_t num_tiles =
      config.num_tiles > 0 ? config.num_tiles
                           : 2 * static_cast<std::int64_t>(threads);
  {
    TraceSpan span(blocked ? "spgemmblk.analyze"
                           : (two_d ? "spgemm2d.analyze" : "spgemm.analyze"));
    if (config.tiling == Tiling::kFlopBalanced || blocked) {
      // The blocked strategy needs the per-row Eq-2 work even under uniform
      // tiling: hub-row splitting reads it.
      const std::vector<std::int64_t> prefix = row_work_prefix(mask, a, b);
      plan.flop_total = prefix.empty() ? 0 : prefix.back();
      plan.row_tiles = config.tiling == Tiling::kFlopBalanced
                           ? make_flop_balanced_tiles(prefix, num_tiles)
                           : make_uniform_tiles(plan.rows, num_tiles);
      if (blocked && !plan.row_tiles.empty()) {
        // Hub rows (circuit-style ultra-dense rows holding more than twice
        // a tile's work quota) become singleton tiles: the column blocks
        // then fan each hub into one task per block, parallelizing INSIDE
        // the row instead of serializing one straggler task.
        const std::int64_t quota =
            std::max<std::int64_t>(1, plan.flop_total / std::max<std::int64_t>(
                                                            1, num_tiles));
        std::int64_t splits = 0;
        plan.row_tiles = split_hub_rows(std::move(plan.row_tiles), prefix,
                                        2 * quota, &splits);
        plan.info.hub_splits = splits;
      }
    } else {
      // Same Eq-2 total the prefix sums to, without materializing it.
      plan.flop_total = plan.mask_nnz + total_flops(a, b);
      plan.row_tiles = make_uniform_tiles(plan.rows, num_tiles);
    }
    if (two_d) {
      plan.col_tiles = make_uniform_tiles(
          b.cols(), std::max<std::int64_t>(1, config.num_col_tiles));
      if (plan.col_tiles.empty()) {
        plan.col_tiles.push_back({0, 0});  // zero-column matrix
      }
    } else {
      plan.col_tiles.assign(1, Tile{0, static_cast<std::int64_t>(b.cols())});
    }
    plan.accumulator_bound =
        detail::accumulator_row_bound(mask, a, b, config.strategy);
    if (blocked) {
      auto layout = std::make_shared<BlockedLayout<I>>(build_blocked_layout(
          mask, b, std::span<const Tile>(plan.row_tiles), config.block_cols));
      // The sparse per-tile accumulator only ever sees one mask (row, block)
      // segment, so its bound is the largest segment, not the full row.
      plan.accumulator_bound = std::max<I>(I{1}, layout->max_seg_entries);
      plan.info.dense_tiles = layout->dense_tiles;
      plan.info.sparse_tiles = layout->sparse_tiles;
      // Expose the block grid through col_tiles for introspection; the
      // driver itself walks the layout's slices.
      plan.col_tiles.clear();
      for (std::int64_t t = 0; t < layout->num_blocks(); ++t) {
        plan.col_tiles.push_back(
            {static_cast<std::int64_t>(
                 layout->block_begin[static_cast<std::size_t>(t)]),
             static_cast<std::int64_t>(
                 layout->block_begin[static_cast<std::size_t>(t) + 1])});
      }
      plan.blocked = std::move(layout);
    }
    if (!two_d && !blocked && config.strategy == MaskStrategy::kHybrid) {
      // 1D only: the blocked driver re-evaluates κ per (cell, k) against
      // SEGMENT sizes, which the full-row precomputation cannot stand for.
      build_hybrid_decisions(plan, mask, a, b, config.coiteration_factor);
    }
    plan.info.fingerprint = detail::structural_fingerprint(mask, a, b);
  }

  plan.info.row_tiles = static_cast<std::int64_t>(plan.row_tiles.size());
  plan.info.col_tiles = static_cast<std::int64_t>(plan.col_tiles.size());
  plan.info.accumulator_bound =
      static_cast<std::int64_t>(plan.accumulator_bound);
  plan.info.hybrid_decisions =
      static_cast<std::int64_t>(plan.hybrid_coiterate.size());
  plan.info.flop_total = plan.flop_total;
  return plan;
}

/// Folds the team's per-thread compute shares into `stats`: the raw
/// breakdown plus the derived imbalance statistics (max/mean busy ratio
/// and the coefficient of variation — the measured counterpart of the
/// model's predicted row-work CV). `work` is indexed by OpenMP thread
/// number and sized for the requested team; `team_size` is how many
/// threads the runtime actually granted.
inline void finalize_thread_work(std::vector<ThreadWork>&& work,
                                 int team_size, ExecutionStats* stats) {
  if (stats == nullptr) {
    return;
  }
  if (team_size > 0 &&
      static_cast<std::size_t>(team_size) < work.size()) {
    work.resize(static_cast<std::size_t>(team_size));
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  double max = 0.0;
  for (const ThreadWork& t : work) {
    sum += t.busy_ms;
    sum_sq += t.busy_ms * t.busy_ms;
    max = std::max(max, t.busy_ms);
  }
  if (!work.empty() && sum > 0.0) {
    const double n = static_cast<double>(work.size());
    const double mean = sum / n;
    const double variance = std::max(0.0, sum_sq / n - mean * mean);
    stats->imbalance_ratio = max / mean;
    stats->busy_cv = std::sqrt(variance) / mean;
  }
  stats->thread_work = std::move(work);
}

/// Per-execute delta of the accumulator counters: pooled accumulators keep
/// counting across executes, so each call reports counters() minus the
/// snapshot taken right after acquire().
inline AccumulatorCounters counters_delta(const AccumulatorCounters& after,
                                          const AccumulatorCounters& before) {
  AccumulatorCounters d;
  d.full_resets = after.full_resets - before.full_resets;
  d.probes = after.probes - before.probes;
  d.inserts = after.inserts - before.inserts;
  d.rejects = after.rejects - before.rejects;
  d.collisions = after.collisions - before.collisions;
  d.row_resets = after.row_resets - before.row_resets;
  d.explicit_clears = after.explicit_clears - before.explicit_clears;
  d.rehashes = after.rehashes - before.rehashes;
  return d;
}

/// Degradation target when an accumulator saturates: the hash accumulator
/// escalates the offending row/cell to a dense accumulator with the same
/// marker type (identical accumulate-and-gather order => bit-identical
/// results). Dense and bitmap accumulators cannot saturate.
template <class Acc>
struct FallbackAccumulator {
  using type = std::monostate;
  static constexpr bool available = false;
};

template <Semiring SR, class I, class Marker>
struct FallbackAccumulator<HashAccumulator<SR, I, Marker>> {
  using type = DenseAccumulator<SR, I, Marker>;
  static constexpr bool available = true;
};

/// Accounting one tile task reports back to its driver.
struct TileTaskStats {
  std::int64_t rows = 0;       ///< row visits performed by this task
  std::uint64_t degrades = 0;  ///< rows/cells replayed on the dense fallback
};

/// One (row tile x column block) task of the blocked driver. The per-tile
/// dense/sparse verdict picks the accumulator out of the workspace; a
/// sparse-side saturation replays the cell on the workspace's own dense
/// accumulator (same block width => same gather order => bit-identical),
/// so no external fallback is needed. Output slots come straight from the
/// mask slice's entry_begin — the slice IS the slot map, no binary search.
template <Semiring SR, class T, class I, class Ws>
TileTaskStats run_blocked_tile_task(const Plan<I>& plan, const Config& config,
                                    const Csr<T, I>& a, const Csr<T, I>& b,
                                    std::int64_t task, Ws& ws,
                                    DriverBuffers<T, I>& buffers) {
  const BlockedLayout<I>& layout = *plan.blocked;
  const auto blocks = static_cast<std::size_t>(layout.num_blocks());
  const std::size_t rt = static_cast<std::size_t>(task) / blocks;
  const std::size_t t = static_cast<std::size_t>(task) % blocks;
  const Tile row_tile = plan.row_tiles[rt];
  const BlockSlice<I>& mslice = layout.m_blocks[t];
  const BlockSlice<I>& bslice = layout.b_blocks[t];
  const I col_base = layout.block_begin[t];
  const bool dense_tile = layout.dense_tile(rt, t);
  TraceSpan tile_span("tileblk", task);
  TileTaskStats out;
  out.rows += row_tile.row_end - row_tile.row_begin;
#if TILQ_METRICS_ENABLED
  if (MetricCounters* const counters = metrics_thread_counters()) {
    if (dense_tile) {
      ++counters->blocked_dense_picks;
    } else {
      ++counters->blocked_sparse_picks;
    }
  }
#endif
  for (I i = static_cast<I>(row_tile.row_begin);
       i < static_cast<I>(row_tile.row_end); ++i) {
    const auto slot = static_cast<std::size_t>(
        mslice.entry_begin[static_cast<std::size_t>(i)]);
    I* const out_cols = buffers.bound_cols.data() + slot;
    T* const out_vals = buffers.bound_vals.data() + slot;
    I count = 0;
    if (dense_tile) {
      count = compute_block_cell_direct<SR>(
          mslice, bslice, a, b, i, col_base, config.strategy,
          config.coiteration_factor, ws.direct(), out_cols, out_vals);
    } else {
      try {
        count = compute_block_cell<SR>(
            mslice, bslice, a, b, i, col_base, config.strategy,
            config.coiteration_factor, ws.sparse(), out_cols, out_vals);
      } catch (const AccumulatorSaturatedError&) {
        if (!config.degrade_on_saturation) {
          throw;
        }
        ws.abort_sparse_row();
        count = compute_block_cell<SR>(
            mslice, bslice, a, b, i, col_base, config.strategy,
            config.coiteration_factor, ws.dense(), out_cols, out_vals);
        ++out.degrades;
      }
    }
    buffers.cell_counts[static_cast<std::size_t>(i) * blocks + t] = count;
  }
  return out;
}

/// One tile task of the numeric phase: task index `task` of `plan`, run
/// against `acc`, writing into `buffers`' mask-bounded slots. This is the
/// single shared body behind both schedulers — the OpenMP worksharing loop
/// in planned_execute and the batch engine's pool workers (core/engine.hpp)
/// call exactly this function, so the two paths stay bit-identical by
/// construction. `fallback` is the caller's lazily-built dense escalation
/// target, kept across tasks so a degrading worker builds it only once
/// (unused by the blocked path, whose workspace carries its own dense
/// accumulator).
template <Semiring SR, class T, class I, class Acc>
TileTaskStats run_scalar_tile_task(
    const Plan<I>& plan, const Config& config, const Csr<T, I>& mask,
    const Csr<T, I>& a, const Csr<T, I>& b, std::int64_t task, Acc& acc,
    std::optional<typename FallbackAccumulator<Acc>::type>& fallback,
    DriverBuffers<T, I>& buffers) {
  using Fallback = FallbackAccumulator<Acc>;
  const auto mask_row_ptr = mask.row_ptr();
  const std::span<const std::uint8_t> decisions(plan.hybrid_coiterate);
  TileTaskStats out;
  if (!plan.two_dimensional()) {
    const Tile tile = plan.row_tiles[static_cast<std::size_t>(task)];
    TraceSpan tile_span("tile", task);
    out.rows += tile.row_end - tile.row_begin;
    for (I i = static_cast<I>(tile.row_begin);
         i < static_cast<I>(tile.row_end); ++i) {
      I* out_cols = buffers.bound_cols.data() +
                    mask_row_ptr[static_cast<std::size_t>(i)];
      T* out_vals = buffers.bound_vals.data() +
                    mask_row_ptr[static_cast<std::size_t>(i)];
      I count = 0;
      const auto emit = [&](I col, T value) {
        out_cols[count] = col;
        out_vals[count] = value;
        ++count;
      };
      if constexpr (Fallback::available) {
        try {
          compute_row_planned<SR>(config.strategy, config.coiteration_factor,
                                  decisions, mask, a, b, i, acc, emit);
        } catch (const AccumulatorSaturatedError&) {
          if (!config.degrade_on_saturation) {
            throw;
          }
          // The kernels emit only while gathering at the end of a row, so a
          // saturation mid-row has produced no output yet; discard the hash
          // accumulator's partial epoch and replay the whole row on the
          // dense fallback. Accumulation and gather order are unchanged
          // => bit-identical values.
          acc.abort_row();
          count = 0;
          if (!fallback.has_value()) {
            fallback.emplace(plan.cols, config.reset);
          }
          compute_row_planned<SR>(config.strategy, config.coiteration_factor,
                                  decisions, mask, a, b, i, *fallback, emit);
          ++out.degrades;
        }
      } else {
        compute_row_planned<SR>(config.strategy, config.coiteration_factor,
                                decisions, mask, a, b, i, acc, emit);
      }
      buffers.row_counts[static_cast<std::size_t>(i)] = count;
    }
  } else {
    const std::size_t col_tile_count =
        std::max<std::size_t>(1, plan.col_tiles.size());
    const Tile row_tile =
        plan.row_tiles[static_cast<std::size_t>(task) / col_tile_count];
    const std::size_t ct = static_cast<std::size_t>(task) % col_tile_count;
    const Tile col_tile = plan.col_tiles[ct];
    TraceSpan tile_span("tile2d", task);
    // In 2D a row is visited once per column tile; each visit counts.
    out.rows += row_tile.row_end - row_tile.row_begin;
    for (I i = static_cast<I>(row_tile.row_begin);
         i < static_cast<I>(row_tile.row_end); ++i) {
      // The cell writes into the slice of row i's mask-bounded slot that
      // corresponds to mask columns in [col_begin, col_end).
      const auto row_mask = mask.row_cols(i);
      const auto seg_first =
          std::lower_bound(row_mask.begin(), row_mask.end(),
                           static_cast<I>(col_tile.row_begin));
      const auto seg_offset =
          static_cast<std::size_t>(seg_first - row_mask.begin());
      const auto slot = static_cast<std::size_t>(
                            mask_row_ptr[static_cast<std::size_t>(i)]) +
                        seg_offset;
      I cell_count = 0;
      if constexpr (Fallback::available) {
        try {
          cell_count = compute_cell<SR>(
              mask, a, b, i, static_cast<I>(col_tile.row_begin),
              static_cast<I>(col_tile.row_end), config.strategy,
              config.coiteration_factor, acc, buffers.bound_cols.data() + slot,
              buffers.bound_vals.data() + slot);
        } catch (const AccumulatorSaturatedError&) {
          if (!config.degrade_on_saturation) {
            throw;
          }
          acc.abort_row();
          if (!fallback.has_value()) {
            fallback.emplace(plan.cols, config.reset);
          }
          cell_count = compute_cell<SR>(
              mask, a, b, i, static_cast<I>(col_tile.row_begin),
              static_cast<I>(col_tile.row_end), config.strategy,
              config.coiteration_factor, *fallback,
              buffers.bound_cols.data() + slot,
              buffers.bound_vals.data() + slot);
          ++out.degrades;
        }
      } else {
        cell_count = compute_cell<SR>(
            mask, a, b, i, static_cast<I>(col_tile.row_begin),
            static_cast<I>(col_tile.row_end), config.strategy,
            config.coiteration_factor, acc, buffers.bound_cols.data() + slot,
            buffers.bound_vals.data() + slot);
      }
      buffers.cell_counts[static_cast<std::size_t>(i) * col_tile_count + ct] =
          cell_count;
    }
  }
  return out;
}

/// Compile-time dispatch over the workspace type: a BlockedWorkspace runs
/// the blocked driver, a plain accumulator the 1D/2D ones. Instantiating
/// only the matching branch is what lets one worksharing loop (and the
/// engine's one pool-worker body) serve all three execution spaces.
template <Semiring SR, class T, class I, class Acc>
TileTaskStats run_tile_task(
    const Plan<I>& plan, const Config& config, const Csr<T, I>& mask,
    const Csr<T, I>& a, const Csr<T, I>& b, std::int64_t task, Acc& acc,
    std::optional<typename FallbackAccumulator<Acc>::type>& fallback,
    DriverBuffers<T, I>& buffers) {
  if constexpr (is_blocked_workspace_v<Acc>) {
    (void)mask;
    (void)fallback;
    return run_blocked_tile_task<SR>(plan, config, a, b, task, acc, buffers);
  } else {
    return run_scalar_tile_task<SR>(plan, config, mask, a, b, task, acc,
                                    fallback, buffers);
  }
}

/// The compact phase against filled driver buffers. `parallel` selects the
/// OpenMP row loop (planned_execute) or a plain serial one (the batch
/// engine's pool workers, which must not open a nested OpenMP team). Rows
/// are independent, so both orders produce the same output.
template <class T, class I>
Csr<T, I> compact_planned(const Plan<I>& plan, const Csr<T, I>& mask,
                          DriverBuffers<T, I>& buffers, bool parallel) {
  const I rows = plan.rows;
  const auto mask_row_ptr = mask.row_ptr();
  const std::size_t col_tile_count = plan.cells_per_row_tile();
  const auto for_rows = [&](auto&& body) {
    if (parallel) {
      parallel_for(I{0}, rows, body);
    } else {
      for (I i = 0; i < rows; ++i) {
        body(i);
      }
    }
  };
  if (plan.two_dimensional() || plan.is_blocked()) {
    for_rows([&](I i) {
      I total = 0;
      for (std::size_t ct = 0; ct < col_tile_count; ++ct) {
        total += buffers.cell_counts[static_cast<std::size_t>(i) * col_tile_count + ct];
      }
      buffers.row_counts[static_cast<std::size_t>(i)] = total;
    });
  }
  std::vector<I> out_row_ptr(static_cast<std::size_t>(rows) + 1);
  const I out_nnz =
      parallel ? exclusive_scan<I>(buffers.row_counts, out_row_ptr)
               : exclusive_scan_serial<I>(buffers.row_counts, out_row_ptr);
  std::vector<I> out_cols(static_cast<std::size_t>(out_nnz));
  std::vector<T> out_vals(static_cast<std::size_t>(out_nnz));
  if (plan.is_blocked()) {
    // Stitch the per-block segments in block order; the mask slice's
    // entry_begin is the slot map, so no per-cell search is needed.
    const BlockedLayout<I>& layout = *plan.blocked;
    for_rows([&](I i) {
      auto dst = static_cast<std::size_t>(out_row_ptr[static_cast<std::size_t>(i)]);
      for (std::size_t ct = 0; ct < col_tile_count; ++ct) {
        const auto slot = static_cast<std::size_t>(
            layout.m_blocks[ct].entry_begin[static_cast<std::size_t>(i)]);
        const auto len = static_cast<std::size_t>(
            buffers.cell_counts[static_cast<std::size_t>(i) * col_tile_count + ct]);
        for (std::size_t p = 0; p < len; ++p) {
          out_cols[dst + p] = buffers.bound_cols[slot + p];
          out_vals[dst + p] = buffers.bound_vals[slot + p];
        }
        dst += len;
      }
    });
  } else if (!plan.two_dimensional()) {
    for_rows([&](I i) {
      const auto src = static_cast<std::size_t>(mask_row_ptr[static_cast<std::size_t>(i)]);
      const auto dst = static_cast<std::size_t>(out_row_ptr[static_cast<std::size_t>(i)]);
      const auto len = static_cast<std::size_t>(buffers.row_counts[static_cast<std::size_t>(i)]);
      for (std::size_t p = 0; p < len; ++p) {
        out_cols[dst + p] = buffers.bound_cols[src + p];
        out_vals[dst + p] = buffers.bound_vals[src + p];
      }
    });
  } else {
    // Stitch each row's column-tile segments back together in tile order.
    for_rows([&](I i) {
      auto dst = static_cast<std::size_t>(out_row_ptr[static_cast<std::size_t>(i)]);
      const auto row_mask = mask.row_cols(i);
      for (std::size_t ct = 0; ct < col_tile_count; ++ct) {
        const Tile col_tile = plan.col_tiles[ct];
        const auto seg_first =
            std::lower_bound(row_mask.begin(), row_mask.end(),
                             static_cast<I>(col_tile.row_begin));
        const auto slot = static_cast<std::size_t>(
                              mask_row_ptr[static_cast<std::size_t>(i)]) +
                          static_cast<std::size_t>(seg_first - row_mask.begin());
        const auto len = static_cast<std::size_t>(
            buffers.cell_counts[static_cast<std::size_t>(i) * col_tile_count + ct]);
        for (std::size_t p = 0; p < len; ++p) {
          out_cols[dst + p] = buffers.bound_cols[slot + p];
          out_vals[dst + p] = buffers.bound_vals[slot + p];
        }
        dst += len;
      }
    });
  }
  return Csr<T, I>(rows, plan.cols, std::move(out_row_ptr),
                   std::move(out_cols), std::move(out_vals));
}

/// The numeric phase (compute + compact) against a built plan. Handles the
/// 1D, 2D, and blocked drivers; trace span names stay those of the original
/// drivers ("spgemm.*" / "tile" when the plan is 1D, "spgemm2d.*" /
/// "tile2d" when 2D) so existing trace consumers keep working; the blocked
/// path adds "spgemmblk.*" / "tileblk".
///
/// `make` constructs one accumulator for the current plan+config;
/// `capability` is the pool's rebuild key (columns for dense/bitmap, row
/// bound for hash — see WorkspacePool).
template <Semiring SR, class T, class I, class Acc, class MakeAcc>
Csr<T, I> planned_execute(const Plan<I>& plan, const Config& config,
                          const Csr<T, I>& mask, const Csr<T, I>& a,
                          const Csr<T, I>& b, WorkspacePool<Acc>& pool,
                          std::uint64_t capability, MakeAcc&& make,
                          DriverBuffers<T, I>& buffers,
                          ExecutionStats* stats) {
  const bool two_d = plan.two_dimensional();
  const bool blocked = plan.is_blocked();
  WallTimer phase;
  const I rows = a.rows();
  const int threads = config.threads > 0 ? config.threads : max_threads();

  const std::size_t col_tile_count = plan.cells_per_row_tile();
  buffers.ensure(static_cast<std::size_t>(mask.nnz()),
                 static_cast<std::size_t>(rows),
                 (two_d || blocked)
                     ? static_cast<std::size_t>(rows) * col_tile_count
                     : 0);
  pool.reserve(threads);

  set_runtime_schedule(config.schedule);
  const auto task_count = static_cast<std::int64_t>(
      plan.row_tiles.size() * ((two_d || blocked) ? col_tile_count : 1));

  std::uint64_t total_resets = 0;
  std::uint64_t total_probes = 0;
  std::uint64_t total_inserts = 0;
  std::uint64_t total_rejects = 0;
  std::uint64_t total_collisions = 0;
  std::uint64_t total_row_resets = 0;
  std::uint64_t total_explicit_clears = 0;
  std::uint64_t total_rehashes = 0;
  std::uint64_t total_degrades = 0;

  // Per-thread compute shares, indexed by OpenMP thread number; the
  // measured load-imbalance signal next to the model's predicted CV.
  std::vector<ThreadWork> thread_work(static_cast<std::size_t>(threads));
  int team_size = threads;

  // First worker exception is captured here and rethrown after the join;
  // remaining tiles become no-ops. No exception may cross the region
  // boundary (that would be std::terminate under OpenMP).
  ParallelGuard guard;
  using Fallback = FallbackAccumulator<Acc>;

  {
    TraceSpan compute_span(blocked ? "spgemmblk.compute"
                                   : (two_d ? "spgemm2d.compute"
                                            : "spgemm.compute"));

#pragma omp parallel num_threads(threads)                                  \
    reduction(+ : total_resets, total_probes, total_inserts, total_rejects, \
                  total_collisions, total_row_resets, total_explicit_clears, \
                  total_rehashes, total_degrades)
    {
      const int thread_num = omp_get_thread_num();
#pragma omp single
      team_size = omp_get_num_threads();

      // A thread whose acquisition failed must still encounter the
      // worksharing loop below (OpenMP requires the whole team to meet the
      // same constructs), so failure leaves `acc` null and the loop bodies
      // become no-ops instead of the thread bailing out of the region.
      Acc* acc = nullptr;
      AccumulatorCounters counters_at_entry;
      guard.run([&] {
        acc = &pool.acquire(thread_num, capability, make);
        counters_at_entry = acc->counters();
      });
      // Saturated rows/cells re-run on a dense fallback with the same
      // marker type, built lazily on first degrade (most executes never
      // touch it).
      std::optional<typename Fallback::type> fallback;
#if TILQ_METRICS_ENABLED
      MetricCounters* const thread_counters = metrics_thread_counters();
      // Hardware counters for this thread's share of the region; inactive
      // (zero-cost) when metrics are off or perf_event_open failed.
      const PerfScope perf_scope(thread_counters != nullptr);
#endif
      std::int64_t my_tiles = 0;
      std::int64_t my_rows = 0;
      std::uint64_t my_degrades = 0;
      WallTimer busy;

#pragma omp for schedule(runtime) nowait
      for (std::int64_t task = 0; task < task_count; ++task) {
        if (acc == nullptr || guard.cancelled()) {
          continue;  // cooperative cancellation: skip the body, not the loop
        }
        guard.run([&] {
          const TileTaskStats tile = run_tile_task<SR>(
              plan, config, mask, a, b, task, *acc, fallback, buffers);
          ++my_tiles;
          my_rows += tile.rows;
          my_degrades += tile.degrades;
        });
      }
      const double busy_ms = busy.milliseconds();
      if (thread_num >= 0 && thread_num < threads) {
        thread_work[static_cast<std::size_t>(thread_num)] = {
            thread_num, busy_ms, my_tiles, my_rows};
      }

      AccumulatorCounters acc_counters;
      if (acc != nullptr) {
        acc_counters = counters_delta(acc->counters(), counters_at_entry);
      }
      if constexpr (Fallback::available) {
        // The fallback is built fresh each execute, so its counters need no
        // entry snapshot; fold them so degraded rows stay observable.
        if (fallback.has_value()) {
          const AccumulatorCounters& f = fallback->counters();
          acc_counters.full_resets += f.full_resets;
          acc_counters.probes += f.probes;
          acc_counters.inserts += f.inserts;
          acc_counters.rejects += f.rejects;
          acc_counters.collisions += f.collisions;
          acc_counters.row_resets += f.row_resets;
          acc_counters.explicit_clears += f.explicit_clears;
        }
      }
      total_resets += acc_counters.full_resets;
      total_probes += acc_counters.probes;
      total_inserts += acc_counters.inserts;
      total_rejects += acc_counters.rejects;
      total_collisions += acc_counters.collisions;
      total_row_resets += acc_counters.row_resets;
      total_explicit_clears += acc_counters.explicit_clears;
      total_rehashes += acc_counters.rehashes;
      total_degrades += my_degrades;
#if TILQ_METRICS_ENABLED
      // Per-accumulator counters fold into the owning thread's global slot
      // so the metrics registry sees the same totals as ExecutionStats.
      if (thread_counters != nullptr) {
        thread_counters->tiles_executed += static_cast<std::uint64_t>(my_tiles);
        thread_counters->rows_processed += static_cast<std::uint64_t>(my_rows);
        thread_counters->busy_ns += static_cast<std::uint64_t>(busy_ms * 1e6);
        thread_counters->hash_probes += acc_counters.probes;
        thread_counters->hash_collisions += acc_counters.collisions;
        thread_counters->accum_inserts += acc_counters.inserts;
        thread_counters->accum_rejects += acc_counters.rejects;
        thread_counters->marker_row_resets += acc_counters.row_resets;
        thread_counters->marker_overflow_resets += acc_counters.full_resets;
        thread_counters->explicit_reset_slots += acc_counters.explicit_clears;
        thread_counters->accum_rehashes += acc_counters.rehashes;
        thread_counters->accum_degrades += my_degrades;
        if (HwCounters* const hw = metrics_thread_hw()) {
          *hw += perf_scope.delta();
        }
      }
#endif
    }
  }
  guard.rethrow_if_failed();
  if (stats != nullptr) {
    stats->compute_ms = phase.milliseconds();
    stats->tiles = task_count;
    stats->accumulator_full_resets = total_resets;
    stats->hash_probes = total_probes;
    stats->accum_inserts = total_inserts;
    stats->accum_rejects = total_rejects;
    stats->hash_collisions = total_collisions;
    stats->marker_row_resets = total_row_resets;
    stats->explicit_reset_slots = total_explicit_clears;
    stats->accum_rehashes = total_rehashes;
    stats->accum_degrades = total_degrades;
    stats->degraded = total_degrades > 0;
  }
  finalize_thread_work(std::move(thread_work), team_size, stats);

  // --- compact -----------------------------------------------------------
  phase.reset();
  TraceSpan compact_span(blocked ? "spgemmblk.compact"
                                 : (two_d ? "spgemm2d.compact"
                                          : "spgemm.compact"));
  Csr<T, I> result = compact_planned(plan, mask, buffers, /*parallel=*/true);
  if (stats != nullptr) {
    stats->compact_ms = phase.milliseconds();
    stats->output_nnz = static_cast<std::int64_t>(result.nnz());
  }
  return result;
}

}  // namespace detail

/// Reusable execution engine: plan() runs the structure phase and binds the
/// accumulator dispatch once; execute() runs the numeric phase against
/// pooled per-thread workspaces. One Executor serves one operand structure
/// at a time; replanning (same Executor, new structure or config) keeps the
/// workspace pool warm whenever the accumulator type is unchanged.
template <Semiring SR, class T = typename SR::value_type,
          class I = std::int64_t>
class Executor {
 public:
  /// Structure phase. Config::effective_strategy() selects the 1D, 2D, or
  /// blocked driver.
  void plan(const Csr<T, I>& mask, const Csr<T, I>& a, const Csr<T, I>& b,
            const Config& config = {}) {
    static_assert(std::is_same_v<T, typename SR::value_type>,
                  "matrix value type must match the semiring");
    WallTimer build;
    config_ = config;
    plan_ = detail::build_plan(mask, a, b, config);
    bind_dispatch();
    plan_.info.build_ms = build.milliseconds();
    planned_ = true;
  }

  /// Numeric phase. Throws PreconditionError if no plan was built and
  /// StalePlanError if the operands' structure changed since plan().
  Csr<T, I> execute(const Csr<T, I>& mask, const Csr<T, I>& a,
                    const Csr<T, I>& b) {
    return execute_impl(mask, a, b, nullptr);
  }

  Csr<T, I> execute(const Csr<T, I>& mask, const Csr<T, I>& a,
                    const Csr<T, I>& b, ExecutionStats& stats) {
    return execute_impl(mask, a, b, &stats);
  }

  [[nodiscard]] bool planned() const noexcept { return planned_; }

  /// True when a plan exists and `mask`/`a`/`b` carry the planned
  /// structure (same fingerprint). The non-throwing form of the execute()
  /// staleness check.
  [[nodiscard]] bool matches(const Csr<T, I>& mask, const Csr<T, I>& a,
                             const Csr<T, I>& b) const noexcept {
    return planned_ &&
           detail::structural_fingerprint(mask, a, b) == plan_.info.fingerprint;
  }

  [[nodiscard]] const Plan<I>& plan_data() const noexcept { return plan_; }
  [[nodiscard]] const PlanInfo& info() const noexcept { return plan_.info; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Aggregated workspace-pool counters (zero until the first execute).
  [[nodiscard]] WorkspacePoolStats pool_stats() const {
    return pool_stats_ ? pool_stats_() : WorkspacePoolStats{};
  }

  /// Driver-buffer growth count: flat across executes once warmed up.
  [[nodiscard]] std::uint64_t buffer_grows() const noexcept {
    return buffers_->grows;
  }

  /// Drops the plan and every pooled workspace.
  void reset() {
    plan_ = Plan<I>{};
    config_ = Config{};
    run_ = nullptr;
    pool_stats_ = nullptr;
    pool_.reset();
    pool_type_ = nullptr;
    *buffers_ = detail::DriverBuffers<T, I>{};
    planned_ = false;
  }

 private:
  using Runner = std::function<Csr<T, I>(
      const Plan<I>&, const Config&, const Csr<T, I>&, const Csr<T, I>&,
      const Csr<T, I>&, detail::DriverBuffers<T, I>&, ExecutionStats*)>;

  Csr<T, I> execute_impl(const Csr<T, I>& mask, const Csr<T, I>& a,
                         const Csr<T, I>& b, ExecutionStats* stats) {
    require(planned_, "Executor::execute: no plan built — call plan() first");
    TraceSpan span("plan.execute");
    WallTimer verify;
    // The plan-fingerprint fault site corrupts this comparison, forcing the
    // staleness path without touching real operands.
    if (detail::structural_fingerprint(mask, a, b) != plan_.info.fingerprint ||
        fault::should_fire(FaultSite::kPlanFingerprint)) {
      throw StalePlanError(
          "Executor::execute: operand structure does not match the plan "
          "(rowptr/colidx fingerprint mismatch) — re-plan() after any "
          "sparsity change; only values may differ between executes");
    }
    if (stats != nullptr) {
      // The structure phase ran at plan() time; what is left of "analyze"
      // per execute is the staleness check.
      stats->analyze_ms = verify.milliseconds();
    }
    return run_(plan_, config_, mask, a, b, *buffers_, stats);
  }

  /// Resolves the (marker width x accumulator kind) dispatch once, binding
  /// a runner that carries the workspace pool. The pool survives replans
  /// that keep the same accumulator type.
  void bind_dispatch() {
    switch (config_.marker_width) {
      case MarkerWidth::k8:
        bind_accumulator<std::uint8_t>();
        return;
      case MarkerWidth::k16:
        bind_accumulator<std::uint16_t>();
        return;
      case MarkerWidth::k32:
        bind_accumulator<std::uint32_t>();
        return;
      case MarkerWidth::k64:
        bind_accumulator<std::uint64_t>();
        return;
    }
    require(false, "Executor::plan: invalid marker width");
  }

  template <class Marker>
  void bind_accumulator() {
    if (plan_.is_blocked()) {
      // Blocked driver: the workspace pairs a block-width dense accumulator
      // with the configured sparse-tile accumulator; Config::accumulator
      // picks the latter.
      switch (config_.accumulator) {
        case AccumulatorKind::kDense:
          bind_blocked_runner<Marker, DenseAccumulator<SR, I, Marker>>();
          return;
        case AccumulatorKind::kBitmap:
          bind_blocked_runner<Marker, BitmapAccumulator<SR, I>>();
          return;
        case AccumulatorKind::kHash:
          bind_blocked_runner<Marker, HashAccumulator<SR, I, Marker>>();
          return;
      }
      require(false, "Executor::plan: invalid accumulator kind");
    }
    switch (config_.accumulator) {
      case AccumulatorKind::kDense:
        bind_runner<DenseAccumulator<SR, I, Marker>>(
            [](const Plan<I>& p, const Config& c) {
              return DenseAccumulator<SR, I, Marker>(p.cols, c.reset);
            },
            [](const Plan<I>& p) {
              return static_cast<std::uint64_t>(p.cols);
            });
        return;
      case AccumulatorKind::kBitmap:
        // 1-bit flags: the marker width and reset policy are fixed by the
        // representation (explicit reset only).
        bind_runner<BitmapAccumulator<SR, I>>(
            [](const Plan<I>& p, const Config&) {
              return BitmapAccumulator<SR, I>(p.cols);
            },
            [](const Plan<I>& p) {
              return static_cast<std::uint64_t>(p.cols);
            });
        return;
      case AccumulatorKind::kHash:
        bind_runner<HashAccumulator<SR, I, Marker>>(
            [](const Plan<I>& p, const Config& c) {
              return HashAccumulator<SR, I, Marker>(p.accumulator_bound,
                                                    c.reset);
            },
            [](const Plan<I>& p) {
              return static_cast<std::uint64_t>(p.accumulator_bound);
            });
        return;
    }
    require(false, "Executor::plan: invalid accumulator kind");
  }

  /// Binds the blocked driver's per-thread workspace: block-width dense +
  /// `SparseAcc` for sparse tiles, pooled under the lexicographic
  /// (block width, sparse bound) capability.
  template <class Marker, class SparseAcc>
  void bind_blocked_runner() {
    using Ws = BlockedWorkspace<SR, I, Marker, SparseAcc>;
    bind_runner<Ws>(
        [](const Plan<I>& p, const Config& c) {
          return Ws(p.blocked->block_width, p.accumulator_bound, c.reset);
        },
        [](const Plan<I>& p) {
          return Ws::capability(p.blocked->block_width, p.accumulator_bound);
        });
  }

  /// `factory(plan, config)` builds one accumulator; `capability(plan)` is
  /// the pool rebuild key. Both are stateless, so the bound runner stays
  /// valid across replans — only the pool's concrete type matters.
  template <class Acc, class Factory, class Capability>
  void bind_runner(Factory factory, Capability capability) {
    std::shared_ptr<WorkspacePool<Acc>> pool;
    if (pool_type_ != nullptr && *pool_type_ == typeid(Acc)) {
      pool = std::static_pointer_cast<WorkspacePool<Acc>>(pool_);
    } else {
      pool = std::make_shared<WorkspacePool<Acc>>();
      pool_ = pool;
      pool_type_ = &typeid(Acc);
    }
    pool_stats_ = [pool] { return pool->stats(); };
    run_ = [pool, factory, capability](
               const Plan<I>& plan, const Config& config,
               const Csr<T, I>& mask, const Csr<T, I>& a, const Csr<T, I>& b,
               detail::DriverBuffers<T, I>& buffers, ExecutionStats* stats) {
      return detail::planned_execute<SR>(
          plan, config, mask, a, b, *pool, capability(plan),
          [&] { return factory(plan, config); }, buffers, stats);
    };
  }

  Plan<I> plan_{};
  Config config_{};
  Runner run_;
  std::function<WorkspacePoolStats()> pool_stats_;
  std::shared_ptr<void> pool_;
  const std::type_info* pool_type_ = nullptr;
  std::shared_ptr<detail::DriverBuffers<T, I>> buffers_ =
      std::make_shared<detail::DriverBuffers<T, I>>();
  bool planned_ = false;
};

/// Plan-reuse convenience for iterative algorithms: execute() replans
/// automatically when the operand structure or the config changes and runs
/// the cached plan otherwise. Replans keep the workspace pool warm (same
/// accumulator type => zero reallocation), which is exactly the k-truss /
/// BFS-loop pattern where the matrix shrinks every few iterations.
template <Semiring SR, class T = typename SR::value_type,
          class I = std::int64_t>
class PlanCache {
 public:
  Csr<T, I> execute(const Csr<T, I>& mask, const Csr<T, I>& a,
                    const Csr<T, I>& b, const Config& config = {}) {
    return execute_impl(mask, a, b, config, nullptr);
  }

  Csr<T, I> execute(const Csr<T, I>& mask, const Csr<T, I>& a,
                    const Csr<T, I>& b, const Config& config,
                    ExecutionStats& stats) {
    return execute_impl(mask, a, b, config, &stats);
  }

  [[nodiscard]] const Executor<SR, T, I>& executor() const noexcept {
    return exec_;
  }
  [[nodiscard]] std::uint64_t replans() const noexcept { return replans_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }

 private:
  Csr<T, I> execute_impl(const Csr<T, I>& mask, const Csr<T, I>& a,
                         const Csr<T, I>& b, const Config& config,
                         ExecutionStats* stats) {
    if (!exec_.planned() || !(exec_.config() == config) ||
        !exec_.matches(mask, a, b)) {
      exec_.plan(mask, a, b, config);
      ++replans_;
    } else {
      ++hits_;
    }
    return stats != nullptr ? exec_.execute(mask, a, b, *stats)
                            : exec_.execute(mask, a, b);
  }

  Executor<SR, T, I> exec_;
  std::uint64_t replans_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace tilq
