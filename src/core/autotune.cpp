#include "core/autotune.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "support/rng.hpp"

namespace tilq {

namespace {

/// Strips the fields that must not differentiate arms: robustness knobs
/// and the thread count are the engine's call, not the bandit's.
Config normalized(Config config, const Config& base) {
  config.threads = base.threads;
  config.validate_inputs = base.validate_inputs;
  config.degrade_on_saturation = base.degrade_on_saturation;
  return config;
}

void push_unique(std::vector<Config>& arms, Config config) {
  for (const Config& existing : arms) {
    if (existing == config) {
      return;
    }
  }
  arms.push_back(std::move(config));
}

/// The degrade penalty: a run that escalated rows to the dense fallback
/// paid hidden rehash/copy costs its wall time understates under load.
double penalized(double cost, std::uint64_t degrades) {
  return degrades > 0 ? cost * 1.5 : cost;
}

/// Incumbent margin: a challenger arm must beat the current best by this
/// fraction to displace it. Ties-within-noise stay with the incumbent —
/// and since arm 0 (the caller's config) is priced first, a fingerprint
/// whose arms all measure alike converges onto the caller's own config
/// rather than whichever equal arm drew the luckiest sample. Sized to
/// sit above scheduling jitter on sub-millisecond jobs (min_pulls is
/// small, so one lucky sample IS an arm's estimate) while far below the
/// execution-space wins the table exists to find (1.2–3x).
constexpr double kIncumbentMargin = 0.10;

}  // namespace

AutotuneOptions autotune_options_from_env(AutotuneOptions base) {
  const char* raw = std::getenv("TILQ_AUTOTUNE");
  if (raw == nullptr || raw[0] == '\0') {
    return base;
  }
  if (std::strcmp(raw, "off") == 0 || std::strcmp(raw, "0") == 0 ||
      std::strcmp(raw, "false") == 0) {
    base.enabled = false;
    return base;
  }
  if (std::strcmp(raw, "on") == 0 || std::strcmp(raw, "1") == 0 ||
      std::strcmp(raw, "true") == 0) {
    base.enabled = true;
    return base;
  }
  char* end = nullptr;
  const double epsilon = std::strtod(raw, &end);
  if (end != raw && epsilon > 0.0 && epsilon <= 1.0) {
    base.enabled = true;
    base.epsilon = epsilon;
  }
  return base;
}

std::vector<Config> candidate_arm_configs(const Config& submitted,
                                          const Config& heuristic) {
  std::vector<Config> arms;
  arms.push_back(submitted);  // arm 0: the caller's baseline, always first
  push_unique(arms, normalized(heuristic, submitted));

  // Accumulator sweep on the submitted shape (§III-C: the dominant knob
  // on skewed matrices).
  for (const AccumulatorKind kind :
       {AccumulatorKind::kHash, AccumulatorKind::kDense,
        AccumulatorKind::kBitmap}) {
    Config arm = submitted;
    arm.accumulator = kind;
    push_unique(arms, std::move(arm));
  }

  // Execution-space sweep: the cache-blocked space with the dense and
  // hash per-tile accumulators, and one 2D grid. The vanilla kernel has
  // no column-restricted formulation, so those arms fall back to
  // mask-first.
  for (const AccumulatorKind kind :
       {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
    Config arm = submitted;
    arm.mode = Strategy::kBlocked;
    arm.num_col_tiles = 1;
    arm.block_cols = 0;  // auto width
    arm.accumulator = kind;
    if (arm.strategy == MaskStrategy::kVanilla) {
      arm.strategy = MaskStrategy::kMaskFirst;
    }
    push_unique(arms, std::move(arm));
  }
  {
    Config arm = submitted;
    arm.mode = Strategy::k2D;
    arm.num_col_tiles = 4;
    if (arm.strategy == MaskStrategy::kVanilla) {
      arm.strategy = MaskStrategy::kMaskFirst;
    }
    push_unique(arms, std::move(arm));
  }

  // Narrow markers (Fig 13) and the hybrid iteration space at κ = 1
  // (§V-B: no significant scaling factor is needed).
  {
    Config arm = submitted;
    arm.marker_width = MarkerWidth::k16;
    push_unique(arms, std::move(arm));
  }
  if (submitted.strategy != MaskStrategy::kHybrid) {
    Config arm = submitted;
    arm.strategy = MaskStrategy::kHybrid;
    arm.coiteration_factor = 1.0;
    push_unique(arms, std::move(arm));
  }
  return arms;
}

ConfigBandit::ConfigBandit(AutotuneOptions options) : options_(options) {
  options_.epsilon = std::clamp(options_.epsilon, 0.0, 1.0);
  options_.min_pulls = std::max(1, options_.min_pulls);
  options_.explore_budget = std::max(0, options_.explore_budget);
}

int ConfigBandit::exploit_arm_locked(const Table& table) const {
  int best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < table.arms.size(); ++i) {
    const ArmStats& arm = table.arms[i];
    if (arm.failures > 0 || arm.pulls == 0) {
      continue;
    }
    // Compare best-observed costs: latency noise only inflates samples,
    // so the minimum is the robust estimator of an arm's true cost.
    if (arm.min_cost < best_cost * (1.0 - kIncumbentMargin)) {
      best_cost = arm.min_cost;
      best = static_cast<int>(i);
    }
  }
  return best;  // arm 0 (the submitted config) when nothing is priced yet
}

bool ConfigBandit::freeze_ready_locked(const Table& table) const {
  if (table.explorations >=
      static_cast<std::uint64_t>(options_.explore_budget)) {
    return true;
  }
  for (const ArmStats& arm : table.arms) {
    if (arm.failures > 0) {
      continue;  // dead arms never block convergence
    }
    if (arm.pulls < static_cast<std::uint64_t>(options_.min_pulls)) {
      return false;
    }
  }
  return true;
}

ArmDecision ConfigBandit::select(std::uint64_t fingerprint,
                                 const Config& submitted,
                                 const Config& heuristic,
                                 bool allow_explore) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, created] = tables_.try_emplace(fingerprint);
  Table& table = it->second;
  ArmDecision decision;
  if (created) {
    const std::vector<Config> configs =
        candidate_arm_configs(submitted, heuristic);
    table.arms.reserve(configs.size());
    for (const Config& config : configs) {
      ArmStats arm;
      arm.config = config;
      table.arms.push_back(std::move(arm));
    }
    decision.first_sighting = true;
  }
  ++table.draws;
  if (decision.first_sighting || table.frozen || !allow_explore) {
    // First sighting serves the caller's own config (it doubles as the
    // Eq-2 pricing run); frozen and explore-ineligible draws exploit.
    const int arm = decision.first_sighting ? 0 : exploit_arm_locked(table);
    decision.arm = arm;
    decision.config = table.arms[static_cast<std::size_t>(arm)].config;
    return decision;
  }
  const int exploit = exploit_arm_locked(table);
  // Round-robin first: every live arm gets priced once before the ε draw
  // takes over. The draw itself is splitmix64(seed, fingerprint, draw
  // count) — no wall clock, no entropy, so replays make the same choices.
  int explore_arm = -1;
  if (table.explorations <
      static_cast<std::uint64_t>(options_.explore_budget)) {
    std::uint64_t fewest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < table.arms.size(); ++i) {
      const ArmStats& arm = table.arms[i];
      if (arm.failures > 0 ||
          arm.pulls >= static_cast<std::uint64_t>(options_.min_pulls)) {
        continue;
      }
      if (arm.pulls < fewest) {
        fewest = arm.pulls;
        explore_arm = static_cast<int>(i);
      }
    }
    if (explore_arm >= 0 && fewest > 0) {
      // Every arm priced once: from here exploration is the ε coin.
      SplitMix64 rng(options_.seed ^ fingerprint ^
                     (0x9e3779b97f4a7c15ULL * table.draws));
      const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
      if (u >= options_.epsilon) {
        explore_arm = -1;
      }
    }
  }
  if (explore_arm >= 0 && explore_arm != exploit) {
    ++table.explorations;
    ++explorations_;
    decision.arm = explore_arm;
    decision.exploration = true;
  } else {
    decision.arm = exploit;
  }
  decision.config =
      table.arms[static_cast<std::size_t>(decision.arm)].config;
  return decision;
}

RewardOutcome ConfigBandit::report(std::uint64_t fingerprint, int arm,
                                   double run_ms, std::int64_t flop_estimate,
                                   std::uint64_t degrades, bool failed) {
  RewardOutcome outcome;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tables_.find(fingerprint);
  if (it == tables_.end() || arm < 0 ||
      static_cast<std::size_t>(arm) >= it->second.arms.size()) {
    return outcome;
  }
  Table& table = it->second;
  table.flops = std::max<std::int64_t>(table.flops, flop_estimate);
  ArmStats& stats = table.arms[static_cast<std::size_t>(arm)];
  if (failed) {
    ++stats.failures;  // dead: a failing config can never be the answer
  } else {
    const double mflops =
        std::max(1.0, static_cast<double>(flop_estimate) / 1e6);
    const double cost =
        penalized(std::max(0.0, run_ms) / mflops, degrades);
    stats.mean_cost = (stats.mean_cost * static_cast<double>(stats.pulls) +
                       cost) /
                      static_cast<double>(stats.pulls + 1);
    stats.min_cost = stats.pulls == 0 ? cost : std::min(stats.min_cost, cost);
    ++stats.pulls;
    stats.degrades += degrades;
  }
  const int best = exploit_arm_locked(table);
  if (best != table.best) {
    table.best = best;
    ++arm_switches_;
    outcome.arm_switched = true;
  }
  if (!table.frozen && freeze_ready_locked(table)) {
    table.frozen = true;
    ++converged_count_;
    outcome.converged = true;
  }
  return outcome;
}

bool ConfigBandit::known(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.count(fingerprint) != 0;
}

std::int64_t ConfigBandit::last_flops(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tables_.find(fingerprint);
  return it == tables_.end() ? 0 : it->second.flops;
}

bool ConfigBandit::converged(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tables_.find(fingerprint);
  return it != tables_.end() && it->second.frozen;
}

std::vector<ArmStats> ConfigBandit::arms(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tables_.find(fingerprint);
  return it == tables_.end() ? std::vector<ArmStats>{} : it->second.arms;
}

int ConfigBandit::best_arm(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tables_.find(fingerprint);
  return it == tables_.end() ? -1 : it->second.best;
}

AutotuneStats ConfigBandit::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  AutotuneStats s;
  s.fingerprints = tables_.size();
  s.explorations = explorations_;
  s.arm_switches = arm_switches_;
  s.converged = converged_count_;
  return s;
}

}  // namespace tilq
