#include "core/model.hpp"

#include <algorithm>
#include <cmath>

#include "support/env.hpp"

namespace tilq {

Config predict_config(const ProblemFeatures& features, int threads) {
  const int p = threads > 0 ? threads : max_threads();
  Config config;
  config.threads = p;

  // --- dimension 1: tiling & scheduling (§V-A) --------------------------
  // Balanced tiling never loses; dynamic scheduling exploits residual
  // imbalance. Tile count: enough tiles that dynamic scheduling can
  // rebalance (more when row work is skewed), capped at an intermediate
  // level — very high counts pay scheduling overhead (§V-A obs 3).
  config.tiling = Tiling::kFlopBalanced;
  config.schedule = Schedule::kDynamic;
  const double skew_factor = std::clamp(features.row_work_cv, 1.0, 8.0);
  const auto tiles_wanted = static_cast<std::int64_t>(
      static_cast<double>(4 * p) * skew_factor);
  config.num_tiles = std::clamp<std::int64_t>(
      tiles_wanted, 2 * p, std::max<std::int64_t>(2 * p, features.rows / 8 + 1));
  config.num_tiles = std::min<std::int64_t>(config.num_tiles, 2048);

  // --- dimension 2: iteration space (§V-B) ------------------------------
  // The hybrid per-(i,k) test with κ = 1 is the paper's recommendation; it
  // only pays its branch cost when some B row is heavy enough that
  // co-iteration could ever win. If even the heaviest B row scans faster
  // than one mask binary-search pass, use the plain linear kernel.
  const bool coiteration_can_win =
      features.max_b_row > 1 &&
      features.mean_mask_row * std::log2(static_cast<double>(features.max_b_row)) <
          static_cast<double>(features.max_b_row);
  config.strategy =
      coiteration_can_win ? MaskStrategy::kHybrid : MaskStrategy::kMaskFirst;
  config.coiteration_factor = 1.0;

  // --- dimension 3: accumulator (§V-C) ----------------------------------
  // Dense wins when its state+value arrays stay cache-resident or writes
  // are dense; the hash table wins on large dimensions (space efficiency =>
  // locality). 12 bytes/slot models double values + 32-bit markers against
  // a mid-size (L2-ish) cache budget.
  constexpr double kCacheBudgetBytes = 4.0 * 1024.0 * 1024.0;
  const double dense_footprint = 12.0 * static_cast<double>(features.cols);
  const bool dense_writes =
      static_cast<double>(features.flops) > 16.0 * static_cast<double>(features.cols);
  config.accumulator = (dense_footprint <= kCacheBudgetBytes || dense_writes)
                           ? AccumulatorKind::kDense
                           : AccumulatorKind::kHash;
  config.marker_width = MarkerWidth::k32;  // the Fig 13 sweet spot
  config.reset = ResetPolicy::kMarker;
  return config;
}

}  // namespace tilq
