#include "core/tiling.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace tilq {

namespace {

/// Credits freshly built tiles to the calling thread's metrics slot.
void count_tiles_created([[maybe_unused]] std::size_t count) noexcept {
#if TILQ_METRICS_ENABLED
  if (MetricCounters* counters = metrics_thread_counters()) {
    counters->tiles_created += count;
  }
#endif
}

}  // namespace

std::vector<Tile> make_uniform_tiles(std::int64_t rows, std::int64_t num_tiles) {
  require(rows >= 0, "make_uniform_tiles: negative row count");
  require(num_tiles >= 1, "make_uniform_tiles: need at least one tile");
  TraceSpan span("tiling.uniform");
  std::vector<Tile> tiles;
  if (rows == 0) {
    return tiles;
  }
  const std::int64_t count = std::min(rows, num_tiles);
  tiles.reserve(static_cast<std::size_t>(count));
  // Distribute the remainder over the first (rows % count) tiles so sizes
  // differ by at most one row.
  const std::int64_t base = rows / count;
  const std::int64_t extra = rows % count;
  std::int64_t begin = 0;
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int64_t size = base + (t < extra ? 1 : 0);
    tiles.push_back({begin, begin + size});
    begin += size;
  }
  assert(begin == rows);
  count_tiles_created(tiles.size());
  return tiles;
}

std::vector<Tile> make_flop_balanced_tiles(std::span<const std::int64_t> work_prefix,
                                           std::int64_t num_tiles) {
  require(!work_prefix.empty(), "make_flop_balanced_tiles: empty prefix");
  require(num_tiles >= 1, "make_flop_balanced_tiles: need at least one tile");
  TraceSpan span("tiling.flop_balanced");
  const auto rows = static_cast<std::int64_t>(work_prefix.size()) - 1;
  std::vector<Tile> tiles;
  if (rows == 0) {
    return tiles;
  }
  const std::int64_t total = work_prefix.back();
  if (total == 0) {
    // No work anywhere: fall back to uniform so every row is still covered.
    return make_uniform_tiles(rows, num_tiles);
  }

  tiles.reserve(static_cast<std::size_t>(std::min(rows, num_tiles)));
  // Split total = quot * num_tiles + rem so the per-tile quantile
  // ceil((t+1) * total / num_tiles) is computed without 128-bit overflow:
  // (t+1) * rem < num_tiles^2 stays well inside int64.
  const std::int64_t quot = total / num_tiles;
  const std::int64_t rem = total % num_tiles;
  std::int64_t begin = 0;
  for (std::int64_t t = 0; t < num_tiles && begin < rows; ++t) {
    // Target cumulative work for the end of tile t (rounded up so the last
    // quantile lands exactly on `total`).
    const std::int64_t target =
        (t + 1) * quot + ((t + 1) * rem + num_tiles - 1) / num_tiles;
    // First row boundary whose cumulative work reaches the target.
    auto it = std::lower_bound(work_prefix.begin() + begin + 1, work_prefix.end(),
                               target);
    auto end = static_cast<std::int64_t>(it - work_prefix.begin());
    end = std::min(end, rows);
    // Guarantee progress even when one row holds more than a tile's quota.
    end = std::max(end, begin + 1);
    tiles.push_back({begin, end});
    begin = end;
  }
  if (begin < rows) {
    // Rounding left a remainder; extend the last tile to cover it.
    tiles.back().row_end = rows;
  }
  count_tiles_created(tiles.size());
  return tiles;
}

std::int64_t tile_work(const Tile& tile, std::span<const std::int64_t> work_prefix) {
  return work_prefix[static_cast<std::size_t>(tile.row_end)] -
         work_prefix[static_cast<std::size_t>(tile.row_begin)];
}

std::vector<Tile> split_hub_rows(std::vector<Tile> tiles,
                                 std::span<const std::int64_t> work_prefix,
                                 std::int64_t hub_threshold,
                                 std::int64_t* splits) {
  require(hub_threshold > 0, "split_hub_rows: threshold must be positive");
  std::int64_t count = 0;
  std::vector<Tile> refined;
  refined.reserve(tiles.size());
  for (const Tile& tile : tiles) {
    std::int64_t begin = tile.row_begin;
    for (std::int64_t row = tile.row_begin; row < tile.row_end; ++row) {
      const std::int64_t row_work =
          work_prefix[static_cast<std::size_t>(row) + 1] -
          work_prefix[static_cast<std::size_t>(row)];
      if (row_work <= hub_threshold) {
        continue;
      }
      if (begin < row) {
        refined.push_back({begin, row});
      }
      refined.push_back({row, row + 1});
      ++count;
      begin = row + 1;
    }
    if (begin < tile.row_end) {
      refined.push_back({begin, tile.row_end});
    }
  }
  if (splits != nullptr) {
    *splits = count;
  }
  if (count > 0) {
    // Only the net-new tiles are fresh: a hub row and its neighbors were
    // already covered by the input tiling.
    count_tiles_created(refined.size() - tiles.size());
  }
  return refined;
}

}  // namespace tilq
