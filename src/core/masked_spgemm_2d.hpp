// Two-dimensional tiling for the masked-SpGEMM — the extension the paper
// names as future work ("we only focused on tiling the computation in the
// row dimension ... possibly extend the experimentation to two dimensional
// tiling", §V-A). The output C (and the mask M) is tiled in rows AND
// columns: a task computes C[r0:r1, c0:c1] = M[r0:r1, c0:c1] ⊙ (A[r0:r1,:]
// × B[:, c0:c1]). Column tiling narrows the B-column working set per task,
// trading extra passes over A rows for cache locality — the 2D ablation
// bench quantifies when that pays off.
//
// Mechanics: because output entries can only appear at mask positions, the
// mask row's entries inside [c0, c1) define both the task's accumulator
// contents and its private, disjoint slice of the output buffer. Column
// tiles of one row therefore write into non-overlapping slot ranges and
// need no synchronization, and concatenating the slices in column-tile
// order keeps rows sorted.
#pragma once

#include <omp.h>

#include <algorithm>
#include <vector>

#include "accum/bitmap_accumulator.hpp"
#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "core/config.hpp"
#include "core/kernels.hpp"
#include "core/masked_spgemm.hpp"
#include "core/tiling.hpp"
#include "core/work_estimate.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/perf.hpp"
#include "support/trace.hpp"

namespace tilq {

/// 2D configuration: the 1D Config plus a column tile count. The vanilla
/// strategy is not supported in 2D (its unmasked merge phase has no
/// column-restricted formulation that preserves its semantics).
struct Config2d {
  Config base;
  std::int64_t num_col_tiles = 1;
};

namespace detail {

/// Computes one (row, column-range) cell: the mask segment of row i inside
/// [col_begin, col_end) is loaded, A[i,:] is traversed, and each B row is
/// scanned only inside the column range. Returns the number of outputs
/// emitted (written at out_cols/out_vals).
template <Semiring SR, class T, class I, class Acc>
I compute_cell(const Csr<T, I>& mask, const Csr<T, I>& a, const Csr<T, I>& b,
               I i, I col_begin, I col_end, MaskStrategy strategy, double kappa,
               Acc& acc, I* out_cols, T* out_vals) {
  const auto full_mask = mask.row_cols(i);
  const auto seg_first =
      std::lower_bound(full_mask.begin(), full_mask.end(), col_begin);
  const auto seg_last = std::lower_bound(seg_first, full_mask.end(), col_end);
  const std::span<const I> mask_seg =
      full_mask.subspan(static_cast<std::size_t>(seg_first - full_mask.begin()),
                        static_cast<std::size_t>(seg_last - seg_first));
  if (mask_seg.empty()) {
    return 0;
  }

  acc.set_mask(mask_seg);
  detail::KernelRowMetrics metrics;
  const auto mask_nnz = static_cast<std::int64_t>(mask_seg.size());
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const auto b_cols = b.row_cols(k);
    const auto b_vals = b.row_vals(k);
    // Restrict the B row to the column range.
    const auto b_first = std::lower_bound(b_cols.begin(), b_cols.end(), col_begin);
    const auto b_first_idx = static_cast<std::size_t>(b_first - b_cols.begin());
    std::size_t b_count = 0;
    for (auto it = b_first; it != b_cols.end() && *it < col_end; ++it) {
      ++b_count;
    }

    const bool coiterate =
        strategy == MaskStrategy::kCoIterate ||
        (strategy == MaskStrategy::kHybrid &&
         detail::prefer_coiteration(mask_nnz, static_cast<std::int64_t>(b_count),
                                    kappa));
    if (coiterate) {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_coiter_picks;
      }
      for (const I j : mask_seg) {
        const std::size_t q = detail::lower_bound_index(
            b_cols, b_first_idx, j, metrics.binary_search_steps);
        if (q < b_cols.size() && b_cols[q] == j) {
          ++metrics.flops;
          acc.accumulate(j, SR::mul(scale, b_vals[q]));
        }
      }
    } else {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_linear_picks;
      }
      metrics.flops += b_count;
      for (std::size_t q = b_first_idx; q < b_first_idx + b_count; ++q) {
        acc.accumulate(b_cols[q], SR::mul(scale, b_vals[q]));
      }
    }
  }

  I count = 0;
  acc.gather(mask_seg, [&](I col, T value) {
    out_cols[count] = col;
    out_vals[count] = value;
    ++count;
  });
  acc.finish_row(mask_seg);
  metrics.flush();
  return count;
}

template <Semiring SR, class T, class I, class MakeAcc>
Csr<T, I> masked_spgemm_2d_with(const Csr<T, I>& mask, const Csr<T, I>& a,
                                const Csr<T, I>& b, const Config2d& config,
                                MakeAcc&& make_acc, ExecutionStats* stats) {
  require(a.cols() == b.rows(), "masked_spgemm_2d: inner dimensions must agree");
  require(mask.rows() == a.rows() && mask.cols() == b.cols(),
          "masked_spgemm_2d: mask shape must equal output shape");
  require(config.base.strategy != MaskStrategy::kVanilla,
          "masked_spgemm_2d: the vanilla strategy has no 2D formulation");

  WallTimer phase;
  const I rows = a.rows();
  const int threads =
      config.base.threads > 0 ? config.base.threads : max_threads();
  const std::int64_t num_row_tiles =
      config.base.num_tiles > 0 ? config.base.num_tiles
                                : 2 * static_cast<std::int64_t>(threads);

  std::vector<Tile> row_tiles;
  std::vector<Tile> col_tiles;
  {
    TraceSpan span("spgemm2d.analyze");
    if (config.base.tiling == Tiling::kFlopBalanced) {
      row_tiles = make_flop_balanced_tiles(row_work_prefix(mask, a, b), num_row_tiles);
    } else {
      row_tiles = make_uniform_tiles(rows, num_row_tiles);
    }
    col_tiles = make_uniform_tiles(b.cols(),
                                   std::max<std::int64_t>(1, config.num_col_tiles));
    if (col_tiles.empty()) {
      col_tiles.push_back({0, 0});  // zero-column matrix: one empty tile
    }
  }
  if (stats != nullptr) {
    stats->analyze_ms = phase.milliseconds();
    stats->tiles =
        static_cast<std::int64_t>(row_tiles.size() * std::max<std::size_t>(1, col_tiles.size()));
  }

  // --- compute ----------------------------------------------------------
  phase.reset();
  const auto mask_row_ptr = mask.row_ptr();
  std::vector<I> bound_cols(static_cast<std::size_t>(mask.nnz()));
  std::vector<T> bound_vals(static_cast<std::size_t>(mask.nnz()));
  // Per (row, column-tile) output counts, laid out row-major. Compaction
  // stitches the column segments of each row back together.
  const std::size_t col_tile_count = col_tiles.size();
  std::vector<I> cell_counts(static_cast<std::size_t>(rows) * col_tile_count, I{0});

  set_runtime_schedule(config.base.schedule);
  const auto task_count =
      static_cast<std::int64_t>(row_tiles.size() * col_tile_count);

  std::uint64_t total_resets = 0;
  std::uint64_t total_probes = 0;
  std::uint64_t total_inserts = 0;
  std::uint64_t total_rejects = 0;
  std::uint64_t total_collisions = 0;
  std::uint64_t total_row_resets = 0;
  std::uint64_t total_explicit_clears = 0;

  // Per-thread compute shares, indexed by OpenMP thread number.
  std::vector<ThreadWork> thread_work(static_cast<std::size_t>(threads));
  int team_size = threads;

  {
    TraceSpan compute_span("spgemm2d.compute");

#pragma omp parallel num_threads(threads)                                  \
    reduction(+ : total_resets, total_probes, total_inserts, total_rejects, \
                  total_collisions, total_row_resets, total_explicit_clears)
    {
      const int thread_num = omp_get_thread_num();
#pragma omp single
      team_size = omp_get_num_threads();

      auto acc = make_acc();
#if TILQ_METRICS_ENABLED
      MetricCounters* const thread_counters = metrics_thread_counters();
      const PerfScope perf_scope(thread_counters != nullptr);
#endif
      std::int64_t my_cells = 0;
      std::int64_t my_rows = 0;
      WallTimer busy;

#pragma omp for schedule(runtime) nowait
      for (std::int64_t task = 0; task < task_count; ++task) {
        const Tile row_tile = row_tiles[static_cast<std::size_t>(task) / col_tile_count];
        const std::size_t ct = static_cast<std::size_t>(task) % col_tile_count;
        const Tile col_tile = col_tiles[ct];
        TraceSpan tile_span("tile2d", task);
        ++my_cells;
        // In 2D a row is visited once per column tile; each visit counts.
        my_rows += row_tile.row_end - row_tile.row_begin;
        for (I i = static_cast<I>(row_tile.row_begin);
             i < static_cast<I>(row_tile.row_end); ++i) {
          // The cell writes into the slice of row i's mask-bounded slot that
          // corresponds to mask columns in [col_begin, col_end).
          const auto row_mask = mask.row_cols(i);
          const auto seg_first = std::lower_bound(row_mask.begin(), row_mask.end(),
                                                  static_cast<I>(col_tile.row_begin));
          const auto seg_offset = static_cast<std::size_t>(seg_first - row_mask.begin());
          const auto slot = static_cast<std::size_t>(
                                mask_row_ptr[static_cast<std::size_t>(i)]) +
                            seg_offset;
          cell_counts[static_cast<std::size_t>(i) * col_tile_count + ct] =
              compute_cell<SR>(mask, a, b, i, static_cast<I>(col_tile.row_begin),
                               static_cast<I>(col_tile.row_end),
                               config.base.strategy,
                               config.base.coiteration_factor, acc,
                               bound_cols.data() + slot, bound_vals.data() + slot);
        }
      }
      const double busy_ms = busy.milliseconds();
      if (thread_num >= 0 && thread_num < threads) {
        thread_work[static_cast<std::size_t>(thread_num)] = {
            thread_num, busy_ms, my_cells, my_rows};
      }

      const AccumulatorCounters& acc_counters = acc.counters();
      total_resets += acc_counters.full_resets;
      total_probes += acc_counters.probes;
      total_inserts += acc_counters.inserts;
      total_rejects += acc_counters.rejects;
      total_collisions += acc_counters.collisions;
      total_row_resets += acc_counters.row_resets;
      total_explicit_clears += acc_counters.explicit_clears;
#if TILQ_METRICS_ENABLED
      if (thread_counters != nullptr) {
        thread_counters->tiles_executed += static_cast<std::uint64_t>(my_cells);
        thread_counters->rows_processed += static_cast<std::uint64_t>(my_rows);
        thread_counters->busy_ns += static_cast<std::uint64_t>(busy_ms * 1e6);
        thread_counters->hash_probes += acc_counters.probes;
        thread_counters->hash_collisions += acc_counters.collisions;
        thread_counters->accum_inserts += acc_counters.inserts;
        thread_counters->accum_rejects += acc_counters.rejects;
        thread_counters->marker_row_resets += acc_counters.row_resets;
        thread_counters->marker_overflow_resets += acc_counters.full_resets;
        thread_counters->explicit_reset_slots += acc_counters.explicit_clears;
        if (HwCounters* const hw = metrics_thread_hw()) {
          *hw += perf_scope.delta();
        }
      }
#endif
    }
  }
  if (stats != nullptr) {
    stats->compute_ms = phase.milliseconds();
    stats->accumulator_full_resets = total_resets;
    stats->hash_probes = total_probes;
    stats->accum_inserts = total_inserts;
    stats->accum_rejects = total_rejects;
    stats->hash_collisions = total_collisions;
    stats->marker_row_resets = total_row_resets;
    stats->explicit_reset_slots = total_explicit_clears;
  }
  detail::finalize_thread_work(std::move(thread_work), team_size, stats);

  // --- compact ----------------------------------------------------------
  phase.reset();
  TraceSpan compact_span("spgemm2d.compact");
  std::vector<I> row_counts(static_cast<std::size_t>(rows), I{0});
  parallel_for(I{0}, rows, [&](I i) {
    I total = 0;
    for (std::size_t ct = 0; ct < col_tile_count; ++ct) {
      total += cell_counts[static_cast<std::size_t>(i) * col_tile_count + ct];
    }
    row_counts[static_cast<std::size_t>(i)] = total;
  });
  std::vector<I> out_row_ptr(static_cast<std::size_t>(rows) + 1);
  const I out_nnz = exclusive_scan<I>(row_counts, out_row_ptr);
  std::vector<I> out_cols(static_cast<std::size_t>(out_nnz));
  std::vector<T> out_vals(static_cast<std::size_t>(out_nnz));
  parallel_for(I{0}, rows, [&](I i) {
    auto dst = static_cast<std::size_t>(out_row_ptr[static_cast<std::size_t>(i)]);
    const auto row_mask = mask.row_cols(i);
    for (std::size_t ct = 0; ct < col_tile_count; ++ct) {
      const Tile col_tile = col_tiles[ct];
      const auto seg_first = std::lower_bound(row_mask.begin(), row_mask.end(),
                                              static_cast<I>(col_tile.row_begin));
      const auto slot = static_cast<std::size_t>(
                            mask_row_ptr[static_cast<std::size_t>(i)]) +
                        static_cast<std::size_t>(seg_first - row_mask.begin());
      const auto len = static_cast<std::size_t>(
          cell_counts[static_cast<std::size_t>(i) * col_tile_count + ct]);
      for (std::size_t p = 0; p < len; ++p) {
        out_cols[dst + p] = bound_cols[slot + p];
        out_vals[dst + p] = bound_vals[slot + p];
      }
      dst += len;
    }
  });
  Csr<T, I> result(rows, b.cols(), std::move(out_row_ptr), std::move(out_cols),
                   std::move(out_vals));
  if (stats != nullptr) {
    stats->compact_ms = phase.milliseconds();
    stats->output_nnz = static_cast<std::int64_t>(result.nnz());
  }
  return result;
}

template <Semiring SR, class T, class I, class Marker>
Csr<T, I> dispatch_accumulator_2d(const Csr<T, I>& mask, const Csr<T, I>& a,
                                  const Csr<T, I>& b, const Config2d& config,
                                  ExecutionStats* stats) {
  switch (config.base.accumulator) {
    case AccumulatorKind::kDense:
      return masked_spgemm_2d_with<SR>(
          mask, a, b, config,
          [&] {
            return DenseAccumulator<SR, I, Marker>(b.cols(), config.base.reset);
          },
          stats);
    case AccumulatorKind::kBitmap:
      return masked_spgemm_2d_with<SR>(
          mask, a, b, config, [&] { return BitmapAccumulator<SR, I>(b.cols()); },
          stats);
    case AccumulatorKind::kHash:
      break;
  }
  const I bound = max_row_nnz(mask);
  return masked_spgemm_2d_with<SR>(
      mask, a, b, config,
      [&] { return HashAccumulator<SR, I, Marker>(bound, config.base.reset); },
      stats);
}

}  // namespace detail

/// Masked SpGEMM with 2D (row x column) output tiling. num_col_tiles = 1
/// degenerates to the 1D algorithm.
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm_2d(const Csr<T, I>& mask, const Csr<T, I>& a,
                           const Csr<T, I>& b, const Config2d& config,
                           ExecutionStats* stats = nullptr) {
  switch (config.base.marker_width) {
    case MarkerWidth::k8:
      return detail::dispatch_accumulator_2d<SR, T, I, std::uint8_t>(
          mask, a, b, config, stats);
    case MarkerWidth::k16:
      return detail::dispatch_accumulator_2d<SR, T, I, std::uint16_t>(
          mask, a, b, config, stats);
    case MarkerWidth::k32:
      return detail::dispatch_accumulator_2d<SR, T, I, std::uint32_t>(
          mask, a, b, config, stats);
    case MarkerWidth::k64:
      return detail::dispatch_accumulator_2d<SR, T, I, std::uint64_t>(
          mask, a, b, config, stats);
  }
  require(false, "masked_spgemm_2d: invalid marker width");
  return Csr<T, I>{};
}

}  // namespace tilq
