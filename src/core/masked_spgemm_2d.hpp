// Two-dimensional tiling for the masked-SpGEMM — the extension the paper
// names as future work ("we only focused on tiling the computation in the
// row dimension ... possibly extend the experimentation to two dimensional
// tiling", §V-A). The output C (and the mask M) is tiled in rows AND
// columns: a task computes C[r0:r1, c0:c1] = M[r0:r1, c0:c1] ⊙ (A[r0:r1,:]
// × B[:, c0:c1]). Column tiling narrows the B-column working set per task,
// trading extra passes over A rows for cache locality — the 2D ablation
// bench quantifies when that pays off.
//
// Mechanics: because output entries can only appear at mask positions, the
// mask row's entries inside [c0, c1) define both the task's accumulator
// contents and its private, disjoint slice of the output buffer. Column
// tiles of one row therefore write into non-overlapping slot ranges and
// need no synchronization, and concatenating the slices in column-tile
// order keeps rows sorted. The cell kernel lives in core/kernels.hpp
// (detail::compute_cell); the driver is the planned runtime in
// core/plan.hpp — this header is the one-shot entry point (plan once,
// execute once). Config2d itself is declared in core/config.hpp.
#pragma once

#include "core/config.hpp"
#include "core/plan.hpp"
#include "sparse/csr.hpp"

namespace tilq {

/// Masked SpGEMM with 2D (row x column) output tiling. num_col_tiles = 1
/// degenerates to the 1D algorithm. The vanilla strategy is not supported
/// (its unmasked merge phase has no column-restricted formulation that
/// preserves its semantics).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm_2d(const Csr<T, I>& mask, const Csr<T, I>& a,
                           const Csr<T, I>& b, const Config2d& config) {
  static_assert(std::is_same_v<T, typename SR::value_type>,
                "matrix value type must match the semiring");
  require(config.strategy != MaskStrategy::kVanilla,
          "masked_spgemm_2d: the vanilla strategy has no 2D formulation");
  Executor<SR, T, I> exec;
  exec.plan(mask, a, b, config);
  return exec.execute(mask, a, b);
}

/// As above, filling `stats` with this call's execution statistics (the
/// plan-build time is reported as the analyze phase).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm_2d(const Csr<T, I>& mask, const Csr<T, I>& a,
                           const Csr<T, I>& b, const Config2d& config,
                           ExecutionStats& stats) {
  static_assert(std::is_same_v<T, typename SR::value_type>,
                "matrix value type must match the semiring");
  require(config.strategy != MaskStrategy::kVanilla,
          "masked_spgemm_2d: the vanilla strategy has no 2D formulation");
  Executor<SR, T, I> exec;
  exec.plan(mask, a, b, config);
  Csr<T, I> result = exec.execute(mask, a, b, stats);
  stats.analyze_ms += exec.info().build_ms;
  return result;
}

/// Deprecated pointer-based statistics out-parameter; use the
/// ExecutionStats& overload (or no stats argument at all) instead.
template <Semiring SR, class T = typename SR::value_type, class I>
[[deprecated("pass ExecutionStats by reference (or omit the argument)")]]
Csr<T, I> masked_spgemm_2d(const Csr<T, I>& mask, const Csr<T, I>& a,
                           const Csr<T, I>& b, const Config2d& config,
                           ExecutionStats* stats) {
  if (stats == nullptr) {
    return masked_spgemm_2d<SR, T, I>(mask, a, b, config);
  }
  return masked_spgemm_2d<SR, T, I>(mask, a, b, config, *stats);
}

}  // namespace tilq
