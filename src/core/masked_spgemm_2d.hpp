// Two-dimensional tiling for the masked-SpGEMM — the extension the paper
// names as future work ("we only focused on tiling the computation in the
// row dimension ... possibly extend the experimentation to two dimensional
// tiling", §V-A). The output C (and the mask M) is tiled in rows AND
// columns: a task computes C[r0:r1, c0:c1] = M[r0:r1, c0:c1] ⊙ (A[r0:r1,:]
// × B[:, c0:c1]). Column tiling narrows the B-column working set per task,
// trading extra passes over A rows for cache locality — the 2D ablation
// bench quantifies when that pays off.
//
// Mechanics: because output entries can only appear at mask positions, the
// mask row's entries inside [c0, c1) define both the task's accumulator
// contents and its private, disjoint slice of the output buffer. Column
// tiles of one row therefore write into non-overlapping slot ranges and
// need no synchronization, and concatenating the slices in column-tile
// order keeps rows sorted. The cell kernel lives in core/kernels.hpp
// (detail::compute_cell); the driver is the planned runtime in
// core/plan.hpp. Since the Config unification this header is a thin shim
// over the unified masked_spgemm facade: Config::num_col_tiles (or
// Config::mode) selects the execution space, and these wrappers only add
// the historical vanilla-rejection precondition.
#pragma once

#include "core/config.hpp"
#include "core/masked_spgemm.hpp"
#include "sparse/csr.hpp"

namespace tilq {

/// Masked SpGEMM with 2D (row x column) output tiling. num_col_tiles = 1
/// degenerates to the 1D algorithm. The vanilla strategy is not supported
/// (its unmasked merge phase has no column-restricted formulation that
/// preserves its semantics).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm_2d(const Csr<T, I>& mask, const Csr<T, I>& a,
                           const Csr<T, I>& b, const Config& config) {
  require(config.strategy != MaskStrategy::kVanilla,
          "masked_spgemm_2d: the vanilla strategy has no 2D formulation");
  return masked_spgemm<SR, T, I>(mask, a, b, config);
}

/// As above, filling `stats` with this call's execution statistics (the
/// plan-build time is reported as the analyze phase).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm_2d(const Csr<T, I>& mask, const Csr<T, I>& a,
                           const Csr<T, I>& b, const Config& config,
                           ExecutionStats& stats) {
  require(config.strategy != MaskStrategy::kVanilla,
          "masked_spgemm_2d: the vanilla strategy has no 2D formulation");
  return masked_spgemm<SR, T, I>(mask, a, b, config, stats);
}

}  // namespace tilq
