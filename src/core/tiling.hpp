// Row-dimension tiling (§III-A). Tiles are contiguous row ranges of the
// output C (equivalently of M and A; B is never tiled — §II-C). Two
// strategies, matching Fig 6:
//   1. uniform        — equal row counts per tile, work-oblivious
//   2. FLOP-balanced  — equal estimated work (Eq 2) per tile
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tilq {

/// Half-open row range [row_begin, row_end) processed by one task.
struct Tile {
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;

  [[nodiscard]] std::int64_t rows() const noexcept { return row_end - row_begin; }
  friend bool operator==(const Tile&, const Tile&) = default;
};

/// Tiling strategy selector (Fig 6).
enum class Tiling {
  kUniform,       ///< homogeneous: each tile has ~rows/ntiles rows
  kFlopBalanced,  ///< each tile has ~total_work/ntiles estimated FLOPs
};

[[nodiscard]] constexpr const char* to_string(Tiling tiling) noexcept {
  return tiling == Tiling::kUniform ? "uniform" : "flop-balanced";
}

/// Splits [0, rows) into at most `num_tiles` tiles of near-equal row count.
/// Returns fewer tiles when rows < num_tiles. Tiles are non-empty,
/// contiguous, and cover [0, rows).
std::vector<Tile> make_uniform_tiles(std::int64_t rows, std::int64_t num_tiles);

/// Splits [0, rows) into at most `num_tiles` tiles of near-equal estimated
/// work, given the exclusive prefix `work_prefix` (size rows+1, from
/// row_work_prefix). Cut points are found by binary search for the
/// quantiles of total work; empty tiles are elided, so heavy single rows
/// can reduce the tile count. Tiles are non-empty, contiguous, and cover
/// [0, rows).
std::vector<Tile> make_flop_balanced_tiles(std::span<const std::int64_t> work_prefix,
                                           std::int64_t num_tiles);

/// Work assigned to `tile` under `work_prefix` — test/diagnostic helper.
std::int64_t tile_work(const Tile& tile, std::span<const std::int64_t> work_prefix);

/// Splits hub rows out of `tiles`: every row whose estimated work exceeds
/// `hub_threshold` becomes a singleton tile of its own, preserving row
/// order and coverage. With a column-tiled grid (2D / blocked) a
/// singleton row tile still fans out into one task per column tile, so a
/// circuit-style ultra-dense row parallelizes INSIDE the row instead of
/// serializing one task. Returns the refined tiling; `splits` (when
/// non-null) receives the number of hub rows split out.
std::vector<Tile> split_hub_rows(std::vector<Tile> tiles,
                                 std::span<const std::int64_t> work_prefix,
                                 std::int64_t hub_threshold,
                                 std::int64_t* splits = nullptr);

}  // namespace tilq
