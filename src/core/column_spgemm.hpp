// Column-wise saxpy masked-SpGEMM over CSC operands — the dual of the
// row-wise CSR algorithm (§II-A). The identity
//
//   C = M ⊙ (A × B)   ⟺   Cᵀ = Mᵀ ⊙ (Bᵀ × Aᵀ)
//
// means the column-wise algorithm over CSC is exactly the row-wise
// algorithm over each operand's dual CSR, with the roles of A and B
// swapped. Every Config dimension (tiling — now over columns —,
// iteration strategy, accumulator) carries over unchanged.
#pragma once

#include "core/config.hpp"
#include "core/masked_spgemm.hpp"
#include "sparse/csc.hpp"
#include "support/trace.hpp"

namespace tilq {

/// C = M ⊙ (A × B) with all operands and the result in CSC. Tiles split the
/// output's columns; the accumulator indexes output rows.
template <Semiring SR, class T = typename SR::value_type, class I>
Csc<T, I> masked_spgemm_csc(const Csc<T, I>& mask, const Csc<T, I>& a,
                            const Csc<T, I>& b, const Config& config = {}) {
  // Dual problem: rows of the duals are columns of the logical matrices, so
  // the row-wise driver computes Cᵀ = Mᵀ ⊙ (Bᵀ × Aᵀ) directly on the
  // stored arrays — no transposes are materialized.
  TraceSpan span("spgemm.csc");
  return Csc<T, I>(masked_spgemm<SR>(mask.dual(), b.dual(), a.dual(), config));
}

/// As above, filling `stats`. The dual-transpose path forwards `stats` (and
/// tracing) to the row-wise driver unchanged, so the CSC entry point
/// reports exactly what its underlying CSR run measured.
template <Semiring SR, class T = typename SR::value_type, class I>
Csc<T, I> masked_spgemm_csc(const Csc<T, I>& mask, const Csc<T, I>& a,
                            const Csc<T, I>& b, const Config& config,
                            ExecutionStats& stats) {
  TraceSpan span("spgemm.csc");
  return Csc<T, I>(
      masked_spgemm<SR>(mask.dual(), b.dual(), a.dual(), config, stats));
}

}  // namespace tilq
