// Model-based configuration prediction — the paper's closing direction:
// "Ideally, this data will enable us to build models which can
// intelligently tune the parameters at execution time, rather than offline
// for the average case" (§VII). extract_features summarizes a problem in
// O(nnz); predict_config maps the features straight to a Config using the
// decision rules the paper's experiments support, with no measurement:
//
//   * FLOP-balanced tiling, DYNAMIC scheduling, intermediate tile count
//     (§V-A observations 1-4);
//   * the hybrid kernel with κ = 1 (§V-B: "no significant scaling factor
//     is needed"), degrading to mask-first when B rows are uniformly tiny
//     (binary search can never win there);
//   * dense accumulator when the dense state fits comfortably in cache or
//     the writes are dense, hash otherwise, 32-bit markers (§V-C).
//
// bench/model_vs_tuned validates the predictor against the staged tuner.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/config.hpp"
#include "core/work_estimate.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"

namespace tilq {

/// O(nnz)-extractable features of a masked-SpGEMM problem.
struct ProblemFeatures {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t mask_nnz = 0;
  std::int64_t a_nnz = 0;
  std::int64_t b_nnz = 0;
  std::int64_t flops = 0;          ///< Σ_{A[i,k]≠0} nnz(B[k,:])
  double mean_mask_row = 0.0;      ///< nnz(M)/rows
  std::int64_t max_mask_row = 0;
  double mean_b_row = 0.0;         ///< nnz(B)/rows(B)
  std::int64_t max_b_row = 0;
  /// Coefficient of variation of the Eq-2 per-row work — the load-imbalance
  /// signal (road graphs ~0, social/web graphs >> 1).
  double row_work_cv = 0.0;
  /// mean_mask_row·log2(max_b_row) / max_b_row: < 1 means co-iterating the
  /// heaviest B rows beats scanning them (the Eq-3 test at the extreme).
  double coiteration_signal = 0.0;
};

template <class T, class I>
ProblemFeatures extract_features(const Csr<T, I>& mask, const Csr<T, I>& a,
                                 const Csr<T, I>& b) {
  ProblemFeatures f;
  f.rows = a.rows();
  f.cols = b.cols();
  f.mask_nnz = mask.nnz();
  f.a_nnz = a.nnz();
  f.b_nnz = b.nnz();
  f.flops = total_flops(a, b);
  f.mean_mask_row =
      f.rows > 0 ? static_cast<double>(f.mask_nnz) / static_cast<double>(f.rows)
                 : 0.0;
  f.max_mask_row = max_row_nnz(mask);
  f.mean_b_row = b.rows() > 0 ? static_cast<double>(f.b_nnz) /
                                    static_cast<double>(b.rows())
                              : 0.0;
  f.max_b_row = max_row_nnz(b);

  const auto work = row_work(mask, a, b);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::int64_t w : work) {
    sum += static_cast<double>(w);
    sum_sq += static_cast<double>(w) * static_cast<double>(w);
  }
  if (!work.empty() && sum > 0.0) {
    const double n = static_cast<double>(work.size());
    const double mean = sum / n;
    const double variance = std::max(0.0, sum_sq / n - mean * mean);
    f.row_work_cv = std::sqrt(variance) / mean;
  }

  if (f.max_b_row > 1 && f.mean_mask_row > 0.0) {
    f.coiteration_signal = f.mean_mask_row *
                           std::log2(static_cast<double>(f.max_b_row)) /
                           static_cast<double>(f.max_b_row);
  }
  return f;
}

/// Maps features to a Config without any measurement. `threads` <= 0 uses
/// the OpenMP default.
Config predict_config(const ProblemFeatures& features, int threads = 0);

/// Convenience: extract + predict in one call.
template <class T, class I>
Config predict_config(const Csr<T, I>& mask, const Csr<T, I>& a,
                      const Csr<T, I>& b, int threads = 0) {
  return predict_config(extract_features(mask, a, b), threads);
}

}  // namespace tilq
