// Staged parameter tuning, reproducing the paper's Fig 12 flow:
//
//   1. determine the best combination of tiling and scheduling
//      (tile-count sweep x {uniform, flop-balanced} x {static, dynamic},
//      without co-iteration, i.e. the mask-first kernel)
//   2. tune the co-iteration factor κ (hybrid kernel, best stage-1 config)
//   3. tune the accumulator internal state (marker width sweep, κ fixed)
//
// The tuner core is algebra-agnostic: it sweeps Configs through an
// `Evaluate` callback that returns milliseconds. `tune()` wraps
// masked_spgemm + the measurement protocol into that callback for a
// concrete problem.
#pragma once

#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/masked_spgemm.hpp"
#include "support/timer.hpp"

namespace tilq {

struct TunerOptions {
  std::vector<std::int64_t> tile_counts = {64, 256, 1024, 4096};
  std::vector<double> kappas = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0};
  std::vector<MarkerWidth> marker_widths = {MarkerWidth::k8, MarkerWidth::k16,
                                            MarkerWidth::k32, MarkerWidth::k64};
  /// Accumulators considered in every stage.
  std::vector<AccumulatorKind> accumulators = {AccumulatorKind::kDense,
                                               AccumulatorKind::kHash};
  /// Per-candidate measurement budget.
  TimingOptions timing = {.budget_seconds = 0.2, .max_iterations = 10,
                          .min_iterations = 2, .warmup = true};
  int threads = 0;
};

/// One evaluated candidate.
struct TunerTrial {
  Config config;
  double ms = 0.0;
};

/// Full tuning transcript: every candidate of every stage plus the winner.
struct TunerReport {
  Config best;
  double best_ms = 0.0;
  std::vector<TunerTrial> stage_tiling;       ///< stage 1 candidates
  std::vector<TunerTrial> stage_coiteration;  ///< stage 2 candidates
  std::vector<TunerTrial> stage_accumulator;  ///< stage 3 candidates
};

/// Callback evaluating one Config; returns milliseconds (lower is better).
using Evaluate = std::function<double(const Config&)>;

/// Runs the three-stage sweep through `evaluate`. Non-template core so the
/// staged logic is compiled once and testable with a synthetic cost model.
TunerReport tune_with(const Evaluate& evaluate, const TunerOptions& options);

/// Tunes masked_spgemm<SR> for a concrete (M, A, B) problem.
template <Semiring SR, class T = typename SR::value_type, class I>
TunerReport tune(const Csr<T, I>& mask, const Csr<T, I>& a, const Csr<T, I>& b,
                 const TunerOptions& options = {}) {
  const Evaluate evaluate = [&](const Config& config) {
    const TimingResult timing = measure(
        [&] { (void)masked_spgemm<SR>(mask, a, b, config); }, options.timing);
    return timing.median_ms;
  };
  return tune_with(evaluate, options);
}

}  // namespace tilq
