// Online per-fingerprint config learning (docs/TUNING.md): the serving
// engine's answer to the paper's closing direction — "models which can
// intelligently tune the parameters at execution time". Where the offline
// tuner (core/tuner.hpp) sweeps Configs against one problem under a
// measurement protocol, the ConfigBandit refines the choice *while
// serving*, from signals the engine already collects for free:
//
//   * each plan-cache structural fingerprint gets a small table of config
//     arms — execution-space strategy (1D / 2D / blocked), accumulator
//     kind, marker width, hybrid κ — seeded from the submitted config and
//     the heuristic model's prediction (core/model.hpp);
//   * every finished job reports its reward: measured run latency
//     normalized by the plan's Eq-2 FLOP total (time-per-FLOP, so arms
//     compared across jobs of different sizes), penalized when the run
//     degraded to the dense fallback;
//   * selection is ε-greedy with a deterministic SplitMix64 draw keyed on
//     (seed, fingerprint, draw count) — two runs of the same stream make
//     the same choices — plus a first round-robin pass so every arm is
//     priced at least once before the greedy phase narrows;
//   * exploration is budgeted and gated: the engine never explores jobs
//     with deadlines, expensive jobs, or anything while degraded or
//     browned out (eligibility is the engine's call — see
//     Engine::submit's allow_explore plumbing); once every live arm has
//     min_pulls samples or the budget is spent, the fingerprint freezes
//     onto its best arm (convergence) and selection costs one map lookup.
//
// Every arm runs through the same PlanCache machinery, so results stay
// bit-identical across arms — an arm switch changes time, never values
// (tests/autotune_test.cpp proves it against the one-shot oracle).
//
// Thread-safety: ConfigBandit is internally locked; select() and report()
// may race from any number of submitting threads and pool workers.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/config.hpp"

namespace tilq {

/// Knobs for the online tuning layer, a member of EngineOptions. The
/// defaults keep it off; enabling costs one mutex-guarded map lookup per
/// submission plus one report per finished job.
struct AutotuneOptions {
  /// Master switch: off means the engine never consults the bandit and
  /// serves every submission on its caller-provided config, exactly as
  /// before.
  bool enabled = false;
  /// Exploration probability per eligible draw once every arm has been
  /// priced once; clamped to [0, 1].
  double epsilon = 0.2;
  /// Samples per live arm before a fingerprint may freeze (converge).
  int min_pulls = 2;
  /// Hard cap on exploration draws per fingerprint; spending it freezes
  /// the fingerprint onto the best arm priced so far.
  int explore_budget = 32;
  /// Seed for the deterministic ε draws (no entropy is ever mixed in).
  std::uint64_t seed = 0;
};

/// Applies the TILQ_AUTOTUNE environment variable on top of `base`:
/// "off"/"0" disables, "on"/"1" enables with the base knobs, and a
/// decimal in (0, 1] enables with that exploration ε. Unset leaves the
/// base untouched.
[[nodiscard]] AutotuneOptions autotune_options_from_env(AutotuneOptions base);

/// One config arm's running estimate, in milliseconds per million Eq-2
/// FLOPs. `min_cost` — the best cost ever observed — is what selection
/// compares: latency noise is one-sided (samples only inflate), so the
/// minimum converges on an arm's true cost far faster than the mean,
/// which is kept for reporting. An arm whose attempt ever failed is dead
/// — never selected again.
struct ArmStats {
  Config config;
  std::uint64_t pulls = 0;     ///< rewards folded into the costs
  std::uint64_t failures = 0;  ///< failed attempts (> 0 marks the arm dead)
  std::uint64_t degrades = 0;  ///< dense-fallback escalations, summed
  double mean_cost = 0.0;      ///< mean ms per MFLOP, degrade-penalized
  double min_cost = 0.0;       ///< best observed cost; 0 until first pull
};

/// One select() verdict: which Config to serve and how it was chosen.
/// `arm < 0` means the bandit was bypassed (unknown failure state) and
/// `config` echoes the submitted one.
struct ArmDecision {
  Config config;
  int arm = -1;
  bool exploration = false;     ///< an ε/round-robin draw, not the best arm
  bool first_sighting = false;  ///< this select created the arm table
};

/// What one report() changed, for the engine's counters and flight record.
struct RewardOutcome {
  bool arm_switched = false;  ///< the exploit-best arm changed
  bool converged = false;     ///< the fingerprint froze on this report
};

/// Lifetime totals across every fingerprint (EngineStats / telemetry).
struct AutotuneStats {
  std::uint64_t fingerprints = 0;  ///< arm tables created
  std::uint64_t explorations = 0;  ///< non-greedy draws served
  std::uint64_t arm_switches = 0;  ///< exploit-best changes
  std::uint64_t converged = 0;     ///< fingerprints frozen
};

/// The candidate arm set for one fingerprint: the submitted config, the
/// heuristic model's prediction, and structured variants across the
/// paper's dimensions (accumulator kind, blocked/2D execution space,
/// marker width, hybrid κ), deduplicated, submitted config first.
/// Exposed for tests and the TUNING.md examples.
[[nodiscard]] std::vector<Config> candidate_arm_configs(
    const Config& submitted, const Config& heuristic);

/// The per-fingerprint ε-greedy bandit. One instance per Engine; all
/// methods are thread-safe.
class ConfigBandit {
 public:
  explicit ConfigBandit(AutotuneOptions options = {});

  ConfigBandit(const ConfigBandit&) = delete;
  ConfigBandit& operator=(const ConfigBandit&) = delete;

  /// Picks the arm to serve for `fingerprint`. The first select for a
  /// fingerprint creates its arm table from candidate_arm_configs(
  /// submitted, heuristic) and returns the submitted config (arm 0) — the
  /// caller's choice is always the baseline every other arm must beat.
  /// `allow_explore` false restricts the draw to the best-priced arm.
  [[nodiscard]] ArmDecision select(std::uint64_t fingerprint,
                                   const Config& submitted,
                                   const Config& heuristic,
                                   bool allow_explore);

  /// Feeds one finished job's signal back into its arm: `run_ms` over
  /// `flop_estimate` becomes the normalized cost, `degrades` applies the
  /// dense-fallback penalty, `failed` kills the arm. Returns what changed.
  RewardOutcome report(std::uint64_t fingerprint, int arm, double run_ms,
                       std::int64_t flop_estimate, std::uint64_t degrades,
                       bool failed);

  /// True once select() has seen the fingerprint (its arm table exists).
  [[nodiscard]] bool known(std::uint64_t fingerprint) const;

  /// The fingerprint's last reported Eq-2 FLOP estimate (0 when none) —
  /// what the engine's exploration gate prices expensiveness against.
  [[nodiscard]] std::int64_t last_flops(std::uint64_t fingerprint) const;

  /// True once the fingerprint froze onto its best arm.
  [[nodiscard]] bool converged(std::uint64_t fingerprint) const;

  /// Copy of the fingerprint's arm table (empty when unknown).
  [[nodiscard]] std::vector<ArmStats> arms(std::uint64_t fingerprint) const;

  /// The arm a frozen or warm fingerprint exploits right now (-1 unknown).
  [[nodiscard]] int best_arm(std::uint64_t fingerprint) const;

  /// Lifetime totals across every fingerprint.
  [[nodiscard]] AutotuneStats stats() const;

  [[nodiscard]] const AutotuneOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Table {
    std::vector<ArmStats> arms;
    std::uint64_t draws = 0;         ///< select() calls served
    std::uint64_t explorations = 0;  ///< spent against explore_budget
    std::int64_t flops = 0;          ///< last reported Eq-2 estimate
    int best = 0;                    ///< exploit arm index
    bool frozen = false;             ///< converged: always serve `best`
  };

  [[nodiscard]] int exploit_arm_locked(const Table& table) const;
  [[nodiscard]] bool freeze_ready_locked(const Table& table) const;

  AutotuneOptions options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Table> tables_;
  std::uint64_t explorations_ = 0;
  std::uint64_t arm_switches_ = 0;
  std::uint64_t converged_count_ = 0;
};

}  // namespace tilq
