#include "core/tuner.hpp"

#include "support/common.hpp"

namespace tilq {
namespace {

/// Evaluates `config`, records the trial, and tracks the incumbent.
void consider(const Evaluate& evaluate, const Config& config,
              std::vector<TunerTrial>& trials, Config& best, double& best_ms) {
  const double ms = evaluate(config);
  trials.push_back({config, ms});
  if (ms < best_ms) {
    best_ms = ms;
    best = config;
  }
}

}  // namespace

TunerReport tune_with(const Evaluate& evaluate, const TunerOptions& options) {
  require(!options.tile_counts.empty(), "tune_with: empty tile-count sweep");
  require(!options.kappas.empty(), "tune_with: empty kappa sweep");
  require(!options.marker_widths.empty(), "tune_with: empty marker sweep");
  require(!options.accumulators.empty(), "tune_with: empty accumulator sweep");

  TunerReport report;

  // --- Stage 1: tiling & scheduling, no co-iteration (Fig 12 box 1) -----
  Config base;
  base.strategy = MaskStrategy::kMaskFirst;
  base.marker_width = MarkerWidth::k64;  // neutral default until stage 3
  base.reset = ResetPolicy::kMarker;
  base.threads = options.threads;

  Config best = base;
  double best_ms = std::numeric_limits<double>::infinity();
  for (const AccumulatorKind acc : options.accumulators) {
    for (const Tiling tiling : {Tiling::kUniform, Tiling::kFlopBalanced}) {
      for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
        for (const std::int64_t tiles : options.tile_counts) {
          Config candidate = base;
          candidate.accumulator = acc;
          candidate.tiling = tiling;
          candidate.schedule = schedule;
          candidate.num_tiles = tiles;
          consider(evaluate, candidate, report.stage_tiling, best, best_ms);
        }
      }
    }
  }

  // --- Stage 2: co-iteration factor (Fig 12 box 2) ----------------------
  // The stage-1 winner (mask-first) stays the incumbent: κ only wins if the
  // hybrid beats plain linear scanning.
  for (const double kappa : options.kappas) {
    Config candidate = best;
    candidate.strategy = MaskStrategy::kHybrid;
    candidate.coiteration_factor = kappa;
    consider(evaluate, candidate, report.stage_coiteration, best, best_ms);
  }

  // --- Stage 3: accumulator state width (Fig 12 box 3) ------------------
  for (const MarkerWidth width : options.marker_widths) {
    if (width == best.marker_width) {
      continue;  // incumbent already measured
    }
    Config candidate = best;
    candidate.marker_width = width;
    consider(evaluate, candidate, report.stage_accumulator, best, best_ms);
  }

  report.best = best;
  report.best_ms = best_ms;
  return report;
}

}  // namespace tilq
