#include "core/plan.hpp"

#include <cstring>

namespace tilq::detail {

namespace {

// splitmix64 finalizer — strong enough to make accidental fingerprint
// collisions between two real sparsity patterns a non-concern.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t hash_bytes(const void* data, std::size_t size,
                         std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed ^ (0x9e3779b97f4a7c15ULL + size);
  // Word-at-a-time so fingerprinting stays cheap next to the kernel itself
  // (the staleness check runs on every execute()).
  while (size >= sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, bytes, sizeof word);
    h = mix(h ^ word);
    bytes += sizeof word;
    size -= sizeof word;
  }
  if (size > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, bytes, size);
    h = mix(h ^ tail ^ (static_cast<std::uint64_t>(size) << 56));
  }
  return h;
}

}  // namespace tilq::detail
