#include "core/plan.hpp"

#include <cstring>

namespace tilq::detail {

namespace {

// splitmix64 finalizer — strong enough to make accidental fingerprint
// collisions between two real sparsity patterns a non-concern.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t hash_bytes(const void* data, std::size_t size,
                         std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed ^ (0x9e3779b97f4a7c15ULL + size);
  // Four independent lanes, 32 bytes per step: a single word-at-a-time
  // chain is latency-bound on the multiply, and the staleness check runs
  // on every execute()/submit() — fingerprint throughput is serving-path
  // throughput (bench/engine_throughput is dominated by it otherwise).
  std::uint64_t lane[4] = {h, h ^ 0xbf58476d1ce4e5b9ULL,
                           h ^ 0x94d049bb133111ebULL,
                           h ^ 0xd6e8feb86659fd93ULL};
  while (size >= 4 * sizeof(std::uint64_t)) {
    std::uint64_t word[4];
    std::memcpy(word, bytes, sizeof word);
    for (int i = 0; i < 4; ++i) {
      lane[i] = (lane[i] ^ word[i]) * 0x9e3779b97f4a7c15ULL;
      lane[i] ^= lane[i] >> 29;
    }
    bytes += sizeof word;
    size -= sizeof word;
  }
  h = mix(lane[0]) ^ mix(lane[1]) ^ mix(lane[2]) ^ mix(lane[3]);
  while (size >= sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, bytes, sizeof word);
    h = mix(h ^ word);
    bytes += sizeof word;
    size -= sizeof word;
  }
  if (size > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, bytes, size);
    h = mix(h ^ tail ^ (static_cast<std::uint64_t>(size) << 56));
  }
  return h;
}

}  // namespace tilq::detail
