// The tilq masked-SpGEMM: C = M ⊙ (A × B) over an arbitrary semiring, with
// every performance dimension of the paper exposed through Config.
//
// Execution pipeline (implemented by the plan/execute runtime in
// core/plan.hpp; this header is the one-shot convenience entry point —
// plan once, execute once):
//   1. analyze  — per-row work estimates (Eq 2) when FLOP-balanced tiling is
//                 requested; tile construction; hybrid κ decisions;
//                 accumulator sizing. This is Executor::plan().
//   2. compute  — one OpenMP parallel region; tiles dispatched with
//                 schedule(runtime) so STATIC/DYNAMIC is a runtime switch;
//                 each thread owns one pooled accumulator; every output row
//                 is written into a slot of size nnz(M[i,:]) inside a buffer
//                 allocated at the mask's row-pointer bound (masked output
//                 rows can never exceed the mask row).
//   3. compact  — parallel prefix sum over actual row sizes + parallel copy
//                 into the final CSR arrays.
//
// Iterative callers with a fixed sparsity pattern should hold a
// tilq::Executor (or tilq::PlanCache) instead and pay phase 1 once — see
// docs/API.md.
#pragma once

#include "core/config.hpp"
#include "core/plan.hpp"
#include "sparse/csr.hpp"

namespace tilq {

/// Masked sparse matrix-matrix product C = M ⊙ (A × B) over semiring SR.
/// The mask is structural: its values are ignored, only its pattern filters
/// the product (GraphBLAS boolean-mask semantics, §IV-A). Output rows are
/// sorted; nnz(C[i,:]) <= nnz(M[i,:]).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm(const Csr<T, I>& mask, const Csr<T, I>& a,
                        const Csr<T, I>& b, const Config& config = {}) {
  static_assert(std::is_same_v<T, typename SR::value_type>,
                "matrix value type must match the semiring");
  Executor<SR, T, I> exec;
  exec.plan(mask, a, b, config);
  return exec.execute(mask, a, b);
}

/// As above, filling `stats` with this call's execution statistics (the
/// plan-build time is reported as the analyze phase).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm(const Csr<T, I>& mask, const Csr<T, I>& a,
                        const Csr<T, I>& b, const Config& config,
                        ExecutionStats& stats) {
  static_assert(std::is_same_v<T, typename SR::value_type>,
                "matrix value type must match the semiring");
  Executor<SR, T, I> exec;
  exec.plan(mask, a, b, config);
  Csr<T, I> result = exec.execute(mask, a, b, stats);
  stats.analyze_ms += exec.info().build_ms;
  return result;
}

}  // namespace tilq
