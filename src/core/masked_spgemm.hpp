// The tilq masked-SpGEMM: C = M ⊙ (A × B) over an arbitrary semiring, with
// every performance dimension of the paper exposed through Config.
//
// Execution pipeline:
//   1. analyze  — per-row work estimates (Eq 2) when FLOP-balanced tiling is
//                 requested; tile construction.
//   2. compute  — one OpenMP parallel region; tiles dispatched with
//                 schedule(runtime) so STATIC/DYNAMIC is a runtime switch;
//                 each thread owns one accumulator; every output row is
//                 written into a slot of size nnz(M[i,:]) inside a buffer
//                 allocated at the mask's row-pointer bound (masked output
//                 rows can never exceed the mask row).
//   3. compact  — parallel prefix sum over actual row sizes + parallel copy
//                 into the final CSR arrays.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "accum/bitmap_accumulator.hpp"
#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "core/config.hpp"
#include "core/kernels.hpp"
#include "core/tiling.hpp"
#include "core/work_estimate.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"
#include "support/env.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/perf.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace tilq {

namespace detail {

/// Folds the team's per-thread compute shares into `stats`: the raw
/// breakdown plus the derived imbalance statistics (max/mean busy ratio
/// and the coefficient of variation — the measured counterpart of the
/// model's predicted row-work CV). `work` is indexed by OpenMP thread
/// number and sized for the requested team; `team_size` is how many
/// threads the runtime actually granted.
inline void finalize_thread_work(std::vector<ThreadWork>&& work,
                                 int team_size, ExecutionStats* stats) {
  if (stats == nullptr) {
    return;
  }
  if (team_size > 0 &&
      static_cast<std::size_t>(team_size) < work.size()) {
    work.resize(static_cast<std::size_t>(team_size));
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  double max = 0.0;
  for (const ThreadWork& t : work) {
    sum += t.busy_ms;
    sum_sq += t.busy_ms * t.busy_ms;
    max = std::max(max, t.busy_ms);
  }
  if (!work.empty() && sum > 0.0) {
    const double n = static_cast<double>(work.size());
    const double mean = sum / n;
    const double variance = std::max(0.0, sum_sq / n - mean * mean);
    stats->imbalance_ratio = max / mean;
    stats->busy_cv = std::sqrt(variance) / mean;
  }
  stats->thread_work = std::move(work);
}

/// The strategy-independent parallel driver, templated on the concrete
/// accumulator type. `make_acc()` constructs one accumulator per thread.
template <Semiring SR, class T, class I, class MakeAcc>
Csr<T, I> masked_spgemm_with(const Csr<T, I>& mask, const Csr<T, I>& a,
                             const Csr<T, I>& b, const Config& config,
                             MakeAcc&& make_acc, ExecutionStats* stats) {
  require(a.cols() == b.rows(), "masked_spgemm: inner dimensions must agree");
  require(mask.rows() == a.rows() && mask.cols() == b.cols(),
          "masked_spgemm: mask shape must equal output shape");

  WallTimer phase;
  const I rows = a.rows();

  // --- 1. analyze -------------------------------------------------------
  const int threads = config.threads > 0 ? config.threads : max_threads();
  const std::int64_t num_tiles =
      config.num_tiles > 0 ? config.num_tiles : 2 * static_cast<std::int64_t>(threads);

  std::vector<Tile> tiles;
  {
    TraceSpan span("spgemm.analyze");
    if (config.tiling == Tiling::kFlopBalanced) {
      const std::vector<std::int64_t> prefix = row_work_prefix(mask, a, b);
      tiles = make_flop_balanced_tiles(prefix, num_tiles);
    } else {
      tiles = make_uniform_tiles(rows, num_tiles);
    }
  }
  if (stats != nullptr) {
    stats->analyze_ms = phase.milliseconds();
    stats->tiles = static_cast<std::int64_t>(tiles.size());
  }

  // --- 2. compute -------------------------------------------------------
  phase.reset();
  // Row i writes into [mask.row_ptr[i], mask.row_ptr[i+1]) of the bound
  // buffers; row_counts[i] records how many slots it actually used.
  const auto mask_row_ptr = mask.row_ptr();
  std::vector<I> bound_cols(static_cast<std::size_t>(mask.nnz()));
  std::vector<T> bound_vals(static_cast<std::size_t>(mask.nnz()));
  std::vector<I> row_counts(static_cast<std::size_t>(rows), I{0});

  set_runtime_schedule(config.schedule);
  const auto tile_count = static_cast<std::int64_t>(tiles.size());

  std::uint64_t total_resets = 0;
  std::uint64_t total_probes = 0;
  std::uint64_t total_inserts = 0;
  std::uint64_t total_rejects = 0;
  std::uint64_t total_collisions = 0;
  std::uint64_t total_row_resets = 0;
  std::uint64_t total_explicit_clears = 0;

  // Per-thread compute shares, indexed by OpenMP thread number; the
  // measured load-imbalance signal next to the model's predicted CV.
  std::vector<ThreadWork> thread_work(static_cast<std::size_t>(threads));
  int team_size = threads;

  {
    TraceSpan compute_span("spgemm.compute");

#pragma omp parallel num_threads(threads)                                  \
    reduction(+ : total_resets, total_probes, total_inserts, total_rejects, \
                  total_collisions, total_row_resets, total_explicit_clears)
    {
      const int thread_num = omp_get_thread_num();
#pragma omp single
      team_size = omp_get_num_threads();

      auto acc = make_acc();
#if TILQ_METRICS_ENABLED
      MetricCounters* const thread_counters = metrics_thread_counters();
      // Hardware counters for this thread's share of the region; inactive
      // (zero-cost) when metrics are off or perf_event_open failed.
      const PerfScope perf_scope(thread_counters != nullptr);
#endif
      std::int64_t my_tiles = 0;
      std::int64_t my_rows = 0;
      WallTimer busy;

#pragma omp for schedule(runtime) nowait
      for (std::int64_t t = 0; t < tile_count; ++t) {
        const Tile tile = tiles[static_cast<std::size_t>(t)];
        TraceSpan tile_span("tile", t);
        ++my_tiles;
        my_rows += tile.row_end - tile.row_begin;
        for (I i = static_cast<I>(tile.row_begin); i < static_cast<I>(tile.row_end); ++i) {
          I* out_cols = bound_cols.data() + mask_row_ptr[static_cast<std::size_t>(i)];
          T* out_vals = bound_vals.data() + mask_row_ptr[static_cast<std::size_t>(i)];
          I count = 0;
          compute_row<SR>(config.strategy, config.coiteration_factor, mask, a, b,
                          i, acc, [&](I col, T value) {
                            out_cols[count] = col;
                            out_vals[count] = value;
                            ++count;
                          });
          row_counts[static_cast<std::size_t>(i)] = count;
        }
      }
      const double busy_ms = busy.milliseconds();
      if (thread_num >= 0 && thread_num < threads) {
        thread_work[static_cast<std::size_t>(thread_num)] = {
            thread_num, busy_ms, my_tiles, my_rows};
      }

      const AccumulatorCounters& acc_counters = acc.counters();
      total_resets += acc_counters.full_resets;
      total_probes += acc_counters.probes;
      total_inserts += acc_counters.inserts;
      total_rejects += acc_counters.rejects;
      total_collisions += acc_counters.collisions;
      total_row_resets += acc_counters.row_resets;
      total_explicit_clears += acc_counters.explicit_clears;
#if TILQ_METRICS_ENABLED
      // Per-accumulator counters fold into the owning thread's global slot
      // so the metrics registry sees the same totals as ExecutionStats.
      if (thread_counters != nullptr) {
        thread_counters->tiles_executed += static_cast<std::uint64_t>(my_tiles);
        thread_counters->rows_processed += static_cast<std::uint64_t>(my_rows);
        thread_counters->busy_ns += static_cast<std::uint64_t>(busy_ms * 1e6);
        thread_counters->hash_probes += acc_counters.probes;
        thread_counters->hash_collisions += acc_counters.collisions;
        thread_counters->accum_inserts += acc_counters.inserts;
        thread_counters->accum_rejects += acc_counters.rejects;
        thread_counters->marker_row_resets += acc_counters.row_resets;
        thread_counters->marker_overflow_resets += acc_counters.full_resets;
        thread_counters->explicit_reset_slots += acc_counters.explicit_clears;
        if (HwCounters* const hw = metrics_thread_hw()) {
          *hw += perf_scope.delta();
        }
      }
#endif
    }
  }
  if (stats != nullptr) {
    stats->compute_ms = phase.milliseconds();
    stats->accumulator_full_resets = total_resets;
    stats->hash_probes = total_probes;
    stats->accum_inserts = total_inserts;
    stats->accum_rejects = total_rejects;
    stats->hash_collisions = total_collisions;
    stats->marker_row_resets = total_row_resets;
    stats->explicit_reset_slots = total_explicit_clears;
  }
  detail::finalize_thread_work(std::move(thread_work), team_size, stats);

  // --- 3. compact -------------------------------------------------------
  phase.reset();
  TraceSpan compact_span("spgemm.compact");
  std::vector<I> out_row_ptr(static_cast<std::size_t>(rows) + 1);
  const I out_nnz = exclusive_scan<I>(row_counts, out_row_ptr);
  std::vector<I> out_cols(static_cast<std::size_t>(out_nnz));
  std::vector<T> out_vals(static_cast<std::size_t>(out_nnz));
  parallel_for(I{0}, rows, [&](I i) {
    const auto src = static_cast<std::size_t>(mask_row_ptr[static_cast<std::size_t>(i)]);
    const auto dst = static_cast<std::size_t>(out_row_ptr[static_cast<std::size_t>(i)]);
    const auto len = static_cast<std::size_t>(row_counts[static_cast<std::size_t>(i)]);
    for (std::size_t p = 0; p < len; ++p) {
      out_cols[dst + p] = bound_cols[src + p];
      out_vals[dst + p] = bound_vals[src + p];
    }
  });
  Csr<T, I> result(rows, b.cols(), std::move(out_row_ptr), std::move(out_cols),
                   std::move(out_vals));
  if (stats != nullptr) {
    stats->compact_ms = phase.milliseconds();
    stats->output_nnz = static_cast<std::int64_t>(result.nnz());
  }
  return result;
}

/// Accumulator sizing (§III-C): the hash table is bounded by the maximal
/// mask-row nnz, except the vanilla strategy which fills the accumulator
/// before masking and therefore needs the per-row FLOP bound.
template <class T, class I>
I accumulator_row_bound(const Csr<T, I>& mask, const Csr<T, I>& a,
                        const Csr<T, I>& b, MaskStrategy strategy) {
  if (strategy != MaskStrategy::kVanilla) {
    return max_row_nnz(mask);
  }
  I bound = 0;
  for (I i = 0; i < a.rows(); ++i) {
    bound = std::max(bound, row_flop_bound(a, b, i));
  }
  return std::max(bound, max_row_nnz(mask));
}

template <Semiring SR, class T, class I, class Marker>
Csr<T, I> dispatch_accumulator(const Csr<T, I>& mask, const Csr<T, I>& a,
                               const Csr<T, I>& b, const Config& config,
                               ExecutionStats* stats) {
  switch (config.accumulator) {
    case AccumulatorKind::kDense:
      return masked_spgemm_with<SR>(
          mask, a, b, config,
          [&] { return DenseAccumulator<SR, I, Marker>(b.cols(), config.reset); },
          stats);
    case AccumulatorKind::kBitmap:
      // 1-bit flags: the marker width and reset policy are fixed by the
      // representation (explicit reset only).
      return masked_spgemm_with<SR>(
          mask, a, b, config, [&] { return BitmapAccumulator<SR, I>(b.cols()); },
          stats);
    case AccumulatorKind::kHash:
      break;
  }
  const I bound = accumulator_row_bound(mask, a, b, config.strategy);
  return masked_spgemm_with<SR>(
      mask, a, b, config,
      [&] { return HashAccumulator<SR, I, Marker>(bound, config.reset); },
      stats);
}

}  // namespace detail

/// Masked sparse matrix-matrix product C = M ⊙ (A × B) over semiring SR.
/// The mask is structural: its values are ignored, only its pattern filters
/// the product (GraphBLAS boolean-mask semantics, §IV-A). Output rows are
/// sorted; nnz(C[i,:]) <= nnz(M[i,:]).
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> masked_spgemm(const Csr<T, I>& mask, const Csr<T, I>& a,
                        const Csr<T, I>& b, const Config& config = {},
                        ExecutionStats* stats = nullptr) {
  static_assert(std::is_same_v<T, typename SR::value_type>,
                "matrix value type must match the semiring");
  switch (config.marker_width) {
    case MarkerWidth::k8:
      return detail::dispatch_accumulator<SR, T, I, std::uint8_t>(mask, a, b,
                                                                  config, stats);
    case MarkerWidth::k16:
      return detail::dispatch_accumulator<SR, T, I, std::uint16_t>(mask, a, b,
                                                                   config, stats);
    case MarkerWidth::k32:
      return detail::dispatch_accumulator<SR, T, I, std::uint32_t>(mask, a, b,
                                                                   config, stats);
    case MarkerWidth::k64:
      return detail::dispatch_accumulator<SR, T, I, std::uint64_t>(mask, a, b,
                                                                   config, stats);
  }
  require(false, "masked_spgemm: invalid marker width");
  return Csr<T, I>{};
}

}  // namespace tilq
