// FLOP / work estimation for the masked-SpGEMM (§III-A). For each output
// row, following the mask-first algorithm of Fig 5, the estimated work is
//
//     W[i] = nnz(M[i,:]) + Σ_{A[i,k] != 0} nnz(B[k,:])          (Eq 2)
//
// computable in O(nnz(A)) because CSR gives nnz(B[k,:]) in constant time.
// The prefix sum of W drives the FLOP-balanced tiler, and the co-iteration
// cost model (Eq 3) compares
//
//     W_co[i,k] = nnz(M[i,:]) · log2 nnz(B[k,:])                 (Eq 3)
//
// against κ · nnz(B[k,:]) per (i,k) in the hybrid kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "support/common.hpp"
#include "support/parallel.hpp"

namespace tilq {

/// Per-row work estimates W[i] (Eq 2). `mask` and `a` must have the same
/// row count; `b` supplies nnz(B[k,:]).
template <class T, class I>
std::vector<std::int64_t> row_work(const Csr<T, I>& mask, const Csr<T, I>& a,
                                   const Csr<T, I>& b) {
  require(mask.rows() == a.rows(), "row_work: mask/a row mismatch");
  require(a.cols() == b.rows(), "row_work: inner dimension mismatch");
  std::vector<std::int64_t> work(static_cast<std::size_t>(a.rows()));
  parallel_for(I{0}, a.rows(), [&](I i) {
    std::int64_t w = mask.row_nnz(i);
    for (const I k : a.row_cols(i)) {
      w += b.row_nnz(k);
    }
    work[static_cast<std::size_t>(i)] = w;
  });
  return work;
}

/// Inclusive-prefix view over row work: prefix[i] = W[0] + ... + W[i-1],
/// prefix[rows] = total. Used by the FLOP-balanced tiler to split rows at
/// equal-work boundaries via binary search.
template <class T, class I>
std::vector<std::int64_t> row_work_prefix(const Csr<T, I>& mask,
                                          const Csr<T, I>& a,
                                          const Csr<T, I>& b) {
  const std::vector<std::int64_t> work = row_work(mask, a, b);
  std::vector<std::int64_t> prefix(work.size() + 1);
  exclusive_scan<std::int64_t>(work, prefix);
  return prefix;
}

/// Total FLOPs for the unmasked product A×B: Σ_i Σ_{A[i,k]≠0} nnz(B[k,:]).
/// This is the operation count SS:GB/GrB use for accumulator sizing, which
/// the paper replaces with max_i nnz(M[i,:]) (§III-C).
template <class T, class I>
std::int64_t total_flops(const Csr<T, I>& a, const Csr<T, I>& b) {
  require(a.cols() == b.rows(), "total_flops: inner dimension mismatch");
  std::int64_t flops = 0;
#pragma omp parallel for schedule(static) reduction(+ : flops)
  for (I i = 0; i < a.rows(); ++i) {
    for (const I k : a.row_cols(i)) {
      flops += b.row_nnz(k);
    }
  }
  return flops;
}

/// Upper bound on distinct columns produced by row i of the unmasked
/// product — sizes the vanilla kernel's accumulator.
template <class T, class I>
I row_flop_bound(const Csr<T, I>& a, const Csr<T, I>& b, I i) {
  std::int64_t bound = 0;
  for (const I k : a.row_cols(i)) {
    bound += b.row_nnz(k);
  }
  return static_cast<I>(std::min<std::int64_t>(bound, b.cols()));
}

}  // namespace tilq
