// Batch execution engine: concurrent masked-SpGEMM serving on a persistent
// work-stealing thread pool (support/thread_pool.hpp). Where Executor
// amortizes the structure phase across calls from ONE caller, the Engine
// amortizes plans, workspaces, and threads across MANY concurrent queries:
//
//   tilq::Engine<SR> engine;                        // spawns the pool once
//   auto job = engine.submit(mask, a, b, config);   // non-blocking
//   ... submit more queries; tiles interleave ...
//   Csr<T, I> c = job.get();                        // wait + take the result
//
// Each submitted query is decomposed into the FLOP-balanced tile tasks its
// plan prescribes (detail::build_plan / detail::run_tile_task — the same
// code the OpenMP driver runs, so results are bit-identical to the
// single-call path), and the pool interleaves tasks from every in-flight
// job: a skewed query cannot idle the machine while others have runnable
// tiles. Plans are cached engine-wide by (structural fingerprint, config),
// so repeat structures skip the analyze phase entirely; accumulators come
// from engine-wide per-worker workspace pools and driver buffers are
// recycled across jobs — a warm engine performs no steady-state
// allocations beyond each query's output.
//
// Serving (docs/SERVING.md): every submission is priced by the plan's
// Eq-2 FLOP total — free on a plan-cache hit — and classified cheap or
// expensive at admission. The verdict picks the job's lane in the pool's
// priority scheduler (cheap queries jump ahead of expensive bulk work, so
// one heavy query cannot collapse the cheap p99), steers the overload
// response (EngineOptions::overload_policy: reject everything at the
// bound, or shed/defer only the expensive jobs as pressure builds), and
// SubmitOptions lets callers pin a lane or attach a per-job deadline
// (missed deadlines cancel the job with DeadlineExpiredError).
//
// Backpressure: at most EngineOptions::max_in_flight jobs may be admitted
// at once; submit() past the bound throws EngineSaturatedError (a
// CapacityError) and run_batch() blocks instead. Failure isolation: each
// job carries its own ParallelGuard — an exception in one job's tasks
// cancels that job's remaining tiles and rethrows (normalized into the
// error taxonomy) from its JobHandle::wait()/get(), without poisoning
// sibling jobs.
//
// Observability: per-job latency, queue depth, and steal counters flow
// into the metrics-v3 schema (engine_* counters, docs/METRICS.md), each
// job's queue/run/total latency lands in fixed-bucket log-scale
// histograms (support/latency.hpp) whose p50/p95/p99 surface through
// EngineStats and the nullable `engine_latency` record object, and
// "engine.job" / "engine.compact" Chrome-trace spans ride next to the
// existing tile spans. docs/CONCURRENCY.md documents the lifecycle and
// the per-type thread-safety guarantees; tools/check_metrics_docs.py
// lints that table against this header.
//
// Resilience (docs/ROBUSTNESS.md): transient failures inside a job are
// retried instead of surfaced. A job failing with StaleError replans
// against the current structure and re-executes (bit-identical to a fresh
// submit); a transient CapacityError retries on a degraded config (hash ->
// dense on saturation, dense -> hash / smaller block_cols under memory
// pressure) after a deterministic, seeded, capped exponential backoff
// (EngineOptions::retry / SubmitOptions::max_attempts). An engine-wide
// memory budget (EngineOptions::memory_budget_bytes, MemoryGovernor) keeps
// a byte ledger over the workspace pools and recycled driver buffers;
// crossing it browns the engine out — idle scratch is reclaimed and new
// jobs plan in reduced-footprint mode instead of failing admission. The
// shed/retry/stuck/memory signals drive a three-state health machine
// (EngineHealth), surfaced in EngineStats, the `tilq_engine_health`
// Prometheus gauge, and /healthz (503 once browned out).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <typeindex>
#include <utility>
#include <vector>

#include "core/autotune.hpp"
#include "core/model.hpp"
#include "core/plan.hpp"
#include "support/fault.hpp"
#include "support/health.hpp"
#include "support/latency.hpp"
#include "support/memory_governor.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace tilq {

/// Thrown by Engine::submit when max_in_flight jobs are already admitted —
/// the bounded-queue backpressure signal — and, under
/// OverloadPolicy::kShed, when an expensive job is refused at the shed
/// bound. A CapacityError: callers shed load or retry after a JobHandle
/// completes; run_batch() blocks instead of throwing.
class EngineSaturatedError : public CapacityError {
 public:
  using CapacityError::CapacityError;
};

/// Thrown (from JobHandle::wait()/get()) when a job submitted with
/// SubmitOptions::deadline_ms was cancelled because the deadline passed
/// before its tiles finished. A CapacityError: the machine did not have
/// the headroom to serve the query in time.
class DeadlineExpiredError : public CapacityError {
 public:
  using CapacityError::CapacityError;
};

/// What submit() does with an expensive job once in-flight pressure
/// reaches the shed bound (3/4 of max_in_flight). Cheap jobs are never
/// shed or deferred — only the hard max_in_flight bound applies to them.
enum class OverloadPolicy {
  kReject,  ///< no cost-model gate: the pre-serving all-or-nothing behavior
  kShed,    ///< refuse expensive jobs with EngineSaturatedError
  kDefer,   ///< admit expensive jobs demoted to the background lane
};

/// Caller-chosen lane for one submission; kAuto lets the cost model pick
/// (cheap -> high, expensive -> background).
enum class JobPriority {
  kAuto,
  kHigh,
  kNormal,
  kBackground,
};

/// Retry/backoff policy for transient in-job failures (StaleError,
/// retryable CapacityError). Backoff is a capped exponential with
/// deterministic seeded jitter: the delay for attempt k is
/// min(cap, base * 2^(k-2)) scaled by a factor in [0.5, 1.0) drawn from
/// splitmix64(seed ^ structure fingerprint ^ k) — no wall-clock
/// randomness, so two runs of the same stream sleep the same schedule.
struct RetryPolicy {
  /// Total execution attempts per job; 1 means no retry.
  int max_attempts = 1;
  /// First-retry backoff; <= 0 disables the sleep (retries are immediate).
  double backoff_base_ms = 1.0;
  /// Upper bound on a single backoff sleep.
  double backoff_cap_ms = 100.0;
  /// Jitter seed (deterministic; no entropy is ever mixed in).
  std::uint64_t seed = 0;
};

/// Per-submission serving knobs (the submit() overloads without this
/// parameter behave as SubmitOptions{}).
struct SubmitOptions {
  /// Lane request; kAuto defers to the cost model (and to
  /// EngineOptions::priority_scheduling).
  JobPriority priority = JobPriority::kAuto;
  /// When > 0: if the job has not finished within this many milliseconds
  /// of admission, its remaining tiles are cancelled and the job fails
  /// with DeadlineExpiredError. 0 means no deadline.
  double deadline_ms = 0.0;
  /// Per-job attempt bound; 0 inherits EngineOptions::retry.max_attempts.
  int max_attempts = 0;
  /// When false, this submission bypasses the online-tuning bandit
  /// (docs/TUNING.md) and always runs on its caller-provided config; it
  /// neither explores nor reports a reward. No-op when
  /// EngineOptions::autotune left tuning off.
  bool autotune = true;
};

/// Engine construction knobs.
struct EngineOptions {
  /// Pool workers; <= 0 means max_threads() (the OpenMP-visible width).
  int threads = 0;
  /// Admission bound: jobs submitted-but-not-finished before submit()
  /// throws EngineSaturatedError (run_batch blocks instead).
  std::size_t max_in_flight = 16;
  /// Cached plans before the oldest is evicted (FIFO).
  std::size_t plan_cache_capacity = 64;
  /// Cost-model threshold: jobs whose plan prices above this many Eq-2
  /// FLOPs classify expensive. 0 means adaptive — expensive is more than
  /// twice the running mean of admitted jobs (once two jobs have been
  /// admitted; before that everything classifies cheap).
  std::uint64_t expensive_flops = 0;
  /// Overload response for expensive jobs at the shed bound.
  OverloadPolicy overload_policy = OverloadPolicy::kReject;
  /// When false, kAuto submissions all map to the normal lane — FIFO
  /// scheduling, the baseline the latency bench compares against.
  /// Explicit SubmitOptions::priority requests are always honored.
  bool priority_scheduling = true;
  /// Live telemetry (docs/TELEMETRY.md): sampler thread, flight recorder,
  /// Prometheus exporter, stuck-job watchdog. Off by default; the
  /// TILQ_TELEMETRY / TILQ_TELEMETRY_PORT / TILQ_TELEMETRY_DUMP
  /// environment variables are applied on top at engine construction.
  TelemetryOptions telemetry;
  /// Retry/backoff for transient in-job failures (docs/ROBUSTNESS.md).
  /// The default (max_attempts = 1) preserves the pre-resilience behavior:
  /// every failure surfaces on the first attempt.
  RetryPolicy retry;
  /// Engine-wide byte budget over workspace pools + recycled driver
  /// buffers (MemoryGovernor); 0 means unlimited. Crossing it browns the
  /// engine out: idle scratch is reclaimed and new jobs plan in
  /// reduced-footprint mode instead of failing admission.
  std::uint64_t memory_budget_bytes = 0;
  /// Health state machine thresholds (shed/retry rates, epoch length).
  HealthThresholds health;
  /// Online per-fingerprint config learning (docs/TUNING.md). Off by
  /// default; the TILQ_AUTOTUNE environment variable is applied on top at
  /// engine construction. Every arm runs through the same plan cache, so
  /// tuning changes latency, never results.
  AutotuneOptions autotune;
};

/// Per-job accounting, valid once the job is done (JobHandle::stats()).
struct JobStats {
  std::uint64_t id = 0;          ///< engine-assigned job id (1-based)
  bool plan_cache_hit = false;   ///< structure+config found in the plan cache
  std::int64_t tasks = 0;        ///< tile tasks the job was split into
  std::int64_t output_nnz = 0;   ///< nonzeros in the result (0 on failure)
  std::uint64_t degrades = 0;    ///< rows/cells replayed on the dense fallback
  std::size_t queue_depth = 0;   ///< other jobs in flight at admission
  bool expensive = false;        ///< cost-model verdict at admission
  bool deferred = false;         ///< demoted to background under kDefer
  std::int64_t flop_estimate = 0;  ///< the plan's Eq-2 work total
  double deadline_ms = 0.0;      ///< SubmitOptions::deadline_ms (0 = none)
  double plan_ms = 0.0;          ///< structure-phase time (0 on a cache hit)
  double queue_ms = 0.0;         ///< submit -> first task start
  double run_ms = 0.0;           ///< first task start -> completion
  double total_ms = 0.0;         ///< submit -> completion
  std::uint32_t attempts = 1;    ///< execution attempts (1 = never retried)
  bool retried = false;          ///< attempts > 1
  bool degraded_config = false;  ///< a retry ran on a degraded Config
  double backoff_total_ms = 0.0; ///< deterministic backoff slept, summed
};

/// Engine-lifetime totals (Engine::stats()).
struct EngineStats {
  std::uint64_t jobs_submitted = 0;  ///< admitted by submit()/run_batch()
  std::uint64_t jobs_completed = 0;  ///< finished with a result
  std::uint64_t jobs_failed = 0;     ///< finished by capturing an exception
  std::uint64_t jobs_rejected = 0;   ///< submit() throws past the admission bound
  std::uint64_t jobs_shed = 0;       ///< expensive jobs refused at the shed bound
  std::uint64_t jobs_deferred = 0;   ///< expensive jobs demoted to background
  std::uint64_t jobs_expensive = 0;  ///< admitted jobs the cost model priced expensive
  std::uint64_t deadline_misses = 0; ///< jobs cancelled past their deadline
  std::uint64_t plan_builds = 0;     ///< structure phases actually run
  std::uint64_t plan_hits = 0;       ///< submissions served from the plan cache
  std::uint64_t tasks_executed = 0;  ///< pool tasks run (tiles + finalizers)
  std::uint64_t tasks_stolen = 0;    ///< tasks taken from another worker's queue
  std::uint64_t in_flight = 0;       ///< jobs admitted but not yet finished
  std::uint64_t peak_in_flight = 0;  ///< high-water mark of in_flight
  std::uint64_t jobs_stuck = 0;      ///< in-flight jobs flagged by the watchdog
  std::uint64_t telemetry_samples = 0;  ///< sampler ticks (0 with telemetry off)
  std::uint64_t retries = 0;         ///< retry attempts across all jobs
  std::uint64_t jobs_retried = 0;    ///< jobs that needed more than one attempt
  std::uint64_t brownouts = 0;       ///< memory-governor transitions into brownout
  std::uint64_t autotune_fingerprints = 0;  ///< bandit arm tables created
  std::uint64_t autotune_explorations = 0;  ///< non-best arms served
  std::uint64_t autotune_arm_switches = 0;  ///< best-arm changes
  std::uint64_t autotune_converged = 0;     ///< fingerprints frozen
  std::uint64_t memory_usage_bytes = 0;       ///< governor ledger now
  std::uint64_t memory_high_water_bytes = 0;  ///< governor high-water mark
  std::uint64_t memory_budget_bytes = 0;      ///< configured budget (0 = off)
  EngineHealth health = EngineHealth::kHealthy;  ///< live health verdict
  double uptime_ms = 0.0;            ///< milliseconds since engine construction
  WorkspacePoolStats workspace;      ///< summed over the engine's typed pools
  LatencySummary latency;            ///< submit-to-done percentiles, all finished jobs
  LatencySummary queue_latency;      ///< submit-to-first-task percentiles
  LatencySummary run_latency;        ///< first-task-to-done percentiles
};

/// The serving percentile block of `stats` as the metrics layer's
/// nullable record object (present only when at least one job finished);
/// benches attach it to their MetricsRecord so `engine_latency_*` fields
/// land in the JSON-lines sink.
[[nodiscard]] EngineLatencyRecord engine_latency_record(
    const EngineStats& stats);

/// One-line human-readable rendering of EngineStats (CLI/bench output).
[[nodiscard]] std::string describe(const EngineStats& stats);

namespace engine_detail {
/// Process-wide monotone job ids (stable across engines, handy in traces).
[[nodiscard]] std::uint64_t next_job_id() noexcept;
}  // namespace engine_detail

/// The batch engine. Thread-safe: submit(), run_batch(), wait_idle(), and
/// stats() may be called concurrently from any number of threads. The
/// operand matrices behind a submission must stay alive and unmodified
/// until its job completes (the engine stores references, not copies).
/// Config::threads and Config::schedule are ignored in engine mode — the
/// pool width fixes the tile grid and tasks are dynamically scheduled by
/// construction. Destruction waits for in-flight jobs, then joins the
/// pool.
template <Semiring SR, class T = typename SR::value_type,
          class I = std::int64_t>
class Engine {
  struct Job;

 public:
  /// Future-like handle to a submitted query. Cheap to copy (shared
  /// state); safe to wait from any thread.
  class JobHandle {
   public:
    JobHandle() = default;

    [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }
    [[nodiscard]] std::uint64_t id() const { return job_->id; }

    /// Non-blocking completion probe.
    [[nodiscard]] bool done() const {
      const std::lock_guard<std::mutex> lock(job_->mutex);
      return job_->done;
    }

    /// Blocks until the job finishes. Rethrows the job's first captured
    /// exception with ParallelGuard semantics (taxonomy types pass through
    /// intact, bad_alloc becomes CapacityError, anything foreign becomes
    /// InternalError). Repeatable: failed jobs rethrow on every wait.
    void wait() const {
      std::unique_lock<std::mutex> lock(job_->mutex);
      job_->cv.wait(lock, [&] { return job_->done; });
      lock.unlock();
      job_->guard.rethrow_if_failed();
    }

    /// wait(), then moves the result out. Single-use: a second get() on
    /// the same job throws PreconditionError.
    [[nodiscard]] Csr<T, I> get() {
      wait();
      const std::lock_guard<std::mutex> lock(job_->mutex);
      require(job_->result.has_value(),
              "JobHandle::get: result already taken");
      Csr<T, I> out = std::move(*job_->result);
      job_->result.reset();
      return out;
    }

    /// Per-job accounting; call only after the job is done.
    [[nodiscard]] JobStats stats() const {
      const std::lock_guard<std::mutex> lock(job_->mutex);
      require(job_->done, "JobHandle::stats: job still running");
      return job_->stats;
    }

   private:
    friend class Engine;
    explicit JobHandle(std::shared_ptr<Job> job) : job_(std::move(job)) {}
    std::shared_ptr<Job> job_;
  };

  /// One query of a run_batch() call. Pointers, not copies: the caller
  /// keeps the matrices alive for the duration of the batch.
  struct Query {
    const Csr<T, I>* mask = nullptr;
    const Csr<T, I>* a = nullptr;
    const Csr<T, I>* b = nullptr;
    Config config{};
    SubmitOptions options{};
  };

  explicit Engine(EngineOptions options = {})
      : options_(options), pool_(options.threads) {
    static_assert(std::is_same_v<T, typename SR::value_type>,
                  "matrix value type must match the semiring");
    if (options_.max_in_flight == 0) {
      options_.max_in_flight = 1;
    }
    options_.retry.max_attempts = std::max(1, options_.retry.max_attempts);
    governor_.set_budget(options_.memory_budget_bytes);
    health_.set_thresholds(options_.health);
    options_.autotune = autotune_options_from_env(options_.autotune);
    if (options_.autotune.enabled) {
      autotune_ = std::make_unique<ConfigBandit>(options_.autotune);
    }
    options_.telemetry = telemetry_options_from_env(options_.telemetry);
    if (options_.telemetry.enabled) {
      // Created in the constructor body, after every member the collector
      // walks is initialized; declared last, so it is destroyed first.
      telemetry_ = std::make_unique<TelemetryHub>(
          options_.telemetry, [this] { return collect_telemetry(); },
          [this] { return health_state(); });
    }
  }

  ~Engine() { wait_idle(); }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submits one masked-SpGEMM query; never blocks. Throws
  /// EngineSaturatedError when max_in_flight jobs are already admitted
  /// (or, under OverloadPolicy::kShed, when an expensive job hits the
  /// shed bound), and PreconditionError for shape/validation defects
  /// (found on the calling thread, before any task is queued). The
  /// SubmitOptions overloads attach a lane request and/or a deadline.
  JobHandle submit(const Csr<T, I>& mask, const Csr<T, I>& a,
                   const Csr<T, I>& b, const Config& config = {}) {
    return submit_impl(mask, a, b, config, SubmitOptions{}, /*block=*/false);
  }

  JobHandle submit(const Csr<T, I>& mask, const Csr<T, I>& a,
                   const Csr<T, I>& b, const Config& config,
                   const SubmitOptions& options) {
    return submit_impl(mask, a, b, config, options, /*block=*/false);
  }

  /// Submits every query, pacing admissions against the in-flight bound
  /// (blocks instead of throwing), and returns the results in query
  /// order. A failing job rethrows its error from here once its turn
  /// comes; sibling jobs are unaffected and still complete.
  std::vector<Csr<T, I>> run_batch(std::span<const Query> queries) {
    std::vector<JobHandle> handles;
    handles.reserve(queries.size());
    for (const Query& q : queries) {
      handles.push_back(
          submit_impl(*q.mask, *q.a, *q.b, q.config, q.options,
                      /*block=*/true));
    }
    std::vector<Csr<T, I>> results;
    results.reserve(handles.size());
    for (JobHandle& handle : handles) {
      results.push_back(handle.get());
    }
    return results;
  }

  /// Blocks until no job is in flight.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(state_mutex_);
    state_cv_.wait(lock, [&] { return in_flight_ == 0; });
  }

  /// Pool workers.
  [[nodiscard]] int threads() const noexcept { return pool_.size(); }

  /// The live telemetry hub — sample ring, flight recorder, exporter —
  /// or nullptr when EngineOptions::telemetry left telemetry off.
  [[nodiscard]] TelemetryHub* telemetry() noexcept { return telemetry_.get(); }
  [[nodiscard]] const TelemetryHub* telemetry() const noexcept {
    return telemetry_.get();
  }

  /// The online-tuning bandit — per-fingerprint arm tables, convergence
  /// state — or nullptr when EngineOptions::autotune left tuning off.
  [[nodiscard]] ConfigBandit* autotune() noexcept { return autotune_.get(); }
  [[nodiscard]] const ConfigBandit* autotune() const noexcept {
    return autotune_.get();
  }

  [[nodiscard]] EngineStats stats() const {
    EngineStats s;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      s.jobs_submitted = jobs_submitted_;
      s.jobs_completed = jobs_completed_;
      s.jobs_failed = jobs_failed_;
      s.jobs_rejected = jobs_rejected_;
      s.jobs_shed = jobs_shed_;
      s.jobs_deferred = jobs_deferred_;
      s.jobs_expensive = jobs_expensive_;
      s.in_flight = static_cast<std::uint64_t>(in_flight_);
      s.peak_in_flight = peak_in_flight_;
      s.jobs_retried = jobs_retried_;
    }
    s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
    s.jobs_stuck = jobs_stuck_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.brownouts = governor_.brownouts();
    s.memory_usage_bytes = governor_.usage();
    s.memory_high_water_bytes = governor_.high_water();
    s.memory_budget_bytes = governor_.budget();
    s.health = health_state();
    s.telemetry_samples = telemetry_ ? telemetry_->sample_count() : 0;
    s.uptime_ms = uptime_.milliseconds();
    s.latency = total_hist_.summary();
    s.queue_latency = queue_hist_.summary();
    s.run_latency = run_hist_.summary();
    {
      const std::lock_guard<std::mutex> lock(plan_mutex_);
      s.plan_builds = plan_builds_;
      s.plan_hits = plan_hits_;
    }
    if (autotune_ != nullptr) {
      const AutotuneStats at = autotune_->stats();
      s.autotune_fingerprints = at.fingerprints;
      s.autotune_explorations = at.explorations;
      s.autotune_arm_switches = at.arm_switches;
      s.autotune_converged = at.converged;
    }
    const ThreadPool::Stats pool = pool_.stats();
    s.tasks_executed = pool.executed;
    s.tasks_stolen = pool.stolen;
    {
      const std::lock_guard<std::mutex> lock(pools_mutex_);
      for (const auto& stats_fn : pool_stats_fns_) {
        const WorkspacePoolStats w = stats_fn();
        s.workspace.acquisitions += w.acquisitions;
        s.workspace.constructions += w.constructions;
        s.workspace.retunes += w.retunes;
      }
    }
    return s;
  }

 private:
  /// A cached, fully-bound plan: the structure-phase output plus the typed
  /// task runner resolved for its (marker width x accumulator) dispatch.
  /// Immutable after construction, shared by every job that hits it.
  struct PlanEntry {
    Plan<I> plan;
    Config config;
    /// Runs one tile task of `job` on pool worker `worker`.
    std::function<void(const PlanEntry&, Job&, std::int64_t, int)> run_task;
  };

  struct Job {
    std::uint64_t id = 0;
    const Csr<T, I>* mask = nullptr;
    const Csr<T, I>* a = nullptr;
    const Csr<T, I>* b = nullptr;
    std::shared_ptr<const PlanEntry> entry;
    std::unique_ptr<detail::DriverBuffers<T, I>> buffers;
    std::once_flag buffers_once;  ///< first task binds `buffers`
    std::int64_t task_count = 0;
    std::atomic<std::int64_t> remaining{0};
    ParallelGuard guard;
    std::atomic<std::int64_t> rows{0};
    std::atomic<std::uint64_t> degrades{0};
    WallTimer since_submit;  ///< started at admission
    std::atomic<bool> first_task_seen{false};
    double queue_ms = 0.0;  ///< written once by the first task
    double trace_start_us = -1.0;
    bool cache_hit = false;
    std::size_t depth_at_submit = 0;
    bool expensive = false;      ///< cost-model verdict at admission
    bool was_deferred = false;   ///< demoted to background under kDefer
    std::int64_t flop_estimate = 0;
    double deadline_ms = 0.0;    ///< 0 = no deadline
    std::atomic<bool> deadline_missed{false};
    double plan_ms = 0.0;        ///< structure-phase time (0 on a hit)
    // Retry state (docs/ROBUSTNESS.md). Between attempts only the
    // finalizing task is alive, so the non-atomic fields need no locks.
    TaskPriority lane = TaskPriority::kNormal;  ///< recorded for re-queues
    int autotune_arm = -1;  ///< bandit arm served (-1: bandit bypassed)
    int max_attempts = 1;
    std::atomic<std::uint32_t> attempts{1};
    bool degraded_config = false;   ///< some retry ran on a degraded Config
    double backoff_total_ms = 0.0;  ///< summed deterministic backoff
    // Completion state, guarded by `mutex`.
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::optional<Csr<T, I>> result;
    JobStats stats;
  };

  JobHandle submit_impl(const Csr<T, I>& mask, const Csr<T, I>& a,
                        const Csr<T, I>& b, Config config,
                        const SubmitOptions& sopts, bool block) {
    // Plan before admission: the cost-model verdict needs the plan's Eq-2
    // FLOP total, and a cache hit makes pricing a repeat structure free.
    // Shape/validation defects therefore surface on the calling thread
    // without ever consuming an admission slot. The pool width fixes the
    // tile grid (2 x workers by default) and the plan-cache key stays
    // stable across callers with different Config::threads.
    config.threads = pool_.size();
    // Memory governor (docs/ROBUSTNESS.md): under pressure, reclaim idle
    // scratch first; once browned out, plan the NEW job in reduced-
    // footprint mode instead of failing its admission. In-flight jobs are
    // never disturbed.
    if (governor_.under_pressure()) {
      reclaim_idle_memory();
    }
    if (governor_.browned_out()) {
      config = reduced_footprint(std::move(config));
    }
    sync_brownout_metric();
    const std::uint64_t fingerprint =
        detail::structural_fingerprint(mask, a, b);
    // Online tuning (docs/TUNING.md): the bandit may swap the config
    // before the plan lookup — an arm switch only changes which
    // (fingerprint, config) entry the plan cache serves, so results stay
    // bit-identical across arms. Exploration is gated to jobs that can
    // afford a mispriced draw: no deadline, a healthy engine (brownout
    // skips the bandit entirely — a reduced-footprint config must not
    // contaminate the arm table), and a fingerprint whose last Eq-2 price
    // did not classify expensive.
    int autotune_arm = -1;
    bool autotune_explored = false;
    if (autotune_ != nullptr && sopts.autotune && !governor_.browned_out()) {
      const bool allow_explore =
          sopts.deadline_ms <= 0.0 &&
          health_state() == EngineHealth::kHealthy &&
          !autotune_expensive(autotune_->last_flops(fingerprint));
      // The heuristic prediction is only needed when this select creates
      // the arm table; a known fingerprint skips the feature pass.
      const Config heuristic = autotune_->known(fingerprint)
                                   ? config
                                   : predict_config(mask, a, b, pool_.size());
      const ArmDecision decision =
          autotune_->select(fingerprint, config, heuristic, allow_explore);
      if (decision.arm >= 0) {
        config = decision.config;
        config.threads = pool_.size();
        autotune_arm = decision.arm;
        autotune_explored = decision.exploration;
      }
    }
    bool cache_hit = false;
    std::shared_ptr<const PlanEntry> entry =
        plan_for(mask, a, b, config, fingerprint, cache_hit);
    const double plan_ms = cache_hit ? 0.0 : entry->plan.info.build_ms;
    const auto flops =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, entry->plan.flop_total));
    // The id exists before admission so every flight-record event of this
    // submission — even a shed one — is keyed to the same job.
    const std::uint64_t job_id = engine_detail::next_job_id();
    if (telemetry_) {
      telemetry_->flight().record(job_id, FlightEventKind::kSubmitted, -1,
                                  entry->plan.flop_total);
      telemetry_->flight().record(job_id, FlightEventKind::kPlanned, -1,
                                  entry->plan.flop_total);
      if (autotune_explored || autotune_arm > 0) {
        telemetry_->flight().record(job_id, FlightEventKind::kAutotuned,
                                    autotune_arm, entry->plan.flop_total);
      }
    }
#if TILQ_METRICS_ENABLED
    if (autotune_explored) {
      if (MetricCounters* const counters = metrics_thread_counters()) {
        ++counters->autotune_explorations;
      }
    }
#endif

    std::size_t depth = 0;
    bool expensive = false;
    bool deferred = false;
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      expensive = classify_expensive_locked(flops);
      // Expensive jobs hit their overload response earlier than the hard
      // bound: at 3/4 of max_in_flight the engine starts protecting the
      // cheap traffic's latency (docs/SERVING.md).
      const std::size_t shed_bound = std::max<std::size_t>(
          1, options_.max_in_flight - options_.max_in_flight / 4);
      if (block) {
        state_cv_.wait(lock,
                       [&] { return in_flight_ < options_.max_in_flight; });
      } else {
        if (in_flight_ >= options_.max_in_flight) {
          ++jobs_rejected_;
          throw EngineSaturatedError(
              "Engine::submit: " + std::to_string(in_flight_) +
              " jobs in flight (max_in_flight=" +
              std::to_string(options_.max_in_flight) +
              ") — wait on a JobHandle or use run_batch(), which paces "
              "admissions");
        }
        if (expensive && in_flight_ >= shed_bound) {
          if (options_.overload_policy == OverloadPolicy::kShed) {
            ++jobs_shed_;
            health_.record_shed();
            count_shed_metric();
            if (telemetry_) {  // wait-free, fine under the lock
              telemetry_->flight().record(job_id, FlightEventKind::kShed, -1,
                                          entry->plan.flop_total);
            }
            throw EngineSaturatedError(
                "Engine::submit: expensive job (" + std::to_string(flops) +
                " estimated FLOPs) shed at " + std::to_string(in_flight_) +
                " jobs in flight — retry when load drops, or submit with "
                "JobPriority::kBackground");
          }
          if (options_.overload_policy == OverloadPolicy::kDefer &&
              sopts.priority == JobPriority::kAuto) {
            deferred = true;
            ++jobs_deferred_;
          }
        }
      }
      depth = in_flight_++;
      peak_in_flight_ =
          std::max<std::uint64_t>(peak_in_flight_, in_flight_);
      ++jobs_submitted_;
      if (expensive) {
        ++jobs_expensive_;
      }
      // Only admitted jobs feed the adaptive threshold, so a burst of
      // shed submissions cannot talk the mean up until nothing is
      // expensive any more.
      admitted_flops_ += flops;
      ++admitted_jobs_;
    }
    health_.record_admit();
#if TILQ_METRICS_ENABLED
    if (expensive || deferred) {
      if (MetricCounters* const counters = metrics_thread_counters()) {
        counters->engine_jobs_expensive += expensive ? 1 : 0;
        counters->engine_jobs_deferred += deferred ? 1 : 0;
      }
    }
#endif
    if (telemetry_) {
      if (deferred) {
        telemetry_->flight().record(job_id, FlightEventKind::kDeferred, -1,
                                    entry->plan.flop_total);
      }
      telemetry_->flight().record(job_id, FlightEventKind::kAdmitted, -1,
                                  entry->plan.flop_total);
      telemetry_register(job_id, entry->plan.flop_total);
    }
    try {
      return launch(job_id, mask, a, b, std::move(entry), cache_hit, depth,
                    lane_for(sopts.priority, expensive, deferred), sopts,
                    expensive, deferred, plan_ms, autotune_arm);
    } catch (...) {
      // Admission is undone: the job never started.
      if (telemetry_) {
        telemetry_unregister(job_id);
      }
      const std::lock_guard<std::mutex> lock(state_mutex_);
      --in_flight_;
      --jobs_submitted_;
      state_cv_.notify_all();
      throw;
    }
  }

  /// Cost-model verdict for one submission; call with state_mutex_ held.
  [[nodiscard]] bool classify_expensive_locked(std::uint64_t flops) const {
    if (options_.expensive_flops > 0) {
      return flops > options_.expensive_flops;
    }
    if (admitted_jobs_ < 2) {
      return false;  // no baseline yet: everything is cheap
    }
    return flops > 2 * (admitted_flops_ / admitted_jobs_);
  }

  /// Exploration-gate half of the cost model: would the fingerprint's
  /// last-known Eq-2 price classify expensive right now? Unknown
  /// fingerprints (0 FLOPs on record) price cheap — their first sighting
  /// serves the caller's config anyway.
  [[nodiscard]] bool autotune_expensive(std::int64_t flops) const {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    return classify_expensive_locked(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, flops)));
  }

  /// Maps the caller's lane request and the cost-model verdict onto a
  /// pool lane.
  [[nodiscard]] TaskPriority lane_for(JobPriority requested, bool expensive,
                                      bool deferred) const {
    switch (requested) {
      case JobPriority::kHigh:
        return TaskPriority::kHigh;
      case JobPriority::kNormal:
        return TaskPriority::kNormal;
      case JobPriority::kBackground:
        return TaskPriority::kBackground;
      case JobPriority::kAuto:
        break;
    }
    if (!options_.priority_scheduling) {
      return TaskPriority::kNormal;  // FIFO baseline
    }
    return (expensive || deferred) ? TaskPriority::kBackground
                                   : TaskPriority::kHigh;
  }

  void count_shed_metric() const {
#if TILQ_METRICS_ENABLED
    if (MetricCounters* const counters = metrics_thread_counters()) {
      ++counters->engine_jobs_shed;
    }
#endif
  }

  /// Plan-cache lookup keyed by (structural fingerprint, config); builds
  /// and binds a new entry on miss. Builds run on the submitting thread
  /// (OpenMP is safe there, unlike on pool workers) while holding the
  /// cache lock, which serializes duplicate builders and keeps the
  /// plan_builds/plan_hits accounting exact under concurrent submission.
  std::shared_ptr<const PlanEntry> plan_for(const Csr<T, I>& mask,
                                            const Csr<T, I>& a,
                                            const Csr<T, I>& b,
                                            const Config& config,
                                            std::uint64_t fingerprint,
                                            bool& cache_hit) {
    const std::lock_guard<std::mutex> lock(plan_mutex_);
    // Newest-first scan: serving workloads resubmit recent structures.
    for (auto it = plans_.rbegin(); it != plans_.rend(); ++it) {
      if ((*it)->plan.info.fingerprint == fingerprint &&
          (*it)->config == config) {
        ++plan_hits_;
        cache_hit = true;
        return *it;
      }
    }
    WallTimer build;
    auto entry = std::make_shared<PlanEntry>();
    entry->plan = detail::build_plan(mask, a, b, config);
    entry->config = config;
    entry->plan.info.build_ms = build.milliseconds();
    bind_entry(*entry);
    ++plan_builds_;
    plans_.push_back(entry);
    if (plans_.size() > std::max<std::size_t>(1, options_.plan_cache_capacity)) {
      plans_.pop_front();  // in-flight jobs keep their shared_ptr alive
    }
    cache_hit = false;
    return entry;
  }

  JobHandle launch(std::uint64_t job_id, const Csr<T, I>& mask,
                   const Csr<T, I>& a, const Csr<T, I>& b,
                   std::shared_ptr<const PlanEntry> entry, bool cache_hit,
                   std::size_t depth, TaskPriority lane,
                   const SubmitOptions& sopts, bool expensive, bool deferred,
                   double plan_ms, int autotune_arm) {
    auto job = std::make_shared<Job>();
    job->id = job_id;
    job->autotune_arm = autotune_arm;
    job->mask = &mask;
    job->a = &a;
    job->b = &b;
    job->entry = std::move(entry);
    job->cache_hit = cache_hit;
    job->depth_at_submit = depth;
    job->expensive = expensive;
    job->was_deferred = deferred;
    job->flop_estimate = job->entry->plan.flop_total;
    job->deadline_ms = std::max(0.0, sopts.deadline_ms);
    job->plan_ms = plan_ms;
    job->lane = lane;
    job->max_attempts = std::max(
        1, sopts.max_attempts > 0 ? sopts.max_attempts
                                  : options_.retry.max_attempts);
    const Plan<I>& plan = job->entry->plan;
    // Cells per row tile: column blocks (blocked), column tiles (2D), 1 (1D).
    job->task_count = static_cast<std::int64_t>(plan.row_tiles.size() *
                                                plan.cells_per_row_tile());
    // Driver buffers are NOT acquired here: binding is deferred to the
    // first task (bind_buffers) so the number of live scratch sets tracks
    // the worker count, not the admission window. Acquiring at submit
    // would materialize max_in_flight nnz-sized buffer sets that evict
    // each other from cache while most of them sit queued.
    // Even a zero-tile job runs one finalizer task so completion always
    // happens on the pool, never inline in submit().
    job->remaining.store(std::max<std::int64_t>(1, job->task_count),
                         std::memory_order_relaxed);
#if TILQ_METRICS_ENABLED
    if (MetricCounters* const counters = metrics_thread_counters()) {
      counters->engine_queue_depth += static_cast<std::uint64_t>(depth);
    }
    if (trace_enabled()) {
      job->trace_start_us = trace_detail::now_us();
    }
#endif
    if (telemetry_) {
      telemetry_->flight().record(job->id, FlightEventKind::kLaneAssigned,
                                  static_cast<int>(lane), job->flop_estimate);
    }
    job->since_submit.reset();
    if (job->task_count == 0) {
      pool_.submit([this, job] { run_task(job, -1); }, lane);
    } else {
      for (std::int64_t task = 0; task < job->task_count; ++task) {
        pool_.submit([this, job, task] { run_task(job, task); }, lane);
      }
    }
    return JobHandle(std::move(job));
  }

  /// Body of every pool task: one tile (task >= 0), then whoever finishes
  /// last runs the serial compact and completes the job.
  void run_task(const std::shared_ptr<Job>& job, std::int64_t task) {
    if (!job->first_task_seen.exchange(true, std::memory_order_acq_rel)) {
      job->queue_ms = job->since_submit.milliseconds();
      if (telemetry_) {
        telemetry_->flight().record(job->id, FlightEventKind::kFirstTile);
      }
    }
    // Deadline gate: a tile that would start past the job's deadline
    // cancels the job instead (via the guard, so the remaining tiles
    // skip and the handle rethrows a DeadlineExpiredError). Checked
    // per-tile, not per-row — an already-running tile finishes.
    if (task >= 0 && job->deadline_ms > 0.0 && !job->guard.cancelled() &&
        job->since_submit.milliseconds() > job->deadline_ms) {
      if (!job->deadline_missed.exchange(true, std::memory_order_relaxed)) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry_) {
          telemetry_->flight().record(job->id, FlightEventKind::kDeadlineMiss);
        }
#if TILQ_METRICS_ENABLED
        if (MetricCounters* const counters = metrics_thread_counters()) {
          ++counters->engine_deadline_misses;
        }
#endif
      }
      job->guard.run([&] {
        throw DeadlineExpiredError(
            "Engine: job " + std::to_string(job->id) + " missed its " +
            std::to_string(job->deadline_ms) + " ms deadline");
      });
    }
    if (task >= 0 && !job->guard.cancelled()) {
      job->guard.run([&] { bind_buffers(*job); });
      if (!job->guard.cancelled()) {
        const int worker = std::max(0, ThreadPool::worker_index());
        job->entry->run_task(*job->entry, *job, task, worker);
      }
    }
    if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finalize(job);
    }
  }

  /// Binds the job's driver buffers on first use, from any worker.
  /// Allocation failures surface through the caller's ParallelGuard wrap
  /// (an exceptional std::call_once leaves the flag unset, which is fine:
  /// every later attempt is equally guarded).
  void bind_buffers(Job& job) {
    std::call_once(job.buffers_once, [&] {
      job.buffers = acquire_buffers();
      ensure_buffers_for(job, job.entry->plan);
    });
  }

  /// (Re)sizes the job's bound driver buffers for `plan`, charging the
  /// governor for any capacity growth. ensure() only grows, so this is
  /// safe to call again after a retry replan swapped the job's plan.
  void ensure_buffers_for(Job& job, const Plan<I>& plan) {
    const bool celled = plan.two_dimensional() || plan.is_blocked();
    const std::uint64_t before = buffer_bytes(*job.buffers);
    job.buffers->ensure(
        static_cast<std::size_t>(job.mask->nnz()),
        static_cast<std::size_t>(plan.rows),
        celled ? static_cast<std::size_t>(plan.rows) * plan.cells_per_row_tile()
               : 0);
    const std::uint64_t after = buffer_bytes(*job.buffers);
    if (after > before) {
      governor_.charge(after - before);
    }
  }

  void finalize(const std::shared_ptr<Job>& job) {
    if (!job->guard.cancelled()) {
      job->guard.run([&] {
        TraceSpan span("engine.compact", static_cast<std::int64_t>(job->id));
        bind_buffers(*job);  // zero-tile jobs reach compact unbound
        // Serial on purpose: pool workers must not open OpenMP teams.
        job->result = detail::compact_planned(job->entry->plan, *job->mask,
                                              *job->buffers,
                                              /*parallel=*/false);
      });
    }
    // Retry gate (docs/ROBUSTNESS.md): a failed attempt may go back onto
    // the pool as a fresh attempt — replanned or degraded — in which case
    // this finalize backs out entirely and the job is live again.
    if (job->guard.cancelled() && try_retry(job)) {
      return;
    }
    const bool failed = job->guard.cancelled();
    const double total_ms = job->since_submit.milliseconds();
    JobStats stats;
    stats.id = job->id;
    stats.plan_cache_hit = job->cache_hit;
    stats.tasks = job->task_count;
    stats.output_nnz =
        failed ? 0 : static_cast<std::int64_t>(job->result->nnz());
    stats.degrades = job->degrades.load(std::memory_order_relaxed);
    stats.queue_depth = job->depth_at_submit;
    stats.expensive = job->expensive;
    stats.deferred = job->was_deferred;
    stats.flop_estimate = job->flop_estimate;
    stats.deadline_ms = job->deadline_ms;
    stats.plan_ms = job->plan_ms;
    stats.queue_ms = job->queue_ms;
    stats.total_ms = total_ms;
    stats.run_ms = std::max(0.0, total_ms - job->queue_ms);
    stats.attempts = job->attempts.load(std::memory_order_relaxed);
    stats.retried = stats.attempts > 1;
    stats.degraded_config = job->degraded_config;
    stats.backoff_total_ms = job->backoff_total_ms;
    recycle_buffers(std::move(job->buffers));
    health_.record_finish();
    sync_brownout_metric();
    // Online-tuning reward (docs/TUNING.md): only a clean, uncontaminated
    // attempt prices its arm — a retried or degraded job measured a
    // different config than the bandit served, and a deadline miss says
    // nothing about the arm's speed on an unconstrained run.
    if (autotune_ != nullptr && job->autotune_arm >= 0 && !stats.retried &&
        !job->degraded_config &&
        !job->deadline_missed.load(std::memory_order_relaxed)) {
      const RewardOutcome outcome = autotune_->report(
          job->entry->plan.info.fingerprint, job->autotune_arm, stats.run_ms,
          job->flop_estimate, stats.degrades, failed);
#if TILQ_METRICS_ENABLED
      if (outcome.arm_switched || outcome.converged) {
        if (MetricCounters* const counters = metrics_thread_counters()) {
          counters->autotune_arm_switches += outcome.arm_switched ? 1 : 0;
          counters->autotune_converged += outcome.converged ? 1 : 0;
        }
      }
#endif
      if (telemetry_ && (outcome.arm_switched || outcome.converged)) {
        telemetry_->flight().record(job->id, FlightEventKind::kAutotuned,
                                    job->autotune_arm, job->flop_estimate);
      }
    }
    // Histograms before the state_mutex_ block below: after that lock is
    // released the engine may already be destroyed (see the comment
    // there), so no engine member may be touched past it.
    total_hist_.record_ms(stats.total_ms);
    queue_hist_.record_ms(stats.queue_ms);
    run_hist_.record_ms(stats.run_ms);
    if (telemetry_) {
      telemetry_->flight().record(job->id, FlightEventKind::kFinalized, -1,
                                  job->flop_estimate);
      telemetry_finish(job->id, failed, job->flop_estimate, stats.run_ms);
      if (failed) {
        // The "on Error" dump (docs/TELEMETRY.md): the failed job's
        // lifecycle, one line, before its handle ever rethrows.
        std::fprintf(stderr,
                     "tilq engine: job %llu failed; flight record: %s\n",
                     static_cast<unsigned long long>(job->id),
                     telemetry_->flight().to_json(job->id).c_str());
      }
    }
#if TILQ_METRICS_ENABLED
    if (MetricCounters* const counters = metrics_thread_counters()) {
      ++counters->engine_jobs;
      counters->engine_job_ns += static_cast<std::uint64_t>(total_ms * 1e6);
      counters->engine_queue_ns +=
          static_cast<std::uint64_t>(job->queue_ms * 1e6);
    }
    if (trace_enabled() && job->trace_start_us >= 0.0) {
      // A manual complete-event: the span opened at submit() on the caller
      // thread and closes here on a worker.
      trace_detail::record_span("engine.job",
                                static_cast<std::int64_t>(job->id),
                                job->trace_start_us, trace_detail::now_us(),
                                HwCounters{});
    }
#endif
    {
      // Engine-wide accounting settles before the job reads as done, so a
      // caller returning from JobHandle::get()/wait() always sees this job
      // in stats(). Notify under the lock: wait_idle() may destroy the
      // engine the moment the predicate holds, so neither the cv nor any
      // other engine member may be touched after the mutex is released —
      // everything below this block is Job state, which the handle's
      // shared_ptr keeps alive past the engine.
      const std::lock_guard<std::mutex> lock(state_mutex_);
      --in_flight_;
      if (failed) {
        ++jobs_failed_;
      } else {
        ++jobs_completed_;
      }
      if (stats.retried) {
        ++jobs_retried_;
      }
      state_cv_.notify_all();
    }
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->stats = stats;
      job->done = true;
    }
    job->cv.notify_all();
  }

  /// Resolves the (marker width x accumulator kind) dispatch for a new
  /// plan entry — the engine-side analogue of Executor::bind_dispatch.
  void bind_entry(PlanEntry& entry) {
    switch (entry.config.marker_width) {
      case MarkerWidth::k8:
        bind_entry_marker<std::uint8_t>(entry);
        return;
      case MarkerWidth::k16:
        bind_entry_marker<std::uint16_t>(entry);
        return;
      case MarkerWidth::k32:
        bind_entry_marker<std::uint32_t>(entry);
        return;
      case MarkerWidth::k64:
        bind_entry_marker<std::uint64_t>(entry);
        return;
    }
    require(false, "Engine: invalid marker width");
  }

  template <class Marker>
  void bind_entry_marker(PlanEntry& entry) {
    if (entry.plan.is_blocked()) {
      // Blocked plans run on a BlockedWorkspace (block-width dense + the
      // configured sparse-tile accumulator) — same dispatch as
      // Executor::bind_blocked_runner.
      switch (entry.config.accumulator) {
        case AccumulatorKind::kDense:
          bind_blocked_entry<Marker, DenseAccumulator<SR, I, Marker>>(entry);
          return;
        case AccumulatorKind::kBitmap:
          bind_blocked_entry<Marker, BitmapAccumulator<SR, I>>(entry);
          return;
        case AccumulatorKind::kHash:
          bind_blocked_entry<Marker, HashAccumulator<SR, I, Marker>>(entry);
          return;
      }
      require(false, "Engine: invalid accumulator kind");
    }
    switch (entry.config.accumulator) {
      case AccumulatorKind::kDense:
        bind_entry_runner<DenseAccumulator<SR, I, Marker>>(
            entry,
            [](const Plan<I>& p, const Config& c) {
              return DenseAccumulator<SR, I, Marker>(p.cols, c.reset);
            },
            [](const Plan<I>& p) {
              return static_cast<std::uint64_t>(p.cols);
            });
        return;
      case AccumulatorKind::kBitmap:
        bind_entry_runner<BitmapAccumulator<SR, I>>(
            entry,
            [](const Plan<I>& p, const Config&) {
              return BitmapAccumulator<SR, I>(p.cols);
            },
            [](const Plan<I>& p) {
              return static_cast<std::uint64_t>(p.cols);
            });
        return;
      case AccumulatorKind::kHash:
        bind_entry_runner<HashAccumulator<SR, I, Marker>>(
            entry,
            [](const Plan<I>& p, const Config& c) {
              return HashAccumulator<SR, I, Marker>(p.accumulator_bound,
                                                    c.reset);
            },
            [](const Plan<I>& p) {
              return static_cast<std::uint64_t>(p.accumulator_bound);
            });
        return;
    }
    require(false, "Engine: invalid accumulator kind");
  }

  template <class Marker, class SparseAcc>
  void bind_blocked_entry(PlanEntry& entry) {
    using Ws = BlockedWorkspace<SR, I, Marker, SparseAcc>;
    bind_entry_runner<Ws>(
        entry,
        [](const Plan<I>& p, const Config& c) {
          return Ws(p.blocked->block_width, p.accumulator_bound, c.reset);
        },
        [](const Plan<I>& p) {
          return Ws::capability(p.blocked->block_width, p.accumulator_bound);
        });
  }

  template <class Acc, class Factory, class Capability>
  void bind_entry_runner(PlanEntry& entry, Factory factory,
                         Capability capability) {
    std::shared_ptr<WorkspacePool<Acc>> pool = pool_for<Acc>();
    entry.run_task = [pool, factory, capability](const PlanEntry& e, Job& job,
                                                 std::int64_t task,
                                                 int worker) {
      job.guard.run([&] {
        WallTimer busy;
        // Engine-level fault sites (docs/ROBUSTNESS.md). plan-fingerprint
        // models a plan that went stale between attempts — the retry layer
        // answers it with an auto-replan; engine-pool-reserve models a
        // workspace reservation failure — answered by a degraded-config
        // retry. Both are one relaxed load when disarmed.
        if (fault::should_fire(FaultSite::kPlanFingerprint)) {
          throw StalePlanError(
              "Engine: plan went stale under job " + std::to_string(job.id) +
              " (injected fault: plan-fingerprint)");
        }
        if (fault::should_fire(FaultSite::kEnginePoolReserve)) {
          throw CapacityError(
              "Engine: workspace reservation failed (injected fault: "
              "engine-pool-reserve)");
        }
        const std::uint64_t cap = capability(e.plan);
        // The governor charge is an estimate: capability units x element
        // footprint. Good enough for a brownout trip point.
        Acc& acc = pool->acquire(worker, cap,
                                 [&] { return factory(e.plan, e.config); },
                                 cap * (sizeof(T) + sizeof(I)));
#if TILQ_METRICS_ENABLED
        const AccumulatorCounters counters_at_entry = acc.counters();
#endif
        // Per-task fallback (vs per-thread in the OpenMP driver): degraded
        // tasks are rare and a fresh dense target is equally bit-identical.
        std::optional<typename detail::FallbackAccumulator<Acc>::type>
            fallback;
        const detail::TileTaskStats tile =
            detail::run_tile_task<SR>(e.plan, e.config, *job.mask, *job.a,
                                      *job.b, task, acc, fallback,
                                      *job.buffers);
        job.rows.fetch_add(tile.rows, std::memory_order_relaxed);
        job.degrades.fetch_add(tile.degrades, std::memory_order_relaxed);
#if TILQ_METRICS_ENABLED
        if (MetricCounters* const tc = metrics_thread_counters()) {
          const AccumulatorCounters d =
              detail::counters_delta(acc.counters(), counters_at_entry);
          ++tc->tiles_executed;
          tc->rows_processed += static_cast<std::uint64_t>(tile.rows);
          tc->busy_ns +=
              static_cast<std::uint64_t>(busy.milliseconds() * 1e6);
          tc->hash_probes += d.probes;
          tc->hash_collisions += d.collisions;
          tc->accum_inserts += d.inserts;
          tc->accum_rejects += d.rejects;
          tc->marker_row_resets += d.row_resets;
          tc->marker_overflow_resets += d.full_resets;
          tc->explicit_reset_slots += d.explicit_clears;
          tc->accum_rehashes += d.rehashes;
          tc->accum_degrades += tile.degrades;
          if constexpr (detail::FallbackAccumulator<Acc>::available) {
            if (fallback.has_value()) {
              const AccumulatorCounters& f = fallback->counters();
              tc->hash_probes += f.probes;
              tc->hash_collisions += f.collisions;
              tc->accum_inserts += f.inserts;
              tc->accum_rejects += f.rejects;
              tc->marker_row_resets += f.row_resets;
              tc->marker_overflow_resets += f.full_resets;
              tc->explicit_reset_slots += f.explicit_clears;
            }
          }
        }
#endif
      });
    };
  }

  /// One engine-wide WorkspacePool per concrete accumulator type, sized to
  /// the pool width once at creation (reserve is not concurrency-safe;
  /// acquires afterwards are per-worker).
  template <class Acc>
  std::shared_ptr<WorkspacePool<Acc>> pool_for() {
    const std::lock_guard<std::mutex> lock(pools_mutex_);
    std::shared_ptr<void>& slot = pools_[std::type_index(typeid(Acc))];
    if (slot == nullptr) {
      auto pool = std::make_shared<WorkspacePool<Acc>>();
      pool->set_governor(&governor_);
      pool->reserve(pool_.size());
      pool_stats_fns_.push_back([pool] { return pool->stats(); });
      pool_release_fns_.push_back([pool] { pool->release(); });
      slot = pool;
    }
    return std::static_pointer_cast<WorkspacePool<Acc>>(slot);
  }

  /// The telemetry collector: one TelemetrySample from the engine's live
  /// state. Runs on the sampler thread (or a sample_now caller),
  /// serialized by the hub, so the windowed-histogram baselines below
  /// need no further synchronization.
  TelemetrySample collect_telemetry() {
    TelemetrySample s;
    s.uptime_ms = uptime_.milliseconds();
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      s.jobs_submitted = jobs_submitted_;
      s.jobs_completed = jobs_completed_;
      s.jobs_failed = jobs_failed_;
      s.jobs_shed = jobs_shed_;
      s.jobs_deferred = jobs_deferred_;
      s.in_flight = static_cast<std::uint64_t>(in_flight_);
    }
    s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.brownouts = governor_.brownouts();
    s.memory_usage_bytes = governor_.usage();
    s.memory_high_water_bytes = governor_.high_water();
    s.memory_budget_bytes = governor_.budget();
    s.health = health_state();
    {
      const std::lock_guard<std::mutex> lock(plan_mutex_);
      s.plan_builds = plan_builds_;
      s.plan_hits = plan_hits_;
    }
    const std::uint64_t lookups = s.plan_builds + s.plan_hits;
    s.plan_hit_rate = lookups == 0 ? 0.0
                                   : static_cast<double>(s.plan_hits) /
                                         static_cast<double>(lookups);
    s.window = total_hist_.snapshot_delta(window_total_baseline_);
    s.queue_window = queue_hist_.snapshot_delta(window_queue_baseline_);
    for (const ThreadPool::WorkerStats& w : pool_.worker_stats()) {
      TelemetryWorkerSample ws;
      ws.executed = w.executed;
      ws.stolen = w.stolen;
      s.workers.push_back(ws);
    }
    if (autotune_ != nullptr) {
      const AutotuneStats at = autotune_->stats();
      s.autotune_fingerprints = at.fingerprints;
      s.autotune_explorations = at.explorations;
      s.autotune_arm_switches = at.arm_switches;
      s.autotune_converged = at.converged;
    }
    watchdog_scan();
    s.jobs_stuck = jobs_stuck_.load(std::memory_order_relaxed);
    return s;
  }

  /// Watchdog pass over the in-flight registry (docs/TELEMETRY.md): a job
  /// whose elapsed time exceeds watchdog_factor x its Eq-2-predicted
  /// runtime — predicted from the completed jobs' FLOPs-per-millisecond
  /// throughput — and the floor is flagged once, counted in jobs_stuck /
  /// engine_jobs_stuck, and its flight record logged to stderr. Until a
  /// job has completed there is no throughput baseline and nothing flags.
  void watchdog_scan() {
    std::vector<std::pair<std::uint64_t, double>> stuck;  // id, elapsed ms
    const auto now = std::chrono::steady_clock::now();
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex_);
      if (watchdog_run_ms_ <= 0.0 || watchdog_flops_ == 0) {
        return;
      }
      const double flops_per_ms =
          static_cast<double>(watchdog_flops_) / watchdog_run_ms_;
      for (auto& [id, entry] : watchdog_jobs_) {
        if (entry.flagged) {
          continue;
        }
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(now - entry.admitted)
                .count();
        const double predicted_ms =
            static_cast<double>(std::max<std::int64_t>(0, entry.flops)) /
            flops_per_ms;
        const double bound =
            std::max(options_.telemetry.watchdog_floor_ms,
                     options_.telemetry.watchdog_factor * predicted_ms);
        if (elapsed_ms > bound) {
          entry.flagged = true;
          stuck.emplace_back(id, elapsed_ms);
        }
      }
      health_.set_stuck_jobs(count_flagged_locked());
    }
    for (const auto& [id, elapsed_ms] : stuck) {
      jobs_stuck_.fetch_add(1, std::memory_order_relaxed);
#if TILQ_METRICS_ENABLED
      if (MetricCounters* const counters = metrics_thread_counters()) {
        ++counters->engine_jobs_stuck;
      }
#endif
      telemetry_->flight().record(id, FlightEventKind::kStuck);
      std::fprintf(
          stderr,
          "tilq engine: watchdog: job %llu still in flight after %.1f ms "
          "(watchdog_factor %.1f); flight record: %s\n",
          static_cast<unsigned long long>(id), elapsed_ms,
          options_.telemetry.watchdog_factor,
          telemetry_->flight().to_json(id).c_str());
    }
  }

  /// In-flight registry bookkeeping; all no-ops unless telemetry is on.
  void telemetry_register(std::uint64_t id, std::int64_t flops) {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    WatchedJob entry;
    entry.admitted = std::chrono::steady_clock::now();
    entry.flops = flops;
    watchdog_jobs_[id] = entry;
  }

  void telemetry_unregister(std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_jobs_.erase(id);
  }

  /// Currently-flagged in-flight jobs; call with watchdog_mutex_ held.
  /// Feeds the health monitor's stuck gauge — a gauge, not a counter, so
  /// a stuck job that eventually finishes stops degrading the state.
  [[nodiscard]] std::uint64_t count_flagged_locked() const {
    std::uint64_t flagged = 0;
    for (const auto& [id, entry] : watchdog_jobs_) {
      if (entry.flagged) {
        ++flagged;
      }
    }
    return flagged;
  }

  void telemetry_finish(std::uint64_t id, bool failed, std::int64_t flops,
                        double run_ms) {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_jobs_.erase(id);
    health_.set_stuck_jobs(count_flagged_locked());
    // Only clean completions feed the throughput baseline: a failed or
    // deadline-cancelled job's run time says nothing about healthy speed.
    if (!failed && run_ms > 0.0) {
      watchdog_flops_ +=
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, flops));
      watchdog_run_ms_ += run_ms;
    }
  }

  std::unique_ptr<detail::DriverBuffers<T, I>> acquire_buffers() {
    // Fault site: an allocation failure binding driver buffers surfaces
    // as a CapacityError — transient, answered by the retry layer.
    if (fault::should_fire(FaultSite::kEngineSubmitAlloc)) {
      throw CapacityError(
          "Engine: driver-buffer allocation failed (injected fault: "
          "engine-submit-alloc)");
    }
    const std::lock_guard<std::mutex> lock(buffers_mutex_);
    if (!free_buffers_.empty()) {
      auto buffers = std::move(free_buffers_.back());
      free_buffers_.pop_back();
      return buffers;
    }
    return std::make_unique<detail::DriverBuffers<T, I>>();
  }

  void recycle_buffers(std::unique_ptr<detail::DriverBuffers<T, I>> buffers) {
    if (buffers == nullptr) {
      return;
    }
    const std::lock_guard<std::mutex> lock(buffers_mutex_);
    if (free_buffers_.size() < options_.max_in_flight) {
      free_buffers_.push_back(std::move(buffers));
      return;
    }
    governor_.release(buffer_bytes(*buffers));
  }

  /// Governor-visible footprint of one driver-buffer set: capacities, not
  /// sizes, since capacity is what the allocator actually holds.
  [[nodiscard]] static std::uint64_t buffer_bytes(
      const detail::DriverBuffers<T, I>& buffers) noexcept {
    return static_cast<std::uint64_t>(buffers.bound_cols.capacity()) *
               sizeof(I) +
           static_cast<std::uint64_t>(buffers.bound_vals.capacity()) *
               sizeof(T) +
           static_cast<std::uint64_t>(buffers.row_counts.capacity()) *
               sizeof(I) +
           static_cast<std::uint64_t>(buffers.cell_counts.capacity()) *
               sizeof(I);
  }

  /// Drops idle scratch under memory pressure: the driver-buffer free
  /// list always, and — only when nothing is in flight — every workspace
  /// pool's slots. In-flight jobs are never disturbed.
  void reclaim_idle_memory() {
    {
      const std::lock_guard<std::mutex> lock(buffers_mutex_);
      for (const auto& buffers : free_buffers_) {
        governor_.release(buffer_bytes(*buffers));
      }
      free_buffers_.clear();
    }
    const std::lock_guard<std::mutex> state_lock(state_mutex_);
    if (in_flight_ != 0) {
      return;  // pool slots may be acquired by running tiles
    }
    const std::lock_guard<std::mutex> pools_lock(pools_mutex_);
    for (const auto& release_fn : pool_release_fns_) {
      release_fn();
    }
  }

  /// Reduced-footprint planning for brownout mode: dense accumulators
  /// (column-proportional) become hash (nnz-proportional), and explicit
  /// wide block tilings halve their column-block width. Also the degraded
  /// config for a transient-CapacityError retry.
  [[nodiscard]] static Config reduced_footprint(Config config) {
    if (config.accumulator == AccumulatorKind::kDense) {
      config.accumulator = AccumulatorKind::kHash;
    }
    if (config.effective_strategy() == Strategy::kBlocked &&
        config.block_cols > 512) {
      config.block_cols /= 2;
    }
    return config;
  }

  /// Health verdict (docs/ROBUSTNESS.md): the memory governor's live
  /// brownout state dominates the rate-based monitor.
  [[nodiscard]] EngineHealth health_state() const {
    return governor_.browned_out() ? EngineHealth::kBrownedOut
                                   : health_.state();
  }

  /// Folds the governor's brownout-transition count into the thread-local
  /// metric counters, each transition exactly once engine-wide.
  void sync_brownout_metric() {
#if TILQ_METRICS_ENABLED
    const std::uint64_t seen = governor_.brownouts();
    std::uint64_t prev = brownouts_seen_.load(std::memory_order_relaxed);
    while (prev < seen) {
      if (brownouts_seen_.compare_exchange_weak(prev, seen,
                                                std::memory_order_relaxed)) {
        if (MetricCounters* const counters = metrics_thread_counters()) {
          counters->engine_brownouts += seen - prev;
        }
        return;
      }
    }
#endif
  }

  // --- Retry layer (docs/ROBUSTNESS.md) --------------------------------

  enum class RetryAction {
    kNone,               ///< not retryable: surface the failure
    kReplan,             ///< StaleError: rebuild the plan, same config
    kDegradeSaturation,  ///< accumulator saturated: retry on dense
    kDegradeMemory,      ///< capacity/alloc: retry on a smaller footprint
  };

  /// Maps the first captured failure onto a retry action. Catch order
  /// matters: DeadlineExpiredError and AccumulatorSaturatedError are both
  /// CapacityErrors but want different answers.
  [[nodiscard]] static RetryAction classify_retry(
      const std::exception_ptr& failure) noexcept {
    if (failure == nullptr) {
      return RetryAction::kNone;
    }
    try {
      std::rethrow_exception(failure);
    } catch (const DeadlineExpiredError&) {
      return RetryAction::kNone;  // the deadline is already gone
    } catch (const StaleError&) {
      return RetryAction::kReplan;
    } catch (const AccumulatorSaturatedError&) {
      return RetryAction::kDegradeSaturation;
    } catch (const CapacityError&) {
      return RetryAction::kDegradeMemory;
    } catch (const std::bad_alloc&) {
      return RetryAction::kDegradeMemory;
    } catch (...) {
      return RetryAction::kNone;
    }
  }

  [[nodiscard]] static Config degraded_for(RetryAction action,
                                           Config config) {
    switch (action) {
      case RetryAction::kDegradeSaturation:
        // Dense never saturates; the cost model's emergency exit.
        config.accumulator = AccumulatorKind::kDense;
        break;
      case RetryAction::kDegradeMemory:
        config = reduced_footprint(std::move(config));
        break;
      case RetryAction::kReplan:
      case RetryAction::kNone:
        break;
    }
    return config;
  }

  /// Deterministic capped exponential backoff with multiplicative jitter
  /// in [0.5, 1.0). Keyed by (policy seed, plan fingerprint, attempt) —
  /// NOT the job id — so two runs of the same submission stream back off
  /// identically (the retry-determinism contract in docs/ROBUSTNESS.md).
  [[nodiscard]] double backoff_ms(std::uint64_t fingerprint,
                                  std::uint32_t attempt) const {
    const RetryPolicy& r = options_.retry;
    if (r.backoff_base_ms <= 0.0 || attempt < 2) {
      return 0.0;
    }
    const double cap = std::max(r.backoff_base_ms, r.backoff_cap_ms);
    double delay = r.backoff_base_ms;
    for (std::uint32_t k = 2; k < attempt && delay < cap; ++k) {
      delay *= 2.0;
    }
    delay = std::min(delay, cap);
    SplitMix64 rng(r.seed ^ fingerprint ^
                   (0x9e3779b97f4a7c15ULL * attempt));
    const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    return delay * (0.5 + 0.5 * u);
  }

  /// Drops one cache entry (by identity) so the retry's plan_for builds
  /// fresh — the definition of recovering from a StaleError. In-flight
  /// jobs keep the dropped entry alive through their shared_ptr.
  void invalidate_plan(const std::shared_ptr<const PlanEntry>& entry) {
    const std::lock_guard<std::mutex> lock(plan_mutex_);
    for (auto it = plans_.begin(); it != plans_.end(); ++it) {
      if (it->get() == entry.get()) {
        plans_.erase(it);
        return;
      }
    }
  }

  /// The auto-retry layer, run on the finalizing worker when an attempt
  /// failed. Returns true when the job went back onto the pool (the
  /// caller must back out of finalize untouched); false surfaces the
  /// ORIGINAL failure through the handle — including when the retry's own
  /// replan throws.
  bool try_retry(const std::shared_ptr<Job>& job) {
    const std::uint32_t attempt =
        job->attempts.load(std::memory_order_relaxed);
    if (static_cast<int>(attempt) >= job->max_attempts ||
        job->deadline_missed.load(std::memory_order_relaxed)) {
      return false;
    }
    const RetryAction action = classify_retry(job->guard.failure());
    if (action == RetryAction::kNone) {
      return false;
    }
    std::shared_ptr<const PlanEntry> fresh;
    bool cache_hit = false;
    Config config = job->entry->config;
    try {
      // Fault site: the recovery path itself can fail; the contract is
      // that the caller then sees the original error, not this one.
      if (fault::should_fire(FaultSite::kEngineRetryReplan)) {
        throw CapacityError(
            "Engine: retry replan failed (injected fault: "
            "engine-retry-replan)");
      }
      if (action == RetryAction::kReplan) {
        invalidate_plan(job->entry);
      } else {
        config = degraded_for(action, std::move(config));
      }
      // plan_for opens an OpenMP region on a pool worker here — a
      // deliberate tradeoff: retries are rare, and blocking the submit
      // path on a failed job's replan would cost more.
      fresh = plan_for(*job->mask, *job->a, *job->b, config,
                       job->entry->plan.info.fingerprint, cache_hit);
      if (job->buffers != nullptr) {
        // Re-ensure now, before any job state mutates, so an allocation
        // failure here cannot leave a half-retried job behind.
        ensure_buffers_for(*job, fresh->plan);
      }
    } catch (...) {
      return false;
    }
    const std::uint32_t next_attempt = attempt + 1;
    job->attempts.store(next_attempt, std::memory_order_relaxed);
    if (!(fresh->config == job->entry->config)) {
      job->degraded_config = true;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    health_.record_retry();
#if TILQ_METRICS_ENABLED
    if (MetricCounters* const counters = metrics_thread_counters()) {
      ++counters->engine_retries;
    }
#endif
    if (telemetry_) {
      telemetry_->flight().record(job->id, FlightEventKind::kRetried,
                                  static_cast<int>(next_attempt),
                                  fresh->plan.flop_total);
    }
    // Reset per-attempt state. Between attempts only this finalizing task
    // is alive for the job, so the plain writes race with nothing.
    job->guard.reset();
    job->rows.store(0, std::memory_order_relaxed);
    job->degrades.store(0, std::memory_order_relaxed);
    job->entry = std::move(fresh);
    job->flop_estimate = job->entry->plan.flop_total;
    const Plan<I>& plan = job->entry->plan;
    job->task_count = static_cast<std::int64_t>(plan.row_tiles.size() *
                                                plan.cells_per_row_tile());
    job->remaining.store(std::max<std::int64_t>(1, job->task_count),
                         std::memory_order_relaxed);
    const double delay_ms =
        backoff_ms(plan.info.fingerprint, next_attempt);
    if (delay_ms > 0.0) {
      job->backoff_total_ms += delay_ms;
      // Sleeping occupies this worker for up to backoff_cap_ms; accepted
      // because retries are rare and the alternative is a timer thread.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    if (job->task_count == 0) {
      pool_.submit([this, job] { run_task(job, -1); }, job->lane);
    } else {
      for (std::int64_t task = 0; task < job->task_count; ++task) {
        pool_.submit([this, job, task] { run_task(job, task); }, job->lane);
      }
    }
    return true;
  }

  EngineOptions options_;
  ThreadPool pool_;
  WallTimer uptime_;  ///< started at construction (EngineStats::uptime_ms)

  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;  ///< admission slots + wait_idle
  std::size_t in_flight_ = 0;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_rejected_ = 0;
  std::uint64_t jobs_shed_ = 0;
  std::uint64_t jobs_deferred_ = 0;
  std::uint64_t jobs_expensive_ = 0;
  std::uint64_t admitted_flops_ = 0;  ///< adaptive-threshold running sum
  std::uint64_t admitted_jobs_ = 0;
  std::uint64_t peak_in_flight_ = 0;
  std::atomic<std::uint64_t> deadline_misses_{0};  ///< bumped from pool tasks

  LatencyHistogram total_hist_;  ///< submit-to-done, recorded in finalize
  LatencyHistogram queue_hist_;
  LatencyHistogram run_hist_;

  mutable std::mutex plan_mutex_;
  std::deque<std::shared_ptr<const PlanEntry>> plans_;
  std::uint64_t plan_builds_ = 0;
  std::uint64_t plan_hits_ = 0;

  mutable std::mutex pools_mutex_;
  std::map<std::type_index, std::shared_ptr<void>> pools_;
  std::vector<std::function<WorkspacePoolStats()>> pool_stats_fns_;
  std::vector<std::function<void()>> pool_release_fns_;  ///< reclaim hooks

  // --- Resilience (docs/ROBUSTNESS.md)
  HealthMonitor health_;
  MemoryGovernor governor_;
  std::atomic<std::uint64_t> retries_{0};    ///< attempts beyond the first
  std::uint64_t jobs_retried_ = 0;           ///< guarded by state_mutex_
  std::atomic<std::uint64_t> brownouts_seen_{0};  ///< metric sync cursor

  std::mutex buffers_mutex_;
  std::vector<std::unique_ptr<detail::DriverBuffers<T, I>>> free_buffers_;

  // --- Online tuning (docs/TUNING.md); null when EngineOptions::autotune
  // left tuning off. Declared before telemetry_ so the sampler's collector
  // never outlives it.
  std::unique_ptr<ConfigBandit> autotune_;

  // --- Telemetry (docs/TELEMETRY.md); all dormant when telemetry_ is
  // null. The watchdog registry tracks every admitted-but-unfinished job
  // with its admission instant and Eq-2 estimate; completed jobs feed the
  // FLOPs-per-ms throughput baseline the predictions divide by.
  struct WatchedJob {
    std::chrono::steady_clock::time_point admitted;
    std::int64_t flops = 0;
    bool flagged = false;  ///< already counted stuck; never flag twice
  };
  mutable std::mutex watchdog_mutex_;
  std::map<std::uint64_t, WatchedJob> watchdog_jobs_;
  std::uint64_t watchdog_flops_ = 0;   ///< summed over clean completions
  double watchdog_run_ms_ = 0.0;       ///< their total run time
  std::atomic<std::uint64_t> jobs_stuck_{0};
  LatencyHistogram::Counts window_total_baseline_;  ///< sampler-owned
  LatencyHistogram::Counts window_queue_baseline_;
  // Declared last: destroyed first, so the sampler thread (whose
  // collector walks the members above) joins before any of them die.
  std::unique_ptr<TelemetryHub> telemetry_;
};

}  // namespace tilq
