// Masked sparse matrix-vector products — the vector-shaped siblings of the
// masked-SpGEMM this library exists to analyse. BFS frontier expansion and
// betweenness centrality sweeps are masked SpMV/SpMSpV calls in GraphBLAS
// formulations; implementing them here lets the algos/ layer express those
// workloads in linear algebra, mirroring how the paper's intro motivates
// the kernel family.
//
// Three variants, all over an arbitrary semiring with a structural mask:
//   masked_spmv              y = m ⊙ (A·x), "pull": each masked output row
//                            computes a sparse dot product of A[i,:] with x.
//   complement_masked_spmspv y = ¬v ⊙ (Aᵀ·x), "push" with a complemented
//                            mask: scatter the sparse frontier x along rows
//                            of the (pre-transposed) matrix, dropping
//                            already-visited outputs — without ever
//                            materializing the complement.
//   spmv_dense               y = A·x with dense output, no mask.
#pragma once

#include <vector>

#include "core/semiring.hpp"
#include "sparse/csr.hpp"
#include "sparse/vector.hpp"
#include "support/common.hpp"

namespace tilq {

/// y = mask ⊙ (A · x) with dense x (size A.cols()), mask structural (its
/// values are ignored). "Pull" formulation: each masked output row i
/// computes Σ_k A[i,k] ⊗ x[k] over A's row. Output has an entry wherever
/// the mask does and the row is structurally non-empty... specifically
/// where at least one A[i,k] with k in x's support contributes.
template <Semiring SR, class T = typename SR::value_type, class I>
SparseVector<T, I> masked_spmv(const SparseVector<T, I>& mask,
                               const Csr<T, I>& a, std::span<const T> x,
                               std::span<const std::uint8_t> x_present) {
  require(a.rows() == mask.dim(), "masked_spmv: mask/matrix row mismatch");
  require(static_cast<std::size_t>(a.cols()) == x.size() &&
              x.size() == x_present.size(),
          "masked_spmv: x must have A.cols() entries");

  std::vector<I> out_indices;
  std::vector<T> out_values;
  for (const I i : mask.indices()) {
    T sum = SR::zero();
    bool structural = false;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const auto k = static_cast<std::size_t>(cols[p]);
      if (x_present[k]) {
        structural = true;
        sum = SR::add(sum, SR::mul(vals[p], x[k]));
      }
    }
    if (structural) {
      out_indices.push_back(i);
      out_values.push_back(sum);
    }
  }
  return SparseVector<T, I>(a.rows(), std::move(out_indices),
                            std::move(out_values));
}

/// Convenience overload taking a sparse x (expanded internally).
template <Semiring SR, class T = typename SR::value_type, class I>
SparseVector<T, I> masked_spmv(const SparseVector<T, I>& mask,
                               const Csr<T, I>& a,
                               const SparseVector<T, I>& x) {
  require(a.cols() == x.dim(), "masked_spmv: inner dimension mismatch");
  std::vector<T> dense(static_cast<std::size_t>(x.dim()), SR::zero());
  std::vector<std::uint8_t> present(static_cast<std::size_t>(x.dim()), 0);
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t p = 0; p < idx.size(); ++p) {
    dense[static_cast<std::size_t>(idx[p])] = val[p];
    present[static_cast<std::size_t>(idx[p])] = 1;
  }
  return masked_spmv<SR>(mask, a, std::span<const T>(dense),
                         std::span<const std::uint8_t>(present));
}

/// y = ¬visited ⊙ (Aᵀ · x), the BFS push step: for a sparse frontier x,
/// scatter each entry x[k] along row k of `a_transposed` (pass Aᵀ, or A
/// itself when the adjacency is symmetric), dropping outputs whose index is
/// in `visited`. Runs in O(Σ_{k∈x} nnz(A[k,:])) — independent of the
/// matrix dimension, which is why push wins on small frontiers.
template <Semiring SR, class T = typename SR::value_type, class I>
SparseVector<T, I> complement_masked_spmspv(const SparseVector<T, I>& visited,
                                            const Csr<T, I>& a_transposed,
                                            const SparseVector<T, I>& x) {
  require(a_transposed.rows() == x.dim(),
          "complement_masked_spmspv: frontier/matrix mismatch");
  require(visited.dim() == a_transposed.cols(),
          "complement_masked_spmspv: visited/matrix mismatch");

  // Accumulate into a hash-free ordered map substitute: collect (j, value)
  // contributions, then sort-and-combine. Frontier expansions are small, so
  // sorting beats a dimension-sized scratch array.
  std::vector<std::pair<I, T>> contributions;
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t p = 0; p < idx.size(); ++p) {
    const I k = idx[p];
    const auto cols = a_transposed.row_cols(k);
    const auto vals = a_transposed.row_vals(k);
    for (std::size_t q = 0; q < cols.size(); ++q) {
      if (!visited.contains(cols[q])) {
        contributions.emplace_back(cols[q], SR::mul(vals[q], val[p]));
      }
    }
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const auto& lhs, const auto& rhs) { return lhs.first < rhs.first; });

  std::vector<I> out_indices;
  std::vector<T> out_values;
  for (const auto& [j, value] : contributions) {
    if (!out_indices.empty() && out_indices.back() == j) {
      out_values.back() = SR::add(out_values.back(), value);
    } else {
      out_indices.push_back(j);
      out_values.push_back(value);
    }
  }
  return SparseVector<T, I>(a_transposed.cols(), std::move(out_indices),
                            std::move(out_values));
}

/// Unmasked SpMV with dense output: y = A · x over the semiring. Used by
/// PageRank and the betweenness backward sweep.
template <Semiring SR, class T = typename SR::value_type, class I>
std::vector<T> spmv_dense(const Csr<T, I>& a, std::span<const T> x) {
  require(static_cast<std::size_t>(a.cols()) == x.size(),
          "spmv_dense: dimension mismatch");
  std::vector<T> y(static_cast<std::size_t>(a.rows()), SR::zero());
#pragma omp parallel for schedule(static)
  for (I i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    T sum = SR::zero();
    for (std::size_t p = 0; p < cols.size(); ++p) {
      sum = SR::add(sum, SR::mul(vals[p], x[static_cast<std::size_t>(cols[p])]));
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
  return y;
}

}  // namespace tilq
