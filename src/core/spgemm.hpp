// Unmasked row-wise (Gustavson) SpGEMM and post-hoc mask application. The
// paper notes masked-SpGEMM is "never implemented as a two step operation"
// (§III-B) because computing A×B first and masking afterwards wastes work
// and memory — we implement the two-phase variant anyway, both as a
// correctness oracle with disjoint code from the fused kernels and as the
// ablation baseline quantifying exactly how much the fusion saves
// (bench/ablation_strategies).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/semiring.hpp"
#include "sparse/csr.hpp"
#include "support/common.hpp"
#include "support/panic.hpp"
#include "support/parallel.hpp"

namespace tilq {

/// C = A × B over semiring SR, classic two-pass Gustavson: a symbolic pass
/// counts each output row's distinct columns with a per-thread marker
/// array, then a numeric pass fills and sorts each row.
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> spgemm(const Csr<T, I>& a, const Csr<T, I>& b) {
  static_assert(std::is_same_v<T, typename SR::value_type>);
  require(a.cols() == b.rows(), "spgemm: inner dimensions must agree");
  const I rows = a.rows();
  const I cols = b.cols();

  // Symbolic pass: row nnz counts. The per-thread marker allocation and the
  // row bodies run under a ParallelGuard: a failed allocation (or a
  // hardened-build bounds check) surfaces as a tilq error after the join
  // instead of terminating inside the region.
  std::vector<I> counts(static_cast<std::size_t>(rows), I{0});
  ParallelGuard guard;
#pragma omp parallel
  {
    std::vector<I> marker;
    guard.run([&] { marker.assign(static_cast<std::size_t>(cols), I{-1}); });
#pragma omp for schedule(dynamic, 64)
    for (I i = 0; i < rows; ++i) {
      if (guard.cancelled()) {
        continue;
      }
      guard.run([&] {
        I count = 0;
        for (const I k : a.row_cols(i)) {
          for (const I j : b.row_cols(k)) {
            if (marker[static_cast<std::size_t>(j)] != i) {
              marker[static_cast<std::size_t>(j)] = i;
              ++count;
            }
          }
        }
        counts[static_cast<std::size_t>(i)] = count;
      });
    }
  }
  guard.rethrow_if_failed();

  std::vector<I> row_ptr(static_cast<std::size_t>(rows) + 1);
  const I nnz = exclusive_scan<I>(counts, row_ptr);
  std::vector<I> col_idx(static_cast<std::size_t>(nnz));
  std::vector<T> values(static_cast<std::size_t>(nnz));

  // Numeric pass: dense value scatter + touch list per row, sorted output.
  // Same containment protocol as the symbolic pass.
  ParallelGuard numeric_guard;
#pragma omp parallel
  {
    std::vector<I> marker;
    std::vector<T> dense;
    std::vector<I> touched;
    numeric_guard.run([&] {
      marker.assign(static_cast<std::size_t>(cols), I{-1});
      dense.assign(static_cast<std::size_t>(cols), SR::zero());
    });
#pragma omp for schedule(dynamic, 64)
    for (I i = 0; i < rows; ++i) {
      if (numeric_guard.cancelled()) {
        continue;
      }
      numeric_guard.run([&] {
        touched.clear();
        const auto a_cols = a.row_cols(i);
        const auto a_vals = a.row_vals(i);
        for (std::size_t p = 0; p < a_cols.size(); ++p) {
          const I k = a_cols[p];
          const T scale = a_vals[p];
          const auto b_cols = b.row_cols(k);
          const auto b_vals = b.row_vals(k);
          for (std::size_t q = 0; q < b_cols.size(); ++q) {
            const I j = b_cols[q];
            const T product = SR::mul(scale, b_vals[q]);
            if (marker[static_cast<std::size_t>(j)] != i) {
              marker[static_cast<std::size_t>(j)] = i;
              dense[static_cast<std::size_t>(j)] = product;
              touched.push_back(j);
            } else {
              dense[static_cast<std::size_t>(j)] =
                  SR::add(dense[static_cast<std::size_t>(j)], product);
            }
          }
        }
        std::sort(touched.begin(), touched.end());
        auto out = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
        for (const I j : touched) {
          col_idx[out] = j;
          values[out] = dense[static_cast<std::size_t>(j)];
          ++out;
        }
      });
    }
  }
  numeric_guard.rethrow_if_failed();

  return Csr<T, I>(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Structural mask application: keeps the entries of `c` whose positions
/// appear in `mask` (mask values are ignored). Linear two-pointer
/// intersection per row.
template <class T, class I>
Csr<T, I> apply_mask(const Csr<T, I>& mask, const Csr<T, I>& c) {
  require(mask.rows() == c.rows() && mask.cols() == c.cols(),
          "apply_mask: shape mismatch");
  const I rows = c.rows();
  std::vector<I> counts(static_cast<std::size_t>(rows), I{0});
  parallel_for(I{0}, rows, [&](I i) {
    const auto m = mask.row_cols(i);
    const auto cc = c.row_cols(i);
    std::size_t pm = 0, pc = 0;
    I count = 0;
    while (pm < m.size() && pc < cc.size()) {
      if (m[pm] < cc[pc]) {
        ++pm;
      } else if (m[pm] > cc[pc]) {
        ++pc;
      } else {
        ++count;
        ++pm;
        ++pc;
      }
    }
    counts[static_cast<std::size_t>(i)] = count;
  });

  std::vector<I> row_ptr(static_cast<std::size_t>(rows) + 1);
  const I nnz = exclusive_scan<I>(counts, row_ptr);
  std::vector<I> col_idx(static_cast<std::size_t>(nnz));
  std::vector<T> values(static_cast<std::size_t>(nnz));
  parallel_for(I{0}, rows, [&](I i) {
    const auto m = mask.row_cols(i);
    const auto cc = c.row_cols(i);
    const auto cv = c.row_vals(i);
    std::size_t pm = 0, pc = 0;
    auto out = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    while (pm < m.size() && pc < cc.size()) {
      if (m[pm] < cc[pc]) {
        ++pm;
      } else if (m[pm] > cc[pc]) {
        ++pc;
      } else {
        col_idx[out] = cc[pc];
        values[out] = cv[pc];
        ++out;
        ++pm;
        ++pc;
      }
    }
  });
  return Csr<T, I>(rows, c.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Two-phase masked product: full SpGEMM followed by masking. Correctness
/// oracle and ablation baseline; see file comment.
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> two_phase_masked_spgemm(const Csr<T, I>& mask, const Csr<T, I>& a,
                                  const Csr<T, I>& b) {
  return apply_mask(mask, spgemm<SR>(a, b));
}

}  // namespace tilq
