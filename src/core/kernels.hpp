// Row kernels for the saxpy masked-SpGEMM — one per algorithm figure in the
// paper. Each computes a single output row C[i,:] into `emit(col, value)`
// using a per-thread accumulator, and leaves the accumulator reset for the
// next row. All operate on CSR operands with sorted columns.
//
//   kVanilla   (Fig 3) — merge all scaled B rows unmasked, then intersect
//                        with M[i,:] at gather time. Requires a large
//                        accumulator (per-row FLOP bound) and wastes work on
//                        products outside the mask.
//   kMaskFirst (Fig 5) — GrB: load M[i,:] into the accumulator first; each
//                        B[k,:] nonzero probes the mask and is discarded on
//                        a miss. Reads all of every B[k,:].
//   kCoIterate (Fig 7) — iterate M[i,:] and binary-search each mask column
//                        in B[k,:]; loads only matching B entries. Wins when
//                        nnz(M[i,:]) << nnz(B[k,:]).
//   kHybrid    (Fig 9) — per (i,k) choose co-iteration iff
//                        nnz(M[i,:])·log2(nnz(B[k,:])) < κ·nnz(B[k,:]),
//                        κ = the co-iteration factor. SS:GB's "push-pull".
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "accum/accumulator.hpp"
#include "core/semiring.hpp"
#include "core/work_estimate.hpp"
#include "sparse/csr.hpp"
#include "support/common.hpp"
#include "support/metrics.hpp"

namespace tilq {

/// Iteration-space strategy (§III-B).
enum class MaskStrategy {
  kVanilla,    ///< Fig 3: unmasked merge, post-hoc intersection
  kMaskFirst,  ///< Fig 5: mask loaded first, linear scan of B rows
  kCoIterate,  ///< Fig 7: co-iterate mask with B rows via binary search
  kHybrid,     ///< Fig 9: per-(i,k) choice driven by κ
};

[[nodiscard]] constexpr const char* to_string(MaskStrategy strategy) noexcept {
  switch (strategy) {
    case MaskStrategy::kVanilla:
      return "vanilla";
    case MaskStrategy::kMaskFirst:
      return "mask-first";
    case MaskStrategy::kCoIterate:
      return "co-iterate";
    case MaskStrategy::kHybrid:
      return "hybrid";
  }
  return "?";
}

namespace detail {

/// Precomputed log2 comparison for the hybrid switch: co-iterate iff
/// mask_nnz * log2(b_nnz) < kappa * b_nnz  (Eq 3 vs the linear cost).
/// Uses std::log2 on doubles; b_nnz == 0 rows are skipped by callers.
[[nodiscard]] inline bool prefer_coiteration(std::int64_t mask_nnz,
                                             std::int64_t b_nnz,
                                             double kappa) noexcept {
  const double co_cost =
      static_cast<double>(mask_nnz) * std::log2(static_cast<double>(std::max<std::int64_t>(2, b_nnz)));
  return co_cost < kappa * static_cast<double>(b_nnz);
}

/// Per-row scratch for the observability counters (docs/METRICS.md). The
/// kernels batch into these locals and flush() adds them to the calling
/// thread's registered slot once per row; with TILQ_METRICS_ENABLED=0 (or
/// metrics runtime-disabled) flush is a no-op and the dead stores vanish.
struct KernelRowMetrics {
  std::uint64_t flops = 0;
  std::uint64_t binary_search_steps = 0;
  std::uint64_t hybrid_coiter_picks = 0;
  std::uint64_t hybrid_linear_picks = 0;

  void flush() const {
#if TILQ_METRICS_ENABLED
    if (MetricCounters* counters = metrics_thread_counters()) {
      counters->flops += flops;
      counters->binary_search_steps += binary_search_steps;
      counters->hybrid_coiter_picks += hybrid_coiter_picks;
      counters->hybrid_linear_picks += hybrid_linear_picks;
    }
#endif
  }
};

/// lower_bound over `cols[from..)` that counts its halving steps — same
/// algorithm as std::lower_bound, with the step count feeding the
/// `binary_search_steps` counter. Returns the index of the first element
/// >= key (cols.size() if none).
template <class I>
[[nodiscard]] inline std::size_t lower_bound_index(std::span<const I> cols,
                                                   std::size_t from, I key,
                                                   std::uint64_t& steps) noexcept {
  std::size_t lo = from;
  std::size_t n = cols.size() - from;
  while (n > 0) {
    const std::size_t half = n / 2;
    ++steps;
    if (cols[lo + half] < key) {
      lo += half + 1;
      n -= half + 1;
    } else {
      n = half;
    }
  }
  return lo;
}

}  // namespace detail

/// Fig 3. The accumulator must also provide the unmasked protocol
/// (begin_unmasked_row / accumulate_any / gather_unmasked).
template <Semiring SR, class T, class I, class Acc, class Emit>
void row_vanilla(const Csr<T, I>& mask, const Csr<T, I>& a, const Csr<T, I>& b,
                 I i, Acc& acc, Emit&& emit) {
  const auto mask_cols = mask.row_cols(i);
  acc.begin_unmasked_row(row_flop_bound(a, b, i));
  detail::KernelRowMetrics metrics;
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const auto b_cols = b.row_cols(k);
    const auto b_vals = b.row_vals(k);
    metrics.flops += b_cols.size();
    for (std::size_t q = 0; q < b_cols.size(); ++q) {
      acc.accumulate_any(b_cols[q], SR::mul(scale, b_vals[q]));
    }
  }
  // Intersection with the mask: only slots that are both touched and in
  // M[i,:] are emitted (Fig 3 lines 14-16).
  acc.gather(mask_cols, emit);
  acc.finish_row(mask_cols);
  metrics.flush();
}

/// Fig 5 (GrB / modern SS:GB).
template <Semiring SR, class T, class I, class Acc, class Emit>
void row_mask_first(const Csr<T, I>& mask, const Csr<T, I>& a,
                    const Csr<T, I>& b, I i, Acc& acc, Emit&& emit) {
  const auto mask_cols = mask.row_cols(i);
  if (mask_cols.empty()) {
    return;  // C[i,:] is structurally empty; skip the row entirely
  }
  acc.set_mask(mask_cols);
  detail::KernelRowMetrics metrics;
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const auto b_cols = b.row_cols(k);
    const auto b_vals = b.row_vals(k);
    metrics.flops += b_cols.size();
    for (std::size_t q = 0; q < b_cols.size(); ++q) {
      acc.accumulate(b_cols[q], SR::mul(scale, b_vals[q]));
    }
  }
  acc.gather(mask_cols, emit);
  acc.finish_row(mask_cols);
  metrics.flush();
}

/// Fig 7.
template <Semiring SR, class T, class I, class Acc, class Emit>
void row_coiterate(const Csr<T, I>& mask, const Csr<T, I>& a,
                   const Csr<T, I>& b, I i, Acc& acc, Emit&& emit) {
  const auto mask_cols = mask.row_cols(i);
  if (mask_cols.empty()) {
    return;
  }
  acc.set_mask(mask_cols);
  detail::KernelRowMetrics metrics;
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const auto b_cols = b.row_cols(k);
    const auto b_vals = b.row_vals(k);
    for (const I j : mask_cols) {
      // Binary search j in B[k,:] (Fig 7 line 11).
      const std::size_t q = detail::lower_bound_index(
          b_cols, 0, j, metrics.binary_search_steps);
      if (q < b_cols.size() && b_cols[q] == j) {
        ++metrics.flops;
        acc.accumulate(j, SR::mul(scale, b_vals[q]));
      }
    }
  }
  acc.gather(mask_cols, emit);
  acc.finish_row(mask_cols);
  metrics.flush();
}

/// Fig 9: hybrid linear scan / co-iteration with co-iteration factor κ.
template <Semiring SR, class T, class I, class Acc, class Emit>
void row_hybrid(const Csr<T, I>& mask, const Csr<T, I>& a, const Csr<T, I>& b,
                I i, double kappa, Acc& acc, Emit&& emit) {
  const auto mask_cols = mask.row_cols(i);
  if (mask_cols.empty()) {
    return;
  }
  acc.set_mask(mask_cols);
  detail::KernelRowMetrics metrics;
  const auto mask_nnz = static_cast<std::int64_t>(mask_cols.size());
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const auto b_cols = b.row_cols(k);
    const auto b_vals = b.row_vals(k);
    if (detail::prefer_coiteration(mask_nnz,
                                   static_cast<std::int64_t>(b_cols.size()),
                                   kappa)) {
      ++metrics.hybrid_coiter_picks;
      for (const I j : mask_cols) {
        const std::size_t q = detail::lower_bound_index(
            b_cols, 0, j, metrics.binary_search_steps);
        if (q < b_cols.size() && b_cols[q] == j) {
          ++metrics.flops;
          acc.accumulate(j, SR::mul(scale, b_vals[q]));
        }
      }
    } else {
      ++metrics.hybrid_linear_picks;
      metrics.flops += b_cols.size();
      for (std::size_t q = 0; q < b_cols.size(); ++q) {
        acc.accumulate(b_cols[q], SR::mul(scale, b_vals[q]));
      }
    }
  }
  acc.gather(mask_cols, emit);
  acc.finish_row(mask_cols);
  metrics.flush();
}

/// Fig 9 with the per-(i,k) choices resolved ahead of time: `coiterate[e]`
/// holds the hybrid decision for the A entry at flat index
/// e = a.row_ptr[i] + p (one flag per A nonzero, precomputed by a Plan).
/// Byte-for-byte the same traversal — and therefore the same floating-point
/// summation order — as row_hybrid with the κ test evaluated inline.
template <Semiring SR, class T, class I, class Acc, class Emit>
void row_hybrid_planned(const Csr<T, I>& mask, const Csr<T, I>& a,
                        const Csr<T, I>& b, I i,
                        std::span<const std::uint8_t> coiterate, Acc& acc,
                        Emit&& emit) {
  const auto mask_cols = mask.row_cols(i);
  if (mask_cols.empty()) {
    return;
  }
  acc.set_mask(mask_cols);
  detail::KernelRowMetrics metrics;
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  const auto base =
      static_cast<std::size_t>(a.row_ptr()[static_cast<std::size_t>(i)]);
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const auto b_cols = b.row_cols(k);
    const auto b_vals = b.row_vals(k);
    if (coiterate[base + p] != 0) {
      ++metrics.hybrid_coiter_picks;
      for (const I j : mask_cols) {
        const std::size_t q = detail::lower_bound_index(
            b_cols, 0, j, metrics.binary_search_steps);
        if (q < b_cols.size() && b_cols[q] == j) {
          ++metrics.flops;
          acc.accumulate(j, SR::mul(scale, b_vals[q]));
        }
      }
    } else {
      ++metrics.hybrid_linear_picks;
      metrics.flops += b_cols.size();
      for (std::size_t q = 0; q < b_cols.size(); ++q) {
        acc.accumulate(b_cols[q], SR::mul(scale, b_vals[q]));
      }
    }
  }
  acc.gather(mask_cols, emit);
  acc.finish_row(mask_cols);
  metrics.flush();
}

/// Dispatches one row to the kernel selected by `strategy`.
template <Semiring SR, class T, class I, class Acc, class Emit>
void compute_row(MaskStrategy strategy, double kappa, const Csr<T, I>& mask,
                 const Csr<T, I>& a, const Csr<T, I>& b, I i, Acc& acc,
                 Emit&& emit) {
  switch (strategy) {
    case MaskStrategy::kVanilla:
      row_vanilla<SR>(mask, a, b, i, acc, emit);
      break;
    case MaskStrategy::kMaskFirst:
      row_mask_first<SR>(mask, a, b, i, acc, emit);
      break;
    case MaskStrategy::kCoIterate:
      row_coiterate<SR>(mask, a, b, i, acc, emit);
      break;
    case MaskStrategy::kHybrid:
      row_hybrid<SR>(mask, a, b, i, kappa, acc, emit);
      break;
  }
}

/// compute_row with plan-resolved hybrid decisions: identical dispatch,
/// except kHybrid consumes the precomputed per-A-entry flags (empty span
/// falls back to the inline κ test — the decisions are equivalent either
/// way; the plan just hoists the log2 out of the hot loop).
template <Semiring SR, class T, class I, class Acc, class Emit>
void compute_row_planned(MaskStrategy strategy, double kappa,
                         std::span<const std::uint8_t> hybrid_coiterate,
                         const Csr<T, I>& mask, const Csr<T, I>& a,
                         const Csr<T, I>& b, I i, Acc& acc, Emit&& emit) {
  if (strategy == MaskStrategy::kHybrid && !hybrid_coiterate.empty()) {
    row_hybrid_planned<SR>(mask, a, b, i, hybrid_coiterate, acc, emit);
    return;
  }
  compute_row<SR>(strategy, kappa, mask, a, b, i, acc, emit);
}

namespace detail {

/// Computes one (row, column-range) cell of the 2D-tiled driver: the mask
/// segment of row i inside [col_begin, col_end) is loaded, A[i,:] is
/// traversed, and each B row is scanned only inside the column range.
/// Returns the number of outputs emitted (written at out_cols/out_vals).
/// Hybrid decisions stay inline here: they depend on the per-cell B-row
/// segment length, which a row-granular plan does not enumerate.
template <Semiring SR, class T, class I, class Acc>
I compute_cell(const Csr<T, I>& mask, const Csr<T, I>& a, const Csr<T, I>& b,
               I i, I col_begin, I col_end, MaskStrategy strategy, double kappa,
               Acc& acc, I* out_cols, T* out_vals) {
  const auto full_mask = mask.row_cols(i);
  const auto seg_first =
      std::lower_bound(full_mask.begin(), full_mask.end(), col_begin);
  const auto seg_last = std::lower_bound(seg_first, full_mask.end(), col_end);
  const std::span<const I> mask_seg =
      full_mask.subspan(static_cast<std::size_t>(seg_first - full_mask.begin()),
                        static_cast<std::size_t>(seg_last - seg_first));
  if (mask_seg.empty()) {
    return 0;
  }

  acc.set_mask(mask_seg);
  detail::KernelRowMetrics metrics;
  const auto mask_nnz = static_cast<std::int64_t>(mask_seg.size());
  const auto a_cols = a.row_cols(i);
  const auto a_vals = a.row_vals(i);
  for (std::size_t p = 0; p < a_cols.size(); ++p) {
    const I k = a_cols[p];
    const T scale = a_vals[p];
    const auto b_cols = b.row_cols(k);
    const auto b_vals = b.row_vals(k);
    // Restrict the B row to the column range.
    const auto b_first = std::lower_bound(b_cols.begin(), b_cols.end(), col_begin);
    const auto b_first_idx = static_cast<std::size_t>(b_first - b_cols.begin());
    std::size_t b_count = 0;
    for (auto it = b_first; it != b_cols.end() && *it < col_end; ++it) {
      ++b_count;
    }

    const bool coiterate =
        strategy == MaskStrategy::kCoIterate ||
        (strategy == MaskStrategy::kHybrid &&
         detail::prefer_coiteration(mask_nnz, static_cast<std::int64_t>(b_count),
                                    kappa));
    if (coiterate) {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_coiter_picks;
      }
      for (const I j : mask_seg) {
        const std::size_t q = detail::lower_bound_index(
            b_cols, b_first_idx, j, metrics.binary_search_steps);
        if (q < b_cols.size() && b_cols[q] == j) {
          ++metrics.flops;
          acc.accumulate(j, SR::mul(scale, b_vals[q]));
        }
      }
    } else {
      if (strategy == MaskStrategy::kHybrid) {
        ++metrics.hybrid_linear_picks;
      }
      metrics.flops += b_count;
      for (std::size_t q = b_first_idx; q < b_first_idx + b_count; ++q) {
        acc.accumulate(b_cols[q], SR::mul(scale, b_vals[q]));
      }
    }
  }

  I count = 0;
  acc.gather(mask_seg, [&](I col, T value) {
    out_cols[count] = col;
    out_vals[count] = value;
    ++count;
  });
  acc.finish_row(mask_seg);
  metrics.flush();
  return count;
}

}  // namespace detail

}  // namespace tilq
