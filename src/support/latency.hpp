// Fixed-bucket log-scale latency histogram — the serving engine's
// percentile aggregation (docs/SERVING.md). Latency distributions under
// mixed load are heavy-tailed, which is exactly what makes a mean (or the
// additive engine_job_ns counter) misleading: one circuit-sized query
// moves the mean by more than a thousand road-sized ones. Percentiles are
// the SLO currency, but exact percentiles need every sample; this
// histogram trades a bounded relative error for O(1) space and a
// wait-free record path safe to call from every pool worker concurrently.
//
// Bucket layout: one underflow bucket for zero, exact unit-wide buckets
// for 1..3 ns (octaves narrower than the sub-bucket grid), then
// kSubBuckets geometric sub-buckets per power of two of nanoseconds.
// With 4 sub-buckets a bucket spans at most 1/4 of its octave, so a
// reported quantile (the upper edge of the bucket holding the target
// rank) is within +25% of the true sample — tests/latency_test.cpp pins
// this bound against a sorted-vector oracle. 42 octaves cover ~1 ns to
// ~73 minutes; anything beyond saturates into the last bucket.
//
// Thread-safety: record_ns()/record_ms() are wait-free relaxed atomic
// increments, callable from any thread at any time. quantile_ms() and
// summary() read the buckets without synchronization — concurrent with
// recording they see a consistent-enough snapshot (each counter is
// atomic; cross-bucket skew only perturbs ranks by in-flight samples).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace tilq {

/// Value snapshot of a histogram's percentiles (EngineStats, CLI output).
/// All times in milliseconds; `count` is the number of recorded samples
/// (all other fields are 0 when it is 0).
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
};

class LatencyHistogram {
 public:
  /// Geometric sub-buckets per power of two; 4 bounds the quantile
  /// overshoot at +25% of the true sample.
  static constexpr int kSubBuckets = 4;
  /// Powers of two of nanoseconds covered before saturation (~73 min).
  static constexpr int kOctaves = 42;
  /// First octave wide enough for the sub-bucket grid (base/kSubBuckets
  /// >= 1); values below its base get exact unit-wide buckets instead.
  static constexpr int kFirstSplitOctave = 2;  // log2(kSubBuckets)
  /// Bucket 0 holds zero-valued samples, buckets 1..3 the unit range,
  /// and the rest the sub-bucketed octave grid — a gap-free, strictly
  /// increasing partition of the uint64 nanosecond axis.
  static constexpr int kBucketCount =
      1 + ((1 << kFirstSplitOctave) - 1) +
      (kOctaves - kFirstSplitOctave) * kSubBuckets;

  /// Plain-value snapshot of the bucket counters — the baseline a windowed
  /// reader (the telemetry sampler, docs/TELEMETRY.md) carries between
  /// snapshot_delta() calls. Default-constructed it is the zero baseline,
  /// so the first delta covers the histogram's whole history.
  struct Counts {
    std::array<std::uint64_t, kBucketCount> buckets{};
    std::uint64_t sum_ns = 0;
  };

  void record_ms(double ms) noexcept {
    record_ns(ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1e6));
  }

  void record_ns(std::uint64_t ns) noexcept {
    counts_[static_cast<std::size_t>(bucket_index(ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// The q-quantile (q in [0, 1]) as the upper edge of the bucket holding
  /// the nearest-rank sample: never below the true sample, at most +25%
  /// above it (the kSubBuckets bound). 0 when the histogram is empty.
  [[nodiscard]] double quantile_ms(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) {
      return 0.0;
    }
    const double scaled = q * static_cast<double>(n);
    std::uint64_t rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled) {
      ++rank;  // ceil(q * n): nearest-rank quantile
    }
    rank = rank == 0 ? 1 : (rank > n ? n : rank);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBucketCount; ++i) {
      cumulative +=
          counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
      if (cumulative >= rank) {
        return static_cast<double>(bucket_upper_ns(i)) / 1e6;
      }
    }
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e6;
  }

  [[nodiscard]] double max_ms() const noexcept {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e6;
  }

  [[nodiscard]] double mean_ms() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        sum_ns_.load(std::memory_order_relaxed)) /
                        (1e6 * static_cast<double>(n));
  }

  [[nodiscard]] LatencySummary summary() const noexcept {
    LatencySummary s;
    s.count = count();
    s.p50_ms = quantile_ms(0.50);
    s.p95_ms = quantile_ms(0.95);
    s.p99_ms = quantile_ms(0.99);
    s.max_ms = max_ms();
    s.mean_ms = mean_ms();
    return s;
  }

  /// Relaxed snapshot of the current bucket counters. Buckets only ever
  /// grow, so a snapshot taken earlier is bucket-wise <= one taken later —
  /// the invariant snapshot_delta() subtracts on.
  [[nodiscard]] Counts counts() const noexcept {
    Counts c;
    for (int i = 0; i < kBucketCount; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      c.buckets[idx] = counts_[idx].load(std::memory_order_relaxed);
    }
    c.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return c;
  }

  /// Windowed percentiles: the summary of only the samples recorded since
  /// `since` was last updated, after which `since` advances to the current
  /// totals. Merge-based and reset-free — recorders are never touched, so
  /// the sampler can never race them: a concurrent record_ns() lands in
  /// either this window or the next, never in both and never lost. The
  /// window max is the upper edge of its highest occupied bucket (the
  /// exact max_ns_ counter cannot be windowed), so it obeys the same +25%
  /// bound as the quantiles. Not reentrant per `since` baseline: each
  /// concurrent reader must own its own Counts.
  [[nodiscard]] LatencySummary snapshot_delta(Counts& since) const noexcept {
    const Counts now = counts();
    std::array<std::uint64_t, kBucketCount> delta{};
    std::uint64_t n = 0;
    int highest = -1;
    for (int i = 0; i < kBucketCount; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      delta[idx] = now.buckets[idx] - since.buckets[idx];
      n += delta[idx];
      if (delta[idx] > 0) {
        highest = i;
      }
    }
    LatencySummary s;
    s.count = n;
    if (n > 0) {
      s.p50_ms = delta_quantile_ms(delta, n, 0.50);
      s.p95_ms = delta_quantile_ms(delta, n, 0.95);
      s.p99_ms = delta_quantile_ms(delta, n, 0.99);
      s.max_ms = static_cast<double>(bucket_upper_ns(highest)) / 1e6;
      // sum_ns_ and the buckets are separate relaxed counters, so under
      // concurrent recording the sum delta can momentarily disagree with
      // the bucket delta by in-flight samples; saturate instead of
      // wrapping.
      const std::uint64_t sum =
          now.sum_ns >= since.sum_ns ? now.sum_ns - since.sum_ns : 0;
      s.mean_ms = static_cast<double>(sum) / (1e6 * static_cast<double>(n));
    }
    since = now;
    return s;
  }

  /// Folds another histogram's buckets into this one (aggregation across
  /// engines; percentiles merge exactly because the grid is shared).
  void merge(const LatencyHistogram& other) noexcept {
    for (int i = 0; i < kBucketCount; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      counts_[idx].fetch_add(other.counts_[idx].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    const std::uint64_t other_max =
        other.max_ns_.load(std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (other_max > seen &&
           !max_ns_.compare_exchange_weak(seen, other_max,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Grid position of a nanosecond value: bucket 0 for zero, the value
  /// itself below the first split octave (unit-wide buckets), then
  /// (octave, sub-bucket) with sub = the top kSubBuckets-worth of
  /// mantissa bits; values past the last octave saturate.
  [[nodiscard]] static constexpr int bucket_index(std::uint64_t ns) noexcept {
    if (ns < (std::uint64_t{1} << kFirstSplitOctave)) {
      return static_cast<int>(ns);  // 0 is the underflow bucket
    }
    const int octave = static_cast<int>(std::bit_width(ns)) - 1;
    if (octave >= kOctaves) {
      return kBucketCount - 1;
    }
    const std::uint64_t base = std::uint64_t{1} << octave;
    const int sub = static_cast<int>(
        ((ns - base) * static_cast<std::uint64_t>(kSubBuckets)) >> octave);
    return 1 + ((1 << kFirstSplitOctave) - 1) +
           (octave - kFirstSplitOctave) * kSubBuckets + sub;
  }

  /// Inclusive upper edge of a bucket — what quantile_ms() reports, so
  /// quantiles err high (conservative for SLO checks), never low.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_ns(
      int index) noexcept {
    constexpr int kUnitBuckets = (1 << kFirstSplitOctave) - 1;
    if (index <= kUnitBuckets) {
      return index <= 0 ? 0 : static_cast<std::uint64_t>(index);
    }
    const int grid = index - 1 - kUnitBuckets;
    const int octave = kFirstSplitOctave + grid / kSubBuckets;
    const int sub = grid % kSubBuckets;
    const std::uint64_t base = std::uint64_t{1} << octave;
    const std::uint64_t step =
        base / static_cast<std::uint64_t>(kSubBuckets);
    return base + static_cast<std::uint64_t>(sub + 1) * step - 1;
  }

 private:
  /// Nearest-rank quantile over a plain bucket-delta array — quantile_ms()
  /// restated for windowed counts.
  [[nodiscard]] static double delta_quantile_ms(
      const std::array<std::uint64_t, kBucketCount>& delta, std::uint64_t n,
      double q) noexcept {
    const double scaled = q * static_cast<double>(n);
    std::uint64_t rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled) {
      ++rank;
    }
    rank = rank == 0 ? 1 : (rank > n ? n : rank);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBucketCount; ++i) {
      cumulative += delta[static_cast<std::size_t>(i)];
      if (cumulative >= rank) {
        return static_cast<double>(bucket_upper_ns(i)) / 1e6;
      }
    }
    return 0.0;
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace tilq
