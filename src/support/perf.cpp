#include "support/perf.hpp"

#include "support/metrics.hpp"  // runtime gate for the one-line notice

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#if TILQ_METRICS_ENABLED && defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

#if TILQ_METRICS_ENABLED
#include <atomic>
#endif

namespace tilq {

bool perf_env_disables(const char* value) noexcept {
  if (value == nullptr) {
    return false;
  }
  std::string v(value);
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return v == "0" || v == "off" || v == "false";
}

#if TILQ_METRICS_ENABLED

namespace {

/// Process-wide gate: starts from TILQ_PERF, flips to false on the first
/// failed open so no other thread retries (or warns) after that.
std::atomic<bool> g_perf_enabled{!perf_env_disables(std::getenv("TILQ_PERF"))};
std::atomic<int> g_unavailable_notices{0};

/// The single unavailable notice: printed only when the metrics runtime
/// gate is open (a plain library user never sees perf chatter), and at
/// most once per process no matter how many threads or scopes fall back.
void note_unavailable_once(const char* why) {
  if (!metrics_enabled()) {
    return;  // silent-by-default contract
  }
  int expected = 0;
  if (g_unavailable_notices.compare_exchange_strong(expected, 1)) {
    std::fprintf(stderr,
                 "tilq perf: hardware counters unavailable (%s); "
                 "records will carry \"hw\":null\n",
                 why);
  }
}

#if defined(__linux__)

long perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                             int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// Slots of the group, in HwCounters field order. The leader (cycles) must
/// open; members are optional and skipped individually when the PMU or the
/// kernel rejects them.
enum Slot {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kBranchMisses,
  kStalledCycles,
  kSlotCount,
};

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

/// One thread's counter group. Opened on the thread's first read, closed
/// when the thread exits (deltas consumers took remain valid — they are
/// plain values, not handles into the group).
class ThreadGroup {
 public:
  ThreadGroup() { open(); }

  ~ThreadGroup() {
    for (const int fd : fds_) {
      if (fd >= 0) {
        close(fd);
      }
    }
  }

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  [[nodiscard]] bool ok() const noexcept { return fds_[kCycles] >= 0; }

  [[nodiscard]] HwCounters read_now() noexcept {
    HwCounters out;
    if (!ok()) {
      return out;
    }
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, then
    // {value, id} per group member.
    std::uint64_t buf[3 + 2 * kSlotCount] = {};
    const ssize_t n = read(fds_[kCycles], buf, sizeof buf);
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
      return out;
    }
    const std::uint64_t nr = buf[0];
    const std::uint64_t enabled = buf[1];
    const std::uint64_t running = buf[2];
    if (running == 0) {
      return out;  // group never scheduled: report "no data", not garbage
    }
    // Multiplexing correction: scale cumulative values by enabled/running.
    const double scale =
        enabled > running
            ? static_cast<double>(enabled) / static_cast<double>(running)
            : 1.0;
    std::uint64_t* const fields[kSlotCount] = {
        &out.cycles,     &out.instructions,  &out.llc_loads,
        &out.llc_misses, &out.branch_misses, &out.stalled_cycles,
    };
    for (std::uint64_t e = 0; e < nr && e < kSlotCount; ++e) {
      const std::uint64_t value = buf[3 + 2 * e];
      const std::uint64_t id = buf[3 + 2 * e + 1];
      for (int s = 0; s < kSlotCount; ++s) {
        if (fds_[s] >= 0 && ids_[s] == id) {
          *fields[s] =
              static_cast<std::uint64_t>(static_cast<double>(value) * scale);
          break;
        }
      }
    }
    return out;
  }

 private:
  struct EventSpec {
    std::uint32_t type;
    std::uint64_t config;
  };

  void open() {
    for (int s = 0; s < kSlotCount; ++s) {
      fds_[s] = -1;
      ids_[s] = 0;
    }
    if (open_slot(kCycles, {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES}) <
        0) {
      return;  // no leader, no group
    }
    open_slot(kInstructions, {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS});
    // LLC read accesses/misses; fall back to the generic cache-reference
    // events when the LL cache-event table is not wired up (common on VMs).
    if (open_slot(kLlcLoads,
                  {PERF_TYPE_HW_CACHE,
                   cache_config(PERF_COUNT_HW_CACHE_LL,
                                PERF_COUNT_HW_CACHE_OP_READ,
                                PERF_COUNT_HW_CACHE_RESULT_ACCESS)}) < 0) {
      open_slot(kLlcLoads,
                {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES});
    }
    if (open_slot(kLlcMisses,
                  {PERF_TYPE_HW_CACHE,
                   cache_config(PERF_COUNT_HW_CACHE_LL,
                                PERF_COUNT_HW_CACHE_OP_READ,
                                PERF_COUNT_HW_CACHE_RESULT_MISS)}) < 0) {
      open_slot(kLlcMisses, {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES});
    }
    open_slot(kBranchMisses,
              {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES});
    if (open_slot(kStalledCycles,
                  {PERF_TYPE_HARDWARE,
                   PERF_COUNT_HW_STALLED_CYCLES_BACKEND}) < 0) {
      open_slot(kStalledCycles,
                {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_FRONTEND});
    }
    // Start the whole group (the leader was created disabled).
    ioctl(fds_[kCycles], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[kCycles], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }

  int open_slot(int slot, EventSpec spec) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.size = sizeof attr;
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = slot == kCycles ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int group_fd = slot == kCycles ? -1 : fds_[kCycles];
    const long fd = perf_event_open_syscall(&attr, /*pid=*/0, /*cpu=*/-1,
                                            group_fd, /*flags=*/0);
    if (fd < 0) {
      return -1;
    }
    fds_[slot] = static_cast<int>(fd);
    std::uint64_t id = 0;
    if (ioctl(static_cast<int>(fd), PERF_EVENT_IOC_ID, &id) == 0) {
      ids_[slot] = id;
    }
    return static_cast<int>(fd);
  }

  int fds_[kSlotCount];
  std::uint64_t ids_[kSlotCount];
};

/// The calling thread's group, or nullptr when perf is (or just became)
/// unavailable. The first failure anywhere closes the process-wide gate.
ThreadGroup* thread_group() {
  if (!g_perf_enabled.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  thread_local ThreadGroup group;
  if (!group.ok()) {
    g_perf_enabled.store(false, std::memory_order_relaxed);
    note_unavailable_once(
        "perf_event_open failed; check /proc/sys/kernel/perf_event_paranoid");
    return nullptr;
  }
  return &group;
}

#endif  // __linux__

}  // namespace

#if defined(__linux__)

bool perf_available() noexcept { return thread_group() != nullptr; }

HwCounters perf_read_thread() noexcept {
  ThreadGroup* const group = thread_group();
  return group != nullptr ? group->read_now() : HwCounters{};
}

#else  // no syscall to try off-Linux: permanently unavailable

bool perf_available() noexcept {
  if (g_perf_enabled.load(std::memory_order_relaxed)) {
    g_perf_enabled.store(false, std::memory_order_relaxed);
    note_unavailable_once("perf_event_open requires Linux");
  }
  return false;
}

HwCounters perf_read_thread() noexcept { return {}; }

#endif  // __linux__

void set_perf_enabled(bool enabled) noexcept {
  g_perf_enabled.store(enabled, std::memory_order_relaxed);
}

int perf_unavailable_notices() noexcept {
  return g_unavailable_notices.load(std::memory_order_relaxed);
}

#endif  // TILQ_METRICS_ENABLED

}  // namespace tilq
