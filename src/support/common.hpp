// Small shared utilities: checked narrowing, power-of-two helpers, and the
// library-wide assertion macros. Kept dependency-free (errors.hpp only pulls
// standard headers); every other tilq header may include this one.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "support/errors.hpp"

// TILQ_HARDENED promotes hot-path bounds checks (TILQ_CHECK below) from
// assert()s to thrown PreconditionErrors. Defaults to on in Debug builds and
// off in Release; the CMake option TILQ_HARDENED forces it on so sanitizer CI
// can run optimized builds with checks enabled.
#ifndef TILQ_HARDENED
#ifndef NDEBUG
#define TILQ_HARDENED 1
#else
#define TILQ_HARDENED 0
#endif
#endif

// Bounds/invariant check on accessors that are noexcept in release builds.
// Declare such accessors `TILQ_CHECK_NOEXCEPT` instead of `noexcept`: when
// hardened the check throws PreconditionError, so the noexcept comes off.
#if TILQ_HARDENED
#define TILQ_CHECK(cond, msg) ::tilq::detail::check_failed_if(!(cond), (msg))
#define TILQ_CHECK_NOEXCEPT
#else
#define TILQ_CHECK(cond, msg) assert((cond) && (msg))
#define TILQ_CHECK_NOEXCEPT noexcept
#endif

namespace tilq {

namespace detail {
/// Out-of-line throw keeps TILQ_CHECK call sites branch + call, nothing more.
[[noreturn]] inline void throw_check_failed(const char* message) {
  throw PreconditionError(message);
}
inline void check_failed_if(bool failed, const char* message) {
  if (failed) {
    throw_check_failed(message);
  }
}
}  // namespace detail

/// Checks a user-facing precondition; throws PreconditionError on failure.
/// Internal invariants use assert() instead.
inline void require(bool condition, const char* message) {
  if (!condition) {
    throw PreconditionError(message);
  }
}

/// Checked narrowing conversion (Core Guidelines `narrow`): throws if the
/// value does not survive the round trip.
template <class To, class From>
constexpr To narrow(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      (std::is_signed_v<From> != std::is_signed_v<To> &&
       ((value < From{}) != (result < To{})))) {
    throw std::range_error("tilq::narrow: value does not fit target type");
  }
  return result;
}

/// Narrowing conversion that the caller asserts is lossless; checked only in
/// debug builds. Use on hot paths where `narrow` would be too costly.
template <class To, class From>
constexpr To narrow_cast(From value) noexcept {
  assert(static_cast<From>(static_cast<To>(value)) == value);
  return static_cast<To>(value);
}

/// Smallest power of two >= `value` (value must be >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t value) noexcept {
  assert(value >= 1);
  --value;
  value |= value >> 1;
  value |= value >> 2;
  value |= value >> 4;
  value |= value >> 8;
  value |= value >> 16;
  value |= value >> 32;
  return value + 1;
}

constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Integer floor(log2(value)); value must be >= 1.
constexpr unsigned floor_log2(std::uint64_t value) noexcept {
  assert(value >= 1);
  unsigned result = 0;
  while (value >>= 1) {
    ++result;
  }
  return result;
}

/// Integer ceil(log2(value)); value must be >= 1. ceil_log2(1) == 0.
constexpr unsigned ceil_log2(std::uint64_t value) noexcept {
  return is_pow2(value) ? floor_log2(value) : floor_log2(value) + 1;
}

/// Ceiling division for non-negative integers.
template <class T>
constexpr T ceil_div(T numerator, T denominator) noexcept {
  assert(denominator > 0 && numerator >= 0);
  return (numerator + denominator - 1) / denominator;
}

}  // namespace tilq
