// Live engine telemetry (docs/TELEMETRY.md): the pieces an operator needs
// while an Engine is running, as opposed to the post-hoc metrics records
// that only appear when a run finishes.
//
//   * TelemetryHub — a background sampler thread that periodically calls a
//     collector (the engine's stats snapshot) into a fixed-capacity ring of
//     timestamped TelemetrySample values, plus an optional single-threaded
//     HTTP listener serving /metrics (Prometheus text format) and /healthz.
//   * FlightRecorder — a wait-free lock-free ring of per-job lifecycle
//     events (submitted, admitted, planned, lane-assigned, first-tile,
//     finalized, shed, deferred, deadline-miss, stuck) dumpable as JSON.
//   * render_prometheus — a dependency-free Prometheus text-format
//     rendering of every metrics-v3 counter; the hub's member variant adds
//     the sampled engine gauges on top.
//
// Everything here is engine-agnostic: the hub takes a collector callback,
// so the engine (core/engine.hpp) owns the policy — what to sample, when a
// job counts as stuck — and this layer owns the mechanics. Opt-in via
// EngineOptions::telemetry or the TILQ_TELEMETRY / TILQ_TELEMETRY_PORT /
// TILQ_TELEMETRY_DUMP environment variables (telemetry_options_from_env).
//
// Thread-safety: FlightRecorder::record is wait-free (one relaxed
// fetch_add plus per-slot atomic stores) and callable from any thread;
// readers validate a per-slot sequence tag and drop slots that are
// mid-overwrite. TelemetryHub::samples/latest/render_prometheus may be
// called from any thread; the collector itself runs serialized (sampler
// thread and sample_now callers take the same mutex), so a collector may
// keep unsynchronized baselines like LatencyHistogram::Counts.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "support/health.hpp"
#include "support/latency.hpp"

namespace tilq {

/// Knobs for the telemetry subsystem, a member of EngineOptions. The
/// defaults keep everything off; enabling costs one sampler thread and a
/// few atomic stores per job lifecycle transition.
struct TelemetryOptions {
  /// Master switch: off means no sampler thread, no flight recorder
  /// hooks, no listener — the engine behaves exactly as before.
  bool enabled = false;
  /// Sampler period; clamped to >= 1 ms.
  double sample_interval_ms = 100.0;
  /// Samples kept in the ring (600 x 100 ms = one minute of history).
  std::size_t ring_capacity = 600;
  /// Flight-recorder slots (rounded up to a power of two).
  std::size_t flight_capacity = 4096;
  /// A job is stuck once elapsed > watchdog_factor x its Eq-2-predicted
  /// runtime (and past watchdog_floor_ms, so tiny estimates cannot flag
  /// merely-queued jobs).
  double watchdog_factor = 8.0;
  double watchdog_floor_ms = 100.0;
  /// HTTP listener port on loopback: -1 disables the listener, 0 binds an
  /// ephemeral port (read it back via TelemetryHub::port()).
  int port = -1;
  /// When non-empty, the hub dumps the flight recorder as JSON to this
  /// path at destruction.
  std::string dump_path;
};

/// Applies the TILQ_TELEMETRY (off / on / sample interval in ms),
/// TILQ_TELEMETRY_PORT, and TILQ_TELEMETRY_DUMP environment variables on
/// top of `base`; unset variables leave the base value untouched.
[[nodiscard]] TelemetryOptions telemetry_options_from_env(
    TelemetryOptions base);

/// Lifecycle stations of a job, in the order the engine visits them.
enum class FlightEventKind : std::uint8_t {
  kSubmitted = 0,   ///< submit() entered, plan priced (flops = estimate)
  kPlanned,         ///< plan resolved (cache hit or fresh build)
  kAdmitted,        ///< past the admission gate, holds an in-flight slot
  kLaneAssigned,    ///< scheduling lane chosen (the event's lane field)
  kFirstTile,       ///< first tile task started on a worker
  kFinalized,       ///< job finished (completed or failed)
  kShed,            ///< refused at the shed bound (OverloadPolicy::kShed)
  kDeferred,        ///< demoted to the background lane (kDefer)
  kDeadlineMiss,    ///< cancelled because a tile would start past deadline
  kStuck,           ///< flagged by the watchdog (docs/TELEMETRY.md)
  kRetried,         ///< failed attempt re-queued (auto-replan / degrade)
  kAutotuned,       ///< bandit served a non-baseline arm (docs/TUNING.md)
};

/// Stable lowercase-dashed name of a FlightEventKind — the `event` field
/// of the JSON dump; docs/TELEMETRY.md tables are linted against these.
[[nodiscard]] const char* to_string(FlightEventKind kind) noexcept;

/// One flight-recorder entry. `t_ns` is nanoseconds since the recorder
/// was constructed; `lane` is -1 when no lane applies; `flops` is the
/// job's Eq-2 estimate where the station knows it, else 0.
struct FlightEvent {
  std::uint64_t sequence = 0;
  std::uint64_t t_ns = 0;
  std::uint64_t job = 0;
  FlightEventKind kind = FlightEventKind::kSubmitted;
  int lane = -1;
  std::int64_t flops = 0;
};

/// Fixed-capacity lock-free ring of FlightEvent. Writers never wait and
/// never allocate; the ring keeps the most recent `capacity` events and
/// overwrites the oldest. Readers (events, to_json) may run concurrently
/// with writers: each slot carries a sequence tag published with release
/// ordering, and a slot whose tag changed mid-read is skipped.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event. Wait-free; callable from any thread, including
  /// pool workers inside a job's critical path.
  void record(std::uint64_t job, FlightEventKind kind, int lane = -1,
              std::int64_t flops = 0) noexcept;

  /// The surviving events, oldest first. Events overwritten while the
  /// scan runs are dropped, never torn.
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// The surviving events of one job, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events_for(std::uint64_t job) const;

  /// JSON array of every surviving event (docs/TELEMETRY.md schema).
  [[nodiscard]] std::string to_json() const;

  /// JSON array restricted to one job — what the watchdog logs.
  [[nodiscard]] std::string to_json(std::uint64_t job) const;

  /// Events ever recorded (monotonic; exceeds capacity once wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

  /// Ring size after power-of-two rounding.
  [[nodiscard]] std::size_t capacity() const noexcept;

 private:
  /// Every field atomic so a concurrent overwrite can interleave with a
  /// reader without a data race (TSan-clean); the tag seqlock detects and
  /// discards such mixed reads.
  struct Slot {
    std::atomic<std::uint64_t> tag{0};  ///< sequence + 1 once published
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint64_t> job{0};
    std::atomic<std::uint32_t> meta{0};  ///< kind | (lane + 1) << 8
    std::atomic<std::int64_t> flops{0};
  };

  bool read_slot(std::uint64_t sequence, FlightEvent& out) const;

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
  std::chrono::steady_clock::time_point start_;
};

/// Per-worker share of the pool totals inside a sample.
struct TelemetryWorkerSample {
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
};

/// One timestamped snapshot produced by the collector. Cumulative fields
/// (jobs_*, plan_*) are engine-lifetime totals at the sample instant; the
/// `window` / `queue_window` summaries cover only the interval since the
/// previous sample (LatencyHistogram::snapshot_delta).
struct TelemetrySample {
  double t_ms = 0.0;       ///< since the hub started (set by the hub)
  double uptime_ms = 0.0;  ///< engine uptime at the sample
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t jobs_deferred = 0;
  std::uint64_t jobs_stuck = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t plan_builds = 0;
  std::uint64_t plan_hits = 0;
  double plan_hit_rate = 0.0;  ///< hits / (hits + builds), 0 when idle
  std::uint64_t retries = 0;   ///< retry attempts (replan + degrade)
  std::uint64_t brownouts = 0; ///< memory-governor brownout transitions
  std::uint64_t autotune_fingerprints = 0;  ///< bandit arm tables created
  std::uint64_t autotune_explorations = 0;  ///< non-best arms served
  std::uint64_t autotune_arm_switches = 0;  ///< best-arm changes
  std::uint64_t autotune_converged = 0;     ///< fingerprints frozen
  std::uint64_t memory_usage_bytes = 0;       ///< governor ledger now
  std::uint64_t memory_high_water_bytes = 0;  ///< governor high-water mark
  std::uint64_t memory_budget_bytes = 0;      ///< configured budget (0 = off)
  EngineHealth health = EngineHealth::kHealthy;  ///< state at the sample
  LatencySummary window;        ///< total latency since previous sample
  LatencySummary queue_window;  ///< queue latency since previous sample
  std::vector<TelemetryWorkerSample> workers;
};

/// Owns the sampler thread, the sample ring, the flight recorder, and the
/// optional HTTP listener. Engine-agnostic: the collector callback decides
/// what a sample contains. Destruction stops both threads, then dumps the
/// flight recorder to TelemetryOptions::dump_path when one is set.
class TelemetryHub {
 public:
  using Collector = std::function<TelemetrySample()>;
  /// Supplies the live EngineHealth verdict for /healthz (and callers of
  /// health()). Nullptr means always healthy — the pre-resilience behavior.
  using HealthProvider = std::function<EngineHealth()>;

  TelemetryHub(TelemetryOptions options, Collector collector,
               HealthProvider health = nullptr);
  ~TelemetryHub();

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  [[nodiscard]] const TelemetryOptions& options() const noexcept;

  /// The flight recorder the engine's lifecycle hooks write into.
  [[nodiscard]] FlightRecorder& flight() noexcept;
  [[nodiscard]] const FlightRecorder& flight() const noexcept;

  /// Copy of the sample ring, oldest first.
  [[nodiscard]] std::vector<TelemetrySample> samples() const;

  /// The most recent sample, if any tick has completed.
  [[nodiscard]] std::optional<TelemetrySample> latest() const;

  /// Sampler ticks taken so far (monotonic; exceeds ring_capacity once
  /// the ring wraps).
  [[nodiscard]] std::uint64_t sample_count() const noexcept;

  /// Takes one sample immediately from the calling thread (serialized
  /// with the sampler thread). The constructor takes the first sample, so
  /// /metrics is never empty.
  void sample_now();

  /// Port the listener actually bound (differs from options().port when
  /// that was 0 = ephemeral); -1 when the listener is off or bind failed.
  [[nodiscard]] int port() const noexcept;

  /// What /metrics serves: the process-wide counter rendering of the free
  /// render_prometheus plus this hub's sampled gauges.
  void render_prometheus(std::string& out) const;

  /// The health provider's current verdict (kHealthy when no provider was
  /// attached). /healthz serves this: 200 + state name normally, 503 +
  /// state name once browned out.
  [[nodiscard]] EngineHealth health() const;

 private:
  void sampler_loop();
  void serve_loop();
  void push_sample();
  void start_listener();
  void handle_client(int client_fd) const;

  TelemetryOptions options_;
  Collector collector_;
  HealthProvider health_;
  FlightRecorder flight_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex collect_mutex_;  ///< serializes collector calls
  mutable std::mutex ring_mutex_;
  std::deque<TelemetrySample> ring_;
  std::atomic<std::uint64_t> sample_count_{0};

  std::atomic<bool> stop_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  int listen_fd_ = -1;
  std::atomic<int> port_{-1};

  std::thread sampler_;
  std::thread server_;
};

/// Renders every metrics-v3 counter (the process-wide metrics_snapshot
/// total) in Prometheus text exposition format, metric names prefixed
/// `tilq_`. Dependency-free; works — emitting zeros — even when the
/// metrics runtime is disabled. docs/TELEMETRY.md tables the names.
void render_prometheus(std::string& out);

}  // namespace tilq
