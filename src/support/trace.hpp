// Phase/tile span tracing in Chrome's `chrome://tracing` JSON format
// (also loadable by Perfetto and `about:tracing`). Spans record where the
// kernel's wall time goes — analyze/compute/compact phases, tile
// construction, and individual tile executions — with one complete ("X")
// event per span.
//
// Enabling: set TILQ_TRACE=<out.json> in the environment (or call
// set_trace_path). The trace is written by trace_flush(), which is also
// registered atexit on first enablement so every binary drops a valid
// file without explicit cooperation.
//
// Overhead: a disabled TraceSpan is one bool read; spans are placed at
// phase/tile granularity (never per row), so tracing costs nothing when
// off and little when on. The hooks share the TILQ_METRICS_ENABLED
// compile gate with support/metrics.hpp: a TILQ_METRICS=OFF build
// compiles every span to an empty object.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/metrics.hpp"  // for the TILQ_METRICS_ENABLED gate
#include "support/perf.hpp"     // hardware deltas attached to spans

namespace tilq {

#if TILQ_METRICS_ENABLED

namespace trace_detail {
extern bool g_enabled;
/// Microseconds since the process's trace epoch (first call).
[[nodiscard]] double now_us() noexcept;
/// `hw` is the span's hardware-counter delta (all-zero when perf is
/// unavailable); non-zero deltas land in the event's args.
void record_span(const char* name, std::int64_t arg, double start_us,
                 double end_us, const HwCounters& hw);
}  // namespace trace_detail

[[nodiscard]] inline bool trace_enabled() noexcept {
  return trace_detail::g_enabled;
}

/// RAII complete-event span. `name` must point to storage that outlives
/// the trace (string literals in practice). `arg` >= 0 is attached as
/// args.id in the event (tile index etc.); pass -1 for none. When the
/// calling thread can read hardware counters (support/perf.hpp), the
/// span's cycle/instruction/LLC-miss deltas are attached to the event's
/// args — phase and tile spans then carry their own memory-system story.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = -1) noexcept {
    if (trace_enabled()) {
      name_ = name;
      arg_ = arg;
      start_us_ = trace_detail::now_us();
      if (perf_available()) {
        hw_active_ = true;
        hw_start_ = perf_read_thread();
      }
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr && trace_enabled()) {
      const HwCounters hw =
          hw_active_ ? perf_read_thread().minus(hw_start_) : HwCounters{};
      trace_detail::record_span(name_, arg_, start_us_, trace_detail::now_us(),
                                hw);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t arg_ = -1;
  double start_us_ = 0.0;
  HwCounters hw_start_;
  bool hw_active_ = false;
};

/// Sets the trace output path; "" disables tracing. Overrides TILQ_TRACE.
void set_trace_path(const std::string& path);
[[nodiscard]] std::string trace_path();

/// Writes every event recorded so far to the trace path (truncating), so
/// repeated flushes always leave a complete, loadable file. Returns false
/// when tracing is disabled or the file cannot be written.
bool trace_flush();

/// Drops all recorded events (tests use this for isolation).
void trace_clear();

/// Number of spans recorded since the last trace_clear().
[[nodiscard]] std::size_t trace_event_count();

#else  // !TILQ_METRICS_ENABLED — spans and controls are no-ops.

[[nodiscard]] constexpr bool trace_enabled() noexcept { return false; }

class TraceSpan {
 public:
  explicit TraceSpan(const char*, std::int64_t = -1) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline void set_trace_path(const std::string&) {}
[[nodiscard]] inline std::string trace_path() { return {}; }
inline bool trace_flush() { return false; }
inline void trace_clear() {}
[[nodiscard]] inline std::size_t trace_event_count() { return 0; }

#endif  // TILQ_METRICS_ENABLED

}  // namespace tilq
