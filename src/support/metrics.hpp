// Kernel observability: process-wide, per-thread event counters with a
// versioned JSON-lines sink (docs/METRICS.md is the schema reference).
//
// Why counters and not just timers: the paper's explanations of its own
// figures — FLOP imbalance across tiles (Fig 10/11), hash-probe cost and
// marker-reset storms (Fig 13), binary-search work in the co-iteration
// kernel (Fig 14) — are all statements about *event counts*, not wall
// time. This module makes those counts observable from any run.
//
// Design:
//   * Counting is compiled in only when TILQ_METRICS_ENABLED is 1 (the
//     default; the CMake option TILQ_METRICS=OFF turns every hook into a
//     no-op with zero code in the hot paths).
//   * When compiled in, counting is still gated at run time by the
//     TILQ_METRICS environment variable (or set_metrics_enabled()); the
//     gate is a single relaxed bool read, checked once per row/tile, so a
//     disabled-at-runtime build stays within noise of the seed.
//   * Each thread owns a MetricCounters slot (registered on first use,
//     leaked on purpose so late aggregation never dereferences a dead
//     thread's storage). Hot code batches increments locally and flushes
//     per row or per tile; metrics_snapshot() sums the slots.
//
// Thread-safety contract: increments are plain (non-atomic) writes to the
// owning thread's slot. metrics_snapshot() / metrics_reset() must not be
// called concurrently with a running kernel; call them between kernel
// invocations (every in-tree caller does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef TILQ_METRICS_ENABLED
#define TILQ_METRICS_ENABLED 1
#endif

#include "support/perf.hpp"  // HwCounters ride along with the thread slots

namespace tilq {

/// Version of the metrics schema (counter set + JSON-lines layout). Bump
/// when a counter is renamed/removed or the record layout changes; adding
/// a counter is backward compatible and does not bump the version.
/// v2: added the `hw` (hardware counters, nullable) and `imbalance`
/// (per-thread busy-time statistics, nullable) record objects and the
/// `busy_ns` counter.
/// v3: added the batch-engine job/queue/steal counters (`engine_jobs`,
/// `engine_job_ns`, `engine_queue_ns`, `engine_queue_depth`,
/// `engine_tasks`, `engine_steals`) — see docs/CONCURRENCY.md. Later
/// extended, compatibly, with the serving counters (`engine_jobs_shed`,
/// `engine_jobs_deferred`, `engine_jobs_expensive`,
/// `engine_deadline_misses`) and the nullable `engine_latency` record
/// object (docs/SERVING.md), then with the telemetry counters
/// (`engine_jobs_stuck`, `engine_telemetry_samples` — docs/TELEMETRY.md),
/// then with the resilience counters (`engine_retries`,
/// `engine_brownouts` — docs/ROBUSTNESS.md), then with the online-tuning
/// counters (`autotune_explorations`, `autotune_arm_switches`,
/// `autotune_converged` — docs/TUNING.md).
inline constexpr int kMetricsSchemaVersion = 3;

/// True when the counter hooks are compiled into this build (CMake option
/// TILQ_METRICS). When false every function below is an inline no-op.
inline constexpr bool kMetricsCompiled = TILQ_METRICS_ENABLED != 0;

/// The full counter set. One instance per thread; aggregate via
/// metrics_snapshot(). Every field is documented in docs/METRICS.md and
/// the doc-lint (tools/check_metrics_docs.py) keeps the two in sync.
struct MetricCounters {
  std::uint64_t flops = 0;                  ///< semiring multiplications performed
  std::uint64_t accum_inserts = 0;          ///< accumulate() calls that hit the mask
  std::uint64_t accum_rejects = 0;          ///< accumulate() calls outside the mask
  std::uint64_t hash_probes = 0;            ///< hash probe-chain steps past the home slot
  std::uint64_t hash_collisions = 0;        ///< hash insertions that needed >=1 chain step
  std::uint64_t marker_row_resets = 0;      ///< finish_row() epoch bumps (marker policy)
  std::uint64_t marker_overflow_resets = 0; ///< whole-state clears on marker overflow
  std::uint64_t explicit_reset_slots = 0;   ///< slots cleared by explicit (GrB) resets
  std::uint64_t accum_rehashes = 0;         ///< hash grow-and-rehash saturation responses
  std::uint64_t accum_degrades = 0;         ///< rows/cells escalated to the dense fallback
  std::uint64_t binary_search_steps = 0;    ///< halving steps in co-iteration searches
  std::uint64_t hybrid_coiter_picks = 0;    ///< (i,k) pairs where hybrid chose co-iteration
  std::uint64_t hybrid_linear_picks = 0;    ///< (i,k) pairs where hybrid chose linear scan
  std::uint64_t blocked_dense_picks = 0;    ///< blocked tile tasks run on the dense accumulator
  std::uint64_t blocked_sparse_picks = 0;   ///< blocked tile tasks run on the sparse accumulator
  std::uint64_t tiles_created = 0;          ///< tiles produced by the tilers
  std::uint64_t tiles_executed = 0;         ///< tiles processed in compute phases
  std::uint64_t rows_processed = 0;         ///< output rows computed
  std::uint64_t busy_ns = 0;                ///< compute-loop busy wall time (ns)
  std::uint64_t engine_jobs = 0;            ///< batch-engine jobs completed
  std::uint64_t engine_job_ns = 0;          ///< total submit-to-done job latency (ns)
  std::uint64_t engine_queue_ns = 0;        ///< total submit-to-first-task wait (ns)
  std::uint64_t engine_queue_depth = 0;     ///< in-flight jobs summed over submits
  std::uint64_t engine_tasks = 0;           ///< tile tasks run on engine pool workers
  std::uint64_t engine_steals = 0;          ///< engine tasks taken from another worker's queue
  std::uint64_t engine_jobs_shed = 0;       ///< expensive jobs refused at the shed bound
  std::uint64_t engine_jobs_deferred = 0;   ///< expensive jobs demoted to the background lane
  std::uint64_t engine_jobs_expensive = 0;  ///< admitted jobs the cost model priced expensive
  std::uint64_t engine_deadline_misses = 0; ///< jobs cancelled past their submit() deadline
  std::uint64_t engine_jobs_stuck = 0;      ///< in-flight jobs flagged by the telemetry watchdog
  std::uint64_t engine_retries = 0;         ///< retry attempts (auto-replan + degraded-config)
  std::uint64_t engine_brownouts = 0;       ///< memory-governor transitions into brownout
  std::uint64_t engine_telemetry_samples = 0; ///< telemetry sampler ticks taken
  std::uint64_t autotune_explorations = 0;  ///< bandit draws that served a non-best arm
  std::uint64_t autotune_arm_switches = 0;  ///< fingerprints whose best arm changed
  std::uint64_t autotune_converged = 0;     ///< fingerprints frozen onto their best arm

  MetricCounters& operator+=(const MetricCounters& o) noexcept {
    flops += o.flops;
    accum_inserts += o.accum_inserts;
    accum_rejects += o.accum_rejects;
    hash_probes += o.hash_probes;
    hash_collisions += o.hash_collisions;
    marker_row_resets += o.marker_row_resets;
    marker_overflow_resets += o.marker_overflow_resets;
    explicit_reset_slots += o.explicit_reset_slots;
    accum_rehashes += o.accum_rehashes;
    accum_degrades += o.accum_degrades;
    binary_search_steps += o.binary_search_steps;
    hybrid_coiter_picks += o.hybrid_coiter_picks;
    hybrid_linear_picks += o.hybrid_linear_picks;
    blocked_dense_picks += o.blocked_dense_picks;
    blocked_sparse_picks += o.blocked_sparse_picks;
    tiles_created += o.tiles_created;
    tiles_executed += o.tiles_executed;
    rows_processed += o.rows_processed;
    busy_ns += o.busy_ns;
    engine_jobs += o.engine_jobs;
    engine_job_ns += o.engine_job_ns;
    engine_queue_ns += o.engine_queue_ns;
    engine_queue_depth += o.engine_queue_depth;
    engine_tasks += o.engine_tasks;
    engine_steals += o.engine_steals;
    engine_jobs_shed += o.engine_jobs_shed;
    engine_jobs_deferred += o.engine_jobs_deferred;
    engine_jobs_expensive += o.engine_jobs_expensive;
    engine_deadline_misses += o.engine_deadline_misses;
    engine_jobs_stuck += o.engine_jobs_stuck;
    engine_retries += o.engine_retries;
    engine_brownouts += o.engine_brownouts;
    engine_telemetry_samples += o.engine_telemetry_samples;
    autotune_explorations += o.autotune_explorations;
    autotune_arm_switches += o.autotune_arm_switches;
    autotune_converged += o.autotune_converged;
    return *this;
  }

  /// Field-wise saturating difference (used for before/after deltas; the
  /// counters are monotone between resets, so plain subtraction suffices
  /// unless a reset happened in between — saturate instead of wrapping).
  [[nodiscard]] MetricCounters minus(const MetricCounters& o) const noexcept {
    const auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : std::uint64_t{0};
    };
    MetricCounters d;
    d.flops = sub(flops, o.flops);
    d.accum_inserts = sub(accum_inserts, o.accum_inserts);
    d.accum_rejects = sub(accum_rejects, o.accum_rejects);
    d.hash_probes = sub(hash_probes, o.hash_probes);
    d.hash_collisions = sub(hash_collisions, o.hash_collisions);
    d.marker_row_resets = sub(marker_row_resets, o.marker_row_resets);
    d.marker_overflow_resets = sub(marker_overflow_resets, o.marker_overflow_resets);
    d.explicit_reset_slots = sub(explicit_reset_slots, o.explicit_reset_slots);
    d.accum_rehashes = sub(accum_rehashes, o.accum_rehashes);
    d.accum_degrades = sub(accum_degrades, o.accum_degrades);
    d.binary_search_steps = sub(binary_search_steps, o.binary_search_steps);
    d.hybrid_coiter_picks = sub(hybrid_coiter_picks, o.hybrid_coiter_picks);
    d.hybrid_linear_picks = sub(hybrid_linear_picks, o.hybrid_linear_picks);
    d.blocked_dense_picks = sub(blocked_dense_picks, o.blocked_dense_picks);
    d.blocked_sparse_picks = sub(blocked_sparse_picks, o.blocked_sparse_picks);
    d.tiles_created = sub(tiles_created, o.tiles_created);
    d.tiles_executed = sub(tiles_executed, o.tiles_executed);
    d.rows_processed = sub(rows_processed, o.rows_processed);
    d.busy_ns = sub(busy_ns, o.busy_ns);
    d.engine_jobs = sub(engine_jobs, o.engine_jobs);
    d.engine_job_ns = sub(engine_job_ns, o.engine_job_ns);
    d.engine_queue_ns = sub(engine_queue_ns, o.engine_queue_ns);
    d.engine_queue_depth = sub(engine_queue_depth, o.engine_queue_depth);
    d.engine_tasks = sub(engine_tasks, o.engine_tasks);
    d.engine_steals = sub(engine_steals, o.engine_steals);
    d.engine_jobs_shed = sub(engine_jobs_shed, o.engine_jobs_shed);
    d.engine_jobs_deferred = sub(engine_jobs_deferred, o.engine_jobs_deferred);
    d.engine_jobs_expensive = sub(engine_jobs_expensive, o.engine_jobs_expensive);
    d.engine_deadline_misses = sub(engine_deadline_misses, o.engine_deadline_misses);
    d.engine_jobs_stuck = sub(engine_jobs_stuck, o.engine_jobs_stuck);
    d.engine_retries = sub(engine_retries, o.engine_retries);
    d.engine_brownouts = sub(engine_brownouts, o.engine_brownouts);
    d.engine_telemetry_samples = sub(engine_telemetry_samples, o.engine_telemetry_samples);
    d.autotune_explorations = sub(autotune_explorations, o.autotune_explorations);
    d.autotune_arm_switches = sub(autotune_arm_switches, o.autotune_arm_switches);
    d.autotune_converged = sub(autotune_converged, o.autotune_converged);
    return d;
  }

  [[nodiscard]] bool all_zero() const noexcept {
    return flops == 0 && accum_inserts == 0 && accum_rejects == 0 &&
           hash_probes == 0 && hash_collisions == 0 && marker_row_resets == 0 &&
           marker_overflow_resets == 0 && explicit_reset_slots == 0 &&
           accum_rehashes == 0 && accum_degrades == 0 &&
           binary_search_steps == 0 && hybrid_coiter_picks == 0 &&
           hybrid_linear_picks == 0 && blocked_dense_picks == 0 &&
           blocked_sparse_picks == 0 && tiles_created == 0 &&
           tiles_executed == 0 && rows_processed == 0 && busy_ns == 0 &&
           engine_jobs == 0 && engine_job_ns == 0 && engine_queue_ns == 0 &&
           engine_queue_depth == 0 && engine_tasks == 0 &&
           engine_steals == 0 && engine_jobs_shed == 0 &&
           engine_jobs_deferred == 0 && engine_jobs_expensive == 0 &&
           engine_deadline_misses == 0 && engine_jobs_stuck == 0 &&
           engine_retries == 0 && engine_brownouts == 0 &&
           engine_telemetry_samples == 0 && autotune_explorations == 0 &&
           autotune_arm_switches == 0 && autotune_converged == 0;
  }
};

/// One thread's contribution. Thread ids are assigned in registration
/// order (first counter touched), not OpenMP thread numbers. `hw` carries
/// the thread's hardware-counter deltas (support/perf.hpp) when the
/// drivers could read them; all-zero otherwise.
struct ThreadMetrics {
  int thread_id = 0;
  MetricCounters counters;
  HwCounters hw;
};

/// Aggregate view over every registered thread. `hw_total.all_zero()`
/// means no hardware data was collected (perf unavailable or disabled) —
/// the JSON record then carries an explicit `"hw":null`.
struct MetricsSnapshot {
  MetricCounters total;
  HwCounters hw_total;
  std::vector<ThreadMetrics> per_thread;
};

/// The serving engine's latency-percentile block, serialized as the
/// nullable `engine_latency` record object (every key inside it carries
/// the `engine_latency_` prefix; docs/SERVING.md has the field glossary).
/// `present == false` — the default — emits `"engine_latency":null`, the
/// same nullable-object convention as `hw` and `imbalance`.
struct EngineLatencyRecord {
  bool present = false;
  std::uint64_t jobs = 0;      ///< completed jobs the percentiles cover
  double p50_ms = 0.0;         ///< submit-to-done latency percentiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double queue_p50_ms = 0.0;   ///< submit-to-first-task wait percentiles
  double queue_p99_ms = 0.0;
  double run_p50_ms = 0.0;     ///< first-task-to-done execute percentiles
  double run_p99_ms = 0.0;
};

/// One JSON-lines record; see docs/METRICS.md for the field-by-field
/// schema. `snapshot` should be a delta covering exactly `runs` kernel
/// executions.
struct MetricsRecord {
  std::string source;      ///< emitting binary or bench name
  std::string matrix;      ///< input identity (collection name or file)
  std::string config;      ///< Config::describe() of the measured config
  std::int64_t runs = 0;   ///< kernel executions covered by the counters
  double median_ms = 0.0;  ///< median per-run wall time
  EngineLatencyRecord engine_latency;  ///< null unless a serving bench fills it
};

#if TILQ_METRICS_ENABLED

namespace metrics_detail {
/// Fast-path runtime gate; initialized from the TILQ_METRICS environment
/// variable, overridable via set_metrics_enabled().
extern bool g_runtime_enabled;
/// Returns this thread's registered slot, creating it on first use.
[[nodiscard]] MetricCounters& thread_slot();
/// Hardware-counter slot riding along with the same registration.
[[nodiscard]] HwCounters& thread_hw_slot();
}  // namespace metrics_detail

/// True when counting is active (compiled in AND runtime-enabled).
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return metrics_detail::g_runtime_enabled;
}

/// This thread's counter slot, or nullptr when counting is inactive. Hot
/// code fetches the pointer once per row/tile/region and batches into it.
[[nodiscard]] inline MetricCounters* metrics_thread_counters() {
  return metrics_enabled() ? &metrics_detail::thread_slot() : nullptr;
}

/// This thread's hardware-delta slot, or nullptr when counting is
/// inactive. The drivers add their PerfScope deltas here so hardware
/// readings flow through the same snapshot/delta/record machinery as the
/// software counters.
[[nodiscard]] inline HwCounters* metrics_thread_hw() {
  return metrics_enabled() ? &metrics_detail::thread_hw_slot() : nullptr;
}

/// Runtime on/off switch (overrides the TILQ_METRICS environment variable).
void set_metrics_enabled(bool enabled) noexcept;

/// Zeroes every registered thread slot.
void metrics_reset() noexcept;

/// Sums every registered thread slot. Threads whose counters are all zero
/// are omitted from `per_thread`.
[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// Where emit_metrics_record() writes: "" means stdout, anything else is a
/// file path opened in append mode. Initialized from the TILQ_METRICS
/// value when it names a path (see docs/METRICS.md).
void set_metrics_sink_path(const std::string& path);
[[nodiscard]] std::string metrics_sink_path();

/// Serializes `record` + `snapshot` as one JSON line (schema version
/// kMetricsSchemaVersion) and writes it to the sink. No-op when metrics
/// are runtime-disabled.
void emit_metrics_record(const MetricsRecord& record,
                         const MetricsSnapshot& snapshot);

/// The JSON line emit_metrics_record() would write (exposed for tests).
[[nodiscard]] std::string format_metrics_record(const MetricsRecord& record,
                                                const MetricsSnapshot& snapshot);

#else  // !TILQ_METRICS_ENABLED — every hook is a no-op.

[[nodiscard]] constexpr bool metrics_enabled() noexcept { return false; }
[[nodiscard]] inline MetricCounters* metrics_thread_counters() noexcept {
  return nullptr;
}
[[nodiscard]] inline HwCounters* metrics_thread_hw() noexcept {
  return nullptr;
}
inline void set_metrics_enabled(bool) noexcept {}
inline void metrics_reset() noexcept {}
[[nodiscard]] inline MetricsSnapshot metrics_snapshot() { return {}; }
inline void set_metrics_sink_path(const std::string&) {}
[[nodiscard]] inline std::string metrics_sink_path() { return {}; }
inline void emit_metrics_record(const MetricsRecord&, const MetricsSnapshot&) {}
[[nodiscard]] inline std::string format_metrics_record(const MetricsRecord&,
                                                       const MetricsSnapshot&) {
  return {};
}

#endif  // TILQ_METRICS_ENABLED

/// Delta between two snapshots taken around a measured region: totals and
/// per-thread contributions (matched by thread id; threads registered
/// after `before` count from zero). Works in both build modes.
[[nodiscard]] MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                                            const MetricsSnapshot& after);

}  // namespace tilq
