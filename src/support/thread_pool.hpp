// Persistent work-stealing thread pool — the scheduling substrate of the
// batch engine (core/engine.hpp). Unlike the OpenMP worksharing loops in
// the drivers, which exist for the duration of one kernel call, the pool's
// workers live as long as the pool and interleave tasks from every
// in-flight query, so one skewed query cannot idle the machine while
// others have runnable tiles (Deveci et al.: task scheduling beats static
// loop parallelism at scale).
//
// Topology: three priority lanes (high / normal / background) of one deque
// per worker, each worker's lanes behind one mutex. External submissions
// land round-robin across the workers in the requested lane; a worker
// drains its own lanes in priority order, popping front-first within a
// lane (FIFO, preserving rough job order), and, when every own lane is
// empty, steals from the back of a sibling's deque — scanning lane-major,
// so a high-priority task anywhere in the pool runs before any worker
// touches background work. Scheduling is strict-priority but
// work-conserving: lower lanes only wait while higher-lane tasks are
// runnable, so nothing starves forever under finite load. A global
// condition variable parks idle workers; an atomic pending-task count
// keeps the sleep/wake handshake cheap.
//
// Thread-safety: submit(), stats(), size(), and drain() may be called from
// any thread at any time. Tasks must not throw — a throwing task is caught,
// counted in Stats::task_exceptions, and dropped (the engine wraps every
// task body in a ParallelGuard, so nothing in-tree ever trips this).
//
// Tasks MUST NOT enter OpenMP parallel regions (parallel_for, the planned
// drivers, exclusive_scan above its serial cutoff): a nested team on every
// pool worker oversubscribes the machine. The engine's tasks run the
// serial tile/compact bodies (detail::run_tile_task, exclusive_scan_serial)
// for exactly this reason.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tilq {

/// Scheduling lane of a submitted task. Lower values drain first; the
/// engine maps its cost-model admission verdicts onto these
/// (docs/SERVING.md).
enum class TaskPriority {
  kHigh = 0,        ///< latency-sensitive: runs before everything else
  kNormal = 1,      ///< the default lane; pre-lane behavior
  kBackground = 2,  ///< deferred bulk work: runs only when higher lanes are dry
};

/// Number of TaskPriority lanes.
inline constexpr int kTaskPriorityLanes = 3;

/// Fixed-size work-stealing pool. Construction spawns the workers;
/// destruction drains every queued task, then joins them.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `threads` <= 0 means max_threads() (the OpenMP-visible width).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker in the given priority
  /// lane. Never blocks; the engine enforces its own admission bound
  /// before calling this.
  void submit(Task task, TaskPriority priority = TaskPriority::kNormal);

  /// Blocks until every task submitted so far (and every task those tasks
  /// submit) has finished executing.
  void drain();

  /// Number of workers.
  [[nodiscard]] int size() const noexcept;

  /// Lifetime totals, readable at any time.
  struct Stats {
    std::uint64_t submitted = 0;        ///< tasks accepted by submit()
    std::uint64_t executed = 0;         ///< tasks run to completion
    std::uint64_t stolen = 0;           ///< executed tasks taken from a sibling's deque
    std::uint64_t task_exceptions = 0;  ///< tasks that threw (contract violation)
  };
  [[nodiscard]] Stats stats() const;

  /// One worker's slice of the lifetime totals — stats() is the sum of
  /// these across workers, so totals are conserved by construction.
  struct WorkerStats {
    std::uint64_t executed = 0;  ///< tasks this worker ran to completion
    std::uint64_t stolen = 0;    ///< of those, taken from a sibling's deque
  };

  /// Per-worker executed/stolen snapshot, indexed by worker. Relaxed
  /// atomic reads, no locks: safe to call from any thread at any time —
  /// the telemetry sampler (docs/TELEMETRY.md) polls this concurrently
  /// with a running workload.
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

  /// Index of the calling thread within its owning pool: [0, size()) on a
  /// worker, -1 on any thread the pool does not own. The engine keys
  /// per-worker workspace slots off this.
  [[nodiscard]] static int worker_index() noexcept;

 private:
  struct Worker {
    mutable std::mutex mutex;
    /// One deque per TaskPriority, all guarded by `mutex`.
    std::array<std::deque<Task>, kTaskPriorityLanes> lanes;
    /// Lifetime counters attributed to this worker (a steal is credited
    /// to the thief). Relaxed atomics, written only by the owning worker
    /// thread, so worker_stats() never takes `mutex`.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  void worker_loop(int index);
  bool next_task(int index, Task& out);
  bool try_pop(int index, Task& out);
  bool try_steal(int index, Task& out);

  // unique_ptr so Worker's mutex never has to move.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<std::int64_t> pending_{0};  ///< queued, not yet popped
  std::atomic<std::int64_t> running_{0};  ///< popped, still executing
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> exceptions_{0};
  std::atomic<std::uint64_t> round_robin_{0};

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;   ///< parks idle workers
  std::condition_variable drain_cv_;  ///< wakes drain() waiters
  bool stop_ = false;                 ///< guarded by wake_mutex_
};

}  // namespace tilq
