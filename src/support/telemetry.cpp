#include "support/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TILQ_TELEMETRY_HAVE_SOCKETS 1
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define TILQ_TELEMETRY_HAVE_SOCKETS 0
#endif

namespace tilq {

namespace {

std::uint64_t now_ns_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void append_event_json(std::string& out, const FlightEvent& e) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"seq\":%llu,\"t_ms\":%.3f,\"job\":%llu,\"event\":\"%s\","
                "\"lane\":%d,\"flops\":%lld}",
                static_cast<unsigned long long>(e.sequence),
                static_cast<double>(e.t_ns) / 1e6,
                static_cast<unsigned long long>(e.job), to_string(e.kind),
                e.lane, static_cast<long long>(e.flops));
  out += buf;
}

std::string events_to_json(const std::vector<FlightEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    append_event_json(out, e);
  }
  out += ']';
  return out;
}

// --- Prometheus text-format helpers -------------------------------------

void prom_header(std::string& out, const char* name, const char* type,
                 const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void prom_value_u64(std::string& out, const char* name, const char* type,
                    const char* help, std::uint64_t value) {
  prom_header(out, name, type, help);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += name;
  out += ' ';
  out += buf;
  out += '\n';
}

void prom_value_double(std::string& out, const char* name, const char* type,
                       const char* help, double value) {
  prom_header(out, name, type, help);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += name;
  out += ' ';
  out += buf;
  out += '\n';
}

void prom_labeled_u64(std::string& out, const char* name, const char* label,
                      std::size_t label_value, std::uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s{%s=\"%zu\"} %llu\n", name, label,
                label_value, static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

TelemetryOptions telemetry_options_from_env(TelemetryOptions base) {
  if (const char* raw = std::getenv("TILQ_TELEMETRY")) {
    std::string value(raw);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::tolower(c));
                   });
    if (value == "0" || value == "off" || value == "false") {
      base.enabled = false;
    } else if (value == "1" || value == "on" || value == "true") {
      base.enabled = true;
    } else {
      // Any other value is a sample interval in milliseconds.
      char* end = nullptr;
      const double interval = std::strtod(value.c_str(), &end);
      base.enabled = true;
      if (end != value.c_str() && interval > 0.0) {
        base.sample_interval_ms = interval;
      }
    }
  }
  if (const char* raw = std::getenv("TILQ_TELEMETRY_PORT")) {
    char* end = nullptr;
    const long port = std::strtol(raw, &end, 10);
    if (end != raw && port >= 0 && port <= 65535) {
      base.port = static_cast<int>(port);
    }
  }
  if (const char* raw = std::getenv("TILQ_TELEMETRY_DUMP")) {
    if (raw[0] != '\0') {
      base.dump_path = raw;
    }
  }
  return base;
}

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kSubmitted:
      return "submitted";
    case FlightEventKind::kPlanned:
      return "planned";
    case FlightEventKind::kAdmitted:
      return "admitted";
    case FlightEventKind::kLaneAssigned:
      return "lane-assigned";
    case FlightEventKind::kFirstTile:
      return "first-tile";
    case FlightEventKind::kFinalized:
      return "finalized";
    case FlightEventKind::kShed:
      return "shed";
    case FlightEventKind::kDeferred:
      return "deferred";
    case FlightEventKind::kDeadlineMiss:
      return "deadline-miss";
    case FlightEventKind::kStuck:
      return "stuck";
    case FlightEventKind::kRetried:
      return "retried";
    case FlightEventKind::kAutotuned:
      return "autotuned";
  }
  return "unknown";
}

// --- FlightRecorder ------------------------------------------------------

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(slots_.size() - 1),
      start_(std::chrono::steady_clock::now()) {}

void FlightRecorder::record(std::uint64_t job, FlightEventKind kind, int lane,
                            std::int64_t flops) noexcept {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(seq & mask_)];
  // Seqlock write protocol: invalidate, fill, publish. A reader that
  // observes tag != seq + 1 on either side of its field reads drops the
  // slot; all fields are atomics, so mixed old/new reads are races-free
  // garbage the tag check filters, never undefined behavior.
  slot.tag.store(0, std::memory_order_release);
  slot.t_ns.store(now_ns_since(start_), std::memory_order_relaxed);
  slot.job.store(job, std::memory_order_relaxed);
  const std::uint32_t meta =
      static_cast<std::uint32_t>(kind) |
      (static_cast<std::uint32_t>(lane + 1) << 8);
  slot.meta.store(meta, std::memory_order_relaxed);
  slot.flops.store(flops, std::memory_order_relaxed);
  slot.tag.store(seq + 1, std::memory_order_release);
}

bool FlightRecorder::read_slot(std::uint64_t sequence,
                               FlightEvent& out) const {
  const Slot& slot = slots_[static_cast<std::size_t>(sequence & mask_)];
  if (slot.tag.load(std::memory_order_acquire) != sequence + 1) {
    return false;
  }
  out.sequence = sequence;
  out.t_ns = slot.t_ns.load(std::memory_order_relaxed);
  out.job = slot.job.load(std::memory_order_relaxed);
  const std::uint32_t meta = slot.meta.load(std::memory_order_relaxed);
  out.kind = static_cast<FlightEventKind>(meta & 0xff);
  out.lane = static_cast<int>((meta >> 8) & 0xffffff) - 1;
  out.flops = slot.flops.load(std::memory_order_relaxed);
  // Re-validate after the field reads; the fence keeps them from sinking
  // past the second tag load.
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.tag.load(std::memory_order_relaxed) == sequence + 1;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::uint64_t head = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = head > cap ? head - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t seq = first; seq < head; ++seq) {
    FlightEvent e;
    if (read_slot(seq, e)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::events_for(std::uint64_t job) const {
  std::vector<FlightEvent> out = events();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [job](const FlightEvent& e) { return e.job != job; }),
            out.end());
  return out;
}

std::string FlightRecorder::to_json() const { return events_to_json(events()); }

std::string FlightRecorder::to_json(std::uint64_t job) const {
  return events_to_json(events_for(job));
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  return next_.load(std::memory_order_relaxed);
}

std::size_t FlightRecorder::capacity() const noexcept { return slots_.size(); }

// --- Prometheus rendering ------------------------------------------------

void render_prometheus(std::string& out) {
  const MetricsSnapshot snapshot = metrics_snapshot();
  const MetricCounters& c = snapshot.total;
  prom_value_u64(out, "tilq_flops", "counter",
                 "semiring multiplications performed", c.flops);
  prom_value_u64(out, "tilq_accum_inserts", "counter",
                 "accumulator inserts inside the mask", c.accum_inserts);
  prom_value_u64(out, "tilq_accum_rejects", "counter",
                 "accumulator probes outside the mask", c.accum_rejects);
  prom_value_u64(out, "tilq_hash_probes", "counter",
                 "hash probe-chain steps past the home slot", c.hash_probes);
  prom_value_u64(out, "tilq_hash_collisions", "counter",
                 "hash insertions that needed chain steps", c.hash_collisions);
  prom_value_u64(out, "tilq_marker_row_resets", "counter",
                 "marker-policy per-row epoch bumps", c.marker_row_resets);
  prom_value_u64(out, "tilq_marker_overflow_resets", "counter",
                 "whole-state clears on marker overflow",
                 c.marker_overflow_resets);
  prom_value_u64(out, "tilq_explicit_reset_slots", "counter",
                 "slots cleared by explicit resets", c.explicit_reset_slots);
  prom_value_u64(out, "tilq_accum_rehashes", "counter",
                 "hash grow-and-rehash saturation responses",
                 c.accum_rehashes);
  prom_value_u64(out, "tilq_accum_degrades", "counter",
                 "rows escalated to the dense fallback", c.accum_degrades);
  prom_value_u64(out, "tilq_binary_search_steps", "counter",
                 "halving steps in co-iteration searches",
                 c.binary_search_steps);
  prom_value_u64(out, "tilq_hybrid_coiter_picks", "counter",
                 "pairs where hybrid chose co-iteration",
                 c.hybrid_coiter_picks);
  prom_value_u64(out, "tilq_hybrid_linear_picks", "counter",
                 "pairs where hybrid chose linear scan",
                 c.hybrid_linear_picks);
  prom_value_u64(out, "tilq_blocked_dense_picks", "counter",
                 "blocked tile tasks run on the dense accumulator",
                 c.blocked_dense_picks);
  prom_value_u64(out, "tilq_blocked_sparse_picks", "counter",
                 "blocked tile tasks run on the sparse accumulator",
                 c.blocked_sparse_picks);
  prom_value_u64(out, "tilq_tiles_created", "counter",
                 "tiles produced by the tilers", c.tiles_created);
  prom_value_u64(out, "tilq_tiles_executed", "counter",
                 "tiles processed in compute phases", c.tiles_executed);
  prom_value_u64(out, "tilq_rows_processed", "counter",
                 "output rows computed", c.rows_processed);
  prom_value_u64(out, "tilq_busy_ns", "counter",
                 "compute-loop busy wall time in nanoseconds", c.busy_ns);
  prom_value_u64(out, "tilq_engine_jobs", "counter",
                 "batch-engine jobs completed", c.engine_jobs);
  prom_value_u64(out, "tilq_engine_job_ns", "counter",
                 "total submit-to-done job latency in nanoseconds",
                 c.engine_job_ns);
  prom_value_u64(out, "tilq_engine_queue_ns", "counter",
                 "total submit-to-first-task wait in nanoseconds",
                 c.engine_queue_ns);
  prom_value_u64(out, "tilq_engine_queue_depth", "counter",
                 "in-flight jobs summed over submits", c.engine_queue_depth);
  prom_value_u64(out, "tilq_engine_tasks", "counter",
                 "tile tasks run on engine pool workers", c.engine_tasks);
  prom_value_u64(out, "tilq_engine_steals", "counter",
                 "engine tasks taken from another worker", c.engine_steals);
  prom_value_u64(out, "tilq_engine_jobs_shed", "counter",
                 "expensive jobs refused at the shed bound",
                 c.engine_jobs_shed);
  prom_value_u64(out, "tilq_engine_jobs_deferred", "counter",
                 "expensive jobs demoted to the background lane",
                 c.engine_jobs_deferred);
  prom_value_u64(out, "tilq_engine_jobs_expensive", "counter",
                 "admitted jobs the cost model priced expensive",
                 c.engine_jobs_expensive);
  prom_value_u64(out, "tilq_engine_deadline_misses", "counter",
                 "jobs cancelled past their deadline",
                 c.engine_deadline_misses);
  prom_value_u64(out, "tilq_engine_jobs_stuck", "counter",
                 "in-flight jobs flagged by the watchdog",
                 c.engine_jobs_stuck);
  prom_value_u64(out, "tilq_engine_retries", "counter",
                 "retry attempts (auto-replan and degraded-config)",
                 c.engine_retries);
  prom_value_u64(out, "tilq_engine_brownouts", "counter",
                 "memory-governor transitions into brownout",
                 c.engine_brownouts);
  prom_value_u64(out, "tilq_engine_telemetry_samples", "counter",
                 "telemetry sampler ticks taken", c.engine_telemetry_samples);
  prom_value_u64(out, "tilq_autotune_explorations", "counter",
                 "bandit draws that served a non-best arm",
                 c.autotune_explorations);
  prom_value_u64(out, "tilq_autotune_arm_switches", "counter",
                 "fingerprints whose best arm changed",
                 c.autotune_arm_switches);
  prom_value_u64(out, "tilq_autotune_converged", "counter",
                 "fingerprints frozen onto their best arm",
                 c.autotune_converged);
}

// --- TelemetryHub --------------------------------------------------------

TelemetryHub::TelemetryHub(TelemetryOptions options, Collector collector,
                           HealthProvider health)
    : options_(std::move(options)),
      collector_(std::move(collector)),
      health_(std::move(health)),
      flight_(options_.flight_capacity),
      start_(std::chrono::steady_clock::now()) {
  options_.sample_interval_ms = std::max(1.0, options_.sample_interval_ms);
  options_.ring_capacity = std::max<std::size_t>(1, options_.ring_capacity);
  push_sample();  // /metrics and latest() are never empty
  sampler_ = std::thread([this] { sampler_loop(); });
  if (options_.port >= 0) {
    start_listener();
  }
}

TelemetryHub::~TelemetryHub() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) {
    sampler_.join();
  }
  if (server_.joinable()) {
    server_.join();  // the poll timeout notices stop_
  }
#if TILQ_TELEMETRY_HAVE_SOCKETS
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
#endif
  if (!options_.dump_path.empty()) {
    std::ofstream out(options_.dump_path);
    if (out) {
      out << flight_.to_json() << '\n';
    } else {
      std::fprintf(stderr, "tilq telemetry: cannot write flight dump to %s\n",
                   options_.dump_path.c_str());
    }
  }
}

const TelemetryOptions& TelemetryHub::options() const noexcept {
  return options_;
}

FlightRecorder& TelemetryHub::flight() noexcept { return flight_; }

const FlightRecorder& TelemetryHub::flight() const noexcept { return flight_; }

std::vector<TelemetrySample> TelemetryHub::samples() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  return {ring_.begin(), ring_.end()};
}

std::optional<TelemetrySample> TelemetryHub::latest() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  if (ring_.empty()) {
    return std::nullopt;
  }
  return ring_.back();
}

std::uint64_t TelemetryHub::sample_count() const noexcept {
  return sample_count_.load(std::memory_order_relaxed);
}

void TelemetryHub::sample_now() { push_sample(); }

EngineHealth TelemetryHub::health() const {
  return health_ ? health_() : EngineHealth::kHealthy;
}

int TelemetryHub::port() const noexcept {
  return port_.load(std::memory_order_acquire);
}

void TelemetryHub::push_sample() {
  TelemetrySample sample;
  {
    // Serialize collector calls: the engine's collector owns windowed
    // histogram baselines that must never run concurrently with
    // themselves.
    std::lock_guard<std::mutex> lock(collect_mutex_);
    if (collector_) {
      sample = collector_();
    }
  }
  sample.t_ms = static_cast<double>(now_ns_since(start_)) / 1e6;
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_.push_back(std::move(sample));
    while (ring_.size() > options_.ring_capacity) {
      ring_.pop_front();
    }
  }
  sample_count_.fetch_add(1, std::memory_order_relaxed);
#if TILQ_METRICS_ENABLED
  if (MetricCounters* const counters = metrics_thread_counters()) {
    ++counters->engine_telemetry_samples;
  }
#endif
}

void TelemetryHub::sampler_loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(options_.sample_interval_ms));
  std::unique_lock<std::mutex> lock(stop_mutex_);
  for (;;) {
    stop_cv_.wait_for(lock, interval, [this] {
      return stop_.load(std::memory_order_acquire);
    });
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    lock.unlock();
    push_sample();
    lock.lock();
  }
}

void TelemetryHub::render_prometheus(std::string& out) const {
  tilq::render_prometheus(out);  // the process-wide metrics-v3 counters
  std::optional<TelemetrySample> maybe = latest();
  const TelemetrySample s = maybe ? *maybe : TelemetrySample{};
  prom_value_u64(out, "tilq_engine_up", "gauge",
                 "1 while the engine and its telemetry hub are alive", 1);
  prom_value_double(out, "tilq_engine_uptime_seconds", "gauge",
                    "engine uptime at the last sample", s.uptime_ms / 1e3);
  prom_value_u64(out, "tilq_engine_in_flight", "gauge",
                 "jobs holding admission slots at the last sample",
                 s.in_flight);
  prom_value_u64(out, "tilq_engine_jobs_submitted", "counter",
                 "jobs ever submitted to this engine", s.jobs_submitted);
  prom_value_u64(out, "tilq_engine_jobs_completed", "counter",
                 "jobs finished successfully", s.jobs_completed);
  prom_value_u64(out, "tilq_engine_jobs_failed", "counter",
                 "jobs finished with an error", s.jobs_failed);
  prom_value_u64(out, "tilq_engine_plan_builds", "counter",
                 "plans built on a cache miss", s.plan_builds);
  prom_value_u64(out, "tilq_engine_plan_hits", "counter",
                 "plan-cache hits", s.plan_hits);
  prom_value_double(out, "tilq_engine_plan_hit_rate", "gauge",
                    "plan-cache hits per lookup at the last sample",
                    s.plan_hit_rate);
  prom_value_double(out, "tilq_engine_window_p50_ms", "gauge",
                    "windowed total-latency p50 at the last sample",
                    s.window.p50_ms);
  prom_value_double(out, "tilq_engine_window_p95_ms", "gauge",
                    "windowed total-latency p95 at the last sample",
                    s.window.p95_ms);
  prom_value_double(out, "tilq_engine_window_p99_ms", "gauge",
                    "windowed total-latency p99 at the last sample",
                    s.window.p99_ms);
  prom_value_double(out, "tilq_engine_queue_window_p99_ms", "gauge",
                    "windowed queue-latency p99 at the last sample",
                    s.queue_window.p99_ms);
  prom_value_u64(out, "tilq_engine_autotune_fingerprints", "gauge",
                 "bandit arm tables created (docs/TUNING.md)",
                 s.autotune_fingerprints);
  prom_value_u64(out, "tilq_engine_autotune_explorations", "counter",
                 "bandit draws that served a non-best arm",
                 s.autotune_explorations);
  prom_value_u64(out, "tilq_engine_autotune_arm_switches", "counter",
                 "fingerprints whose best arm changed",
                 s.autotune_arm_switches);
  prom_value_u64(out, "tilq_engine_autotune_converged", "gauge",
                 "fingerprints frozen onto their best arm",
                 s.autotune_converged);
  prom_value_u64(out, "tilq_engine_flight_events", "counter",
                 "flight-recorder events ever recorded", flight_.recorded());
  prom_value_u64(out, "tilq_engine_health", "gauge",
                 "engine health state (0 healthy, 1 degraded, 2 browned-out)",
                 static_cast<std::uint64_t>(static_cast<int>(s.health)));
  prom_value_u64(out, "tilq_engine_memory_bytes", "gauge",
                 "memory-governor ledger at the last sample",
                 s.memory_usage_bytes);
  prom_value_u64(out, "tilq_engine_memory_high_water_bytes", "gauge",
                 "memory-governor high-water mark",
                 s.memory_high_water_bytes);
  prom_value_u64(out, "tilq_engine_memory_budget_bytes", "gauge",
                 "configured memory budget (0 = unlimited)",
                 s.memory_budget_bytes);
  prom_header(out, "tilq_engine_worker_executed", "counter",
              "tasks run to completion, per pool worker");
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    prom_labeled_u64(out, "tilq_engine_worker_executed", "worker", i,
                     s.workers[i].executed);
  }
  prom_header(out, "tilq_engine_worker_stolen", "counter",
              "tasks stolen from a sibling, per pool worker");
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    prom_labeled_u64(out, "tilq_engine_worker_stolen", "worker", i,
                     s.workers[i].stolen);
  }
}

// --- HTTP listener -------------------------------------------------------

void TelemetryHub::start_listener() {
#if TILQ_TELEMETRY_HAVE_SOCKETS
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "tilq telemetry: socket() failed; exporter off\n");
    return;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    std::fprintf(stderr,
                 "tilq telemetry: cannot listen on port %d; exporter off\n",
                 options_.port);
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_.store(static_cast<int>(ntohs(bound.sin_port)),
                std::memory_order_release);
  }
  listen_fd_ = fd;
  server_ = std::thread([this] { serve_loop(); });
#else
  std::fprintf(stderr,
               "tilq telemetry: no socket support on this platform\n");
#endif
}

void TelemetryHub::serve_loop() {
#if TILQ_TELEMETRY_HAVE_SOCKETS
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd waiter{};
    waiter.fd = listen_fd_;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, 200);  // ms; bounds shutdown delay
    if (ready <= 0) {
      continue;
    }
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    handle_client(client);
    ::close(client);
  }
#endif
}

void TelemetryHub::handle_client(int client_fd) const {
#if TILQ_TELEMETRY_HAVE_SOCKETS
  char request[2048];
  const auto got = ::recv(client_fd, request, sizeof request - 1, 0);
  if (got <= 0) {
    return;
  }
  request[got] = '\0';
  // Only the request line matters: "GET <path> HTTP/1.x".
  std::string path = "/";
  if (std::strncmp(request, "GET ", 4) == 0) {
    const char* begin = request + 4;
    const char* end = std::strchr(begin, ' ');
    if (end != nullptr) {
      path.assign(begin, end);
    }
  }
  std::string body;
  const char* status = "200 OK";
  const char* content_type = "text/plain; charset=utf-8";
  if (path == "/metrics") {
    render_prometheus(body);
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    // 200 + state name while serving; 503 once the memory governor browned
    // the engine out, so load balancers stop routing to it
    // (docs/ROBUSTNESS.md). "ok" is kept in the healthy body for pre-
    // resilience probes that grep for it.
    const EngineHealth h = health();
    switch (h) {
      case EngineHealth::kHealthy:
        body = "ok\n";
        break;
      case EngineHealth::kDegraded:
        body = std::string(to_string(h)) + "\n";
        break;
      case EngineHealth::kBrownedOut:
        status = "503 Service Unavailable";
        body = std::string(to_string(h)) + "\n";
        break;
    }
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  char header[256];
  std::snprintf(header, sizeof header,
                "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, content_type, body.size());
  std::string response = header;
  response += body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    const auto n =
        ::send(client_fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) {
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
#else
  (void)client_fd;
#endif
}

}  // namespace tilq
