// Parallel exception safety. An exception that escapes the body of an
// OpenMP worksharing construct is undefined behavior — with libgomp it is
// std::terminate, taking the whole process down. ParallelGuard gives every
// parallel region in tilq a uniform containment protocol instead:
//
//   ParallelGuard guard;
//   #pragma omp parallel
//   {
//     guard.run([&] { ... per-thread setup ... });
//   #pragma omp for nowait
//     for (...) {
//       if (guard.cancelled()) continue;   // cooperative cancellation
//       guard.run([&] { ... tile work ... });
//     }
//   }
//   guard.rethrow_if_failed();             // after the join
//
// The FIRST exception thrown in any worker is captured as a
// std::exception_ptr; an atomic flag makes the remaining tile iterations
// no-ops (cheap relaxed load per task, not per row), and the join point
// rethrows on the calling thread. Exceptions from the tilq taxonomy
// (support/errors.hpp) pass through with their dynamic type intact;
// std::bad_alloc becomes CapacityError and anything else is wrapped in
// InternalError carrying the original what() — so every public entry point
// throws tilq::Error-classified exceptions, never terminates.
//
// Note the loop still ENCOUNTERS the worksharing construct after a failure
// (OpenMP requires all threads of a team to meet the same worksharing
// constructs); only the body is skipped.
#pragma once

#include <atomic>
#include <exception>
#include <mutex>
#include <string>
#include <utility>

#include "support/errors.hpp"

namespace tilq {

class ParallelGuard {
 public:
  ParallelGuard() = default;
  ParallelGuard(const ParallelGuard&) = delete;
  ParallelGuard& operator=(const ParallelGuard&) = delete;

  /// Runs `body` and captures any escaping exception. Safe to call from
  /// inside OpenMP constructs; never lets an exception propagate.
  template <class Body>
  void run(Body&& body) noexcept {
    if (cancelled()) {
      return;
    }
    try {
      std::forward<Body>(body)();
    } catch (...) {
      capture(std::current_exception());
    }
  }

  /// True once any worker failed. A single relaxed atomic load — cheap
  /// enough to poll once per tile (do not poll per accumulator write).
  [[nodiscard]] bool cancelled() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }

  /// Records `error` if it is the first failure; later failures only keep
  /// the cancellation flag set. Thread-safe.
  void capture(std::exception_ptr error) noexcept {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (first_ == nullptr) {
        first_ = std::move(error);
      }
    }
    failed_.store(true, std::memory_order_release);
  }

  /// The first captured exception, or nullptr when no worker failed.
  /// Retry layers (the batch engine) inspect this to classify a failure —
  /// retryable StaleError/CapacityError vs terminal — without consuming it.
  [[nodiscard]] std::exception_ptr failure() const noexcept {
    if (!failed_.load(std::memory_order_acquire)) {
      return nullptr;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    return first_;
  }

  /// Clears the captured failure and the cancellation flag so the guard can
  /// arbitrate a fresh attempt. Call only between attempts, when no worker
  /// can still be inside run() — the batch engine's retry path calls it
  /// from the finalizing task, after every tile of the failed attempt has
  /// finished.
  void reset() noexcept {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      first_ = nullptr;
    }
    failed_.store(false, std::memory_order_release);
  }

  /// Call on the calling thread after the parallel region joined. Rethrows
  /// the first captured exception, normalized into the tilq taxonomy (see
  /// the header comment). No-op when every worker succeeded.
  void rethrow_if_failed() {
    if (!failed_.load(std::memory_order_acquire)) {
      return;
    }
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      error = first_;
    }
    if (error == nullptr) {
      throw InternalError("ParallelGuard: worker failed without an exception");
    }
    try {
      std::rethrow_exception(error);
    } catch (const Error&) {
      throw;  // already classified — preserve the dynamic type
    } catch (const std::bad_alloc&) {
      throw CapacityError("allocation failed inside a parallel worker");
    } catch (const std::exception& e) {
      throw InternalError(
          std::string("exception escaped a parallel worker: ") + e.what());
    } catch (...) {
      throw InternalError("unknown exception escaped a parallel worker");
    }
  }

 private:
  std::atomic<bool> failed_{false};
  mutable std::mutex mutex_;
  std::exception_ptr first_;
};

}  // namespace tilq
