// Thin OpenMP helpers shared by the sparse substrate and the core kernels:
// a parallel for over an index range and a parallel exclusive prefix sum
// (used to compact masked-SpGEMM output rows and to build CSR row pointers).
#pragma once

#include <omp.h>

#include <cstdint>
#include <span>
#include <vector>

#include "support/common.hpp"
#include "support/panic.hpp"

namespace tilq {

/// Applies `body(i)` for every i in [begin, end), in parallel with a static
/// schedule. Intended for regular per-row work; irregular work goes through
/// the tile drivers in core/plan.hpp instead. A throwing body is safe:
/// the first exception is captured (remaining iterations become no-ops) and
/// rethrown here after the join instead of terminating the process.
template <class I, class Body>
void parallel_for(I begin, I end, Body&& body) {
  ParallelGuard guard;
#pragma omp parallel for schedule(static)
  for (I i = begin; i < end; ++i) {
    if (guard.cancelled()) {
      continue;
    }
    guard.run([&] { body(i); });
  }
  guard.rethrow_if_failed();
}

/// Exclusive prefix sum of `counts` into `offsets` (sized counts.size() + 1);
/// returns the total. Two-pass blocked algorithm: per-thread partial sums,
/// then a sequential scan over the (few) block totals, then a parallel
/// fix-up. Falls back to a serial scan for small inputs.
template <class I>
I exclusive_scan(std::span<const I> counts, std::span<I> offsets) {
  require(offsets.size() == counts.size() + 1,
          "exclusive_scan: offsets must have counts.size() + 1 elements");
  const std::size_t n = counts.size();
  constexpr std::size_t kSerialCutoff = 1 << 14;
  const int threads = omp_get_max_threads();
  if (n < kSerialCutoff || threads == 1) {
    I running{};
    for (std::size_t i = 0; i < n; ++i) {
      offsets[i] = running;
      running += counts[i];
    }
    offsets[n] = running;
    return running;
  }

  const std::size_t blocks = static_cast<std::size_t>(threads);
  const std::size_t block_size = ceil_div(n, blocks);
  std::vector<I> block_totals(blocks, I{});

#pragma omp parallel num_threads(threads)
  {
    const auto block = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t lo = block * block_size;
    const std::size_t hi = std::min(n, lo + block_size);
    I running{};
    for (std::size_t i = lo; i < hi; ++i) {
      offsets[i] = running;
      running += counts[i];
    }
    if (lo < hi) {
      block_totals[block] = running;
    }

#pragma omp barrier
#pragma omp single
    {
      I carry{};
      for (std::size_t b = 0; b < blocks; ++b) {
        const I total = block_totals[b];
        block_totals[b] = carry;
        carry += total;
      }
      offsets[n] = carry;
    }

    const I base = block_totals[block];
    for (std::size_t i = lo; i < hi; ++i) {
      offsets[i] += base;
    }
  }
  return offsets[n];
}

/// Convenience overload building the offsets vector.
template <class I>
std::vector<I> exclusive_scan(std::span<const I> counts) {
  std::vector<I> offsets(counts.size() + 1);
  exclusive_scan(counts, std::span<I>(offsets));
  return offsets;
}

/// Guaranteed-serial exclusive prefix sum: same contract as exclusive_scan
/// but never opens an OpenMP region. For callers that already run on a
/// worker of the batch engine's thread pool (core/engine.hpp), where a
/// nested OpenMP team would oversubscribe the machine.
template <class I>
I exclusive_scan_serial(std::span<const I> counts, std::span<I> offsets) {
  require(offsets.size() == counts.size() + 1,
          "exclusive_scan_serial: offsets must have counts.size() + 1 "
          "elements");
  I running{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = running;
    running += counts[i];
  }
  offsets[counts.size()] = running;
  return running;
}

}  // namespace tilq
