// The tilq error taxonomy (docs/ROBUSTNESS.md). Every exception the library
// throws derives from one of five kinds, each mapped onto the standard
// exception it always was — existing `catch (std::invalid_argument&)` /
// `catch (std::runtime_error&)` sites keep working — plus the `tilq::Error`
// mixin, so callers can handle the whole taxonomy with one catch clause and
// branch on kind():
//
//   Precondition — caller handed the library invalid input (bad shapes,
//                  corrupt structure, invalid enum values). Retrying with
//                  the same arguments will fail again.
//   Capacity     — a resource bound was exceeded at run time (allocation
//                  failure, hash-accumulator saturation past its growth
//                  bound). Retrying with a smaller problem or a different
//                  configuration may succeed.
//   Stale        — cached derived state (a Plan) no longer matches its
//                  inputs; rebuild the state and retry.
//   Io           — the outside world misbehaved (malformed files, unopenable
//                  paths).
//   Internal     — a library invariant broke, or a foreign exception escaped
//                  a parallel worker. Always a bug report.
//
// Kept dependency-free (standard headers only): support/common.hpp includes
// this header, and every other tilq header may include common.hpp.
#pragma once

#include <stdexcept>
#include <string>

namespace tilq {

/// Coarse classification of every tilq exception; see the header comment
/// for the retry semantics each kind implies.
enum class ErrorKind {
  kPrecondition,
  kCapacity,
  kStale,
  kIo,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kPrecondition:
      return "precondition";
    case ErrorKind::kCapacity:
      return "capacity";
    case ErrorKind::kStale:
      return "stale";
    case ErrorKind::kIo:
      return "io";
    case ErrorKind::kInternal:
      return "internal";
  }
  return "?";
}

/// Taxonomy root. Deliberately NOT derived from std::exception: the
/// concrete error types inherit their std::exception base through the
/// standard hierarchy (invalid_argument / runtime_error), and a second
/// path would make `catch (const std::exception&)` ambiguous.
class Error {
 public:
  virtual ~Error() = default;

  [[nodiscard]] virtual ErrorKind kind() const noexcept = 0;
  /// The what() string, reachable when the handler caught `const Error&`.
  [[nodiscard]] virtual const char* message() const noexcept = 0;

 protected:
  Error() = default;
  Error(const Error&) = default;
  Error& operator=(const Error&) = default;
};

/// Thrown when a tilq precondition on user-supplied data fails (shape
/// mismatches, unsorted input where sorted is required, ...).
class PreconditionError : public std::invalid_argument, public Error {
 public:
  using std::invalid_argument::invalid_argument;
  [[nodiscard]] ErrorKind kind() const noexcept override {
    return ErrorKind::kPrecondition;
  }
  [[nodiscard]] const char* message() const noexcept override { return what(); }
};

/// Thrown when a runtime resource bound is exceeded: allocation failure,
/// an accumulator saturated beyond its growth bound, an injected
/// capacity fault (support/fault.hpp).
class CapacityError : public std::runtime_error, public Error {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] ErrorKind kind() const noexcept override {
    return ErrorKind::kCapacity;
  }
  [[nodiscard]] const char* message() const noexcept override { return what(); }
};

/// Thrown when cached derived state no longer matches the inputs it was
/// derived from. A PreconditionError subtype (calling execute() with
/// operands the plan was not built for IS a precondition violation) so
/// pre-taxonomy catch sites keep working; kind() still reports kStale.
class StaleError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
  [[nodiscard]] ErrorKind kind() const noexcept override {
    return ErrorKind::kStale;
  }
};

/// Thrown on I/O failures: malformed input files, unopenable paths.
class IoError : public std::runtime_error, public Error {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] ErrorKind kind() const noexcept override {
    return ErrorKind::kIo;
  }
  [[nodiscard]] const char* message() const noexcept override { return what(); }
};

/// Thrown when a library invariant breaks or a foreign exception escapes a
/// parallel worker (support/panic.hpp wraps it). Always a bug report.
class InternalError : public std::runtime_error, public Error {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] ErrorKind kind() const noexcept override {
    return ErrorKind::kInternal;
  }
  [[nodiscard]] const char* message() const noexcept override { return what(); }
};

}  // namespace tilq
