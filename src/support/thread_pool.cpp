#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/env.hpp"
#include "support/metrics.hpp"

namespace tilq {

namespace {
// Index of the current thread within the pool that owns it; -1 elsewhere.
// A thread belongs to at most one pool for its whole lifetime, so a plain
// thread_local is unambiguous.
thread_local int t_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads > 0 ? threads : max_threads());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(Task task, TaskPriority priority) {
  const auto slot = static_cast<std::size_t>(
      round_robin_.fetch_add(1, std::memory_order_relaxed) % workers_.size());
  const auto lane = static_cast<std::size_t>(priority);
  {
    std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
    workers_[slot]->lanes[lane].push_back(std::move(task));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Taking (and dropping) the wake mutex orders the pending_ increment
    // against a worker's predicate check, closing the lost-wakeup window.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  drain_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0 &&
           running_.load(std::memory_order_acquire) == 0;
  });
}

int ThreadPool::size() const noexcept {
  return static_cast<int>(workers_.size());
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  // Totals are the sum of the per-worker counters, so stats() and
  // worker_stats() can never disagree on the grand total.
  for (const std::unique_ptr<Worker>& w : workers_) {
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.stolen += w->stolen.load(std::memory_order_relaxed);
  }
  s.task_exceptions = exceptions_.load(std::memory_order_relaxed);
  return s;
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const std::unique_ptr<Worker>& w : workers_) {
    WorkerStats ws;
    ws.executed = w->executed.load(std::memory_order_relaxed);
    ws.stolen = w->stolen.load(std::memory_order_relaxed);
    out.push_back(ws);
  }
  return out;
}

int ThreadPool::worker_index() noexcept { return t_worker_index; }

void ThreadPool::worker_loop(int index) {
  t_worker_index = index;
  for (;;) {
    Task task;
    if (!next_task(index, task)) {
      return;  // stop requested and every queue is empty
    }
    try {
      task();
    } catch (...) {
      // Contract violation (tasks must not throw); swallow so one bad task
      // cannot take the pool down, and keep it observable in stats().
      exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    task = nullptr;  // release captured state before reporting completion
    workers_[static_cast<std::size_t>(index)]->executed.fetch_add(
        1, std::memory_order_relaxed);
#if TILQ_METRICS_ENABLED
    if (MetricCounters* const counters = metrics_thread_counters()) {
      ++counters->engine_tasks;
    }
#endif
    running_.fetch_sub(1, std::memory_order_release);
    if (pending_.load(std::memory_order_acquire) == 0 &&
        running_.load(std::memory_order_acquire) == 0) {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      drain_cv_.notify_all();
    }
  }
}

bool ThreadPool::next_task(int index, Task& out) {
  for (;;) {
    if (try_pop(index, out)) {
      return true;
    }
    if (try_steal(index, out)) {
      return true;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [&] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) {
      return false;  // shutdown drains queued tasks before exiting
    }
  }
}

bool ThreadPool::try_pop(int index, Task& out) {
  Worker& w = *workers_[static_cast<std::size_t>(index)];
  std::lock_guard<std::mutex> lock(w.mutex);
  for (auto& lane : w.lanes) {  // priority order: high drains first
    if (lane.empty()) {
      continue;
    }
    out = std::move(lane.front());
    lane.pop_front();
    // running_ rises before pending_ falls so drain() can never observe the
    // transient (0, 0) while this task is in hand.
    running_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_sub(1, std::memory_order_release);
    return true;
  }
  return false;
}

bool ThreadPool::try_steal(int index, Task& out) {
  const int n = size();
  // Lane-major: exhaust every victim's high lane before touching any
  // normal lane, so priority holds pool-wide, not just per-worker.
  for (int lane = 0; lane < kTaskPriorityLanes; ++lane) {
    for (int step = 1; step < n; ++step) {
      Worker& victim = *workers_[static_cast<std::size_t>((index + step) % n)];
      std::lock_guard<std::mutex> lock(victim.mutex);
      auto& tasks = victim.lanes[static_cast<std::size_t>(lane)];
      if (tasks.empty()) {
        continue;
      }
      out = std::move(tasks.back());
      tasks.pop_back();
      running_.fetch_add(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_release);
      workers_[static_cast<std::size_t>(index)]->stolen.fetch_add(
          1, std::memory_order_relaxed);
#if TILQ_METRICS_ENABLED
      if (MetricCounters* const counters = metrics_thread_counters()) {
        ++counters->engine_steals;
      }
#endif
      return true;
    }
  }
  return false;
}

}  // namespace tilq
