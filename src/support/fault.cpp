#include "support/fault.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/errors.hpp"

namespace tilq {

const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kPoolAllocation:
      return "pool-alloc";
    case FaultSite::kMarkerWrap:
      return "marker-wrap";
    case FaultSite::kHashSaturation:
      return "hash-sat";
    case FaultSite::kPlanFingerprint:
      return "plan-fingerprint";
    case FaultSite::kEngineSubmitAlloc:
      return "engine-submit-alloc";
    case FaultSite::kEnginePoolReserve:
      return "engine-pool-reserve";
    case FaultSite::kEngineRetryReplan:
      return "engine-retry-replan";
  }
  return "?";
}

namespace fault {
namespace {

struct SiteState {
  /// Probes left before firing; only meaningful while the armed bit is set
  /// and rate_threshold is zero (one-shot mode).
  std::atomic<std::uint64_t> countdown{0};
  /// Rate mode: fire when hash(seed, site, probe index) < rate_threshold.
  /// Zero means one-shot mode; rates too small to represent clamp to 1.
  std::atomic<std::uint64_t> rate_threshold{0};
  /// Monotone probe index for rate-mode decisions; reset by set_seed and
  /// disarm_all so equal seeds replay equal fire schedules.
  std::atomic<std::uint64_t> probe_index{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> triggered{0};
};

SiteState g_sites[kFaultSiteCount];

/// Bit i set <=> site i armed. The disarmed fast path in should_fire() is a
/// single relaxed load of this mask.
std::atomic<std::uint32_t> g_armed_mask{0};

std::atomic<std::uint64_t> g_seed{0};

constexpr std::uint32_t bit(FaultSite site) noexcept {
  return std::uint32_t{1} << static_cast<unsigned>(site);
}

SiteState& state(FaultSite site) noexcept {
  return g_sites[static_cast<std::size_t>(site)];
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool parse_site(std::string_view name, FaultSite& out) noexcept {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == to_string(site)) {
      out = site;
      return true;
    }
  }
  return false;
}

/// TILQ_FAULT is parsed during static initialization, mirroring the
/// TILQ_METRICS / TILQ_TRACE / TILQ_PERF env gates. A malformed spec here
/// must not throw out of a static initializer, so the error is reported as
/// a one-time stderr notice naming the bad spec and the faults stay
/// disarmed (tests use configure(), which does throw).
bool init_from_env() noexcept {
  if (const char* seed = std::getenv("TILQ_FAULT_SEED");
      seed != nullptr && seed[0] != '\0') {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(seed, &end, 10);
    if (end != nullptr && *end == '\0') {
      set_seed(static_cast<std::uint64_t>(value));
    } else {
      std::fprintf(stderr,
                   "tilq: ignoring malformed TILQ_FAULT_SEED '%s' "
                   "(expected a decimal integer)\n",
                   seed);
    }
  }
  const char* value = std::getenv("TILQ_FAULT");
  if (value == nullptr || value[0] == '\0') {
    return false;
  }
  try {
    configure(value);
  } catch (const Error& e) {
    disarm_all();
    std::fprintf(stderr, "tilq: ignoring TILQ_FAULT='%s': %s\n", value,
                 e.message());
    return false;
  } catch (...) {
    disarm_all();
    std::fprintf(stderr, "tilq: ignoring malformed TILQ_FAULT='%s'\n", value);
    return false;
  }
  return true;
}

[[maybe_unused]] const bool g_env_initialized = init_from_env();

}  // namespace

void arm(FaultSite site, std::uint64_t nth) noexcept {
  SiteState& s = state(site);
  s.rate_threshold.store(0, std::memory_order_relaxed);
  s.countdown.store(nth == 0 ? 1 : nth, std::memory_order_relaxed);
  g_armed_mask.fetch_or(bit(site), std::memory_order_release);
}

void arm_rate(FaultSite site, double rate) noexcept {
  if (!(rate > 0.0)) {
    disarm(site);
    return;
  }
  SiteState& s = state(site);
  std::uint64_t threshold = ~std::uint64_t{0};
  if (rate < 1.0) {
    // rate * 2^64, clamped so representable-but-tiny rates still fire
    // eventually instead of silently rounding to never.
    const double scaled = rate * 18446744073709551616.0;  // 2^64
    threshold = scaled >= 18446744073709549568.0
                    ? ~std::uint64_t{0}
                    : static_cast<std::uint64_t>(scaled);
    if (threshold == 0) {
      threshold = 1;
    }
  }
  s.countdown.store(0, std::memory_order_relaxed);
  s.probe_index.store(0, std::memory_order_relaxed);
  s.rate_threshold.store(threshold, std::memory_order_relaxed);
  g_armed_mask.fetch_or(bit(site), std::memory_order_release);
}

void set_seed(std::uint64_t seed) noexcept {
  g_seed.store(seed, std::memory_order_relaxed);
  for (SiteState& s : g_sites) {
    s.probe_index.store(0, std::memory_order_relaxed);
  }
}

void disarm(FaultSite site) noexcept {
  g_armed_mask.fetch_and(~bit(site), std::memory_order_release);
  state(site).countdown.store(0, std::memory_order_relaxed);
  state(site).rate_threshold.store(0, std::memory_order_relaxed);
}

void disarm_all() noexcept {
  g_armed_mask.store(0, std::memory_order_release);
  for (SiteState& s : g_sites) {
    s.countdown.store(0, std::memory_order_relaxed);
    s.rate_threshold.store(0, std::memory_order_relaxed);
    s.probe_index.store(0, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
    s.triggered.store(0, std::memory_order_relaxed);
  }
}

bool armed(FaultSite site) noexcept {
  return (g_armed_mask.load(std::memory_order_acquire) & bit(site)) != 0;
}

std::uint64_t hits(FaultSite site) noexcept {
  return state(site).hits.load(std::memory_order_relaxed);
}

std::uint64_t triggered(FaultSite site) noexcept {
  return state(site).triggered.load(std::memory_order_relaxed);
}

void configure(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    if (!entry.empty()) {
      std::string_view name = entry;
      std::uint64_t nth = 1;
      double rate = -1.0;
      if (const std::size_t at = entry.find('@');
          at != std::string_view::npos) {
        name = entry.substr(0, at);
        const std::string rate_text(entry.substr(at + 1));
        if (rate_text.empty()) {
          throw PreconditionError(
              "TILQ_FAULT: missing rate after '@' in spec entry '" +
              std::string(entry) + "'");
        }
        char* end = nullptr;
        rate = std::strtod(rate_text.c_str(), &end);
        if (end == nullptr || *end != '\0' || !(rate > 0.0) || rate > 1.0) {
          throw PreconditionError(
              "TILQ_FAULT: rate in '" + std::string(entry) +
              "' must be a decimal in (0, 1]");
        }
      } else if (const std::size_t colon = entry.find(':');
                 colon != std::string_view::npos) {
        name = entry.substr(0, colon);
        const std::string_view count = entry.substr(colon + 1);
        if (count.empty()) {
          throw PreconditionError(
              "TILQ_FAULT: missing count after ':' in spec entry '" +
              std::string(entry) + "'");
        }
        nth = 0;
        for (const char c : count) {
          if (c < '0' || c > '9') {
            throw PreconditionError(
                "TILQ_FAULT: count in '" + std::string(entry) +
                "' must be a positive integer");
          }
          nth = nth * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (nth == 0) {
          throw PreconditionError("TILQ_FAULT: count in '" +
                                  std::string(entry) + "' must be >= 1");
        }
      }
      FaultSite site{};
      if (!parse_site(name, site)) {
        throw PreconditionError(
            std::string("TILQ_FAULT: unknown fault site '") +
            std::string(name) +
            "' (expected pool-alloc, marker-wrap, hash-sat, "
            "plan-fingerprint, engine-submit-alloc, engine-pool-reserve, or "
            "engine-retry-replan)");
      }
      if (rate > 0.0) {
        arm_rate(site, rate);
      } else {
        arm(site, nth);
      }
    }
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
}

bool should_fire(FaultSite site) noexcept {
  if ((g_armed_mask.load(std::memory_order_relaxed) & bit(site)) == 0) {
    return false;  // the everything-off fast path: one relaxed load
  }
  SiteState& s = state(site);
  s.hits.fetch_add(1, std::memory_order_relaxed);
  if (const std::uint64_t threshold =
          s.rate_threshold.load(std::memory_order_relaxed);
      threshold != 0) {
    // Rate mode: the decision depends only on (seed, site, probe index), so
    // a rerun with the same seed and per-site probe sequence replays the
    // same fire schedule regardless of thread interleaving elsewhere.
    const std::uint64_t index =
        s.probe_index.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seed = g_seed.load(std::memory_order_relaxed);
    const std::uint64_t draw = splitmix64(
        seed ^ splitmix64(static_cast<std::uint64_t>(site) + 1) ^ index);
    if (draw < threshold) {
      s.triggered.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  // fetch_sub decides a unique winner when several threads probe the armed
  // site concurrently: exactly one observes the transition to zero.
  const std::uint64_t before =
      s.countdown.fetch_sub(1, std::memory_order_acq_rel);
  if (before == 1) {
    disarm(site);
    s.triggered.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (before == 0) {
    // A racing thread already consumed the trigger; undo our decrement so
    // the counter does not wrap further.
    s.countdown.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

}  // namespace fault
}  // namespace tilq
