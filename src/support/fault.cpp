#include "support/fault.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "support/errors.hpp"

namespace tilq {

const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kPoolAllocation:
      return "pool-alloc";
    case FaultSite::kMarkerWrap:
      return "marker-wrap";
    case FaultSite::kHashSaturation:
      return "hash-sat";
    case FaultSite::kPlanFingerprint:
      return "plan-fingerprint";
  }
  return "?";
}

namespace fault {
namespace {

struct SiteState {
  /// Probes left before firing; only meaningful while the armed bit is set.
  std::atomic<std::uint64_t> countdown{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> triggered{0};
};

SiteState g_sites[kFaultSiteCount];

/// Bit i set <=> site i armed. The disarmed fast path in should_fire() is a
/// single relaxed load of this mask.
std::atomic<std::uint32_t> g_armed_mask{0};

constexpr std::uint32_t bit(FaultSite site) noexcept {
  return std::uint32_t{1} << static_cast<unsigned>(site);
}

SiteState& state(FaultSite site) noexcept {
  return g_sites[static_cast<std::size_t>(site)];
}

bool parse_site(std::string_view name, FaultSite& out) noexcept {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == to_string(site)) {
      out = site;
      return true;
    }
  }
  return false;
}

/// TILQ_FAULT is parsed during static initialization, mirroring the
/// TILQ_METRICS / TILQ_TRACE / TILQ_PERF env gates. A malformed spec here
/// must not throw out of a static initializer, so it is ignored (tests use
/// configure(), which does throw).
bool init_from_env() noexcept {
  const char* value = std::getenv("TILQ_FAULT");
  if (value == nullptr || value[0] == '\0') {
    return false;
  }
  try {
    configure(value);
  } catch (...) {
    return false;
  }
  return true;
}

[[maybe_unused]] const bool g_env_initialized = init_from_env();

}  // namespace

void arm(FaultSite site, std::uint64_t nth) noexcept {
  state(site).countdown.store(nth == 0 ? 1 : nth, std::memory_order_relaxed);
  g_armed_mask.fetch_or(bit(site), std::memory_order_release);
}

void disarm(FaultSite site) noexcept {
  g_armed_mask.fetch_and(~bit(site), std::memory_order_release);
  state(site).countdown.store(0, std::memory_order_relaxed);
}

void disarm_all() noexcept {
  g_armed_mask.store(0, std::memory_order_release);
  for (SiteState& s : g_sites) {
    s.countdown.store(0, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
    s.triggered.store(0, std::memory_order_relaxed);
  }
}

bool armed(FaultSite site) noexcept {
  return (g_armed_mask.load(std::memory_order_acquire) & bit(site)) != 0;
}

std::uint64_t hits(FaultSite site) noexcept {
  return state(site).hits.load(std::memory_order_relaxed);
}

std::uint64_t triggered(FaultSite site) noexcept {
  return state(site).triggered.load(std::memory_order_relaxed);
}

void configure(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    if (!entry.empty()) {
      std::string_view name = entry;
      std::uint64_t nth = 1;
      if (const std::size_t colon = entry.find(':');
          colon != std::string_view::npos) {
        name = entry.substr(0, colon);
        const std::string_view count = entry.substr(colon + 1);
        if (count.empty()) {
          throw PreconditionError(
              "TILQ_FAULT: missing count after ':' in spec entry");
        }
        nth = 0;
        for (const char c : count) {
          if (c < '0' || c > '9') {
            throw PreconditionError(
                "TILQ_FAULT: count must be a positive integer");
          }
          nth = nth * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (nth == 0) {
          throw PreconditionError("TILQ_FAULT: count must be >= 1");
        }
      }
      FaultSite site{};
      if (!parse_site(name, site)) {
        throw PreconditionError(
            std::string("TILQ_FAULT: unknown fault site '") +
            std::string(name) +
            "' (expected pool-alloc, marker-wrap, hash-sat, or "
            "plan-fingerprint)");
      }
      arm(site, nth);
    }
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
}

bool should_fire(FaultSite site) noexcept {
  if ((g_armed_mask.load(std::memory_order_relaxed) & bit(site)) == 0) {
    return false;  // the everything-off fast path: one relaxed load
  }
  SiteState& s = state(site);
  s.hits.fetch_add(1, std::memory_order_relaxed);
  // fetch_sub decides a unique winner when several threads probe the armed
  // site concurrently: exactly one observes the transition to zero.
  const std::uint64_t before =
      s.countdown.fetch_sub(1, std::memory_order_acq_rel);
  if (before == 1) {
    disarm(site);
    s.triggered.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (before == 0) {
    // A racing thread already consumed the trigger; undo our decrement so
    // the counter does not wrap further.
    s.countdown.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

}  // namespace fault
}  // namespace tilq
