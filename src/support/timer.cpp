#include "support/timer.hpp"

#include <algorithm>
#include <numeric>

namespace tilq {

TimingResult measure(const std::function<void()>& body,
                     const TimingOptions& options) {
  if (options.warmup) {
    body();
  }

  TimingResult result;
  WallTimer budget;
  while (result.iterations < options.min_iterations ||
         (budget.seconds() < options.budget_seconds &&
          result.iterations < options.max_iterations)) {
    WallTimer iteration;
    body();
    result.samples_ms.push_back(iteration.milliseconds());
    ++result.iterations;
  }

  std::sort(result.samples_ms.begin(), result.samples_ms.end());
  result.min_ms = result.samples_ms.front();
  result.max_ms = result.samples_ms.back();
  result.median_ms = result.samples_ms[result.samples_ms.size() / 2];
  result.mean_ms =
      std::accumulate(result.samples_ms.begin(), result.samples_ms.end(), 0.0) /
      static_cast<double>(result.samples_ms.size());
  return result;
}

}  // namespace tilq
