#include "support/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace tilq {

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  delta.total = after.total.minus(before.total);
  delta.hw_total = after.hw_total.minus(before.hw_total);
  for (const ThreadMetrics& t : after.per_thread) {
    MetricCounters base;  // zero for threads registered after `before`
    HwCounters hw_base;
    for (const ThreadMetrics& b : before.per_thread) {
      if (b.thread_id == t.thread_id) {
        base = b.counters;
        hw_base = b.hw;
        break;
      }
    }
    const MetricCounters d = t.counters.minus(base);
    const HwCounters hw = t.hw.minus(hw_base);
    if (!d.all_zero() || !hw.all_zero()) {
      delta.per_thread.push_back({t.thread_id, d, hw});
    }
  }
  return delta;
}

#if TILQ_METRICS_ENABLED

namespace {

/// Escapes a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_counters_json(std::string& out, const MetricCounters& c) {
  const auto field = [&](const char* name, std::uint64_t value, bool last = false) {
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
    if (!last) {
      out += ',';
    }
  };
  out += '{';
  field("flops", c.flops);
  field("accum_inserts", c.accum_inserts);
  field("accum_rejects", c.accum_rejects);
  field("hash_probes", c.hash_probes);
  field("hash_collisions", c.hash_collisions);
  field("marker_row_resets", c.marker_row_resets);
  field("marker_overflow_resets", c.marker_overflow_resets);
  field("explicit_reset_slots", c.explicit_reset_slots);
  field("accum_rehashes", c.accum_rehashes);
  field("accum_degrades", c.accum_degrades);
  field("binary_search_steps", c.binary_search_steps);
  field("hybrid_coiter_picks", c.hybrid_coiter_picks);
  field("hybrid_linear_picks", c.hybrid_linear_picks);
  field("blocked_dense_picks", c.blocked_dense_picks);
  field("blocked_sparse_picks", c.blocked_sparse_picks);
  field("tiles_created", c.tiles_created);
  field("tiles_executed", c.tiles_executed);
  field("rows_processed", c.rows_processed);
  field("busy_ns", c.busy_ns);
  field("engine_jobs", c.engine_jobs);
  field("engine_job_ns", c.engine_job_ns);
  field("engine_queue_ns", c.engine_queue_ns);
  field("engine_queue_depth", c.engine_queue_depth);
  field("engine_tasks", c.engine_tasks);
  field("engine_steals", c.engine_steals);
  field("engine_jobs_shed", c.engine_jobs_shed);
  field("engine_jobs_deferred", c.engine_jobs_deferred);
  field("engine_jobs_expensive", c.engine_jobs_expensive);
  field("engine_deadline_misses", c.engine_deadline_misses);
  field("engine_jobs_stuck", c.engine_jobs_stuck);
  field("engine_retries", c.engine_retries);
  field("engine_brownouts", c.engine_brownouts);
  field("engine_telemetry_samples", c.engine_telemetry_samples);
  field("autotune_explorations", c.autotune_explorations);
  field("autotune_arm_switches", c.autotune_arm_switches);
  field("autotune_converged", c.autotune_converged, /*last=*/true);
  out += '}';
}

void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out += buf;
}

/// The `hw` record object; "null" when no hardware data was collected.
/// Field names mirror HwCounters (support/perf.hpp) one-to-one, which is
/// what tools/check_metrics_docs.py cross-checks against docs/METRICS.md.
void append_hw_json(std::string& out, const HwCounters& hw) {
  if (hw.all_zero()) {
    out += "null";
    return;
  }
  const auto field = [&](const char* name, std::uint64_t value,
                         bool last = false) {
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
    if (!last) {
      out += ',';
    }
  };
  out += '{';
  field("cycles", hw.cycles);
  field("instructions", hw.instructions);
  field("llc_loads", hw.llc_loads);
  field("llc_misses", hw.llc_misses);
  field("branch_misses", hw.branch_misses);
  field("stalled_cycles", hw.stalled_cycles, /*last=*/true);
  out += '}';
}

/// The `imbalance` record object, derived from the per-thread busy_ns
/// deltas; "null" when no thread reported busy time (e.g. records emitted
/// around code that never entered a driver compute phase). Field names
/// here are what tools/check_metrics_docs.py scrapes for the doc check.
void append_imbalance_json(std::string& out,
                           const std::vector<ThreadMetrics>& threads) {
  double max_ms = 0.0;
  double sum_ms = 0.0;
  double sum_sq = 0.0;
  int busy_threads = 0;
  for (const ThreadMetrics& t : threads) {
    if (t.counters.busy_ns == 0) {
      continue;
    }
    const double ms = static_cast<double>(t.counters.busy_ns) / 1e6;
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
    sum_sq += ms * ms;
    ++busy_threads;
  }
  if (busy_threads == 0) {
    out += "null";
    return;
  }
  const double n = busy_threads;
  const double mean_ms = sum_ms / n;
  const double variance = std::max(0.0, sum_sq / n - mean_ms * mean_ms);
  const double cv = mean_ms > 0.0 ? std::sqrt(variance) / mean_ms : 0.0;
  const double ratio = mean_ms > 0.0 ? max_ms / mean_ms : 1.0;
  const auto field = [&](const char* name, double value, bool last = false) {
    out += '"';
    out += name;
    out += "\":";
    append_double(out, value);
    if (!last) {
      out += ',';
    }
  };
  out += "{\"threads\":";
  out += std::to_string(busy_threads);
  out += ',';
  field("max_busy_ms", max_ms);
  field("mean_busy_ms", mean_ms);
  field("ratio", ratio);
  field("cv", cv, /*last=*/true);
  out += '}';
}

/// The `engine_latency` record object; "null" unless the emitter filled
/// the serving engine's percentile block (record.engine_latency.present).
/// Every key carries the `engine_latency_` prefix so a flat grep for
/// `engine_latency_p99_ms` works on raw JSON lines; the key set is what
/// tools/check_metrics_docs.py cross-checks against docs/SERVING.md.
void append_engine_latency_json(std::string& out,
                                const EngineLatencyRecord& lat) {
  if (!lat.present) {
    out += "null";
    return;
  }
  const auto field = [&](const char* name, double value, bool last = false) {
    out += '"';
    out += name;
    out += "\":";
    append_double(out, value);
    if (!last) {
      out += ',';
    }
  };
  out += "{\"engine_latency_jobs\":";
  out += std::to_string(lat.jobs);
  out += ',';
  field("engine_latency_p50_ms", lat.p50_ms);
  field("engine_latency_p95_ms", lat.p95_ms);
  field("engine_latency_p99_ms", lat.p99_ms);
  field("engine_latency_max_ms", lat.max_ms);
  field("engine_latency_queue_p50_ms", lat.queue_p50_ms);
  field("engine_latency_queue_p99_ms", lat.queue_p99_ms);
  field("engine_latency_run_p50_ms", lat.run_p50_ms);
  field("engine_latency_run_p99_ms", lat.run_p99_ms, /*last=*/true);
  out += '}';
}

/// One thread's registered storage: the software counters plus the
/// hardware deltas the drivers attach alongside them.
struct ThreadSlot {
  MetricCounters counters;
  HwCounters hw;
};

struct Registry {
  std::mutex mutex;
  // Slots are heap-allocated and intentionally never freed: a thread that
  // exits leaves its counts aggregatable without dangling pointers.
  std::vector<std::unique_ptr<ThreadSlot>> slots;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives thread_local dtors
  return *r;
}

std::string g_sink_path;  // initialized (with g_runtime_enabled) below
std::mutex g_sink_mutex;

/// Parses TILQ_METRICS: unset/"0"/"off"/"false" disable; "1"/"on"/"true"/
/// "stdout" enable with stdout emission; any other value enables and is
/// taken as the JSON-lines sink path.
bool init_from_env() {
  const char* value = std::getenv("TILQ_METRICS");
  if (value == nullptr) {
    return false;
  }
  std::string v(value);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v.empty() || v == "0" || v == "off" || v == "false") {
    return false;
  }
  if (v == "1" || v == "on" || v == "true" || v == "stdout") {
    return true;
  }
  g_sink_path = value;  // original spelling, not lowercased
  return true;
}

}  // namespace

namespace metrics_detail {

bool g_runtime_enabled = init_from_env();

namespace {

ThreadSlot& whole_thread_slot() {
  thread_local ThreadSlot* slot = [] {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.slots.push_back(std::make_unique<ThreadSlot>());
    return r.slots.back().get();
  }();
  return *slot;
}

}  // namespace

MetricCounters& thread_slot() { return whole_thread_slot().counters; }

HwCounters& thread_hw_slot() { return whole_thread_slot().hw; }

}  // namespace metrics_detail

void set_metrics_enabled(bool enabled) noexcept {
  metrics_detail::g_runtime_enabled = enabled;
}

void metrics_reset() noexcept {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& slot : r.slots) {
    *slot = ThreadSlot{};
  }
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snapshot;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  int id = 0;
  for (const auto& slot : r.slots) {
    if (!slot->counters.all_zero() || !slot->hw.all_zero()) {
      snapshot.per_thread.push_back({id, slot->counters, slot->hw});
      snapshot.total += slot->counters;
      snapshot.hw_total += slot->hw;
    }
    ++id;
  }
  return snapshot;
}

void set_metrics_sink_path(const std::string& path) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink_path = path;
}

std::string metrics_sink_path() {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  return g_sink_path;
}

std::string format_metrics_record(const MetricsRecord& record,
                                  const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(512);
  out += "{\"tilq_metrics\":";
  out += std::to_string(kMetricsSchemaVersion);
  out += ",\"source\":\"";
  out += json_escape(record.source);
  out += "\",\"matrix\":\"";
  out += json_escape(record.matrix);
  out += "\",\"config\":\"";
  out += json_escape(record.config);
  out += "\",\"runs\":";
  out += std::to_string(record.runs);
  out += ",\"median_ms\":";
  char ms[32];
  std::snprintf(ms, sizeof ms, "%.6g", record.median_ms);
  out += ms;
  out += ",\"counters\":";
  append_counters_json(out, snapshot.total);
  out += ",\"hw\":";
  append_hw_json(out, snapshot.hw_total);
  out += ",\"imbalance\":";
  append_imbalance_json(out, snapshot.per_thread);
  out += ",\"engine_latency\":";
  append_engine_latency_json(out, record.engine_latency);
  out += ",\"threads\":[";
  bool first = true;
  for (const ThreadMetrics& t : snapshot.per_thread) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"id\":";
    out += std::to_string(t.thread_id);
    out += ",\"counters\":";
    append_counters_json(out, t.counters);
    if (!t.hw.all_zero()) {
      out += ",\"hw\":";
      append_hw_json(out, t.hw);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void emit_metrics_record(const MetricsRecord& record,
                         const MetricsSnapshot& snapshot) {
  if (!metrics_enabled()) {
    return;
  }
  const std::string line = format_metrics_record(record, snapshot);
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink_path.empty()) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::FILE* file = std::fopen(g_sink_path.c_str(), "a");
  if (file == nullptr) {
    std::fprintf(stderr, "tilq metrics: cannot open sink %s; line dropped\n",
                 g_sink_path.c_str());
    return;
  }
  std::fputs(line.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

#endif  // TILQ_METRICS_ENABLED

}  // namespace tilq
