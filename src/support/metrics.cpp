#include "support/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace tilq {

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  delta.total = after.total.minus(before.total);
  for (const ThreadMetrics& t : after.per_thread) {
    MetricCounters base;  // zero for threads registered after `before`
    for (const ThreadMetrics& b : before.per_thread) {
      if (b.thread_id == t.thread_id) {
        base = b.counters;
        break;
      }
    }
    const MetricCounters d = t.counters.minus(base);
    if (!d.all_zero()) {
      delta.per_thread.push_back({t.thread_id, d});
    }
  }
  return delta;
}

#if TILQ_METRICS_ENABLED

namespace {

/// Escapes a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_counters_json(std::string& out, const MetricCounters& c) {
  const auto field = [&](const char* name, std::uint64_t value, bool last = false) {
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
    if (!last) {
      out += ',';
    }
  };
  out += '{';
  field("flops", c.flops);
  field("accum_inserts", c.accum_inserts);
  field("accum_rejects", c.accum_rejects);
  field("hash_probes", c.hash_probes);
  field("hash_collisions", c.hash_collisions);
  field("marker_row_resets", c.marker_row_resets);
  field("marker_overflow_resets", c.marker_overflow_resets);
  field("explicit_reset_slots", c.explicit_reset_slots);
  field("binary_search_steps", c.binary_search_steps);
  field("hybrid_coiter_picks", c.hybrid_coiter_picks);
  field("hybrid_linear_picks", c.hybrid_linear_picks);
  field("tiles_created", c.tiles_created);
  field("tiles_executed", c.tiles_executed);
  field("rows_processed", c.rows_processed, /*last=*/true);
  out += '}';
}

struct Registry {
  std::mutex mutex;
  // Slots are heap-allocated and intentionally never freed: a thread that
  // exits leaves its counts aggregatable without dangling pointers.
  std::vector<std::unique_ptr<MetricCounters>> slots;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives thread_local dtors
  return *r;
}

std::string g_sink_path;  // initialized (with g_runtime_enabled) below
std::mutex g_sink_mutex;

/// Parses TILQ_METRICS: unset/"0"/"off"/"false" disable; "1"/"on"/"true"/
/// "stdout" enable with stdout emission; any other value enables and is
/// taken as the JSON-lines sink path.
bool init_from_env() {
  const char* value = std::getenv("TILQ_METRICS");
  if (value == nullptr) {
    return false;
  }
  std::string v(value);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v.empty() || v == "0" || v == "off" || v == "false") {
    return false;
  }
  if (v == "1" || v == "on" || v == "true" || v == "stdout") {
    return true;
  }
  g_sink_path = value;  // original spelling, not lowercased
  return true;
}

}  // namespace

namespace metrics_detail {

bool g_runtime_enabled = init_from_env();

MetricCounters& thread_slot() {
  thread_local MetricCounters* slot = [] {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.slots.push_back(std::make_unique<MetricCounters>());
    return r.slots.back().get();
  }();
  return *slot;
}

}  // namespace metrics_detail

void set_metrics_enabled(bool enabled) noexcept {
  metrics_detail::g_runtime_enabled = enabled;
}

void metrics_reset() noexcept {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& slot : r.slots) {
    *slot = MetricCounters{};
  }
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snapshot;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  int id = 0;
  for (const auto& slot : r.slots) {
    if (!slot->all_zero()) {
      snapshot.per_thread.push_back({id, *slot});
      snapshot.total += *slot;
    }
    ++id;
  }
  return snapshot;
}

void set_metrics_sink_path(const std::string& path) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink_path = path;
}

std::string metrics_sink_path() {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  return g_sink_path;
}

std::string format_metrics_record(const MetricsRecord& record,
                                  const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(512);
  out += "{\"tilq_metrics\":";
  out += std::to_string(kMetricsSchemaVersion);
  out += ",\"source\":\"";
  out += json_escape(record.source);
  out += "\",\"matrix\":\"";
  out += json_escape(record.matrix);
  out += "\",\"config\":\"";
  out += json_escape(record.config);
  out += "\",\"runs\":";
  out += std::to_string(record.runs);
  out += ",\"median_ms\":";
  char ms[32];
  std::snprintf(ms, sizeof ms, "%.6g", record.median_ms);
  out += ms;
  out += ",\"counters\":";
  append_counters_json(out, snapshot.total);
  out += ",\"threads\":[";
  bool first = true;
  for (const ThreadMetrics& t : snapshot.per_thread) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"id\":";
    out += std::to_string(t.thread_id);
    out += ",\"counters\":";
    append_counters_json(out, t.counters);
    out += '}';
  }
  out += "]}";
  return out;
}

void emit_metrics_record(const MetricsRecord& record,
                         const MetricsSnapshot& snapshot) {
  if (!metrics_enabled()) {
    return;
  }
  const std::string line = format_metrics_record(record, snapshot);
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink_path.empty()) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::FILE* file = std::fopen(g_sink_path.c_str(), "a");
  if (file == nullptr) {
    std::fprintf(stderr, "tilq metrics: cannot open sink %s; line dropped\n",
                 g_sink_path.c_str());
    return;
  }
  std::fputs(line.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

#endif  // TILQ_METRICS_ENABLED

}  // namespace tilq
