// Wall-clock timing and the repeated-measurement loop used by every
// benchmark. The measurement protocol mirrors the paper (§IV-A): one
// warm-up run, then repeat until a time budget or an iteration cap is
// reached, reporting the distribution of per-iteration times.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

namespace tilq {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Summary of a repeated measurement.
struct TimingResult {
  double min_ms = 0.0;     ///< fastest iteration
  double median_ms = 0.0;  ///< median iteration
  double mean_ms = 0.0;    ///< arithmetic mean
  double max_ms = 0.0;     ///< slowest iteration
  std::int64_t iterations = 0;
  std::vector<double> samples_ms;  ///< all per-iteration times, sorted
};

/// Measurement protocol knobs. Defaults are scaled-down versions of the
/// paper's "warm-up, then 5 s or 10000 iterations" rule so benches finish
/// quickly on a development machine.
struct TimingOptions {
  double budget_seconds = 1.0;     ///< stop after this much measured time
  std::int64_t max_iterations = 200;
  std::int64_t min_iterations = 3;
  bool warmup = true;              ///< one untimed run first
};

/// Runs `body` under the protocol in `options` and reports statistics.
/// `body` must perform one complete kernel execution per call (including
/// freeing its output, matching the paper's "output is freed after each
/// run").
TimingResult measure(const std::function<void()>& body,
                     const TimingOptions& options = {});

}  // namespace tilq
