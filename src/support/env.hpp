// Runtime environment control: thread counts and the OpenMP scheduling
// policy. The paper's tiling experiments switch between STATIC and DYNAMIC
// OpenMP schedules at run time; we expose that via omp_set_schedule plus
// `schedule(runtime)` loops in the executors (core/execute.hpp).
#pragma once

#include <string>

namespace tilq {

/// OpenMP loop scheduling policy for tile execution (§III-A).
enum class Schedule {
  kStatic,   ///< tiles pre-assigned round-robin to threads, no runtime balancing
  kDynamic,  ///< threads grab the next unclaimed tile when idle
};

[[nodiscard]] const char* to_string(Schedule schedule) noexcept;

/// Number of threads a parallel region will use by default.
[[nodiscard]] int max_threads() noexcept;

/// Overrides the default thread count for subsequent parallel regions.
void set_threads(int threads);

/// Installs `schedule` (with chunk size 1: one tile per dispatch) as the
/// policy used by all `schedule(runtime)` loops.
void set_runtime_schedule(Schedule schedule);

/// Reads back the currently installed runtime schedule.
[[nodiscard]] Schedule runtime_schedule();

/// Human-readable one-line description of the parallel environment, for
/// benchmark headers (thread count, OpenMP version).
[[nodiscard]] std::string environment_summary();

}  // namespace tilq
