// Deterministic fault injection (docs/ROBUSTNESS.md). Tests arm a site and
// the library throws a typed tilq error (support/errors.hpp) from that
// site's exact code path, so exception-safety claims — "fault at the Nth
// pool acquisition → clean CapacityError, pool still reusable, output
// untouched" — are assertable instead of aspirational.
//
// Sites (each a single `fault::should_fire(FaultSite::...)` probe in
// library code):
//   pool-alloc          WorkspacePool::acquire, before constructing a slot
//   marker-wrap         accumulator finish_row: forces the marker-overflow
//                       full-reset path regardless of the real epoch
//   hash-sat            HashAccumulator insert: forces the saturation path
//                       (growth bound treated as already exhausted)
//   plan-fingerprint    Executor::execute staleness check: corrupts the
//                       fingerprint comparison so StalePlanError fires
//   engine-submit-alloc Engine driver-buffer acquisition (deferred to a
//                       job's first task; models a submit-path alloc fail)
//   engine-pool-reserve Engine tile task, workspace acquisition for the
//                       per-thread accumulator
//   engine-retry-replan Engine retry path, replan before re-execution
//
// Two arming modes:
//
//   One-shot with an Nth-hit trigger: arm(site, n) fires on the n-th probe
//   of that site (1-based) and disarms itself, so the process recovers and
//   the same pool/executor is provably reusable afterwards.
//
//   Probabilistic rate: arm_rate(site, p) fires each probe independently
//   with probability p, decided by a counter-indexed hash of the global
//   seed (set_seed / TILQ_FAULT_SEED) — deterministic per (seed, site,
//   probe index), no wall-clock randomness. Rate sites stay armed until
//   disarmed; the chaos-soak harness uses this mode.
//
// Probes and triggers are counted per site (fault::hits / fault::triggered).
//
// Configuration:
//   programmatic — fault::arm / fault::arm_rate / fault::disarm /
//                  fault::disarm_all / fault::set_seed
//   environment  — TILQ_FAULT="site[:nth|@rate](,...)*", parsed once at
//                  static initialization, e.g.
//                  TILQ_FAULT=pool-alloc:3,hash-sat
//                  TILQ_FAULT=engine-pool-reserve@0.01
//                  TILQ_FAULT_SEED=42 selects the rate-mode seed.
//
// Cost when nothing is armed: one relaxed atomic load per probe (a bitmask
// test), no branches beyond it. Probes never appear in per-element loops —
// only at row/acquisition granularity.
#pragma once

#include <cstdint>
#include <string_view>

namespace tilq {

enum class FaultSite : unsigned {
  kPoolAllocation = 0,
  kMarkerWrap = 1,
  kHashSaturation = 2,
  kPlanFingerprint = 3,
  kEngineSubmitAlloc = 4,
  kEnginePoolReserve = 5,
  kEngineRetryReplan = 6,
};

inline constexpr std::size_t kFaultSiteCount = 7;

[[nodiscard]] const char* to_string(FaultSite site) noexcept;

namespace fault {

/// Arms `site` to fire on its `nth` probe from now (1-based; nth=1 fires on
/// the very next probe). Re-arming an armed site restarts its countdown.
void arm(FaultSite site, std::uint64_t nth = 1) noexcept;

/// Arms `site` in probabilistic rate mode: each probe fires independently
/// with probability `rate`, decided deterministically from the global seed
/// and the site's probe index. rate <= 0 disarms; rate >= 1 fires on every
/// probe. Rate sites do NOT self-disarm.
void arm_rate(FaultSite site, double rate) noexcept;

/// Seed for rate-mode decisions. Also resets every site's probe index so
/// two runs with the same seed and the same per-site probe sequence make
/// identical fire decisions. Default seed: 0 (or TILQ_FAULT_SEED).
void set_seed(std::uint64_t seed) noexcept;

void disarm(FaultSite site) noexcept;

/// Disarms every site and zeroes all hit/trigger counters and probe
/// indices. Tests call this in teardown so faults never leak across test
/// cases.
void disarm_all() noexcept;

[[nodiscard]] bool armed(FaultSite site) noexcept;

/// Probes observed at `site` while it was armed, since the last
/// disarm_all(). (Disarmed probes take the zero-cost fast path and are
/// deliberately not counted.)
[[nodiscard]] std::uint64_t hits(FaultSite site) noexcept;

/// How many times `site` actually fired since the last disarm_all().
[[nodiscard]] std::uint64_t triggered(FaultSite site) noexcept;

/// Parses a TILQ_FAULT-style spec ("site[:nth|@rate](,site[:nth|@rate])*")
/// and arms the named sites — `:nth` one-shot, `@rate` probabilistic.
/// Throws PreconditionError on malformed specs. An empty spec is a no-op.
void configure(std::string_view spec);

/// The library-side probe. One-shot sites return true exactly once per
/// arm(), on the armed site's Nth hit, then self-disarm. Rate sites return
/// true with the armed probability, deterministically per probe index.
/// Near-free when nothing is armed (single relaxed load). noexcept:
/// callers throw, this never does.
[[nodiscard]] bool should_fire(FaultSite site) noexcept;

}  // namespace fault
}  // namespace tilq
