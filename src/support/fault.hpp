// Deterministic fault injection (docs/ROBUSTNESS.md). Tests arm a site and
// the library throws a typed tilq error (support/errors.hpp) from that
// site's exact code path, so exception-safety claims — "fault at the Nth
// pool acquisition → clean CapacityError, pool still reusable, output
// untouched" — are assertable instead of aspirational.
//
// Sites (each a single `fault::should_fire(FaultSite::...)` probe in
// library code):
//   pool-alloc       WorkspacePool::acquire, before constructing a slot
//   marker-wrap      accumulator finish_row: forces the marker-overflow
//                    full-reset path regardless of the real epoch
//   hash-sat         HashAccumulator insert: forces the saturation path
//                    (growth bound treated as already exhausted)
//   plan-fingerprint Executor::execute staleness check: corrupts the
//                    fingerprint comparison so StalePlanError fires
//
// Arming is one-shot with an Nth-hit trigger: arm(site, n) fires on the
// n-th probe of that site (1-based) and disarms itself, so the process
// recovers and the same pool/executor is provably reusable afterwards.
// Probes and triggers are counted per site (fault::hits / fault::triggered).
//
// Configuration:
//   programmatic — fault::arm / fault::disarm / fault::disarm_all
//   environment  — TILQ_FAULT="site[:nth](,site[:nth])*", parsed once at
//                  static initialization, e.g. TILQ_FAULT=pool-alloc:3,hash-sat
//
// Cost when nothing is armed: one relaxed atomic load per probe (a bitmask
// test), no branches beyond it. Probes never appear in per-element loops —
// only at row/acquisition granularity.
#pragma once

#include <cstdint>
#include <string_view>

namespace tilq {

enum class FaultSite : unsigned {
  kPoolAllocation = 0,
  kMarkerWrap = 1,
  kHashSaturation = 2,
  kPlanFingerprint = 3,
};

inline constexpr std::size_t kFaultSiteCount = 4;

[[nodiscard]] const char* to_string(FaultSite site) noexcept;

namespace fault {

/// Arms `site` to fire on its `nth` probe from now (1-based; nth=1 fires on
/// the very next probe). Re-arming an armed site restarts its countdown.
void arm(FaultSite site, std::uint64_t nth = 1) noexcept;

void disarm(FaultSite site) noexcept;

/// Disarms every site and zeroes all hit/trigger counters. Tests call this
/// in teardown so faults never leak across test cases.
void disarm_all() noexcept;

[[nodiscard]] bool armed(FaultSite site) noexcept;

/// Probes observed at `site` while it was armed, since the last
/// disarm_all(). (Disarmed probes take the zero-cost fast path and are
/// deliberately not counted.)
[[nodiscard]] std::uint64_t hits(FaultSite site) noexcept;

/// How many times `site` actually fired since the last disarm_all().
[[nodiscard]] std::uint64_t triggered(FaultSite site) noexcept;

/// Parses a TILQ_FAULT-style spec ("site[:nth](,site[:nth])*") and arms the
/// named sites. Throws PreconditionError on malformed specs. An empty spec
/// is a no-op.
void configure(std::string_view spec);

/// The library-side probe. Returns true exactly once per arm(), on the
/// armed site's Nth hit, then self-disarms. Near-free when nothing is
/// armed (single relaxed load). noexcept: callers throw, this never does.
[[nodiscard]] bool should_fire(FaultSite site) noexcept;

}  // namespace fault
}  // namespace tilq
