// Deterministic, seedable pseudo-random number generation for the graph
// generators and tests. We implement xoshiro256** (Blackman & Vigna) rather
// than using std::mt19937 because generator output must be stable across
// standard-library versions: the synthetic matrix collection (gen/collection)
// is keyed by seed and the experiment records in EXPERIMENTS.md assume
// reproducible graphs.
#pragma once

#include <array>
#include <cstdint>

#include "support/common.hpp"

namespace tilq {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with a 2^256 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) {
      word = mix.next();
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t uniform_below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // 128-bit multiply-shift; the rejection loop removes the bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability `p`.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Jump function: advances the state by 2^128 steps, giving independent
  /// streams for parallel generation from one seed.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (std::size_t i = 0; i < acc.size(); ++i) {
            acc[i] ^= state_[i];
          }
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tilq
