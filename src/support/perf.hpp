// Hardware performance counters via Linux perf_event_open, the attribution
// layer underneath the software event counters (support/metrics.hpp).
//
// Why: the paper's three design dimensions are memory-system stories — the
// Fig 10/11 tiling wins come from cache residency and load balance, the
// Fig 13 marker widths trade reset sweeps against accumulator footprint —
// but software counters can only count algorithmic events, not explain
// where cycles go. Cycles, instructions, LLC loads/misses, branch misses
// and stalled cycles close that gap, the same way the KNL/many-core SpGEMM
// studies attribute their kernels with cache/bandwidth counters.
//
// Design:
//   * One perf event *group* per thread (leader: cycles), opened lazily on
//     the thread's first PerfScope and counting continuously; a scope is
//     two group reads (construction and delta()), so nesting and per-span
//     attribution are cheap.
//   * Counters the kernel/PMU rejects are skipped individually; a group
//     that cannot be scheduled at all (or a failing perf_event_open — CI
//     containers, perf_event_paranoid, non-Linux) degrades to "perf
//     unavailable": every scope becomes a no-op and at most ONE one-line
//     notice is printed, and only when metrics are runtime-enabled
//     (TILQ_METRICS). Silence is the contract — never per-scope warnings.
//   * Values are scaled by time_enabled/time_running when the kernel
//     multiplexed the group, the standard correction.
//
// The instrumentation shares the TILQ_METRICS_ENABLED compile gate with
// the rest of the observability layer: a TILQ_METRICS=OFF build compiles
// every function here to a no-op returning zeros.
//
// Environment: TILQ_PERF=0/off/false disables the counters outright (the
// fallback path without a syscall attempt); unset or any other value lets
// the first open decide. set_perf_enabled() is the runtime override.
#pragma once

#include <cstdint>

// Same compile-time gate as support/metrics.hpp (which includes this header
// for HwCounters, so the gate default is replicated instead of included).
#ifndef TILQ_METRICS_ENABLED
#define TILQ_METRICS_ENABLED 1
#endif

namespace tilq {

/// One reading (or delta) of the hardware counter group. A field the PMU
/// could not provide stays 0; `all_zero()` distinguishes "no data at all"
/// (perf unavailable) from a real reading, since cycles can never be 0
/// across a non-empty measured region. Documented field-by-field in
/// docs/METRICS.md (machine-checked by tools/check_metrics_docs.py).
struct HwCounters {
  std::uint64_t cycles = 0;          ///< CPU cycles (group leader)
  std::uint64_t instructions = 0;    ///< retired instructions
  std::uint64_t llc_loads = 0;       ///< last-level-cache read accesses
  std::uint64_t llc_misses = 0;      ///< last-level-cache read misses
  std::uint64_t branch_misses = 0;   ///< mispredicted branches
  std::uint64_t stalled_cycles = 0;  ///< cycles with no issue (backend, or
                                     ///< frontend where backend is absent)

  HwCounters& operator+=(const HwCounters& o) noexcept {
    cycles += o.cycles;
    instructions += o.instructions;
    llc_loads += o.llc_loads;
    llc_misses += o.llc_misses;
    branch_misses += o.branch_misses;
    stalled_cycles += o.stalled_cycles;
    return *this;
  }

  /// Field-wise saturating difference (mirrors MetricCounters::minus).
  [[nodiscard]] HwCounters minus(const HwCounters& o) const noexcept {
    const auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : std::uint64_t{0};
    };
    HwCounters d;
    d.cycles = sub(cycles, o.cycles);
    d.instructions = sub(instructions, o.instructions);
    d.llc_loads = sub(llc_loads, o.llc_loads);
    d.llc_misses = sub(llc_misses, o.llc_misses);
    d.branch_misses = sub(branch_misses, o.branch_misses);
    d.stalled_cycles = sub(stalled_cycles, o.stalled_cycles);
    return d;
  }

  [[nodiscard]] bool all_zero() const noexcept {
    return cycles == 0 && instructions == 0 && llc_loads == 0 &&
           llc_misses == 0 && branch_misses == 0 && stalled_cycles == 0;
  }
};

/// Pure classifier for the TILQ_PERF environment value: true for the
/// disabling spellings ("0", "off", "false", case-insensitive). Exposed
/// for tests; nullptr (unset) does not disable.
[[nodiscard]] bool perf_env_disables(const char* value) noexcept;

#if TILQ_METRICS_ENABLED

/// True when THIS thread can read hardware counters. The first call on
/// each thread opens the thread's group; the first failure anywhere marks
/// perf unavailable process-wide so no other thread retries or warns.
[[nodiscard]] bool perf_available() noexcept;

/// Runtime override: false forces every subsequent PerfScope inactive
/// without touching already-open groups; true re-allows opening (subject
/// to the hardware actually cooperating). Tests use this to exercise the
/// fallback path deterministically.
void set_perf_enabled(bool enabled) noexcept;

/// Number of "hardware counters unavailable" notices printed so far —
/// 0 or 1 by contract, never one per scope. Exposed for the env test.
[[nodiscard]] int perf_unavailable_notices() noexcept;

/// Cumulative reading of this thread's group (zeros when unavailable).
[[nodiscard]] HwCounters perf_read_thread() noexcept;

/// RAII-style delta reader: snapshots this thread's group at construction;
/// delta() returns the events since then. Inactive scopes (perf or the
/// `enable` argument off) cost one branch and return zeros.
class PerfScope {
 public:
  explicit PerfScope(bool enable = true) noexcept {
    if (enable && perf_available()) {
      active_ = true;
      start_ = perf_read_thread();
    }
  }

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Events on this thread since construction (zeros when inactive).
  [[nodiscard]] HwCounters delta() const noexcept {
    return active_ ? perf_read_thread().minus(start_) : HwCounters{};
  }

 private:
  HwCounters start_;
  bool active_ = false;
};

#else  // !TILQ_METRICS_ENABLED — hardware counting is compiled out.

[[nodiscard]] constexpr bool perf_available() noexcept { return false; }
inline void set_perf_enabled(bool) noexcept {}
[[nodiscard]] constexpr int perf_unavailable_notices() noexcept { return 0; }
[[nodiscard]] inline HwCounters perf_read_thread() noexcept { return {}; }

class PerfScope {
 public:
  explicit PerfScope(bool = true) noexcept {}
  [[nodiscard]] bool active() const noexcept { return false; }
  [[nodiscard]] HwCounters delta() const noexcept { return {}; }
};

#endif  // TILQ_METRICS_ENABLED

}  // namespace tilq
