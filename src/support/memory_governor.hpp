// Engine-wide memory budget (docs/ROBUSTNESS.md). The governor keeps a
// byte ledger over the engine's reusable scratch memory — workspace-pool
// accumulators and recycled driver buffers — against a configured budget,
// with high-water accounting. Charges are estimates (capability x element
// footprint for accumulators, vector sizes for driver buffers): the goal
// is a brownout trip point, not an allocator.
//
// Crossing the budget flips the governor into brownout (counted once per
// excursion). Brownout is sticky with hysteresis: it clears only when
// usage falls back under 3/4 of the budget, so the state cannot flap on
// every acquire/release pair at the boundary. The engine reacts to
// brownout by reclaiming idle scratch and planning NEW jobs in a
// reduced-footprint config instead of failing admission; in-flight jobs
// are never disturbed.
//
// A budget of 0 means unlimited: the ledger still runs (usage/high-water
// stay observable) but brownout never trips. All operations are lock-free
// relaxed atomics — charge/release sit on the workspace acquire path.
#pragma once

#include <atomic>
#include <cstdint>

namespace tilq {

class MemoryGovernor {
 public:
  MemoryGovernor() = default;

  /// Sets the budget in bytes; 0 disables brownout. Not thread-safe
  /// against concurrent charges — configure before serving.
  void set_budget(std::uint64_t bytes) noexcept {
    budget_.store(bytes, std::memory_order_relaxed);
  }

  void charge(std::uint64_t bytes) noexcept {
    if (bytes == 0) {
      return;
    }
    const std::uint64_t usage =
        usage_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t high = high_water_.load(std::memory_order_relaxed);
    while (usage > high && !high_water_.compare_exchange_weak(
                               high, usage, std::memory_order_relaxed)) {
    }
    const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
    if (budget != 0 && usage > budget &&
        !browned_out_.exchange(true, std::memory_order_relaxed)) {
      brownouts_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void release(std::uint64_t bytes) noexcept {
    if (bytes == 0) {
      return;
    }
    const std::uint64_t usage =
        usage_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
    const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
    // Hysteresis: clear only once usage is comfortably under budget.
    if (budget == 0 || usage <= budget - budget / 4) {
      browned_out_.store(false, std::memory_order_relaxed);
    }
  }

  /// True once usage crossed the budget, until the hysteresis clears it.
  [[nodiscard]] bool browned_out() const noexcept {
    return browned_out_.load(std::memory_order_relaxed);
  }

  /// Softer signal than brownout: usage at or past 3/4 of the budget. The
  /// engine starts reclaiming idle scratch here, before the trip point.
  [[nodiscard]] bool under_pressure() const noexcept {
    const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
    if (budget == 0) {
      return false;
    }
    return usage_.load(std::memory_order_relaxed) >= budget - budget / 4;
  }

  [[nodiscard]] std::uint64_t usage() const noexcept {
    return usage_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t budget() const noexcept {
    return budget_.load(std::memory_order_relaxed);
  }
  /// Transitions into brownout since construction.
  [[nodiscard]] std::uint64_t brownouts() const noexcept {
    return brownouts_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> budget_{0};
  std::atomic<std::uint64_t> usage_{0};
  std::atomic<std::uint64_t> high_water_{0};
  std::atomic<std::uint64_t> brownouts_{0};
  std::atomic<bool> browned_out_{false};
};

}  // namespace tilq
