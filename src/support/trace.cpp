#include "support/trace.hpp"

#if TILQ_METRICS_ENABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace tilq {

namespace {

struct TraceEvent {
  const char* name;
  std::int64_t arg;
  double ts_us;
  double dur_us;
  int tid;
  HwCounters hw;  // all-zero when the thread had no hardware counters
};

struct TraceState {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::string path;
  std::atomic<int> next_tid{0};
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaked: usable from atexit
  return *s;
}

int thread_trace_id() {
  thread_local const int tid =
      state().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void flush_at_exit() { (void)trace_flush(); }

/// Registers the atexit flush once; call with state().mutex held.
void ensure_atexit_locked(TraceState& s) {
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(flush_at_exit);
  }
}

bool init_from_env() {
  const char* value = std::getenv("TILQ_TRACE");
  if (value == nullptr || value[0] == '\0') {
    return false;
  }
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.path = value;
  ensure_atexit_locked(s);
  return true;
}

}  // namespace

namespace trace_detail {

bool g_enabled = init_from_env();

double now_us() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void record_span(const char* name, std::int64_t arg, double start_us,
                 double end_us, const HwCounters& hw) {
  const int tid = thread_trace_id();
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back({name, arg, start_us, end_us - start_us, tid, hw});
}

}  // namespace trace_detail

void set_trace_path(const std::string& path) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.path = path;
  trace_detail::g_enabled = !path.empty();
  if (trace_detail::g_enabled) {
    ensure_atexit_locked(s);
  }
}

std::string trace_path() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.path;
}

bool trace_flush() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.path.empty()) {
    return false;
  }
  std::FILE* file = std::fopen(s.path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "tilq trace: cannot open %s\n", s.path.c_str());
    return false;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", file);
  bool first = true;
  for (const TraceEvent& e : s.events) {
    if (!first) {
      std::fputc(',', file);
    }
    first = false;
    std::fprintf(file,
                 "\n{\"name\":\"%s\",\"cat\":\"tilq\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d",
                 e.name, e.ts_us, e.dur_us, e.tid);
    if (e.arg >= 0 || !e.hw.all_zero()) {
      std::fputs(",\"args\":{", file);
      bool first_arg = true;
      const auto arg_u64 = [&](const char* key, unsigned long long value) {
        std::fprintf(file, "%s\"%s\":%llu", first_arg ? "" : ",", key, value);
        first_arg = false;
      };
      if (e.arg >= 0) {
        arg_u64("id", static_cast<unsigned long long>(e.arg));
      }
      if (!e.hw.all_zero()) {
        arg_u64("cycles", e.hw.cycles);
        arg_u64("instructions", e.hw.instructions);
        arg_u64("llc_misses", e.hw.llc_misses);
      }
      std::fputc('}', file);
    }
    std::fputc('}', file);
  }
  std::fputs("\n]}\n", file);
  std::fclose(file);
  return true;
}

void trace_clear() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.events.clear();
}

std::size_t trace_event_count() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

}  // namespace tilq

#endif  // TILQ_METRICS_ENABLED
