// Engine health state machine (docs/ROBUSTNESS.md). Distills the engine's
// recent behavior — shed rate, retry rate, stuck jobs, memory pressure —
// into a three-state verdict an operator (or load balancer) can act on:
//
//   kHealthy    serving normally
//   kDegraded   elevated shed/retry rates or stuck jobs in the window:
//               still serving, but investigate
//   kBrownedOut the memory governor tripped its budget: new jobs plan in
//               reduced-footprint mode; /healthz returns 503
//
// The monitor is event-count epoched, not wall-clock epoched: every
// `epoch_events` recorded completions rotate the current window into the
// previous one, and rates are computed over (current + previous). This
// makes recovery deterministic and testable — after a fault burst, two
// clean epochs of traffic provably return the state to kHealthy, with no
// timer to race against. All recording is relaxed-atomic; evaluation takes
// a mutex only on the (rare) epoch rotation.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace tilq {

enum class EngineHealth : int {
  kHealthy = 0,
  kDegraded = 1,
  kBrownedOut = 2,
};

[[nodiscard]] inline const char* to_string(EngineHealth health) noexcept {
  switch (health) {
    case EngineHealth::kHealthy:
      return "healthy";
    case EngineHealth::kDegraded:
      return "degraded";
    case EngineHealth::kBrownedOut:
      return "browned-out";
  }
  return "?";
}

struct HealthThresholds {
  /// Completions per epoch before the window rotates.
  std::uint64_t epoch_events = 32;
  /// Degrade when sheds / (admissions + sheds) over the window reaches this.
  double shed_rate = 0.25;
  /// Degrade when retries / admissions over the window reaches this.
  double retry_rate = 0.25;
};

class HealthMonitor {
 public:
  HealthMonitor() = default;
  explicit HealthMonitor(HealthThresholds thresholds)
      : thresholds_(thresholds) {}

  /// Replaces the thresholds. Not thread-safe against concurrent
  /// recording — configure before serving (the engine does this in its
  /// constructor).
  void set_thresholds(const HealthThresholds& thresholds) noexcept {
    thresholds_ = thresholds;
    if (thresholds_.epoch_events == 0) {
      thresholds_.epoch_events = 1;
    }
  }

  void record_admit() noexcept {
    current_.admits.fetch_add(1, std::memory_order_relaxed);
  }
  void record_shed() noexcept {
    current_.sheds.fetch_add(1, std::memory_order_relaxed);
  }
  void record_retry() noexcept {
    current_.retries.fetch_add(1, std::memory_order_relaxed);
  }

  /// One job finished (completed or failed). Rotates the epoch window once
  /// `epoch_events` completions accumulate, so sustained clean traffic
  /// dilutes and then retires an old fault burst.
  void record_finish() noexcept {
    const std::uint64_t n =
        current_.finishes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= thresholds_.epoch_events) {
      rotate();
    }
  }

  /// Gauge of currently-stuck in-flight jobs (watchdog-flagged, not yet
  /// finished). A gauge, not a counter: a stuck job that eventually
  /// finishes stops degrading the state.
  void set_stuck_jobs(std::uint64_t stuck) noexcept {
    stuck_.store(stuck, std::memory_order_relaxed);
  }

  /// Memory-governor verdict, set from the engine (sticky until cleared by
  /// the governor's hysteresis). Dominates the other signals.
  void set_browned_out(bool browned_out) noexcept {
    browned_out_.store(browned_out, std::memory_order_relaxed);
  }

  [[nodiscard]] EngineHealth state() const noexcept {
    if (browned_out_.load(std::memory_order_relaxed)) {
      return EngineHealth::kBrownedOut;
    }
    if (stuck_.load(std::memory_order_relaxed) > 0) {
      return EngineHealth::kDegraded;
    }
    const std::uint64_t admits = window_of(&Epoch::admits);
    const std::uint64_t sheds = window_of(&Epoch::sheds);
    const std::uint64_t retries = window_of(&Epoch::retries);
    if (admits + sheds > 0) {
      const double shed_rate = static_cast<double>(sheds) /
                               static_cast<double>(admits + sheds);
      if (shed_rate >= thresholds_.shed_rate) {
        return EngineHealth::kDegraded;
      }
    }
    if (admits > 0) {
      const double retry_rate =
          static_cast<double>(retries) / static_cast<double>(admits);
      if (retry_rate >= thresholds_.retry_rate) {
        return EngineHealth::kDegraded;
      }
    }
    return EngineHealth::kHealthy;
  }

 private:
  struct Epoch {
    std::atomic<std::uint64_t> admits{0};
    std::atomic<std::uint64_t> sheds{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> finishes{0};
  };

  [[nodiscard]] std::uint64_t window_of(
      std::atomic<std::uint64_t> Epoch::* field) const noexcept {
    return (current_.*field).load(std::memory_order_relaxed) +
           (previous_.*field).load(std::memory_order_relaxed);
  }

  void rotate() noexcept {
    const std::lock_guard<std::mutex> lock(rotate_mutex_);
    // Re-check under the lock: a racing finisher may have rotated already.
    if (current_.finishes.load(std::memory_order_relaxed) <
        thresholds_.epoch_events) {
      return;
    }
    previous_.admits.store(current_.admits.exchange(0),
                           std::memory_order_relaxed);
    previous_.sheds.store(current_.sheds.exchange(0),
                          std::memory_order_relaxed);
    previous_.retries.store(current_.retries.exchange(0),
                            std::memory_order_relaxed);
    previous_.finishes.store(current_.finishes.exchange(0),
                             std::memory_order_relaxed);
  }

  HealthThresholds thresholds_{};
  Epoch current_;
  Epoch previous_;
  std::atomic<std::uint64_t> stuck_{0};
  std::atomic<bool> browned_out_{false};
  std::mutex rotate_mutex_;
};

}  // namespace tilq
