#include "support/env.hpp"

#include <omp.h>

#include <sstream>

#include "support/common.hpp"

namespace tilq {

const char* to_string(Schedule schedule) noexcept {
  switch (schedule) {
    case Schedule::kStatic:
      return "static";
    case Schedule::kDynamic:
      return "dynamic";
  }
  return "?";
}

int max_threads() noexcept { return omp_get_max_threads(); }

void set_threads(int threads) {
  require(threads >= 1, "set_threads: thread count must be >= 1");
  omp_set_num_threads(threads);
}

void set_runtime_schedule(Schedule schedule) {
  // Chunk size 1: each dispatch hands out exactly one tile, which is the
  // granularity the paper's experiments assume ("each tile is assigned to
  // one thread").
  switch (schedule) {
    case Schedule::kStatic:
      omp_set_schedule(omp_sched_static, 1);
      break;
    case Schedule::kDynamic:
      omp_set_schedule(omp_sched_dynamic, 1);
      break;
  }
}

Schedule runtime_schedule() {
  omp_sched_t kind = omp_sched_static;
  int chunk = 0;
  omp_get_schedule(&kind, &chunk);
  // Mask off the monotonic modifier bit before comparing.
  const auto base = static_cast<omp_sched_t>(kind & ~omp_sched_monotonic);
  return base == omp_sched_dynamic ? Schedule::kDynamic : Schedule::kStatic;
}

std::string environment_summary() {
  std::ostringstream out;
  out << "threads=" << max_threads() << " openmp=" << _OPENMP
      << " schedule=" << to_string(runtime_schedule());
  return out.str();
}

}  // namespace tilq
