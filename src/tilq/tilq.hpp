// Umbrella header: the whole tilq public API.
//
//   #include "tilq/tilq.hpp"
//
//   auto graph = tilq::make_collection_graph("GAP-road");
//   tilq::Config config;                       // the paper's 3 dimensions
//   config.strategy = tilq::MaskStrategy::kHybrid;
//   auto c = tilq::masked_spgemm<tilq::PlusPair<std::int64_t>>(
//       mask, a, b, config);
//
// See README.md for the guided tour and DESIGN.md for the architecture.
#pragma once

// Support substrate.
#include "support/common.hpp"
#include "support/env.hpp"
#include "support/errors.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/panic.hpp"
#include "support/parallel.hpp"
#include "support/perf.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

// Sparse matrix substrate.
#include "sparse/build.hpp"
#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/ops.hpp"
#include "sparse/reorder.hpp"
#include "sparse/serialize.hpp"
#include "sparse/stats.hpp"
#include "sparse/validate.hpp"
#include "sparse/vector.hpp"

// Graph generators and the synthetic collection.
#include "gen/circuit.hpp"
#include "gen/collection.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/road_network.hpp"
#include "gen/watts_strogatz.hpp"
#include "gen/web_graph.hpp"

// Accumulators.
#include "accum/accumulator.hpp"
#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "accum/workspace_pool.hpp"

// Core masked-SpGEMM.
#include "core/column_spgemm.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/kernels.hpp"
#include "core/masked_spgemm.hpp"
#include "core/masked_spgemm_2d.hpp"
#include "core/plan.hpp"
#include "core/model.hpp"
#include "core/semiring.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "core/tiling.hpp"
#include "core/tuner.hpp"
#include "core/work_estimate.hpp"

// GraphBLAS-flavoured facade.
#include "grb/grb.hpp"

// Baseline policies.
#include "baselines/baselines.hpp"

// Graph algorithms.
#include "algos/betweenness.hpp"
#include "algos/bfs.hpp"
#include "algos/bfs_la.hpp"
#include "algos/components.hpp"
#include "algos/kcore.hpp"
#include "algos/ktruss.hpp"
#include "algos/pagerank.hpp"
#include "algos/triangle_count.hpp"
