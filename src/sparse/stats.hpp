// Matrix statistics used by the heuristics (accumulator sizing, SS:GB-like
// policy choice) and by the Table-I inventory bench.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

/// Structural summary of a CSR matrix.
template <class I = std::int64_t>
struct MatrixStats {
  I rows = 0;
  I cols = 0;
  std::int64_t nnz = 0;
  I max_row_nnz = 0;
  double mean_row_nnz = 0.0;
  double row_nnz_stddev = 0.0;
  I empty_rows = 0;
  /// 99th-percentile row nnz — distinguishes skewed (social/web) from
  /// uniform (road) graphs.
  I p99_row_nnz = 0;
};

template <class T, class I>
MatrixStats<I> compute_stats(const Csr<T, I>& a) {
  MatrixStats<I> s;
  s.rows = a.rows();
  s.cols = a.cols();
  s.nnz = static_cast<std::int64_t>(a.nnz());
  if (a.rows() == 0) {
    return s;
  }

  std::vector<I> row_nnz(static_cast<std::size_t>(a.rows()));
  double sum = 0.0;
  double sum_sq = 0.0;
  for (I i = 0; i < a.rows(); ++i) {
    const I d = a.row_nnz(i);
    row_nnz[static_cast<std::size_t>(i)] = d;
    s.max_row_nnz = std::max(s.max_row_nnz, d);
    if (d == 0) {
      ++s.empty_rows;
    }
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
  }
  const double n = static_cast<double>(a.rows());
  s.mean_row_nnz = sum / n;
  s.row_nnz_stddev = std::sqrt(std::max(0.0, sum_sq / n - s.mean_row_nnz * s.mean_row_nnz));

  std::nth_element(row_nnz.begin(),
                   row_nnz.begin() + static_cast<std::ptrdiff_t>(0.99 * n),
                   row_nnz.end());
  s.p99_row_nnz = row_nnz[static_cast<std::size_t>(0.99 * n)];
  return s;
}

/// Maximum nnz(M[i,:]) over rows [row_begin, row_end) — the accumulator
/// sizing rule from §III-C ("the max can be taken over the subset of rows
/// owned by the thread, if using static scheduling").
template <class T, class I>
I max_row_nnz(const Csr<T, I>& m, I row_begin, I row_end) {
  I result = 0;
  for (I i = row_begin; i < row_end; ++i) {
    result = std::max(result, m.row_nnz(i));
  }
  return result;
}

template <class T, class I>
I max_row_nnz(const Csr<T, I>& m) {
  return max_row_nnz(m, I{0}, m.rows());
}

}  // namespace tilq
