// Structural CSR validation with a machine-readable defect report.
// `Csr::check()` answers yes/no; `validate()` answers *what* is broken and
// *where*, which is what error messages, the structure-corruption fuzzer,
// and plan()-boundary validation (Config::validate_inputs) need. O(nnz),
// single pass, stops collecting after `max_defects` (the scan itself always
// completes so `ok()` is exact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "support/common.hpp"

namespace tilq {

/// One category per way a CSR can be structurally broken.
enum class DefectKind {
  kRowPtrNonMonotone,  ///< row_ptr not non-decreasing from 0 (or negative)
  kColumnOutOfRange,   ///< col_idx entry < 0 or >= cols
  kUnsortedColumns,    ///< columns within a row not strictly increasing
                       ///< (covers duplicates)
  kNnzOverflow,        ///< row_ptr.back() disagrees with the col_idx/values
                       ///< lengths, or an array exceeds the index type's range
};

[[nodiscard]] constexpr const char* to_string(DefectKind kind) noexcept {
  switch (kind) {
    case DefectKind::kRowPtrNonMonotone:
      return "rowptr-non-monotone";
    case DefectKind::kColumnOutOfRange:
      return "column-out-of-range";
    case DefectKind::kUnsortedColumns:
      return "unsorted-columns";
    case DefectKind::kNnzOverflow:
      return "nnz-overflow";
  }
  return "?";
}

/// One located defect. `row` is the offending matrix row (-1 when the
/// defect is not row-local) and `position` the flat index into the array
/// the kind refers to (row_ptr for kRowPtrNonMonotone, col_idx otherwise;
/// -1 for whole-array length mismatches).
struct Defect {
  DefectKind kind;
  std::int64_t row = -1;
  std::int64_t position = -1;

  friend bool operator==(const Defect&, const Defect&) = default;
};

struct ValidationReport {
  std::vector<Defect> defects;   ///< at most `max_defects`, in scan order
  std::int64_t defect_count = 0; ///< true total, may exceed defects.size()

  [[nodiscard]] bool ok() const noexcept { return defect_count == 0; }

  /// One-line human rendering, e.g.
  /// "3 structural defect(s); first: unsorted-columns at row 4 (col_idx[17])".
  [[nodiscard]] std::string summary() const {
    if (ok()) {
      return "structurally valid";
    }
    std::string s = std::to_string(defect_count) + " structural defect(s)";
    if (!defects.empty()) {
      const Defect& d = defects.front();
      s += "; first: ";
      s += to_string(d.kind);
      if (d.row >= 0) {
        s += " at row " + std::to_string(d.row);
      }
      if (d.position >= 0) {
        s += (d.kind == DefectKind::kRowPtrNonMonotone ? " (row_ptr["
                                                       : " (col_idx[") +
             std::to_string(d.position) + "])";
      }
    }
    return s;
  }
};

/// Scans `m` for structural defects. Collects at most `max_defects` located
/// defects but always counts all of them.
template <class T, class I>
[[nodiscard]] ValidationReport validate(const Csr<T, I>& m,
                                        std::size_t max_defects = 16) {
  ValidationReport report;
  const auto add = [&](DefectKind kind, std::int64_t row,
                       std::int64_t position) {
    if (report.defects.size() < max_defects) {
      report.defects.push_back({kind, row, position});
    }
    ++report.defect_count;
  };

  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  const std::int64_t rows = static_cast<std::int64_t>(m.rows());
  const std::int64_t cols = static_cast<std::int64_t>(m.cols());

  // row_ptr shape + monotonicity. The Csr constructor enforces size and
  // front()==0, but validate() must stand alone (the fuzzer mutates arrays
  // in place through the mutable_* accessors).
  if (row_ptr.empty() ||
      row_ptr.size() != static_cast<std::size_t>(rows) + 1) {
    add(DefectKind::kNnzOverflow, -1, -1);
    return report;  // no trustworthy row extents — nothing else is scannable
  }
  if (row_ptr.front() != 0) {
    add(DefectKind::kRowPtrNonMonotone, 0, 0);
  }
  bool monotone = row_ptr.front() == 0;
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    if (row_ptr[r + 1] < row_ptr[r]) {
      add(DefectKind::kRowPtrNonMonotone, static_cast<std::int64_t>(r),
          static_cast<std::int64_t>(r + 1));
      monotone = false;
    }
  }
  if (static_cast<std::size_t>(row_ptr.back()) != col_idx.size() ||
      col_idx.size() != m.values().size() || row_ptr.back() < 0) {
    add(DefectKind::kNnzOverflow, -1, -1);
    monotone = false;
  }
  if (!monotone) {
    return report;  // per-row extents unreliable; column scan would be UB
  }

  for (std::int64_t i = 0; i < rows; ++i) {
    const auto begin = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    const auto end = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i) + 1]);
    for (std::size_t p = begin; p < end; ++p) {
      const std::int64_t col = static_cast<std::int64_t>(col_idx[p]);
      if (col < 0 || col >= cols) {
        add(DefectKind::kColumnOutOfRange, i, static_cast<std::int64_t>(p));
      } else if (p > begin &&
                 static_cast<std::int64_t>(col_idx[p - 1]) >= col) {
        add(DefectKind::kUnsortedColumns, i, static_cast<std::int64_t>(p));
      }
    }
  }
  return report;
}

/// Validates `m` and throws PreconditionError carrying the report summary
/// when it is structurally broken. `what` names the operand in the message
/// ("mask", "A", ...).
template <class T, class I>
void require_valid(const Csr<T, I>& m, const char* what) {
  const ValidationReport report = validate(m);
  if (!report.ok()) {
    throw PreconditionError(std::string("invalid CSR operand '") + what +
                            "': " + report.summary());
  }
}

}  // namespace tilq
