#include "sparse/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace tilq {
namespace {

constexpr std::array<char, 8> kMagic = {'T', 'I', 'L', 'Q', 'C', 'S', 'R', '1'};
constexpr std::uint32_t kValueTagF64 = 1;
constexpr std::uint32_t kIndexWidth64 = 8;

template <class T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
void write_array(std::ostream& out, const std::vector<T>& data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <class T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw SerializeError("tilq binary: truncated header");
  }
  return value;
}

template <class T>
std::vector<T> read_array(std::istream& in, std::size_t count) {
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) {
    throw SerializeError("tilq binary: truncated payload");
  }
  return data;
}

}  // namespace

void write_binary(std::ostream& out, const Csr<double, std::int64_t>& a) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kValueTagF64);
  write_pod(out, kIndexWidth64);
  write_pod(out, a.rows());
  write_pod(out, a.cols());
  write_pod(out, a.nnz());
  const std::vector<std::int64_t> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  const std::vector<std::int64_t> col_idx(a.col_idx().begin(), a.col_idx().end());
  const std::vector<double> values(a.values().begin(), a.values().end());
  write_array(out, row_ptr);
  write_array(out, col_idx);
  write_array(out, values);
  if (!out) {
    throw SerializeError("tilq binary: write failed");
  }
}

void write_binary_file(const std::string& path,
                       const Csr<double, std::int64_t>& a) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw SerializeError("tilq binary: cannot open for writing: " + path);
  }
  write_binary(out, a);
}

Csr<double, std::int64_t> read_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw SerializeError("tilq binary: bad magic (not a TILQCSR1 file)");
  }
  if (read_pod<std::uint32_t>(in) != kValueTagF64) {
    throw SerializeError("tilq binary: unsupported value type");
  }
  if (read_pod<std::uint32_t>(in) != kIndexWidth64) {
    throw SerializeError("tilq binary: unsupported index width");
  }
  const auto rows = read_pod<std::int64_t>(in);
  const auto cols = read_pod<std::int64_t>(in);
  const auto nnz = read_pod<std::int64_t>(in);
  if (rows < 0 || cols < 0 || nnz < 0) {
    throw SerializeError("tilq binary: negative dimensions");
  }

  auto row_ptr =
      read_array<std::int64_t>(in, static_cast<std::size_t>(rows) + 1);
  auto col_idx = read_array<std::int64_t>(in, static_cast<std::size_t>(nnz));
  auto values = read_array<double>(in, static_cast<std::size_t>(nnz));

  Csr<double, std::int64_t> result;
  try {
    result = Csr<double, std::int64_t>(rows, cols, std::move(row_ptr),
                                       std::move(col_idx), std::move(values));
  } catch (const PreconditionError& e) {
    throw SerializeError(std::string("tilq binary: inconsistent arrays: ") +
                         e.what());
  }
  if (!result.check()) {
    throw SerializeError("tilq binary: structural validation failed");
  }
  return result;
}

Csr<double, std::int64_t> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializeError("tilq binary: cannot open: " + path);
  }
  return read_binary(in);
}

}  // namespace tilq
