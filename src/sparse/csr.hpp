// Compressed Sparse Row matrix — the computation format for every kernel in
// tilq (the paper stores all operands in CSR, §II-A). Column indices within
// a row are kept sorted: the co-iteration kernel binary-searches B rows and
// both accumulators gather output in mask order, so sortedness is a core
// invariant (validated by `Csr::check`).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace tilq {

template <class T, class I = std::int64_t>
class Csr {
 public:
  using value_type = T;
  using index_type = I;

  /// Empty 0x0 matrix.
  Csr() : row_ptr_(1, I{0}) {}

  /// rows x cols matrix with no entries.
  Csr(I rows, I cols)
      : rows_(rows), cols_(cols), row_ptr_(static_cast<std::size_t>(rows) + 1, I{0}) {
    require(rows >= 0 && cols >= 0, "Csr: negative dimension");
  }

  /// Adopts pre-built arrays. `row_ptr` must have rows+1 monotone entries
  /// starting at 0; `col_idx`/`values` must have row_ptr.back() entries with
  /// sorted, in-range, duplicate-free columns per row. Verified in debug
  /// builds; call check() to verify explicitly.
  Csr(I rows, I cols, std::vector<I> row_ptr, std::vector<I> col_idx,
      std::vector<T> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    require(rows >= 0 && cols >= 0, "Csr: negative dimension");
    require(row_ptr_.size() == static_cast<std::size_t>(rows) + 1,
            "Csr: row_ptr must have rows + 1 entries");
    require(col_idx_.size() == values_.size(),
            "Csr: col_idx and values must have equal length");
    require(!row_ptr_.empty() && row_ptr_.front() == 0 &&
                static_cast<std::size_t>(row_ptr_.back()) == col_idx_.size(),
            "Csr: row_ptr must start at 0 and end at nnz");
    assert(check());
  }

  [[nodiscard]] I rows() const noexcept { return rows_; }
  [[nodiscard]] I cols() const noexcept { return cols_; }
  [[nodiscard]] I nnz() const noexcept { return row_ptr_.back(); }
  [[nodiscard]] bool empty() const noexcept { return nnz() == 0; }

  [[nodiscard]] std::span<const I> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const I> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const T> values() const noexcept { return values_; }

  /// Number of stored entries in row i — constant time, the property the
  /// FLOP estimator (Eq 2) relies on. Bounds-checked when TILQ_HARDENED.
  [[nodiscard]] I row_nnz(I i) const TILQ_CHECK_NOEXCEPT {
    TILQ_CHECK(i >= 0 && i < rows_, "Csr::row_nnz: row index out of range");
    const auto r = static_cast<std::size_t>(i);
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  /// Column indices of row i (sorted).
  [[nodiscard]] std::span<const I> row_cols(I i) const TILQ_CHECK_NOEXCEPT {
    TILQ_CHECK(i >= 0 && i < rows_, "Csr::row_cols: row index out of range");
    const auto r = static_cast<std::size_t>(i);
    return {col_idx_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Values of row i, aligned with row_cols(i).
  [[nodiscard]] std::span<const T> row_vals(I i) const TILQ_CHECK_NOEXCEPT {
    TILQ_CHECK(i >= 0 && i < rows_, "Csr::row_vals: row index out of range");
    const auto r = static_cast<std::size_t>(i);
    return {values_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// True iff entry (i, j) is stored (binary search).
  [[nodiscard]] bool contains(I i, I j) const noexcept {
    const auto cols = row_cols(i);
    auto it = std::lower_bound(cols.begin(), cols.end(), j);
    return it != cols.end() && *it == j;
  }

  /// Value at (i, j), or T{} when the entry is not stored.
  [[nodiscard]] T at(I i, I j) const noexcept {
    const auto cols = row_cols(i);
    auto it = std::lower_bound(cols.begin(), cols.end(), j);
    if (it == cols.end() || *it != j) {
      return T{};
    }
    return values_[static_cast<std::size_t>(
        row_ptr_[static_cast<std::size_t>(i)] + (it - cols.begin()))];
  }

  /// Full structural validation: monotone row_ptr, in-range columns, sorted
  /// and duplicate-free rows. O(nnz).
  [[nodiscard]] bool check() const noexcept {
    if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1) return false;
    if (row_ptr_.front() != 0) return false;
    for (I i = 0; i < rows_; ++i) {
      const auto r = static_cast<std::size_t>(i);
      if (row_ptr_[r] > row_ptr_[r + 1]) return false;
      for (I p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        const I col = col_idx_[static_cast<std::size_t>(p)];
        if (col < 0 || col >= cols_) return false;
        if (p > row_ptr_[r] && col_idx_[static_cast<std::size_t>(p - 1)] >= col) {
          return false;
        }
      }
    }
    return static_cast<std::size_t>(row_ptr_.back()) == col_idx_.size() &&
           col_idx_.size() == values_.size();
  }

  /// Structural equality (shape, pattern, and values).
  friend bool operator==(const Csr&, const Csr&) = default;

  /// Mutable access for builders in this library. Application code should
  /// treat Csr as immutable after construction.
  [[nodiscard]] std::vector<I>& mutable_row_ptr() noexcept { return row_ptr_; }
  [[nodiscard]] std::vector<I>& mutable_col_idx() noexcept { return col_idx_; }
  [[nodiscard]] std::vector<T>& mutable_values() noexcept { return values_; }

 private:
  I rows_ = 0;
  I cols_ = 0;
  std::vector<I> row_ptr_;
  std::vector<I> col_idx_;
  std::vector<T> values_;
};

}  // namespace tilq
