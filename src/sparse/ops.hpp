// Structural operations on CSR matrices: transpose, symmetrize, diagonal
// removal, triangular extraction, and pattern utilities. These are the
// pre-processing steps the triangle-counting / k-truss workloads need
// (e.g. the lower-triangular extraction for the Sandia L·L⊙L variant).
#pragma once

#include <algorithm>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/build.hpp"
#include "sparse/csr.hpp"
#include "support/common.hpp"
#include "support/parallel.hpp"

namespace tilq {

/// Transpose via counting sort on columns; O(nnz + rows + cols). Output rows
/// are sorted because input rows are scanned in order.
template <class T, class I>
Csr<T, I> transpose(const Csr<T, I>& a) {
  const I rows = a.rows();
  const I cols = a.cols();
  std::vector<I> counts(static_cast<std::size_t>(cols), I{0});
  for (const I col : a.col_idx()) {
    ++counts[static_cast<std::size_t>(col)];
  }
  std::vector<I> row_ptr = exclusive_scan<I>(counts);
  std::vector<I> cursor(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<I> col_idx(static_cast<std::size_t>(a.nnz()));
  std::vector<T> values(static_cast<std::size_t>(a.nnz()));
  for (I i = 0; i < rows; ++i) {
    const auto acols = a.row_cols(i);
    const auto avals = a.row_vals(i);
    for (std::size_t p = 0; p < acols.size(); ++p) {
      const auto slot =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(acols[p])]++);
      col_idx[slot] = i;
      values[slot] = avals[p];
    }
  }
  return Csr<T, I>(cols, rows, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// A + Aᵀ on the pattern: returns the symmetrized matrix where the value of
/// a mirrored entry is taken from whichever of A/Aᵀ stores it (summed when
/// both do). Used to turn directed web graphs into undirected adjacency
/// matrices for triangle counting.
template <class T, class I>
Csr<T, I> symmetrize(const Csr<T, I>& a) {
  require(a.rows() == a.cols(), "symmetrize: matrix must be square");
  Coo<T, I> coo(a.rows(), a.cols());
  coo.reserve(2 * static_cast<std::size_t>(a.nnz()));
  for (I i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      coo.push_unchecked(i, cols[p], vals[p]);
      if (cols[p] != i) {
        coo.push_unchecked(cols[p], i, vals[p]);
      }
    }
  }
  return build_csr(coo, DupPolicy::kKeepFirst);
}

/// Removes stored diagonal entries (self-loops in graph terms).
template <class T, class I>
Csr<T, I> remove_diagonal(const Csr<T, I>& a) {
  std::vector<I> row_ptr(static_cast<std::size_t>(a.rows()) + 1, I{0});
  std::vector<I> col_idx;
  std::vector<T> values;
  col_idx.reserve(static_cast<std::size_t>(a.nnz()));
  values.reserve(static_cast<std::size_t>(a.nnz()));
  for (I i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      if (cols[p] != i) {
        col_idx.push_back(cols[p]);
        values.push_back(vals[p]);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<I>(col_idx.size());
  }
  return Csr<T, I>(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Strictly lower-triangular part (entries with col < row).
template <class T, class I>
Csr<T, I> tril(const Csr<T, I>& a) {
  std::vector<I> row_ptr(static_cast<std::size_t>(a.rows()) + 1, I{0});
  std::vector<I> col_idx;
  std::vector<T> values;
  for (I i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size() && cols[p] < i; ++p) {
      col_idx.push_back(cols[p]);
      values.push_back(vals[p]);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<I>(col_idx.size());
  }
  return Csr<T, I>(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Strictly upper-triangular part (entries with col > row).
template <class T, class I>
Csr<T, I> triu(const Csr<T, I>& a) {
  std::vector<I> row_ptr(static_cast<std::size_t>(a.rows()) + 1, I{0});
  std::vector<I> col_idx;
  std::vector<T> values;
  for (I i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    auto first = std::upper_bound(cols.begin(), cols.end(), i);
    for (auto it = first; it != cols.end(); ++it) {
      col_idx.push_back(*it);
      values.push_back(vals[static_cast<std::size_t>(it - cols.begin())]);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<I>(col_idx.size());
  }
  return Csr<T, I>(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Same pattern as `a` with every stored value replaced by `value` —
/// boolean/structural masks (the paper treats the mask as Boolean, §IV-A).
template <class T, class I>
Csr<T, I> with_uniform_values(const Csr<T, I>& a, T value) {
  std::vector<I> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<I> col_idx(a.col_idx().begin(), a.col_idx().end());
  std::vector<T> values(static_cast<std::size_t>(a.nnz()), value);
  return Csr<T, I>(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Same pattern as `a` with values converted to `To` — used to move a
/// generated adjacency matrix (double) into the value domain a semiring
/// needs (e.g. int64 for PlusPair triangle counting).
template <class To, class T, class I>
Csr<To, I> convert_values(const Csr<T, I>& a) {
  std::vector<I> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<I> col_idx(a.col_idx().begin(), a.col_idx().end());
  std::vector<To> values;
  values.reserve(static_cast<std::size_t>(a.nnz()));
  for (const T v : a.values()) {
    values.push_back(static_cast<To>(v));
  }
  return Csr<To, I>(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                    std::move(values));
}

/// True iff the two matrices have identical patterns (shape + structure),
/// ignoring values.
template <class T, class I>
bool same_pattern(const Csr<T, I>& a, const Csr<T, I>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::ranges::equal(a.row_ptr(), b.row_ptr()) &&
         std::ranges::equal(a.col_idx(), b.col_idx());
}

}  // namespace tilq
