// Compressed Sparse Column matrix. The paper analyses row-wise saxpy over
// CSR and notes "by symmetry, our analysis also applies to column-wise
// saxpy over CSC operands" (§II-A); this type plus core/column_spgemm.hpp
// make that symmetry executable: a CSC matrix is stored as the CSR of its
// transpose, and the column-wise kernels are the row-wise kernels applied
// to the duals.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "sparse/csr.hpp"
#include "sparse/ops.hpp"

namespace tilq {

template <class T, class I = std::int64_t>
class Csc {
 public:
  using value_type = T;
  using index_type = I;

  Csc() = default;

  /// Wraps the CSR of the transpose: `transposed_csr` must be the rows x
  /// cols transpose of the logical matrix.
  explicit Csc(Csr<T, I> transposed_csr) : dual_(std::move(transposed_csr)) {}

  /// Builds from a CSR matrix (O(nnz) transpose).
  static Csc from_csr(const Csr<T, I>& a) { return Csc(transpose(a)); }

  /// Converts back to CSR (O(nnz) transpose).
  [[nodiscard]] Csr<T, I> to_csr() const { return transpose(dual_); }

  [[nodiscard]] I rows() const noexcept { return dual_.cols(); }
  [[nodiscard]] I cols() const noexcept { return dual_.rows(); }
  [[nodiscard]] I nnz() const noexcept { return dual_.nnz(); }

  /// Row indices of column j (sorted).
  [[nodiscard]] std::span<const I> col_rows(I j) const noexcept {
    return dual_.row_cols(j);
  }
  /// Values of column j, aligned with col_rows(j).
  [[nodiscard]] std::span<const T> col_vals(I j) const noexcept {
    return dual_.row_vals(j);
  }
  [[nodiscard]] I col_nnz(I j) const noexcept { return dual_.row_nnz(j); }

  [[nodiscard]] bool contains(I i, I j) const noexcept {
    return dual_.contains(j, i);
  }
  [[nodiscard]] T at(I i, I j) const noexcept { return dual_.at(j, i); }

  /// The underlying CSR of the transpose — what the column-wise kernels
  /// actually execute on.
  [[nodiscard]] const Csr<T, I>& dual() const noexcept { return dual_; }

  [[nodiscard]] bool check() const noexcept { return dual_.check(); }

  friend bool operator==(const Csc&, const Csc&) = default;

 private:
  Csr<T, I> dual_;
};

}  // namespace tilq
