// Sparse vector — the operand type for the masked SpMV / SpMSpV kernels
// (core/spmv.hpp). A sparse vector is a sorted list of (index, value)
// pairs plus a logical dimension; the GraphBLAS frontier/visited vectors of
// BFS and betweenness centrality are represented this way.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "support/common.hpp"

namespace tilq {

template <class T, class I = std::int64_t>
class SparseVector {
 public:
  using value_type = T;
  using index_type = I;

  SparseVector() = default;

  explicit SparseVector(I dim) : dim_(dim) {
    require(dim >= 0, "SparseVector: negative dimension");
  }

  /// Adopts pre-built arrays; indices must be sorted, in-range, and
  /// duplicate-free — callers verify with check() when the source is
  /// untrusted.
  SparseVector(I dim, std::vector<I> indices, std::vector<T> values)
      : dim_(dim), indices_(std::move(indices)), values_(std::move(values)) {
    require(dim >= 0, "SparseVector: negative dimension");
    require(indices_.size() == values_.size(),
            "SparseVector: index/value length mismatch");
  }

  /// A vector with a single entry — e.g. a BFS source frontier.
  static SparseVector unit(I dim, I index, T value = T{1}) {
    require(index >= 0 && index < dim, "SparseVector::unit: index out of range");
    return SparseVector(dim, {index}, {value});
  }

  [[nodiscard]] I dim() const noexcept { return dim_; }
  [[nodiscard]] I nnz() const noexcept { return static_cast<I>(indices_.size()); }
  [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }

  [[nodiscard]] std::span<const I> indices() const noexcept { return indices_; }
  [[nodiscard]] std::span<const T> values() const noexcept { return values_; }

  [[nodiscard]] bool contains(I index) const noexcept {
    return std::binary_search(indices_.begin(), indices_.end(), index);
  }

  /// Value at `index`, or T{} when absent.
  [[nodiscard]] T at(I index) const noexcept {
    const auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
    if (it == indices_.end() || *it != index) {
      return T{};
    }
    return values_[static_cast<std::size_t>(it - indices_.begin())];
  }

  /// Structural validity: sorted, duplicate-free, in-range.
  [[nodiscard]] bool check() const noexcept {
    if (indices_.size() != values_.size()) return false;
    for (std::size_t p = 0; p < indices_.size(); ++p) {
      if (indices_[p] < 0 || indices_[p] >= dim_) return false;
      if (p > 0 && indices_[p - 1] >= indices_[p]) return false;
    }
    return true;
  }

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  I dim_ = 0;
  std::vector<I> indices_;
  std::vector<T> values_;
};

/// Builds a sparse vector from unordered (index, value) pairs; duplicate
/// indices are combined with `combine` (defaults to keep-last).
template <class T, class I>
SparseVector<T, I> make_sparse_vector(I dim, std::vector<std::pair<I, T>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<I> indices;
  std::vector<T> values;
  indices.reserve(entries.size());
  values.reserve(entries.size());
  for (const auto& [index, value] : entries) {
    if (!indices.empty() && indices.back() == index) {
      values.back() = value;  // keep-last
    } else {
      indices.push_back(index);
      values.push_back(value);
    }
  }
  return SparseVector<T, I>(dim, std::move(indices), std::move(values));
}

/// Dense complement of the vector's pattern: all indices NOT present. Used
/// for complemented masks (BFS's "not yet visited").
template <class T, class I>
std::vector<I> pattern_complement(const SparseVector<T, I>& v) {
  std::vector<I> result;
  result.reserve(static_cast<std::size_t>(v.dim() - v.nnz()));
  const auto present = v.indices();
  std::size_t p = 0;
  for (I i = 0; i < v.dim(); ++i) {
    if (p < present.size() && present[p] == i) {
      ++p;
    } else {
      result.push_back(i);
    }
  }
  return result;
}

}  // namespace tilq
