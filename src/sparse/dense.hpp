// Dense matrix — test oracle only. The reference masked-SpGEMM used by the
// unit/property tests multiplies dense copies so that every sparse kernel
// variant is checked against an implementation with no shared code.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "support/common.hpp"

namespace tilq {

template <class T, class I = std::int64_t>
class DenseMatrix {
 public:
  DenseMatrix(I rows, I cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    require(rows >= 0 && cols >= 0, "DenseMatrix: negative dimension");
  }

  [[nodiscard]] I rows() const noexcept { return rows_; }
  [[nodiscard]] I cols() const noexcept { return cols_; }

  [[nodiscard]] T& operator()(I i, I j) TILQ_CHECK_NOEXCEPT {
    TILQ_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "DenseMatrix: index out of range");
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const T& operator()(I i, I j) const TILQ_CHECK_NOEXCEPT {
    TILQ_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "DenseMatrix: index out of range");
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

 private:
  I rows_;
  I cols_;
  std::vector<T> data_;
};

/// Expands a CSR matrix to dense.
template <class T, class I>
DenseMatrix<T, I> to_dense(const Csr<T, I>& a) {
  DenseMatrix<T, I> d(a.rows(), a.cols());
  for (I i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      d(i, cols[p]) = vals[p];
    }
  }
  return d;
}

}  // namespace tilq
