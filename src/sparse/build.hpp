// COO -> CSR conversion and small CSR constructors. The builder is the only
// place where unsorted/duplicated input is legal; everything downstream
// relies on the Csr invariants (sorted, duplicate-free rows).
#pragma once

#include <algorithm>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "support/common.hpp"
#include "support/parallel.hpp"

namespace tilq {

/// How the builder combines triplets with identical (row, col).
enum class DupPolicy {
  kSum,        ///< values are added (GraphBLAS build default)
  kKeepFirst,  ///< first occurrence wins
  kError,      ///< duplicates throw PreconditionError
};

/// Builds a CSR matrix from triplets. O(nnz log nnz) via counting-sort into
/// rows followed by per-row sorts; deterministic for every DupPolicy.
template <class T, class I>
Csr<T, I> build_csr(const Coo<T, I>& coo, DupPolicy policy = DupPolicy::kSum) {
  const I rows = coo.rows();
  const auto& entries = coo.entries();

  // Pass 1: row counts -> row offsets.
  std::vector<I> counts(static_cast<std::size_t>(rows), I{0});
  for (const auto& e : entries) {
    ++counts[static_cast<std::size_t>(e.row)];
  }
  std::vector<I> row_ptr = exclusive_scan<I>(counts);

  // Pass 2: scatter into row buckets.
  std::vector<I> cursor(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<I> col_idx(entries.size());
  std::vector<T> values(entries.size());
  for (const auto& e : entries) {
    const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.row)]++);
    col_idx[slot] = e.col;
    values[slot] = e.value;
  }

  // Pass 3: sort each row by column, stably pairing values, then combine
  // duplicates in place.
  std::vector<I> out_row_ptr(static_cast<std::size_t>(rows) + 1, I{0});
  std::vector<std::size_t> perm;
  std::vector<I> tmp_cols;
  std::vector<T> tmp_vals;
  I write = 0;
  for (I i = 0; i < rows; ++i) {
    const auto lo = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    const auto hi = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i) + 1]);
    const std::size_t len = hi - lo;
    perm.resize(len);
    for (std::size_t p = 0; p < len; ++p) {
      perm[p] = lo + p;
    }
    std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return col_idx[a] < col_idx[b];
    });

    tmp_cols.clear();
    tmp_vals.clear();
    for (std::size_t p = 0; p < len; ++p) {
      const I col = col_idx[perm[p]];
      const T val = values[perm[p]];
      if (!tmp_cols.empty() && tmp_cols.back() == col) {
        switch (policy) {
          case DupPolicy::kSum:
            tmp_vals.back() = tmp_vals.back() + val;
            break;
          case DupPolicy::kKeepFirst:
            break;
          case DupPolicy::kError:
            throw PreconditionError("build_csr: duplicate entry");
        }
      } else {
        tmp_cols.push_back(col);
        tmp_vals.push_back(val);
      }
    }

    // Compact back into the output arrays (write <= lo always holds).
    for (std::size_t p = 0; p < tmp_cols.size(); ++p) {
      col_idx[static_cast<std::size_t>(write) + p] = tmp_cols[p];
      values[static_cast<std::size_t>(write) + p] = tmp_vals[p];
    }
    write += static_cast<I>(tmp_cols.size());
    out_row_ptr[static_cast<std::size_t>(i) + 1] = write;
  }
  col_idx.resize(static_cast<std::size_t>(write));
  values.resize(static_cast<std::size_t>(write));

  return Csr<T, I>(rows, coo.cols(), std::move(out_row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Builds a CSR matrix from an initializer-friendly triplet list — test and
/// example convenience.
template <class T, class I = std::int64_t>
Csr<T, I> csr_from_triplets(I rows, I cols,
                            const std::vector<Triplet<T, I>>& triplets,
                            DupPolicy policy = DupPolicy::kSum) {
  Coo<T, I> coo(rows, cols);
  for (const auto& t : triplets) {
    coo.push(t.row, t.col, t.value);
  }
  return build_csr(coo, policy);
}

/// Identity matrix of order n.
template <class T, class I = std::int64_t>
Csr<T, I> csr_identity(I n) {
  std::vector<I> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<I> col_idx(static_cast<std::size_t>(n));
  std::vector<T> values(static_cast<std::size_t>(n), T{1});
  for (I i = 0; i <= n; ++i) {
    row_ptr[static_cast<std::size_t>(i)] = i;
  }
  for (I i = 0; i < n; ++i) {
    col_idx[static_cast<std::size_t>(i)] = i;
  }
  return Csr<T, I>(n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
}

}  // namespace tilq
