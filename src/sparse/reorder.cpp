#include "sparse/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/build.hpp"
#include "sparse/coo.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {

bool is_permutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const std::int64_t p : perm) {
    if (p < 0 || p >= static_cast<std::int64_t>(perm.size()) ||
        seen[static_cast<std::size_t>(p)]) {
      return false;
    }
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

Permutation invert_permutation(const Permutation& perm) {
  require(is_permutation(perm), "invert_permutation: not a permutation");
  Permutation inverse(perm.size());
  for (std::size_t new_index = 0; new_index < perm.size(); ++new_index) {
    inverse[static_cast<std::size_t>(perm[new_index])] =
        static_cast<std::int64_t>(new_index);
  }
  return inverse;
}

Csr<double, std::int64_t> permute_symmetric(const Csr<double, std::int64_t>& a,
                                            const Permutation& perm) {
  require(a.rows() == a.cols(), "permute_symmetric: matrix must be square");
  require(static_cast<std::int64_t>(perm.size()) == a.rows(),
          "permute_symmetric: permutation size mismatch");
  const Permutation inverse = invert_permutation(perm);

  Coo<double, std::int64_t> coo(a.rows(), a.cols());
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    const std::int64_t new_row = inverse[static_cast<std::size_t>(i)];
    for (std::size_t p = 0; p < cols.size(); ++p) {
      coo.push_unchecked(new_row, inverse[static_cast<std::size_t>(cols[p])],
                         vals[p]);
    }
  }
  return build_csr(coo, DupPolicy::kError);
}

Permutation degree_order(const Csr<double, std::int64_t>& a) {
  require(a.rows() == a.cols(), "degree_order: matrix must be square");
  Permutation perm(static_cast<std::size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::int64_t lhs, std::int64_t rhs) {
                     return a.row_nnz(lhs) > a.row_nnz(rhs);
                   });
  return perm;
}

Permutation rcm_order(const Csr<double, std::int64_t>& a) {
  require(a.rows() == a.cols(), "rcm_order: matrix must be square");
  const std::int64_t n = a.rows();
  Permutation order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);

  // Vertices by ascending degree: BFS roots are picked lowest-degree first
  // (the standard pseudo-peripheral approximation).
  Permutation by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), std::int64_t{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](std::int64_t lhs, std::int64_t rhs) {
                     return a.row_nnz(lhs) < a.row_nnz(rhs);
                   });

  std::vector<std::int64_t> neighbours;
  for (const std::int64_t root : by_degree) {
    if (visited[static_cast<std::size_t>(root)]) {
      continue;
    }
    visited[static_cast<std::size_t>(root)] = true;
    order.push_back(root);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      const std::int64_t u = order[head];
      neighbours.clear();
      for (const std::int64_t v : a.row_cols(u)) {
        if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = true;
          neighbours.push_back(v);
        }
      }
      std::sort(neighbours.begin(), neighbours.end(),
                [&](std::int64_t lhs, std::int64_t rhs) {
                  const auto dl = a.row_nnz(lhs);
                  const auto dr = a.row_nnz(rhs);
                  return dl != dr ? dl < dr : lhs < rhs;
                });
      order.insert(order.end(), neighbours.begin(), neighbours.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Permutation random_order(std::int64_t n, std::uint64_t seed) {
  require(n >= 0, "random_order: negative size");
  Permutation perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform_below(i)]);
  }
  return perm;
}

std::int64_t bandwidth(const Csr<double, std::int64_t>& a) {
  std::int64_t result = 0;
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (const std::int64_t j : a.row_cols(i)) {
      result = std::max(result, std::abs(i - j));
    }
  }
  return result;
}

}  // namespace tilq
