// Vertex reordering — the pre-processing dimension the paper deliberately
// left out ("we did not perform any pre-processing of the data like
// partitioning the graphs, or reorganizing the data", §V-A) and reserved
// for future work. Reordering changes nothing semantically (the product is
// computed on PAPᵀ) but changes everything the paper measures: row-work
// distribution across tiles, accumulator locality, and co-iteration hit
// patterns. bench/ablation_reordering quantifies it.
//
// Orderings provided:
//   degree_order   — vertices by descending degree: clusters the heavy rows
//                    so FLOP-balanced tiles have contiguous hot spots.
//   rcm_order      — reverse Cuthill–McKee: bandwidth reduction, the
//                    classic locality ordering for lattice-like matrices.
//   random_order   — a seeded shuffle, the adversarial baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

/// A permutation: perm[new_index] = old_index. Always a bijection on
/// [0, n).
using Permutation = std::vector<std::int64_t>;

/// True iff `perm` is a bijection on [0, perm.size()).
bool is_permutation(const Permutation& perm);

/// Inverse permutation: inv[old_index] = new_index.
Permutation invert_permutation(const Permutation& perm);

/// Symmetric permutation PAPᵀ of a square matrix: entry (i, j) moves to
/// (inv[i], inv[j]). Rows stay sorted.
Csr<double, std::int64_t> permute_symmetric(const Csr<double, std::int64_t>& a,
                                            const Permutation& perm);

/// Vertices sorted by descending degree (ties by index).
Permutation degree_order(const Csr<double, std::int64_t>& a);

/// Reverse Cuthill–McKee: BFS from a low-degree vertex of each component,
/// neighbours visited in ascending-degree order, final order reversed.
Permutation rcm_order(const Csr<double, std::int64_t>& a);

/// Seeded uniform shuffle.
Permutation random_order(std::int64_t n, std::uint64_t seed);

/// Matrix bandwidth: max |i - j| over stored entries (0 for empty).
std::int64_t bandwidth(const Csr<double, std::int64_t>& a);

}  // namespace tilq
