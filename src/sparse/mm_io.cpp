#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <system_error>

#include "sparse/build.hpp"
#include "sparse/coo.hpp"

namespace tilq {
namespace {

/// Parses one whitespace-delimited token as a 64-bit index with explicit
/// overflow detection — a value past Index max raises MatrixMarketError
/// instead of the silent truncation / stream-failure ambiguity of `>>`.
std::int64_t parse_index(const std::string& token, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw MatrixMarketError(std::string(what) +
                            " overflows the 64-bit index type: " + token);
  }
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw MatrixMarketError(std::string("malformed ") + what + ": '" + token +
                            "'");
  }
  return value;
}

double parse_value(const std::string& token) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw MatrixMarketError("value overflows a double: " + token);
  }
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw MatrixMarketError("malformed value: '" + token + "'");
  }
  return value;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

enum class Field { kReal, kInteger, kPattern };
enum class Symmetry { kGeneral, kSymmetric, kSkew };

struct Header {
  Field field = Field::kReal;
  Symmetry symmetry = Symmetry::kGeneral;
};

Header parse_header(const std::string& line) {
  std::istringstream hs(line);
  std::string banner, object, format, field_str, symmetry_str;
  hs >> banner >> object >> format >> field_str >> symmetry_str;
  if (banner != "%%MatrixMarket" && banner != "%MatrixMarket") {
    throw MatrixMarketError("missing %%MatrixMarket banner");
  }
  if (to_lower(object) != "matrix") {
    throw MatrixMarketError("only 'matrix' objects are supported");
  }
  if (to_lower(format) != "coordinate") {
    throw MatrixMarketError("only 'coordinate' format is supported");
  }

  Header h;
  const std::string field = to_lower(field_str);
  if (field == "real" || field == "double") {
    h.field = Field::kReal;
  } else if (field == "integer") {
    h.field = Field::kInteger;
  } else if (field == "pattern") {
    h.field = Field::kPattern;
  } else {
    throw MatrixMarketError("unsupported field type: " + field_str);
  }

  const std::string symmetry = to_lower(symmetry_str);
  if (symmetry == "general") {
    h.symmetry = Symmetry::kGeneral;
  } else if (symmetry == "symmetric") {
    h.symmetry = Symmetry::kSymmetric;
  } else if (symmetry == "skew-symmetric") {
    h.symmetry = Symmetry::kSkew;
  } else {
    throw MatrixMarketError("unsupported symmetry: " + symmetry_str);
  }
  return h;
}

}  // namespace

Csr<double, std::int64_t> read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw MatrixMarketError("empty input");
  }
  const Header header = parse_header(line);

  // Skip comments to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream size_line(line);
  std::string rows_tok, cols_tok, nnz_tok, extra;
  if (!(size_line >> rows_tok >> cols_tok >> nnz_tok) || (size_line >> extra)) {
    throw MatrixMarketError("malformed size line: '" + line + "'");
  }
  const std::int64_t rows = parse_index(rows_tok, "row count");
  const std::int64_t cols = parse_index(cols_tok, "column count");
  const std::int64_t declared_nnz = parse_index(nnz_tok, "nnz count");
  if (rows < 0 || cols < 0 || declared_nnz < 0) {
    throw MatrixMarketError("negative dimension in size line: '" + line + "'");
  }

  Coo<double, std::int64_t> coo(rows, cols);
  const bool mirrored = header.symmetry != Symmetry::kGeneral;
  // Cap the pre-reservation: a corrupt header declaring a absurd nnz must
  // fail at the first missing entry, not OOM the process up front here.
  constexpr std::int64_t kMaxReserve = std::int64_t{1} << 22;
  const std::int64_t reserve_base = std::min(kMaxReserve, declared_nnz);
  coo.reserve(static_cast<std::size_t>(mirrored ? 2 * reserve_base
                                                : reserve_base));

  std::string i_tok, j_tok, v_tok;
  for (std::int64_t k = 0; k < declared_nnz; ++k) {
    if (!(in >> i_tok >> j_tok)) {
      throw MatrixMarketError("unexpected end of entries: got " +
                              std::to_string(k) + " of " +
                              std::to_string(declared_nnz));
    }
    const std::int64_t i = parse_index(i_tok, "row index");
    const std::int64_t j = parse_index(j_tok, "column index");
    double value = 1.0;
    if (header.field != Field::kPattern) {
      if (!(in >> v_tok)) {
        throw MatrixMarketError("missing value in entry " + std::to_string(k));
      }
      value = parse_value(v_tok);
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw MatrixMarketError("entry index out of range: (" +
                              std::to_string(i) + ", " + std::to_string(j) +
                              ") in a " + std::to_string(rows) + " x " +
                              std::to_string(cols) + " matrix");
    }
    coo.push_unchecked(i - 1, j - 1, value);
    if (mirrored && i != j) {
      const double mirrored_value =
          header.symmetry == Symmetry::kSkew ? -value : value;
      coo.push_unchecked(j - 1, i - 1, mirrored_value);
    }
  }
  return build_csr(coo, DupPolicy::kSum);
}

Csr<double, std::int64_t> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw MatrixMarketError("cannot open file: " + path);
  }
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr<double, std::int64_t>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by tilq\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      out << (i + 1) << ' ' << (cols[p] + 1) << ' ' << vals[p] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path,
                              const Csr<double, std::int64_t>& a) {
  std::ofstream out(path);
  if (!out) {
    throw MatrixMarketError("cannot open file for writing: " + path);
  }
  write_matrix_market(out, a);
}

}  // namespace tilq
