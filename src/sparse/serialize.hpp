// Binary serialization for CSR matrices. Matrix Market is the interchange
// format; this is the fast path for benchmark caches — parsing the text
// format dominates load time for multi-hundred-MB SuiteSparse matrices,
// while the binary round trip is a few memcpys.
//
// Format (little-endian, version 1):
//   magic "TILQCSR1" | value-type tag | index width | rows | cols | nnz |
//   row_ptr[rows+1] | col_idx[nnz] | values[nnz]
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sparse/csr.hpp"

namespace tilq {

/// Thrown on malformed or incompatible binary input.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes `a` in the tilq binary format.
void write_binary(std::ostream& out, const Csr<double, std::int64_t>& a);
void write_binary_file(const std::string& path,
                       const Csr<double, std::int64_t>& a);

/// Reads a matrix written by write_binary; validates structure.
Csr<double, std::int64_t> read_binary(std::istream& in);
Csr<double, std::int64_t> read_binary_file(const std::string& path);

}  // namespace tilq
