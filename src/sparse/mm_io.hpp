// Matrix Market I/O. The paper evaluates on SuiteSparse Matrix Collection
// graphs, which are distributed as MatrixMarket (.mtx) files; this reader
// lets users run every bench on the real matrices by dropping the files in.
// Supports the coordinate format with real / integer / pattern fields and
// general / symmetric / skew-symmetric symmetry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sparse/csr.hpp"
#include "support/errors.hpp"

namespace tilq {

/// Thrown on malformed Matrix Market input. An IoError (kind() == kIo), so
/// it stays catchable as std::runtime_error like before the taxonomy.
class MatrixMarketError : public IoError {
 public:
  using IoError::IoError;
};

/// Reads a coordinate-format Matrix Market matrix. Symmetric/skew storage
/// is expanded to the full matrix; pattern matrices get value 1. Duplicate
/// entries are summed. Indices are converted from 1- to 0-based.
Csr<double, std::int64_t> read_matrix_market(std::istream& in);
Csr<double, std::int64_t> read_matrix_market_file(const std::string& path);

/// Writes `a` in coordinate / real / general format.
void write_matrix_market(std::ostream& out, const Csr<double, std::int64_t>& a);
void write_matrix_market_file(const std::string& path,
                              const Csr<double, std::int64_t>& a);

}  // namespace tilq
