// Triplet (COO) matrix representation. COO is the assembly format: graph
// generators and the Matrix Market reader emit triplets, which build.hpp
// converts to CSR for computation.
#pragma once

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace tilq {

/// One (row, col, value) entry.
template <class T, class I = std::int64_t>
struct Triplet {
  I row;
  I col;
  T value;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-format sparse matrix: an unordered bag of triplets plus the
/// logical shape. Duplicates are allowed; the CSR builder decides how to
/// combine them (sum / keep-first / error).
template <class T, class I = std::int64_t>
class Coo {
 public:
  using value_type = T;
  using index_type = I;

  Coo() = default;

  Coo(I rows, I cols) : rows_(rows), cols_(cols) {
    require(rows >= 0 && cols >= 0, "Coo: negative dimension");
  }

  [[nodiscard]] I rows() const noexcept { return rows_; }
  [[nodiscard]] I cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(entries_.size());
  }

  /// Appends one entry; bounds-checked.
  void push(I row, I col, T value) {
    require(row >= 0 && row < rows_ && col >= 0 && col < cols_,
            "Coo::push: index out of range");
    entries_.push_back({row, col, value});
  }

  /// Appends one entry without release-build bounds checks (hot generator
  /// loops); the caller guarantees validity, enforced when TILQ_HARDENED.
  void push_unchecked(I row, I col, T value) {
    TILQ_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
               "Coo::push_unchecked: index out of range");
    entries_.push_back({row, col, value});
  }

  void reserve(std::size_t capacity) { entries_.reserve(capacity); }
  void clear() noexcept { entries_.clear(); }

  [[nodiscard]] const std::vector<Triplet<T, I>>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::vector<Triplet<T, I>>& entries() noexcept {
    return entries_;
  }

 private:
  I rows_ = 0;
  I cols_ = 0;
  std::vector<Triplet<T, I>> entries_;
};

}  // namespace tilq
