// GraphBLAS-flavoured façade — the API shape the paper presents in §II-B:
//
//   GrB_mxm(C, M, accum, op, A, B, desc)
//
// mapped onto the tilq kernels. The façade fixes the value domain to
// double (GrB_FP64) and exposes:
//   * the semiring argument (plus-times / min-plus / plus-pair / or-and,
//     all computed in the double domain),
//   * the descriptor: transpose either input (GrB_INP0/GrB_INP1),
//     complement the mask (GrB_COMP), treat the mask structurally
//     (GrB_STRUCTURE) or by value (GraphBLAS default: an entry is allowed
//     where the mask holds a *non-zero* value),
//   * the tilq Config, standing in for SS:GB's hidden heuristics — the
//     whole point of the paper is making this knob visible.
//
// Semantics notes:
//   * mask by value: entries with stored zeros are filtered out before the
//     kernel runs (a pattern pre-pass), then the structural machinery
//     applies unchanged.
//   * complemented masks forfeit the nnz(C[i,:]) <= nnz(M[i,:]) bound that
//     the fused kernels rely on, so GrB_COMP runs the unmasked product and
//     subtracts the mask pattern afterwards — mirroring how complement
//     masks are genuinely harder for masked-SpGEMM implementations.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/masked_spgemm.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "sparse/csr.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector.hpp"

namespace tilq::grb {

/// GrB_FP64 matrix / vector aliases.
using Matrix = Csr<double, std::int64_t>;
using Vector = SparseVector<double, std::int64_t>;

/// The semiring argument of GrB_mxm, over the double domain.
enum class SemiringOp {
  kPlusTimes,  ///< GrB_PLUS_TIMES_SEMIRING_FP64
  kMinPlus,    ///< GrB_MIN_PLUS_SEMIRING_FP64
  kPlusPair,   ///< GxB_PLUS_PAIR_FP64 (structural counting)
  kOrAnd,      ///< boolean or-and on the (value != 0) interpretation
};

[[nodiscard]] const char* to_string(SemiringOp op) noexcept;

/// GrB_Descriptor equivalent.
struct Descriptor {
  bool transpose_a = false;       ///< GrB_INP0 = GrB_TRAN
  bool transpose_b = false;       ///< GrB_INP1 = GrB_TRAN
  bool mask_complement = false;   ///< GrB_COMP
  /// GrB_STRUCTURE: use the mask's pattern; default (false) uses values —
  /// an entry is allowed where the mask stores a non-zero.
  bool mask_structural = false;
  /// Implementation selection — explicit where SS:GB is heuristic.
  Config config;
};

/// C = [mask ⊙] (A op B), the masked matrix-matrix product. Passing no
/// mask (nullptr) computes the unmasked product.
Matrix mxm(const Matrix* mask, SemiringOp op, const Matrix& a, const Matrix& b,
           const Descriptor& descriptor = {});

/// w = [mask ⊙] (A op u), matrix-vector product (mask/u sparse vectors).
Vector mxv(const Vector* mask, SemiringOp op, const Matrix& a, const Vector& u,
           const Descriptor& descriptor = {});

/// Element-wise "multiply" (pattern intersection) C = A .op B — values
/// combined with the semiring's multiplicative op.
Matrix ewise_mult(SemiringOp op, const Matrix& a, const Matrix& b);

/// Element-wise "add" (pattern union) C = A .op B — values combined with
/// the semiring's additive op where both present.
Matrix ewise_add(SemiringOp op, const Matrix& a, const Matrix& b);

/// reduce to scalar with the semiring's additive monoid.
double reduce(SemiringOp op, const Matrix& a);

}  // namespace tilq::grb
