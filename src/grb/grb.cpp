#include "grb/grb.hpp"

#include <algorithm>
#include <vector>

#include "support/common.hpp"
#include "support/parallel.hpp"

namespace tilq::grb {
namespace {

/// OrAnd over doubles: truthiness is (value != 0), results are 0/1.
struct OrAndF64 {
  using value_type = double;
  static constexpr double zero() noexcept { return 0.0; }
  static constexpr double add(double a, double b) noexcept {
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  static constexpr double mul(double a, double b) noexcept {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
};

/// Runs `fn` with the semiring type selected by `op`.
template <class Fn>
auto with_semiring(SemiringOp op, Fn&& fn) {
  switch (op) {
    case SemiringOp::kPlusTimes:
      return fn(PlusTimes<double>{});
    case SemiringOp::kMinPlus:
      return fn(MinPlus<double>{});
    case SemiringOp::kPlusPair:
      return fn(PlusPair<double>{});
    case SemiringOp::kOrAnd:
      return fn(OrAndF64{});
  }
  require(false, "grb: invalid semiring");
  return fn(PlusTimes<double>{});
}

/// Valued-mask handling: GraphBLAS treats a mask entry holding zero as
/// absent unless GrB_STRUCTURE is set. Returns the effective structural
/// mask.
Matrix effective_mask(const Matrix& mask, bool structural) {
  if (structural) {
    return mask;
  }
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(mask.rows()) + 1, 0);
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<std::size_t>(mask.nnz()));
  values.reserve(static_cast<std::size_t>(mask.nnz()));
  for (std::int64_t i = 0; i < mask.rows(); ++i) {
    const auto cols = mask.row_cols(i);
    const auto vals = mask.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      if (vals[p] != 0.0) {
        col_idx.push_back(cols[p]);
        values.push_back(vals[p]);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx.size());
  }
  return {mask.rows(), mask.cols(), std::move(row_ptr), std::move(col_idx),
          std::move(values)};
}

/// Keeps the entries of `c` whose positions are NOT in `mask` (for
/// GrB_COMP).
Matrix apply_complement(const Matrix& mask, const Matrix& c) {
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(c.rows()) + 1, 0);
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  for (std::int64_t i = 0; i < c.rows(); ++i) {
    const auto cols = c.row_cols(i);
    const auto vals = c.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      if (!mask.contains(i, cols[p])) {
        col_idx.push_back(cols[p]);
        values.push_back(vals[p]);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx.size());
  }
  return {c.rows(), c.cols(), std::move(row_ptr), std::move(col_idx),
          std::move(values)};
}

}  // namespace

const char* to_string(SemiringOp op) noexcept {
  switch (op) {
    case SemiringOp::kPlusTimes:
      return "plus-times";
    case SemiringOp::kMinPlus:
      return "min-plus";
    case SemiringOp::kPlusPair:
      return "plus-pair";
    case SemiringOp::kOrAnd:
      return "or-and";
  }
  return "?";
}

Matrix mxm(const Matrix* mask, SemiringOp op, const Matrix& a, const Matrix& b,
           const Descriptor& descriptor) {
  const Matrix a_eff = descriptor.transpose_a ? transpose(a) : a;
  const Matrix b_eff = descriptor.transpose_b ? transpose(b) : b;

  return with_semiring(op, [&](auto semiring) {
    using SR = decltype(semiring);
    if (mask == nullptr) {
      return spgemm<SR>(a_eff, b_eff);
    }
    const Matrix m = effective_mask(*mask, descriptor.mask_structural);
    if (descriptor.mask_complement) {
      // No fused kernel can exploit a complement mask's bound; compute the
      // full product, then subtract the mask pattern.
      return apply_complement(m, spgemm<SR>(a_eff, b_eff));
    }
    return masked_spgemm<SR>(m, a_eff, b_eff, descriptor.config);
  });
}

Vector mxv(const Vector* mask, SemiringOp op, const Matrix& a, const Vector& u,
           const Descriptor& descriptor) {
  const Matrix a_eff = descriptor.transpose_a ? transpose(a) : a;
  require(a_eff.cols() == u.dim(), "grb::mxv: dimension mismatch");

  return with_semiring(op, [&](auto semiring) {
    using SR = decltype(semiring);
    if (mask == nullptr) {
      // Unmasked: full-row mask over the output dimension.
      std::vector<std::int64_t> all(static_cast<std::size_t>(a_eff.rows()));
      for (std::int64_t i = 0; i < a_eff.rows(); ++i) {
        all[static_cast<std::size_t>(i)] = i;
      }
      const Vector full(a_eff.rows(), std::move(all),
                        std::vector<double>(static_cast<std::size_t>(a_eff.rows()), 1.0));
      return masked_spmv<SR>(full, a_eff, u);
    }
    if (descriptor.mask_complement) {
      std::vector<std::int64_t> indices = pattern_complement(*mask);
      std::vector<double> ones(indices.size(), 1.0);
      const Vector complement(mask->dim(), std::move(indices), std::move(ones));
      return masked_spmv<SR>(complement, a_eff, u);
    }
    return masked_spmv<SR>(*mask, a_eff, u);
  });
}

Matrix ewise_mult(SemiringOp op, const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "grb::ewise_mult: shape mismatch");
  return with_semiring(op, [&](auto semiring) {
    using SR = decltype(semiring);
    std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
    std::vector<std::int64_t> col_idx;
    std::vector<double> values;
    for (std::int64_t i = 0; i < a.rows(); ++i) {
      const auto ac = a.row_cols(i);
      const auto av = a.row_vals(i);
      const auto bc = b.row_cols(i);
      const auto bv = b.row_vals(i);
      std::size_t pa = 0;
      std::size_t pb = 0;
      while (pa < ac.size() && pb < bc.size()) {
        if (ac[pa] < bc[pb]) {
          ++pa;
        } else if (ac[pa] > bc[pb]) {
          ++pb;
        } else {
          col_idx.push_back(ac[pa]);
          values.push_back(SR::mul(av[pa], bv[pb]));
          ++pa;
          ++pb;
        }
      }
      row_ptr[static_cast<std::size_t>(i) + 1] =
          static_cast<std::int64_t>(col_idx.size());
    }
    return Matrix(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                  std::move(values));
  });
}

Matrix ewise_add(SemiringOp op, const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "grb::ewise_add: shape mismatch");
  return with_semiring(op, [&](auto semiring) {
    using SR = decltype(semiring);
    std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
    std::vector<std::int64_t> col_idx;
    std::vector<double> values;
    for (std::int64_t i = 0; i < a.rows(); ++i) {
      const auto ac = a.row_cols(i);
      const auto av = a.row_vals(i);
      const auto bc = b.row_cols(i);
      const auto bv = b.row_vals(i);
      std::size_t pa = 0;
      std::size_t pb = 0;
      while (pa < ac.size() || pb < bc.size()) {
        if (pb == bc.size() || (pa < ac.size() && ac[pa] < bc[pb])) {
          col_idx.push_back(ac[pa]);
          values.push_back(av[pa]);
          ++pa;
        } else if (pa == ac.size() || bc[pb] < ac[pa]) {
          col_idx.push_back(bc[pb]);
          values.push_back(bv[pb]);
          ++pb;
        } else {
          col_idx.push_back(ac[pa]);
          values.push_back(SR::add(av[pa], bv[pb]));
          ++pa;
          ++pb;
        }
      }
      row_ptr[static_cast<std::size_t>(i) + 1] =
          static_cast<std::int64_t>(col_idx.size());
    }
    return Matrix(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                  std::move(values));
  });
}

double reduce(SemiringOp op, const Matrix& a) {
  return with_semiring(op, [&](auto semiring) {
    using SR = decltype(semiring);
    double result = SR::zero();
    for (const double v : a.values()) {
      result = SR::add(result, v);
    }
    return result;
  });
}

}  // namespace tilq::grb
