// Betweenness centrality (Brandes' algorithm) — the fourth workload the
// paper's introduction lists as masked-kernel-based. Per source: a BFS
// sweep counting shortest paths (the σ recurrence is a masked SpMV with the
// plus-times semiring over the frontier), then a backward dependency
// accumulation over the BFS DAG. Exact when run from every source,
// approximate (scaled) when run from a sample.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

struct BetweennessOptions {
  /// Number of BFS sources; 0 means all vertices (exact BC). Sampled
  /// deterministically from `seed`, scores scaled by n/sources.
  std::int64_t sources = 0;
  std::uint64_t seed = 1;
};

/// Betweenness centrality of every vertex of the undirected graph `adj`
/// (symmetric adjacency, no self-loops). Endpoint-exclusive, each
/// undirected path counted once (the standard normalization halves the
/// directed double count).
std::vector<double> betweenness_centrality(const Csr<double, std::int64_t>& adj,
                                           const BetweennessOptions& options = {});

}  // namespace tilq
