#include "algos/triangle_count.hpp"

#include <numeric>

#include "sparse/ops.hpp"
#include "support/common.hpp"

namespace tilq {
namespace {

using CountMatrix = Csr<std::int64_t, std::int64_t>;
using CountSemiring = PlusPair<std::int64_t>;

std::int64_t sum_values(const CountMatrix& c) {
  return std::accumulate(c.values().begin(), c.values().end(), std::int64_t{0});
}

}  // namespace

const char* to_string(TriangleMethod method) noexcept {
  switch (method) {
    case TriangleMethod::kBurkhardt:
      return "burkhardt";
    case TriangleMethod::kCohen:
      return "cohen";
    case TriangleMethod::kSandia:
      return "sandia";
  }
  return "?";
}

std::int64_t count_triangles(const Csr<double, std::int64_t>& adj,
                             TriangleMethod method, const Config& config) {
  TrianglePlanCache cache;  // single shot: plans once, same as before
  return count_triangles(adj, method, config, cache);
}

std::int64_t count_triangles(const Csr<double, std::int64_t>& adj,
                             TriangleMethod method, const Config& config,
                             TrianglePlanCache& cache) {
  require(adj.rows() == adj.cols(), "count_triangles: adjacency must be square");
  const CountMatrix a = convert_values<std::int64_t>(adj);

  switch (method) {
    case TriangleMethod::kBurkhardt: {
      // Every triangle appears once per ordered vertex pair: 6 times.
      const CountMatrix c = cache.execute(a, a, a, config);
      return sum_values(c) / 6;
    }
    case TriangleMethod::kCohen: {
      const CountMatrix lower = tril(a);
      const CountMatrix upper = triu(a);
      const CountMatrix c = cache.execute(a, lower, upper, config);
      return sum_values(c) / 2;
    }
    case TriangleMethod::kSandia: {
      const CountMatrix lower = tril(a);
      const CountMatrix c = cache.execute(lower, lower, lower, config);
      return sum_values(c);
    }
  }
  require(false, "count_triangles: invalid method");
  return 0;
}

Csr<std::int64_t, std::int64_t> edge_support(const Csr<double, std::int64_t>& adj,
                                             const Config& config) {
  TrianglePlanCache cache;
  return edge_support(adj, config, cache);
}

Csr<std::int64_t, std::int64_t> edge_support(const Csr<double, std::int64_t>& adj,
                                             const Config& config,
                                             TrianglePlanCache& cache) {
  require(adj.rows() == adj.cols(), "edge_support: adjacency must be square");
  const CountMatrix a = convert_values<std::int64_t>(adj);
  // support(u,v) = |N(u) ∩ N(v)| over existing edges = (A ⊙ A·A)[u,v].
  return cache.execute(a, a, a, config);
}

}  // namespace tilq
