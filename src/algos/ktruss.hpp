// k-truss decomposition in the language of masked-SpGEMM — one of the graph
// workloads the paper lists as depending on the kernel (§I). The k-truss of
// a graph is the maximal subgraph in which every edge participates in at
// least k-2 triangles. The linear-algebraic algorithm iterates:
//
//   S = A ⊙ (A·A)                      (per-edge triangle support)
//   A = A restricted to entries with S >= k-2
//
// until no edge is removed. Each iteration is one masked-SpGEMM with the
// PLUS_PAIR semiring, so k-truss stresses the kernel across shrinking,
// increasingly irregular matrices.
#pragma once

#include <cstdint>

#include "algos/triangle_count.hpp"
#include "core/config.hpp"
#include "sparse/csr.hpp"

namespace tilq {

struct KtrussResult {
  /// Adjacency matrix of the k-truss subgraph (symmetric).
  Csr<double, std::int64_t> truss;
  /// Undirected edge count of the truss (nnz / 2).
  std::int64_t edges = 0;
  /// Number of masked-SpGEMM rounds until fixpoint.
  int iterations = 0;
};

/// Computes the k-truss of the undirected graph `adj` (symmetric adjacency,
/// no self-loops). k must be >= 2; the 2-truss is the graph itself minus
/// nothing (every edge trivially has >= 0 triangles).
KtrussResult ktruss(const Csr<double, std::int64_t>& adj, int k,
                    const Config& config = {});

/// As above, running every support product through `cache`. The iterates
/// shrink, so each round replans, but the pooled accumulator workspaces
/// carry over (capacity only shrinks demands, never grows them) — the
/// allocation cost of the support kernel is paid once, not per round.
KtrussResult ktruss(const Csr<double, std::int64_t>& adj, int k,
                    const Config& config, TrianglePlanCache& cache);

/// Largest k such that the k-truss is non-empty (the graph's trussness).
/// Internally shares one TrianglePlanCache across all k levels.
int max_truss(const Csr<double, std::int64_t>& adj, const Config& config = {});

}  // namespace tilq
