#include "algos/bfs.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace tilq {

BfsResult bfs(const Csr<double, std::int64_t>& adj, std::int64_t source,
              const BfsOptions& options) {
  require(adj.rows() == adj.cols(), "bfs: adjacency must be square");
  require(source >= 0 && source < adj.rows(), "bfs: source out of range");

  const std::int64_t n = adj.rows();
  BfsResult result;
  result.level.assign(static_cast<std::size_t>(n), -1);
  result.level[static_cast<std::size_t>(source)] = 0;
  result.reached = 1;

  std::vector<std::int64_t> frontier = {source};
  std::vector<std::int64_t> next;
  std::int64_t unexplored_edges = adj.nnz();
  std::int64_t depth = 0;

  while (!frontier.empty()) {
    ++depth;
    next.clear();

    // Frontier out-edges, for the direction heuristic.
    std::int64_t frontier_edges = 0;
    for (const std::int64_t u : frontier) {
      frontier_edges += adj.row_nnz(u);
    }

    bool pull = false;
    if (options.force_mode == 1) {
      pull = false;
    } else if (options.force_mode == 2) {
      pull = true;
    } else {
      // Beamer's two-sided heuristic: pull pays only when the frontier's
      // edge volume dominates the unexplored edges (alpha) AND the frontier
      // itself is a large fraction of the vertices (beta) — otherwise the
      // full vertex scan of a pull step costs more than it saves.
      pull = static_cast<double>(frontier_edges) >
                 static_cast<double>(unexplored_edges) / options.alpha &&
             static_cast<double>(frontier.size()) >
                 static_cast<double>(n) / options.beta;
    }

    if (!pull) {
      // Push: expand every frontier vertex's adjacency.
      ++result.push_steps;
      for (const std::int64_t u : frontier) {
        for (const std::int64_t v : adj.row_cols(u)) {
          if (result.level[static_cast<std::size_t>(v)] < 0) {
            result.level[static_cast<std::size_t>(v)] = depth;
            next.push_back(v);
          }
        }
      }
    } else {
      // Pull: every unvisited vertex scans its neighbours for a frontier
      // member — the complement of the visited set acts as the mask.
      ++result.pull_steps;
      for (std::int64_t v = 0; v < n; ++v) {
        if (result.level[static_cast<std::size_t>(v)] >= 0) {
          continue;
        }
        for (const std::int64_t u : adj.row_cols(v)) {
          if (result.level[static_cast<std::size_t>(u)] == depth - 1) {
            result.level[static_cast<std::size_t>(v)] = depth;
            next.push_back(v);
            break;
          }
        }
      }
    }

    unexplored_edges -= frontier_edges;
    result.reached += static_cast<std::int64_t>(next.size());
    std::swap(frontier, next);
  }
  return result;
}

}  // namespace tilq
