// Connected components via union-find — substrate for the workloads: the
// synthetic road analogues sit near the percolation threshold and fragment,
// so BFS demos and diameter-style measurements need a vertex in the giant
// component.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

struct ComponentsResult {
  /// Component id per vertex, in [0, count); ids are dense but arbitrary.
  std::vector<std::int64_t> component;
  /// Vertex count per component id.
  std::vector<std::int64_t> size;
  std::int64_t count = 0;          ///< number of components
  std::int64_t largest_id = 0;     ///< id of the largest component
  std::int64_t largest_size = 0;   ///< its vertex count
};

/// Computes the connected components of the undirected graph `adj`
/// (symmetric adjacency; edges are treated as undirected regardless).
ComponentsResult connected_components(const Csr<double, std::int64_t>& adj);

/// A vertex of maximal degree inside the largest component — a good BFS
/// source on fragmented graphs.
std::int64_t largest_component_member(const Csr<double, std::int64_t>& adj);

}  // namespace tilq
