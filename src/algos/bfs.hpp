// Direction-optimizing breadth-first search (Beamer et al., cited by the
// paper as one of the masked kernel's motivating workloads). Push steps
// expand the frontier along rows; pull steps scan unvisited vertices and
// co-iterate their adjacency with the visited set — the vertex-level
// analogue of the paper's mask co-iteration (§III-B explicitly frames the
// hybrid kernel as "a form of push-pull optimization").
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

struct BfsOptions {
  /// Switch push -> pull when frontier edges exceed unexplored edges / alpha
  /// (Beamer's alpha heuristic).
  double alpha = 14.0;
  /// Switch pull -> push when the frontier shrinks below nodes / beta.
  double beta = 24.0;
  /// Force a single strategy (for tests / ablation): 0 auto, 1 push-only,
  /// 2 pull-only.
  int force_mode = 0;
};

struct BfsResult {
  /// Level of each vertex (0 for the source); -1 if unreachable.
  std::vector<std::int64_t> level;
  std::int64_t reached = 0;  ///< number of reachable vertices (incl. source)
  int push_steps = 0;
  int pull_steps = 0;
};

/// BFS from `source` over the graph with (symmetric) adjacency `adj`.
BfsResult bfs(const Csr<double, std::int64_t>& adj, std::int64_t source,
              const BfsOptions& options = {});

}  // namespace tilq
