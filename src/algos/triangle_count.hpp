// Triangle counting via masked-SpGEMM — the paper's benchmark workload
// (§IV-A: "C = A ⊙ (A x A), the main kernel used in triangle counting").
// Three standard linear-algebraic formulations are provided; all use the
// PLUS_PAIR semiring so only the adjacency pattern matters.
//
//   kBurkhardt — sum(A ⊙ (A·A)) / 6 : full adjacency both sides; counts
//                each triangle six times. This is exactly the kernel shape
//                every tilq benchmark runs.
//   kCohen     — sum(L ⊙ (L·U)) / 2 : lower x upper, halves the redundancy.
//   kSandia    — sum(L ⊙ (L·L))     : lower triangle only; each triangle
//                counted exactly once, the cheapest variant.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "sparse/csr.hpp"

namespace tilq {

enum class TriangleMethod { kBurkhardt, kCohen, kSandia };

[[nodiscard]] const char* to_string(TriangleMethod method) noexcept;

/// Counts triangles in the undirected graph with symmetric adjacency matrix
/// `adj` (values ignored; self-loops must already be removed). `config`
/// selects the masked-SpGEMM implementation.
std::int64_t count_triangles(const Csr<double, std::int64_t>& adj,
                             TriangleMethod method = TriangleMethod::kSandia,
                             const Config& config = {});

/// Per-edge triangle support: support[e] = number of triangles containing
/// edge e, laid out in the same order as adj's entries. Computed as
/// A ⊙ (A·A) with PLUS_PAIR. The building block for k-truss.
Csr<std::int64_t, std::int64_t> edge_support(
    const Csr<double, std::int64_t>& adj, const Config& config = {});

}  // namespace tilq
