// Triangle counting via masked-SpGEMM — the paper's benchmark workload
// (§IV-A: "C = A ⊙ (A x A), the main kernel used in triangle counting").
// Three standard linear-algebraic formulations are provided; all use the
// PLUS_PAIR semiring so only the adjacency pattern matters.
//
//   kBurkhardt — sum(A ⊙ (A·A)) / 6 : full adjacency both sides; counts
//                each triangle six times. This is exactly the kernel shape
//                every tilq benchmark runs.
//   kCohen     — sum(L ⊙ (L·U)) / 2 : lower x upper, halves the redundancy.
//   kSandia    — sum(L ⊙ (L·L))     : lower triangle only; each triangle
//                counted exactly once, the cheapest variant.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/plan.hpp"
#include "core/semiring.hpp"
#include "sparse/csr.hpp"

namespace tilq {

enum class TriangleMethod { kBurkhardt, kCohen, kSandia };

[[nodiscard]] const char* to_string(TriangleMethod method) noexcept;

/// Plan cache for the PLUS_PAIR support kernel shared by triangle counting
/// and k-truss. One cache amortizes tiling, hybrid κ decisions, and
/// accumulator workspaces across repeated calls: identical sparsity reuses
/// the plan outright, and even after a structure change (k-truss's shrinking
/// iterates) the pooled accumulators survive the replan.
using TrianglePlanCache = PlanCache<PlusPair<std::int64_t>>;

/// Counts triangles in the undirected graph with symmetric adjacency matrix
/// `adj` (values ignored; self-loops must already be removed). `config`
/// selects the masked-SpGEMM implementation.
std::int64_t count_triangles(const Csr<double, std::int64_t>& adj,
                             TriangleMethod method = TriangleMethod::kSandia,
                             const Config& config = {});

/// As above, running the masked product through `cache` so repeated counts
/// (same graph, or a sequence of related graphs) reuse plans and pooled
/// accumulator workspaces.
std::int64_t count_triangles(const Csr<double, std::int64_t>& adj,
                             TriangleMethod method, const Config& config,
                             TrianglePlanCache& cache);

/// Per-edge triangle support: support[e] = number of triangles containing
/// edge e, laid out in the same order as adj's entries. Computed as
/// A ⊙ (A·A) with PLUS_PAIR. The building block for k-truss.
Csr<std::int64_t, std::int64_t> edge_support(
    const Csr<double, std::int64_t>& adj, const Config& config = {});

/// As above, through `cache` (the k-truss inner loop calls this every
/// iteration; the cache keeps accumulator workspaces warm across them).
Csr<std::int64_t, std::int64_t> edge_support(
    const Csr<double, std::int64_t>& adj, const Config& config,
    TrianglePlanCache& cache);

}  // namespace tilq
