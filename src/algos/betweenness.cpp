#include "algos/betweenness.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {
namespace {

/// One Brandes source sweep: forward BFS building the level structure and
/// shortest-path counts σ, then backward accumulation of dependencies δ.
/// Adds the per-source dependencies into `centrality`.
void accumulate_source(const Csr<double, std::int64_t>& adj, std::int64_t s,
                       std::vector<std::int64_t>& level,
                       std::vector<double>& sigma, std::vector<double>& delta,
                       std::vector<std::int64_t>& order,
                       std::vector<double>& centrality) {
  const std::int64_t n = adj.rows();
  std::fill(level.begin(), level.end(), std::int64_t{-1});
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  order.clear();

  // Forward sweep (level-synchronous BFS; σ(v) += σ(u) over tree edges is
  // the masked SpMV recurrence σ_{d+1} = ¬visited ⊙ (Aᵀ σ_d)).
  level[static_cast<std::size_t>(s)] = 0;
  sigma[static_cast<std::size_t>(s)] = 1.0;
  order.push_back(s);
  std::size_t frontier_begin = 0;
  std::int64_t depth = 0;
  while (frontier_begin < order.size()) {
    const std::size_t frontier_end = order.size();
    ++depth;
    for (std::size_t p = frontier_begin; p < frontier_end; ++p) {
      const std::int64_t u = order[p];
      for (const std::int64_t v : adj.row_cols(u)) {
        auto& lv = level[static_cast<std::size_t>(v)];
        if (lv < 0) {
          lv = depth;
          order.push_back(v);
        }
        if (lv == depth) {
          sigma[static_cast<std::size_t>(v)] += sigma[static_cast<std::size_t>(u)];
        }
      }
    }
    frontier_begin = frontier_end;
  }

  // Backward sweep in reverse BFS order: δ(u) += σ(u)/σ(v) · (1 + δ(v)) for
  // each DAG edge u -> v (level(v) = level(u) + 1).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::int64_t v = *it;
    const auto lv = level[static_cast<std::size_t>(v)];
    for (const std::int64_t u : adj.row_cols(v)) {
      if (level[static_cast<std::size_t>(u)] == lv - 1) {
        delta[static_cast<std::size_t>(u)] +=
            sigma[static_cast<std::size_t>(u)] / sigma[static_cast<std::size_t>(v)] *
            (1.0 + delta[static_cast<std::size_t>(v)]);
      }
    }
    if (v != s) {
      centrality[static_cast<std::size_t>(v)] += delta[static_cast<std::size_t>(v)];
    }
  }
  (void)n;
}

}  // namespace

std::vector<double> betweenness_centrality(const Csr<double, std::int64_t>& adj,
                                           const BetweennessOptions& options) {
  require(adj.rows() == adj.cols(), "betweenness: adjacency must be square");
  require(options.sources >= 0, "betweenness: negative source count");
  const std::int64_t n = adj.rows();

  std::vector<std::int64_t> sources;
  if (options.sources == 0 || options.sources >= n) {
    sources.resize(static_cast<std::size_t>(n));
    for (std::int64_t v = 0; v < n; ++v) {
      sources[static_cast<std::size_t>(v)] = v;
    }
  } else {
    // Sample distinct sources (Floyd-ish: shuffle a prefix).
    std::vector<std::int64_t> all(static_cast<std::size_t>(n));
    for (std::int64_t v = 0; v < n; ++v) {
      all[static_cast<std::size_t>(v)] = v;
    }
    Xoshiro256 rng(options.seed);
    for (std::int64_t k = 0; k < options.sources; ++k) {
      const auto pick = k + static_cast<std::int64_t>(rng.uniform_below(
                                static_cast<std::uint64_t>(n - k)));
      std::swap(all[static_cast<std::size_t>(k)], all[static_cast<std::size_t>(pick)]);
    }
    all.resize(static_cast<std::size_t>(options.sources));
    sources = std::move(all);
  }

  std::vector<double> centrality(static_cast<std::size_t>(n), 0.0);
  std::vector<std::int64_t> level(static_cast<std::size_t>(n));
  std::vector<double> sigma(static_cast<std::size_t>(n));
  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<std::int64_t> order;
  order.reserve(static_cast<std::size_t>(n));

  for (const std::int64_t s : sources) {
    accumulate_source(adj, s, level, sigma, delta, order, centrality);
  }

  // Undirected graphs: each path was counted from both endpoints.
  double scale = 0.5;
  if (!sources.empty() && static_cast<std::int64_t>(sources.size()) < n) {
    scale *= static_cast<double>(n) / static_cast<double>(sources.size());
  }
  for (double& c : centrality) {
    c *= scale;
  }
  return centrality;
}

}  // namespace tilq
