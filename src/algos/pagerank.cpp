#include "algos/pagerank.hpp"

#include <cmath>

#include "sparse/ops.hpp"
#include "support/common.hpp"

namespace tilq {

PageRankResult pagerank(const Csr<double, std::int64_t>& adj,
                        const PageRankOptions& options) {
  require(adj.rows() == adj.cols(), "pagerank: adjacency must be square");
  require(options.damping > 0.0 && options.damping < 1.0,
          "pagerank: damping must be in (0, 1)");
  const std::int64_t n = adj.rows();
  PageRankResult result;
  if (n == 0) {
    return result;
  }

  // Column-stochastic iteration needs in-links per row: work on Aᵀ with
  // rows scaled by 1/outdegree at read time.
  const auto at = transpose(adj);
  std::vector<double> inv_outdegree(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t v = 0; v < n; ++v) {
    const auto d = adj.row_nnz(v);
    inv_outdegree[static_cast<std::size_t>(v)] =
        d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(static_cast<std::size_t>(n), uniform);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);

  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    // Mass parked on dangling vertices is spread uniformly.
    double dangling = 0.0;
    for (std::int64_t v = 0; v < n; ++v) {
      if (adj.row_nnz(v) == 0) {
        dangling += rank[static_cast<std::size_t>(v)];
      }
    }
    const double base =
        (1.0 - options.damping) * uniform + options.damping * dangling * uniform;

#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < n; ++v) {
      double sum = 0.0;
      const auto cols = at.row_cols(v);
      for (const std::int64_t u : cols) {
        sum += rank[static_cast<std::size_t>(u)] *
               inv_outdegree[static_cast<std::size_t>(u)];
      }
      next[static_cast<std::size_t>(v)] = base + options.damping * sum;
    }

    result.residual = 0.0;
    for (std::int64_t v = 0; v < n; ++v) {
      result.residual += std::abs(next[static_cast<std::size_t>(v)] -
                                  rank[static_cast<std::size_t>(v)]);
    }
    rank.swap(next);
    if (result.residual < options.tolerance) {
      ++result.iterations;
      break;
    }
  }
  result.rank = std::move(rank);
  return result;
}

}  // namespace tilq
