#include "algos/ktruss.hpp"

#include <utility>
#include <vector>

#include "algos/triangle_count.hpp"
#include "sparse/ops.hpp"
#include "support/common.hpp"

namespace tilq {
namespace {

/// Keeps the entries of `adj` whose matching entry in `support` is at least
/// `threshold`. support has a subset pattern of adj (masked product), so a
/// two-pointer merge per row suffices.
Csr<double, std::int64_t> filter_by_support(
    const Csr<double, std::int64_t>& adj,
    const Csr<std::int64_t, std::int64_t>& support, std::int64_t threshold) {
  const std::int64_t rows = adj.rows();
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<std::size_t>(adj.nnz()));
  values.reserve(static_cast<std::size_t>(adj.nnz()));

  for (std::int64_t i = 0; i < rows; ++i) {
    const auto a_cols = adj.row_cols(i);
    const auto a_vals = adj.row_vals(i);
    const auto s_cols = support.row_cols(i);
    const auto s_vals = support.row_vals(i);
    std::size_t ps = 0;
    for (std::size_t pa = 0; pa < a_cols.size(); ++pa) {
      while (ps < s_cols.size() && s_cols[ps] < a_cols[pa]) {
        ++ps;
      }
      // An edge absent from the (masked-product) support matrix is in zero
      // triangles — it still survives when the threshold is zero (k = 2).
      const std::int64_t edge_support_value =
          (ps < s_cols.size() && s_cols[ps] == a_cols[pa]) ? s_vals[ps] : 0;
      if (edge_support_value >= threshold) {
        col_idx.push_back(a_cols[pa]);
        values.push_back(a_vals[pa]);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx.size());
  }
  return {rows, adj.cols(), std::move(row_ptr), std::move(col_idx),
          std::move(values)};
}

}  // namespace

KtrussResult ktruss(const Csr<double, std::int64_t>& adj, int k,
                    const Config& config) {
  TrianglePlanCache cache;
  return ktruss(adj, k, config, cache);
}

KtrussResult ktruss(const Csr<double, std::int64_t>& adj, int k,
                    const Config& config, TrianglePlanCache& cache) {
  require(adj.rows() == adj.cols(), "ktruss: adjacency must be square");
  require(k >= 2, "ktruss: k must be >= 2");

  KtrussResult result;
  result.truss = adj;
  const std::int64_t threshold = k - 2;

  while (true) {
    ++result.iterations;
    const auto support = edge_support(result.truss, config, cache);
    Csr<double, std::int64_t> next =
        filter_by_support(result.truss, support, threshold);
    const bool converged = next.nnz() == result.truss.nnz();
    result.truss = std::move(next);
    if (converged || result.truss.nnz() == 0) {
      break;
    }
  }
  result.edges = result.truss.nnz() / 2;
  return result;
}

int max_truss(const Csr<double, std::int64_t>& adj, const Config& config) {
  int k = 2;
  Csr<double, std::int64_t> current = adj;
  TrianglePlanCache cache;  // workspaces stay warm across all k levels
  while (true) {
    const KtrussResult next = ktruss(current, k + 1, config, cache);
    if (next.edges == 0) {
      return k;
    }
    current = next.truss;  // (k+1)-truss is a subgraph of the k-truss
    ++k;
  }
}

}  // namespace tilq
