#include "algos/kcore.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace tilq {

KcoreResult kcore_decomposition(const Csr<double, std::int64_t>& adj) {
  require(adj.rows() == adj.cols(), "kcore: adjacency must be square");
  const std::int64_t n = adj.rows();
  KcoreResult result;
  result.core.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) {
    return result;
  }

  // Bucket sort vertices by degree (Matula-Beck peeling).
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n));
  std::int64_t max_degree = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] = adj.row_nnz(v);
    max_degree = std::max(max_degree, degree[static_cast<std::size_t>(v)]);
  }

  std::vector<std::int64_t> bucket_start(static_cast<std::size_t>(max_degree) + 2, 0);
  for (std::int64_t v = 0; v < n; ++v) {
    ++bucket_start[static_cast<std::size_t>(degree[static_cast<std::size_t>(v)]) + 1];
  }
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }

  // position[v] = index of v in `ordered`; `ordered` sorted by current degree.
  std::vector<std::int64_t> ordered(static_cast<std::size_t>(n));
  std::vector<std::int64_t> position(static_cast<std::size_t>(n));
  {
    std::vector<std::int64_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (std::int64_t v = 0; v < n; ++v) {
      const auto d = static_cast<std::size_t>(degree[static_cast<std::size_t>(v)]);
      position[static_cast<std::size_t>(v)] = cursor[d];
      ordered[static_cast<std::size_t>(cursor[d]++)] = v;
    }
  }

  for (std::int64_t p = 0; p < n; ++p) {
    const std::int64_t v = ordered[static_cast<std::size_t>(p)];
    const std::int64_t dv = degree[static_cast<std::size_t>(v)];
    result.core[static_cast<std::size_t>(v)] = dv;
    result.degeneracy = std::max(result.degeneracy, dv);

    // Peel v: every unprocessed neighbour with higher current degree moves
    // one bucket down, by swapping it with the first element of its bucket.
    for (const std::int64_t u : adj.row_cols(v)) {
      auto& du = degree[static_cast<std::size_t>(u)];
      if (du > dv) {
        const auto bucket_first = bucket_start[static_cast<std::size_t>(du)];
        const std::int64_t w = ordered[static_cast<std::size_t>(bucket_first)];
        if (w != u) {
          std::swap(ordered[static_cast<std::size_t>(bucket_first)],
                    ordered[static_cast<std::size_t>(
                        position[static_cast<std::size_t>(u)])]);
          std::swap(position[static_cast<std::size_t>(u)],
                    position[static_cast<std::size_t>(w)]);
        }
        ++bucket_start[static_cast<std::size_t>(du)];
        --du;
      }
    }
  }
  return result;
}

std::vector<std::int64_t> kcore_members(const KcoreResult& result, std::int64_t k) {
  std::vector<std::int64_t> members;
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(result.core.size()); ++v) {
    if (result.core[static_cast<std::size_t>(v)] >= k) {
      members.push_back(v);
    }
  }
  return members;
}

}  // namespace tilq
