#include "algos/components.hpp"

#include <algorithm>
#include <numeric>

#include "support/common.hpp"

namespace tilq {
namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::int64_t n) : parent_(static_cast<std::size_t>(n)),
                                       size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), std::int64_t{0});
  }

  std::int64_t find(std::int64_t x) noexcept {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      auto& p = parent_[static_cast<std::size_t>(x)];
      p = parent_[static_cast<std::size_t>(p)];  // path halving
      x = p;
    }
    return x;
  }

  void unite(std::int64_t a, std::int64_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) {
      return;
    }
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  }

 private:
  std::vector<std::int64_t> parent_;
  std::vector<std::int64_t> size_;
};

}  // namespace

ComponentsResult connected_components(const Csr<double, std::int64_t>& adj) {
  require(adj.rows() == adj.cols(), "connected_components: matrix must be square");
  const std::int64_t n = adj.rows();
  UnionFind uf(n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (const std::int64_t j : adj.row_cols(i)) {
      uf.unite(i, j);
    }
  }

  ComponentsResult result;
  result.component.assign(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> root_to_id(static_cast<std::size_t>(n), -1);
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t root = uf.find(v);
    auto& id = root_to_id[static_cast<std::size_t>(root)];
    if (id < 0) {
      id = result.count++;
      result.size.push_back(0);
    }
    result.component[static_cast<std::size_t>(v)] = id;
    ++result.size[static_cast<std::size_t>(id)];
  }

  for (std::int64_t id = 0; id < result.count; ++id) {
    if (result.size[static_cast<std::size_t>(id)] > result.largest_size) {
      result.largest_size = result.size[static_cast<std::size_t>(id)];
      result.largest_id = id;
    }
  }
  return result;
}

std::int64_t largest_component_member(const Csr<double, std::int64_t>& adj) {
  const ComponentsResult components = connected_components(adj);
  std::int64_t best = -1;
  std::int64_t best_degree = -1;
  for (std::int64_t v = 0; v < adj.rows(); ++v) {
    if (components.component[static_cast<std::size_t>(v)] ==
            components.largest_id &&
        adj.row_nnz(v) > best_degree) {
      best_degree = adj.row_nnz(v);
      best = v;
    }
  }
  return best;
}

}  // namespace tilq
