#include "algos/bfs_la.hpp"

#include <cstdint>
#include <span>
#include <vector>

#include "core/semiring.hpp"
#include "core/spmv.hpp"
#include "sparse/vector.hpp"
#include "support/common.hpp"

namespace tilq {
namespace {

using Vec = SparseVector<double, std::int64_t>;

/// Sorted union of two sorted index sets, values all 1 (structural).
Vec pattern_union(const Vec& a, const Vec& b) {
  std::vector<std::int64_t> indices;
  indices.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  const auto ai = a.indices();
  const auto bi = b.indices();
  std::size_t pa = 0;
  std::size_t pb = 0;
  while (pa < ai.size() || pb < bi.size()) {
    if (pb == bi.size() || (pa < ai.size() && ai[pa] < bi[pb])) {
      indices.push_back(ai[pa++]);
    } else if (pa == ai.size() || bi[pb] < ai[pa]) {
      indices.push_back(bi[pb++]);
    } else {
      indices.push_back(ai[pa]);
      ++pa;
      ++pb;
    }
  }
  std::vector<double> values(indices.size(), 1.0);
  return {a.dim(), std::move(indices), std::move(values)};
}

/// The unvisited set as an explicit sparse mask (for the pull step).
Vec unvisited_mask(const Vec& visited) {
  std::vector<std::int64_t> indices = pattern_complement(visited);
  std::vector<double> values(indices.size(), 1.0);
  return {visited.dim(), std::move(indices), std::move(values)};
}

}  // namespace

BfsLaResult bfs_linear_algebra(const Csr<double, std::int64_t>& adj,
                               std::int64_t source,
                               const BfsLaOptions& options) {
  require(adj.rows() == adj.cols(), "bfs_linear_algebra: adjacency not square");
  require(source >= 0 && source < adj.rows(),
          "bfs_linear_algebra: source out of range");

  const std::int64_t n = adj.rows();
  BfsLaResult result;
  result.level.assign(static_cast<std::size_t>(n), -1);
  result.level[static_cast<std::size_t>(source)] = 0;
  result.reached = 1;

  Vec frontier = Vec::unit(n, source);
  Vec visited = frontier;
  std::int64_t depth = 0;

  // Pull-step scratch, hoisted across levels: the dense frontier expansion
  // is O(n) to allocate but only O(frontier.nnz()) to scatter and clear, so
  // keeping the buffers alive turns per-level allocations into none.
  std::vector<double> dense_x;
  std::vector<std::uint8_t> present_x;

  using SR = PlusTimes<double>;  // values are structural; any semiring works
  while (!frontier.empty()) {
    ++depth;
    const bool pull =
        options.force_mode == 2 ||
        (options.force_mode == 0 &&
         static_cast<double>(frontier.nnz()) >
             options.pull_threshold * static_cast<double>(n));

    Vec next;
    if (pull) {
      ++result.pull_steps;
      // next = unvisited ⊙ (A · frontier): a masked SpMV where the mask is
      // the complement of the visited set, materialized sparsely.
      if (dense_x.empty()) {
        dense_x.assign(static_cast<std::size_t>(n), SR::zero());
        present_x.assign(static_cast<std::size_t>(n), 0);
      }
      const auto idx = frontier.indices();
      const auto val = frontier.values();
      for (std::size_t p = 0; p < idx.size(); ++p) {
        dense_x[static_cast<std::size_t>(idx[p])] = val[p];
        present_x[static_cast<std::size_t>(idx[p])] = 1;
      }
      next = masked_spmv<SR>(unvisited_mask(visited), adj,
                             std::span<const double>(dense_x),
                             std::span<const std::uint8_t>(present_x));
      for (const std::int64_t v : idx) {  // sparse clear, not O(n) memset
        dense_x[static_cast<std::size_t>(v)] = SR::zero();
        present_x[static_cast<std::size_t>(v)] = 0;
      }
    } else {
      ++result.push_steps;
      // next = ¬visited ⊙ (Aᵀ · frontier); adjacency is symmetric so A
      // doubles as its own transpose.
      next = complement_masked_spmspv<SR>(visited, adj, frontier);
    }

    for (const std::int64_t v : next.indices()) {
      result.level[static_cast<std::size_t>(v)] = depth;
    }
    result.reached += next.nnz();
    visited = pattern_union(visited, next);
    frontier = std::move(next);
  }
  return result;
}

}  // namespace tilq
