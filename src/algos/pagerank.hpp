// PageRank by power iteration over the SpMV substrate — a classic
// recommender/web workload on the same sparse kernels (spmv_dense).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-9;  ///< L1 change per iteration to declare converged
  int max_iterations = 100;
};

struct PageRankResult {
  std::vector<double> rank;  ///< sums to 1
  int iterations = 0;
  double residual = 0.0;  ///< final L1 change
};

/// PageRank of the directed graph `adj` (row i lists i's out-links).
/// Dangling vertices (empty rows) redistribute uniformly.
PageRankResult pagerank(const Csr<double, std::int64_t>& adj,
                        const PageRankOptions& options = {});

}  // namespace tilq
