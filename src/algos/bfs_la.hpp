// BFS in the language of linear algebra — the GraphBLAS formulation the
// paper's introduction cites, built on the masked SpMV kernels:
//
//   frontier_0 = e_source
//   frontier_{d+1} = ¬visited ⊙ (Aᵀ · frontier_d)      (push / SpMSpV)
//                or   unvisited-mask ⊙ (A · frontier_d) (pull / SpMV)
//
// over the boolean or-and semiring. Produces the same levels as the direct
// implementation in algos/bfs.hpp; having both lets the tests
// cross-validate them and lets the examples show the masked-kernel
// formulation the paper motivates.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

struct BfsLaResult {
  std::vector<std::int64_t> level;  ///< -1 where unreachable
  std::int64_t reached = 0;
  int push_steps = 0;
  int pull_steps = 0;
};

struct BfsLaOptions {
  /// Pull when the frontier holds more than this fraction of all vertices.
  double pull_threshold = 0.05;
  /// Force a single mode: 0 auto, 1 push (SpMSpV) only, 2 pull (SpMV) only.
  int force_mode = 0;
};

/// Linear-algebraic BFS from `source` over the symmetric adjacency `adj`.
BfsLaResult bfs_linear_algebra(const Csr<double, std::int64_t>& adj,
                               std::int64_t source,
                               const BfsLaOptions& options = {});

}  // namespace tilq
