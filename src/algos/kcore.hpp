// k-core decomposition by bucketed peeling (Matula–Beck). The vertex-level
// sibling of k-truss: the k-core is the maximal subgraph where every vertex
// has degree >= k. Computes every vertex's core number in O(n + m).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace tilq {

struct KcoreResult {
  /// Core number per vertex.
  std::vector<std::int64_t> core;
  /// Largest core number in the graph (its degeneracy).
  std::int64_t degeneracy = 0;
};

/// Core decomposition of the undirected graph `adj` (symmetric adjacency,
/// no self-loops).
KcoreResult kcore_decomposition(const Csr<double, std::int64_t>& adj);

/// Vertices of the k-core (core number >= k).
std::vector<std::int64_t> kcore_members(const KcoreResult& result, std::int64_t k);

}  // namespace tilq
