// Web-graph generator based on the copying model (Kumar et al.): each new
// page links to `out_degree` targets, each either copied from a random
// earlier page's links (probability copy_prob) or drawn fresh with a
// recency bias. Produces the power-law in-degrees and strong index locality
// characteristic of crawl-ordered web matrices (arabic-2005, uk-2002,
// as-Skitter analogues). Directed by default, matching the paper's note
// that arabic-2005 / uk-2002 are directed graphs.
#pragma once

#include <cstdint>

#include "gen/graph_common.hpp"

namespace tilq {

struct WebGraphParams {
  std::int64_t nodes = 1 << 14;
  /// Mean links per page. Per-page out-degrees are Pareto-distributed
  /// around this mean (real crawls have heavy-tailed out-degrees — index
  /// pages link to thousands of targets), so CSR row work is skewed, not
  /// uniform.
  int out_degree = 16;
  /// Pareto shape for the out-degree distribution; smaller = heavier tail.
  /// Values <= 0 disable the skew (constant out-degree).
  double degree_shape = 2.0;
  /// Probability of copying a link target from an existing page.
  double copy_prob = 0.5;
  /// Fresh targets are sampled from the last `locality_window` fraction of
  /// existing pages (crawl locality); 1.0 = uniform over all pages.
  double locality_window = 0.25;
  bool symmetric = false;
  std::uint64_t seed = 1;
};

GraphMatrix generate_web_graph(const WebGraphParams& params);

}  // namespace tilq
