#include "gen/erdos_renyi.hpp"

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {

GraphMatrix generate_erdos_renyi(const ErdosRenyiParams& params) {
  require(params.nodes >= 1, "generate_erdos_renyi: need at least one node");
  require(params.edges >= 0, "generate_erdos_renyi: negative edge count");
  Xoshiro256 rng(params.seed);
  const auto n = static_cast<std::uint64_t>(params.nodes);

  Coo<double, std::int64_t> coo(params.nodes, params.nodes);
  coo.reserve(static_cast<std::size_t>(params.edges));
  for (std::int64_t e = 0; e < params.edges; ++e) {
    const auto row = static_cast<std::int64_t>(rng.uniform_below(n));
    const auto col = static_cast<std::int64_t>(rng.uniform_below(n));
    coo.push_unchecked(row, col, 1.0);
  }
  return gen_detail::finalize_graph(std::move(coo), params.symmetric);
}

}  // namespace tilq
