// R-MAT / stochastic-Kronecker graph generator (Chakrabarti et al.), the
// standard model for social-network-like graphs with heavy-tailed degree
// distributions. Used for the com-Orkut / com-LiveJournal / hollywood-2009
// analogues in the synthetic collection.
#pragma once

#include <cstdint>

#include "gen/graph_common.hpp"

namespace tilq {

struct RmatParams {
  /// log2 of the vertex count: n = 2^scale.
  int scale = 14;
  /// Average edges per vertex before dedup/symmetrization.
  int edge_factor = 16;
  /// Quadrant probabilities; must sum to ~1. The Graph500 defaults give
  /// strong degree skew.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Per-level noise on the quadrant probabilities, breaking up the
  /// artificial self-similarity of pure R-MAT.
  double noise = 0.1;
  bool symmetric = true;
  std::uint64_t seed = 1;
};

/// Generates an R-MAT graph: duplicate edges and self-loops are removed,
/// and the matrix is symmetrized when `params.symmetric`.
GraphMatrix generate_rmat(const RmatParams& params);

}  // namespace tilq
