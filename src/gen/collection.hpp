// The synthetic matrix collection: ten named analogues of the paper's
// Table I SuiteSparse matrices, one per name, scaled ~500-1000x down so the
// whole evaluation runs on a development machine. Each analogue is built by
// the structural generator matching its kind (web / circuit / social /
// road); DESIGN.md documents the substitution.
//
// To run the benchmarks on the *real* SuiteSparse matrices instead, load
// them with read_matrix_market_file and feed the Csr to the same harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/graph_common.hpp"

namespace tilq {

/// Matrix kind, matching Table I's (W)eb / (C)ircuit / (S)ocial / (R)oad.
enum class GraphKind { kWeb, kCircuit, kSocial, kRoad };

[[nodiscard]] const char* to_string(GraphKind kind) noexcept;

/// Static description of one collection entry.
struct CollectionEntry {
  std::string name;        ///< SuiteSparse name this analogue stands in for
  GraphKind kind;
  std::int64_t paper_n;    ///< vertex count of the real matrix (Table I)
  std::int64_t paper_nnz;  ///< nonzero count of the real matrix (Table I)
};

/// The ten Table-I entries, in the paper's order.
const std::vector<CollectionEntry>& collection_entries();

/// Looks up an entry by name; throws PreconditionError for unknown names.
const CollectionEntry& collection_entry(const std::string& name);

/// Generates the analogue for `name`. `scale` multiplies the (scaled-down)
/// default vertex count — use < 1 for smoke tests, > 1 for bigger runs;
/// degrees are kept roughly constant so nnz scales linearly.
GraphMatrix make_collection_graph(const std::string& name, double scale = 1.0,
                                  std::uint64_t seed = 1);

/// All ten names, in Table-I order.
std::vector<std::string> collection_names();

}  // namespace tilq
