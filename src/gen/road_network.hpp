// Road-network generator: a width x height planar lattice with randomly
// deleted street segments and occasional diagonal shortcuts. Reproduces the
// signature properties of europe_osm / GAP-road: near-uniform tiny degrees
// (2-4), huge diameter, and strong index locality under row-major node
// numbering — the regime where the paper finds tiling choices matter least
// (Fig 11a/11b are nearly flat).
#pragma once

#include <cstdint>

#include "gen/graph_common.hpp"

namespace tilq {

struct RoadNetworkParams {
  std::int64_t width = 160;
  std::int64_t height = 160;
  /// Probability that a lattice street segment is missing.
  double deletion_prob = 0.08;
  /// Probability of a diagonal shortcut at a junction.
  double shortcut_prob = 0.03;
  std::uint64_t seed = 1;
};

GraphMatrix generate_road_network(const RoadNetworkParams& params);

}  // namespace tilq
