// Watts–Strogatz small-world generator: a ring lattice with k neighbours
// per side whose edges are rewired with probability beta. Produces graphs
// with near-uniform degree but non-trivial clustering — a useful
// intermediate between road grids and social networks for property tests.
#pragma once

#include <cstdint>

#include "gen/graph_common.hpp"

namespace tilq {

struct WattsStrogatzParams {
  std::int64_t nodes = 1 << 12;
  /// Neighbours on each side in the initial ring (degree = 2k).
  int k = 4;
  /// Rewiring probability.
  double beta = 0.1;
  std::uint64_t seed = 1;
};

GraphMatrix generate_watts_strogatz(const WattsStrogatzParams& params);

}  // namespace tilq
