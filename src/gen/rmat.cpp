#include "gen/rmat.hpp"

#include <cmath>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {

GraphMatrix generate_rmat(const RmatParams& params) {
  require(params.scale >= 1 && params.scale < 32, "generate_rmat: bad scale");
  require(params.edge_factor >= 1, "generate_rmat: bad edge factor");
  const double sum = params.a + params.b + params.c + params.d;
  require(std::abs(sum - 1.0) < 1e-6,
          "generate_rmat: quadrant probabilities must sum to 1");

  const std::int64_t n = std::int64_t{1} << params.scale;
  const std::int64_t edges = n * params.edge_factor;
  Xoshiro256 rng(params.seed);

  Coo<double, std::int64_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(edges));
  for (std::int64_t e = 0; e < edges; ++e) {
    std::int64_t row = 0;
    std::int64_t col = 0;
    for (int level = 0; level < params.scale; ++level) {
      // Jitter the quadrant probabilities per level (multiplicative noise),
      // then renormalize.
      const double na = params.a * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double nb = params.b * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double nc = params.c * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double nd = params.d * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double total = na + nb + nc + nd;
      const double u = rng.uniform() * total;
      row <<= 1;
      col <<= 1;
      if (u < na) {
        // top-left: nothing to add
      } else if (u < na + nb) {
        col |= 1;
      } else if (u < na + nb + nc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    coo.push_unchecked(row, col, 1.0);
  }
  return gen_detail::finalize_graph(std::move(coo), params.symmetric);
}

}  // namespace tilq
