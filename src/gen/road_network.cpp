#include "gen/road_network.hpp"

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {

GraphMatrix generate_road_network(const RoadNetworkParams& params) {
  require(params.width >= 2 && params.height >= 2,
          "generate_road_network: lattice must be at least 2x2");
  require(params.deletion_prob >= 0.0 && params.deletion_prob < 1.0,
          "generate_road_network: deletion_prob must be in [0, 1)");

  const std::int64_t w = params.width;
  const std::int64_t h = params.height;
  const std::int64_t n = w * h;
  Xoshiro256 rng(params.seed);

  const auto node = [w](std::int64_t x, std::int64_t y) { return y * w + x; };

  Coo<double, std::int64_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(2 * n));
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t here = node(x, y);
      if (x + 1 < w && !rng.bernoulli(params.deletion_prob)) {
        coo.push_unchecked(here, node(x + 1, y), 1.0);
      }
      if (y + 1 < h && !rng.bernoulli(params.deletion_prob)) {
        coo.push_unchecked(here, node(x, y + 1), 1.0);
      }
      if (x + 1 < w && y + 1 < h && rng.bernoulli(params.shortcut_prob)) {
        coo.push_unchecked(here, node(x + 1, y + 1), 1.0);
      }
    }
  }
  return gen_detail::finalize_graph(std::move(coo), /*symmetric=*/true);
}

}  // namespace tilq
