#include "gen/collection.hpp"

#include <algorithm>
#include <cmath>

#include "gen/circuit.hpp"
#include "gen/rmat.hpp"
#include "gen/road_network.hpp"
#include "gen/web_graph.hpp"
#include "support/common.hpp"

namespace tilq {
namespace {

std::int64_t scaled(std::int64_t base, double scale) {
  return std::max<std::int64_t>(64, static_cast<std::int64_t>(
                                        static_cast<double>(base) * scale));
}

/// R-MAT scale (log2 n) for a target node count.
int rmat_scale(std::int64_t nodes) {
  return static_cast<int>(ceil_log2(static_cast<std::uint64_t>(std::max<std::int64_t>(2, nodes))));
}

}  // namespace

const char* to_string(GraphKind kind) noexcept {
  switch (kind) {
    case GraphKind::kWeb:
      return "web";
    case GraphKind::kCircuit:
      return "circuit";
    case GraphKind::kSocial:
      return "social";
    case GraphKind::kRoad:
      return "road";
  }
  return "?";
}

const std::vector<CollectionEntry>& collection_entries() {
  static const std::vector<CollectionEntry> kEntries = {
      {"arabic-2005", GraphKind::kWeb, 22744080, 639999458},
      {"as-Skitter", GraphKind::kWeb, 1696415, 22190596},
      {"circuit5M", GraphKind::kCircuit, 5558326, 59524291},
      {"com-LiveJournal", GraphKind::kSocial, 3997962, 69362378},
      {"com-Orkut", GraphKind::kSocial, 3072441, 234370166},
      {"europe_osm", GraphKind::kRoad, 50912018, 108109320},
      {"GAP-road", GraphKind::kRoad, 23947347, 57708624},
      {"hollywood-2009", GraphKind::kSocial, 1139905, 113891327},
      {"stokes", GraphKind::kCircuit, 11449533, 349321980},
      {"uk-2002", GraphKind::kWeb, 18520486, 298113762},
  };
  return kEntries;
}

const CollectionEntry& collection_entry(const std::string& name) {
  for (const auto& entry : collection_entries()) {
    if (entry.name == name) {
      return entry;
    }
  }
  throw PreconditionError("collection_entry: unknown matrix name");
}

std::vector<std::string> collection_names() {
  std::vector<std::string> names;
  names.reserve(collection_entries().size());
  for (const auto& entry : collection_entries()) {
    names.push_back(entry.name);
  }
  return names;
}

GraphMatrix make_collection_graph(const std::string& name, double scale,
                                  std::uint64_t seed) {
  require(scale > 0.0, "make_collection_graph: scale must be positive");

  // Per-name parameters: node counts are the paper's, divided by roughly
  // 500-1500; degrees approximate the real matrices' mean degrees (Table I
  // nnz/n), compressed a little for the densest graphs so single runs stay
  // sub-second on a laptop core.
  if (name == "arabic-2005") {
    WebGraphParams p;
    p.nodes = scaled(16384, scale);
    p.out_degree = 22;
    p.copy_prob = 0.55;
    p.locality_window = 0.15;
    p.symmetric = false;  // directed, as the paper notes
    p.seed = seed;
    return generate_web_graph(p);
  }
  if (name == "as-Skitter") {
    WebGraphParams p;
    p.nodes = scaled(16384, scale);
    p.out_degree = 7;
    p.copy_prob = 0.5;
    p.locality_window = 0.6;
    p.symmetric = true;  // traceroute topology is undirected
    p.seed = seed;
    return generate_web_graph(p);
  }
  if (name == "circuit5M") {
    CircuitParams p;
    p.nodes = scaled(8192, scale);
    p.band = 4;
    p.rails = 5;
    p.rail_coverage = 0.35;
    p.seed = seed;
    return generate_circuit(p);
  }
  if (name == "com-LiveJournal") {
    RmatParams p;
    p.scale = rmat_scale(scaled(16384, scale));
    p.edge_factor = 9;
    p.seed = seed;
    return generate_rmat(p);
  }
  if (name == "com-Orkut") {
    RmatParams p;
    p.scale = rmat_scale(scaled(8192, scale));
    p.edge_factor = 20;
    p.seed = seed;
    return generate_rmat(p);
  }
  if (name == "europe_osm") {
    RoadNetworkParams p;
    const auto side = static_cast<std::int64_t>(
        std::sqrt(static_cast<double>(scaled(50176, scale))));
    p.width = side;
    p.height = side;
    p.deletion_prob = 0.45;
    p.shortcut_prob = 0.02;
    p.seed = seed;
    return generate_road_network(p);
  }
  if (name == "GAP-road") {
    RoadNetworkParams p;
    const auto side = static_cast<std::int64_t>(
        std::sqrt(static_cast<double>(scaled(25600, scale))));
    p.width = side;
    p.height = side;
    p.deletion_prob = 0.40;
    p.shortcut_prob = 0.03;
    p.seed = seed;
    return generate_road_network(p);
  }
  if (name == "hollywood-2009") {
    RmatParams p;
    p.scale = rmat_scale(scaled(4096, scale));
    p.edge_factor = 40;
    p.seed = seed;
    return generate_rmat(p);
  }
  if (name == "stokes") {
    CircuitParams p;
    p.nodes = scaled(8192, scale);
    p.band = 12;
    p.rails = 2;
    p.rail_coverage = 0.10;
    p.seed = seed;
    return generate_circuit(p);
  }
  if (name == "uk-2002") {
    WebGraphParams p;
    p.nodes = scaled(16384, scale);
    p.out_degree = 14;
    p.copy_prob = 0.6;
    p.locality_window = 0.2;
    p.symmetric = false;  // directed
    p.seed = seed;
    return generate_web_graph(p);
  }
  throw PreconditionError("make_collection_graph: unknown matrix name");
}

}  // namespace tilq
