#include "gen/circuit.hpp"

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {

GraphMatrix generate_circuit(const CircuitParams& params) {
  require(params.nodes >= 4, "generate_circuit: need at least 4 nodes");
  require(params.band >= 1, "generate_circuit: band must be >= 1");
  require(params.rails >= 0, "generate_circuit: negative rail count");
  require(params.rail_coverage > 0.0 && params.rail_coverage <= 1.0,
          "generate_circuit: rail_coverage must be in (0, 1]");

  const std::int64_t n = params.nodes;
  Xoshiro256 rng(params.seed);

  const auto rail_fanout = static_cast<std::int64_t>(
      params.rail_coverage * static_cast<double>(n));
  Coo<double, std::int64_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(params.band) +
              static_cast<std::size_t>(params.rails) *
                  static_cast<std::size_t>(rail_fanout));

  // Band part: each node couples to `band` successors with slight jitter so
  // rows are not perfectly regular.
  for (std::int64_t i = 0; i < n; ++i) {
    for (int d = 1; d <= params.band; ++d) {
      const auto jitter = static_cast<std::int64_t>(rng.uniform_below(3));
      const std::int64_t j = i + d + jitter;
      if (j < n) {
        coo.push_unchecked(i, j, 1.0);
      }
    }
  }

  // Rail nets: the first `rails` nodes fan out across the whole matrix.
  for (int r = 0; r < params.rails; ++r) {
    const std::int64_t rail = r;
    for (std::int64_t f = 0; f < rail_fanout; ++f) {
      const auto j = static_cast<std::int64_t>(
          rng.uniform_below(static_cast<std::uint64_t>(n)));
      coo.push_unchecked(rail, j, 1.0);
    }
  }
  return gen_detail::finalize_graph(std::move(coo), /*symmetric=*/true);
}

}  // namespace tilq
