// Circuit-simulation matrix generator: a narrow band of local couplings
// (neighbouring circuit nodes) plus a handful of ultra-dense "rail" rows
// (power/ground/clock nets touching a large fraction of all nodes). The
// rail rows are the defining feature of circuit5M: they give the matrix a
// few rows with 10^4-10^5 nonzeros, which makes the linear-scan kernels
// read enormous B rows per product and is exactly why the paper's
// circuit5M run times out without co-iteration (Fig 14d).
#pragma once

#include <cstdint>

#include "gen/graph_common.hpp"

namespace tilq {

struct CircuitParams {
  std::int64_t nodes = 1 << 14;
  /// Local couplings per node (half-bandwidth of the band part).
  int band = 4;
  /// Number of dense rail nets.
  int rails = 6;
  /// Fraction of all nodes each rail connects to.
  double rail_coverage = 0.4;
  std::uint64_t seed = 1;
};

GraphMatrix generate_circuit(const CircuitParams& params);

}  // namespace tilq
