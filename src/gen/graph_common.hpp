// Shared helpers for the synthetic graph generators. All generators emit an
// adjacency matrix as Csr<double> with unit values; pattern, not weights,
// is what drives masked-SpGEMM performance (the paper treats the mask as
// Boolean and fixes M = B = A, §IV-A).
#pragma once

#include <cstdint>

#include "sparse/build.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/ops.hpp"

namespace tilq {

/// Default generator matrix type.
using GraphMatrix = Csr<double, std::int64_t>;

namespace gen_detail {

/// Deduplicates, drops self-loops, and (optionally) symmetrizes a raw edge
/// bag into the final adjacency matrix.
inline GraphMatrix finalize_graph(Coo<double, std::int64_t>&& edges,
                                  bool symmetric) {
  GraphMatrix adj = build_csr(edges, DupPolicy::kKeepFirst);
  adj = remove_diagonal(adj);
  if (symmetric) {
    adj = symmetrize(adj);
  }
  return adj;
}

}  // namespace gen_detail
}  // namespace tilq
