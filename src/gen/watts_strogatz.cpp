#include "gen/watts_strogatz.hpp"

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {

GraphMatrix generate_watts_strogatz(const WattsStrogatzParams& params) {
  require(params.nodes >= 3, "generate_watts_strogatz: need at least 3 nodes");
  require(params.k >= 1 && 2 * params.k < params.nodes,
          "generate_watts_strogatz: k out of range");
  require(params.beta >= 0.0 && params.beta <= 1.0,
          "generate_watts_strogatz: beta must be a probability");

  const std::int64_t n = params.nodes;
  Xoshiro256 rng(params.seed);
  Coo<double, std::int64_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(params.k));

  for (std::int64_t i = 0; i < n; ++i) {
    for (int d = 1; d <= params.k; ++d) {
      std::int64_t j = (i + d) % n;
      if (rng.bernoulli(params.beta)) {
        // Rewire to a uniform random endpoint (self-loops are dropped by
        // finalize_graph).
        j = static_cast<std::int64_t>(rng.uniform_below(static_cast<std::uint64_t>(n)));
      }
      coo.push_unchecked(i, j, 1.0);
    }
  }
  return gen_detail::finalize_graph(std::move(coo), /*symmetric=*/true);
}

}  // namespace tilq
