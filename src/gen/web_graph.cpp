#include "gen/web_graph.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace tilq {

GraphMatrix generate_web_graph(const WebGraphParams& params) {
  require(params.nodes >= 2, "generate_web_graph: need at least 2 nodes");
  require(params.out_degree >= 1, "generate_web_graph: bad out degree");
  require(params.copy_prob >= 0.0 && params.copy_prob <= 1.0,
          "generate_web_graph: copy_prob must be a probability");
  require(params.locality_window > 0.0 && params.locality_window <= 1.0,
          "generate_web_graph: locality_window must be in (0, 1]");

  const std::int64_t n = params.nodes;
  Xoshiro256 rng(params.seed);

  // Flat edge list doubling as the copy source: copying a link means
  // sampling a uniform prior edge and reusing its target, which reproduces
  // preferential attachment (targets are picked proportional to in-degree).
  std::vector<std::int64_t> targets;
  targets.reserve(static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(params.out_degree));

  Coo<double, std::int64_t> coo(n, n);
  coo.reserve(targets.capacity());

  for (std::int64_t page = 1; page < n; ++page) {
    // Pareto(shape) out-degree with mean params.out_degree: the density is
    // shape/x^(shape+1) on [1, inf) with mean shape/(shape-1), so dividing
    // by that mean re-centres the draw at 1.
    std::int64_t page_degree = params.out_degree;
    if (params.degree_shape > 1.0) {
      const double pareto =
          std::pow(1.0 - rng.uniform(), -1.0 / params.degree_shape);
      const double mean = params.degree_shape / (params.degree_shape - 1.0);
      page_degree = static_cast<std::int64_t>(
          static_cast<double>(params.out_degree) * pareto / mean);
      page_degree = std::clamp<std::int64_t>(page_degree, 1, n / 4);
    }
    for (std::int64_t link = 0; link < page_degree; ++link) {
      std::int64_t target;
      if (!targets.empty() && rng.bernoulli(params.copy_prob)) {
        target = targets[rng.uniform_below(targets.size())];
      } else {
        // Fresh target with recency bias: uniform over the trailing window
        // of already-created pages.
        const auto window = static_cast<std::int64_t>(
            std::max<double>(1.0, params.locality_window * static_cast<double>(page)));
        target = page - 1 - static_cast<std::int64_t>(
                                rng.uniform_below(static_cast<std::uint64_t>(window)));
      }
      if (target == page) {
        continue;  // self-links dropped
      }
      coo.push_unchecked(page, target, 1.0);
      targets.push_back(target);
    }
  }
  return gen_detail::finalize_graph(std::move(coo), params.symmetric);
}

}  // namespace tilq
