// Erdős–Rényi G(n, m) generator: m edges sampled uniformly at random.
// Baseline "no structure" graph for tests and ablations.
#pragma once

#include <cstdint>

#include "gen/graph_common.hpp"

namespace tilq {

struct ErdosRenyiParams {
  std::int64_t nodes = 1 << 12;
  /// Target edge count before dedup/symmetrization.
  std::int64_t edges = 1 << 15;
  bool symmetric = true;
  std::uint64_t seed = 1;
};

GraphMatrix generate_erdos_renyi(const ErdosRenyiParams& params);

}  // namespace tilq
