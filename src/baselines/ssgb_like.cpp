#include "baselines/baselines.hpp"

#include "support/env.hpp"

namespace tilq::baselines {

Config make_ssgb_config(const MatrixStats<std::int64_t>& mask_stats,
                        std::int64_t flops, int threads) {
  const int p = threads > 0 ? threads : max_threads();

  Config config;
  config.tiling = Tiling::kFlopBalanced;
  config.schedule = Schedule::kDynamic;
  config.num_tiles = 2 * static_cast<std::int64_t>(p);
  config.strategy = MaskStrategy::kHybrid;  // "push-pull"
  config.coiteration_factor = 1.0;
  config.marker_width = MarkerWidth::k64;
  config.reset = ResetPolicy::kMarker;
  config.threads = p;

  // Accumulator heuristic in the SS:GB spirit: pick the dense vector when
  // the product writes densely enough that one state entry per column pays
  // off — i.e. the operation count is a significant multiple of the output
  // dimension — and the hash table otherwise. (The real library's decision
  // tree is more elaborate; this captures its documented intent of
  // adapting to the input, which is what Fig 1's outliers stem from.)
  const auto dim = static_cast<double>(mask_stats.cols);
  const bool dense_writes = static_cast<double>(flops) > 16.0 * dim;
  config.accumulator =
      dense_writes ? AccumulatorKind::kDense : AccumulatorKind::kHash;
  return config;
}

}  // namespace tilq::baselines
