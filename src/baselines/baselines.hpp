// Baseline masked-SpGEMM implementations, reproducing the two systems the
// paper compares against (§II-B, §II-C, Fig 1). Both are policy layers over
// the tilq core kernels: what distinguishes SuiteSparse:GraphBLAS and GrB
// in the paper's analysis is *which* tiling / scheduling / iteration /
// accumulator choices they hard-code, and those policies are reproduced
// here.
//
//   SsgbLike — SuiteSparse:GraphBLAS-style:
//     * T = 2p FLOP-balanced tiles with dynamic scheduling (§III-A: "Based
//       on our experience, SuiteSparse:GraphBLAS uses T = 2p balanced tiles
//       this way")
//     * hybrid linear-scan/co-iteration ("push-pull", §III-B) with κ = 1
//     * heuristic accumulator choice: dense when the operation count is
//       large relative to the dimension (significant write locality),
//       hash otherwise
//     * 64-bit marker lazy reset (§III-C)
//
//   GrbLike — GrB-style (Milaković et al.):
//     * p FLOP-balanced tiles, one per thread, static scheduling (§II-C:
//       "the tiling and parallelization scheme is hence fixed")
//     * mask-first linear scan only (no co-iteration)
//     * explicit accumulator reset ("all M[i,j] != 0 slots ... are reset
//       explicitly after each row")
//     * accumulator kind is a caller flag, hash by default (Fig 1 runs use
//       the hash accumulator)
#pragma once

#include "core/config.hpp"
#include "core/masked_spgemm.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"

namespace tilq::baselines {

/// Builds the SS:GB-like Config for a problem with the given stats.
/// `threads` <= 0 selects the OpenMP default.
Config make_ssgb_config(const MatrixStats<std::int64_t>& mask_stats,
                        std::int64_t flops, int threads);

/// Builds the GrB-like Config. `accumulator` mirrors GrB's user-selectable
/// accumulator flag.
Config make_grb_config(int threads,
                       AccumulatorKind accumulator = AccumulatorKind::kHash);

/// C = M ⊙ (A × B) with the SuiteSparse:GraphBLAS-like policy.
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> ssgb_like(const Csr<T, I>& mask, const Csr<T, I>& a,
                    const Csr<T, I>& b, int threads = 0) {
  const auto mask_stats = compute_stats(mask);
  const Config config =
      make_ssgb_config(mask_stats, total_flops(a, b), threads);
  return masked_spgemm<SR>(mask, a, b, config);
}

/// As above, filling `stats` with the underlying kernel run's statistics.
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> ssgb_like(const Csr<T, I>& mask, const Csr<T, I>& a,
                    const Csr<T, I>& b, int threads, ExecutionStats& stats) {
  const auto mask_stats = compute_stats(mask);
  const Config config =
      make_ssgb_config(mask_stats, total_flops(a, b), threads);
  return masked_spgemm<SR>(mask, a, b, config, stats);
}

/// C = M ⊙ (A × B) with the GrB-like policy.
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> grb_like(const Csr<T, I>& mask, const Csr<T, I>& a,
                   const Csr<T, I>& b, int threads = 0,
                   AccumulatorKind accumulator = AccumulatorKind::kHash) {
  const Config config = make_grb_config(threads, accumulator);
  return masked_spgemm<SR>(mask, a, b, config);
}

/// As above, filling `stats` with the underlying kernel run's statistics.
template <Semiring SR, class T = typename SR::value_type, class I>
Csr<T, I> grb_like(const Csr<T, I>& mask, const Csr<T, I>& a,
                   const Csr<T, I>& b, int threads,
                   AccumulatorKind accumulator, ExecutionStats& stats) {
  const Config config = make_grb_config(threads, accumulator);
  return masked_spgemm<SR>(mask, a, b, config, stats);
}

}  // namespace tilq::baselines
