#include "baselines/baselines.hpp"

#include "support/env.hpp"

namespace tilq::baselines {

Config make_grb_config(int threads, AccumulatorKind accumulator) {
  const int p = threads > 0 ? threads : max_threads();

  Config config;
  // "Given p threads, the implementation creates p tiles ... based on the
  // average number of operations" (§II-C): one FLOP-balanced tile per
  // thread, statically assigned — no runtime load balancing.
  config.tiling = Tiling::kFlopBalanced;
  config.schedule = Schedule::kStatic;
  config.num_tiles = static_cast<std::int64_t>(p);
  // GrB has no co-iteration: every B row is scanned linearly against the
  // mask loaded in the accumulator (Fig 5).
  config.strategy = MaskStrategy::kMaskFirst;
  config.accumulator = accumulator;
  // "In GrB, all M[i,j] != 0 slots of the accumulator are reset explicitly
  // after each row" (§III-C).
  config.reset = ResetPolicy::kExplicit;
  config.marker_width = MarkerWidth::k64;
  config.threads = p;
  return config;
}

}  // namespace tilq::baselines
