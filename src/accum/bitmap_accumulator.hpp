// Bitmap dense accumulator — the logical extreme of the paper's marker-
// width study (§III-C / Fig 13). The paper relaxes SS:GB's 64-bit marker
// down to 8 bits and observes the locality-vs-reset trade; this
// accumulator pushes to 1 bit per flag: two bitsets (masked / touched)
// packed into 64-bit words, so the state footprint is 2·n/8 bytes — 32x
// smaller than the 32-bit sweet spot. Epoch counting is impossible with
// one bit, so rows reset explicitly (GrB style), touching exactly the
// mask's words. The ablation benches quantify where the extra reset work
// beats the smaller working set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "accum/accumulator.hpp"
#include "core/semiring.hpp"
#include "support/common.hpp"

namespace tilq {

template <Semiring SR, class I>
class BitmapAccumulator {
 public:
  using value_type = typename SR::value_type;

  explicit BitmapAccumulator(I cols)
      : values_(checked_size(cols), SR::zero()),
        masked_bits_(word_count(cols), 0),
        touched_bits_(word_count(cols), 0) {}

  void set_mask(std::span<const I> mask_cols) noexcept {
    for (const I j : mask_cols) {
      set_bit(masked_bits_, j);
      values_[static_cast<std::size_t>(j)] = SR::zero();
    }
  }

  bool accumulate(I col, value_type product) noexcept {
    if (!test_bit(masked_bits_, col)) {
#if TILQ_METRICS_ENABLED
      ++counters_.rejects;
#endif
      return false;
    }
#if TILQ_METRICS_ENABLED
    ++counters_.inserts;
#endif
    set_bit(touched_bits_, col);
    auto& slot = values_[static_cast<std::size_t>(col)];
    slot = SR::add(slot, product);
    return true;
  }

  [[nodiscard]] bool is_masked(I col) const noexcept {
    return test_bit(masked_bits_, col);
  }

  template <class EmitFn>
  void gather(std::span<const I> mask_cols, EmitFn&& emit) const {
    for (const I j : mask_cols) {
      if (test_bit(touched_bits_, j)) {
        emit(j, values_[static_cast<std::size_t>(j)]);
      }
    }
  }

  void finish_row(std::span<const I> mask_cols) noexcept {
#if TILQ_METRICS_ENABLED
    counters_.explicit_clears += mask_cols.size() + unmasked_touched_.size();
#endif
    // Explicit per-row reset: clear exactly the whole words the mask
    // touched (clearing words instead of bits halves the passes; duplicate
    // word clears are harmless).
    for (const I j : mask_cols) {
      masked_bits_[word_of(j)] = 0;
      touched_bits_[word_of(j)] = 0;
    }
    for (const I j : unmasked_touched_) {
      masked_bits_[word_of(j)] = 0;
      touched_bits_[word_of(j)] = 0;
    }
    unmasked_touched_.clear();
  }

  // --- unmasked (vanilla, Fig 3) protocol -------------------------------

  void begin_unmasked_row(I /*flop_upper_bound*/) { unmasked_touched_.clear(); }

  void accumulate_any(I col, value_type product) {
#if TILQ_METRICS_ENABLED
    ++counters_.inserts;
#endif
    if (test_bit(touched_bits_, col)) {
      auto& slot = values_[static_cast<std::size_t>(col)];
      slot = SR::add(slot, product);
    } else {
      set_bit(touched_bits_, col);
      values_[static_cast<std::size_t>(col)] = product;
      unmasked_touched_.push_back(col);
    }
  }

  template <class EmitFn>
  void gather_unmasked(EmitFn&& emit) {
    std::sort(unmasked_touched_.begin(), unmasked_touched_.end());
    for (const I j : unmasked_touched_) {
      emit(j, values_[static_cast<std::size_t>(j)]);
    }
  }

  [[nodiscard]] const AccumulatorCounters& counters() const noexcept {
    return counters_;
  }

 private:
  [[nodiscard]] static std::size_t checked_size(I cols) {
    require(cols >= 0, "BitmapAccumulator: negative column count");
    return static_cast<std::size_t>(cols);
  }
  [[nodiscard]] static std::size_t word_count(I cols) {
    return (checked_size(cols) + 63) / 64;
  }
  [[nodiscard]] static std::size_t word_of(I col) noexcept {
    return static_cast<std::size_t>(col) >> 6;
  }
  [[nodiscard]] static std::uint64_t bit_of(I col) noexcept {
    return std::uint64_t{1} << (static_cast<std::uint64_t>(col) & 63);
  }
  static void set_bit(std::vector<std::uint64_t>& bits, I col) noexcept {
    bits[word_of(col)] |= bit_of(col);
  }
  [[nodiscard]] static bool test_bit(const std::vector<std::uint64_t>& bits,
                                     I col) noexcept {
    return (bits[word_of(col)] & bit_of(col)) != 0;
  }

  std::vector<value_type> values_;
  std::vector<std::uint64_t> masked_bits_;
  std::vector<std::uint64_t> touched_bits_;
  std::vector<I> unmasked_touched_;
  AccumulatorCounters counters_;
};

}  // namespace tilq
