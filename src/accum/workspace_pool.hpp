// Per-thread workspace pool: keeps one accumulator (dense/hash/bitmap —
// including its marker array) alive per OpenMP thread across execute()
// calls, so iterated workloads pay the allocation + first-touch cost once
// instead of once per call. Accumulators rely on their marker-based reset
// protocol to stay row-clean between uses, so a pooled instance is handed
// back exactly as reusable as a freshly constructed one.
//
// A slot is rebuilt only when its recorded capability (columns for
// dense/bitmap, row bound for hash) no longer covers the request — shrinking
// inputs (e.g. k-truss peeling) keep reusing the larger workspace. The
// per-slot counters make reuse observable: tests and the iterated-workload
// bench assert `constructions` stays flat after warm-up.
//
// Thread safety: size the pool with reserve() before any concurrent use
// (reserve itself is NOT safe against in-flight acquires); after that,
// acquire() touches only the calling thread's slot, slots live in a deque
// so reserving more never moves existing ones, and the per-slot counters
// are relaxed atomics, so stats() may run concurrently with acquires (the
// batch engine polls it while pool workers hold workspaces).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "support/errors.hpp"
#include "support/fault.hpp"
#include "support/memory_governor.hpp"

namespace tilq {

/// Aggregated pool counters (summed over slots by WorkspacePool::stats()).
struct WorkspacePoolStats {
  std::uint64_t acquisitions = 0;   ///< accumulators handed out
  std::uint64_t constructions = 0;  ///< accumulators actually (re)built
  std::uint64_t retunes = 0;        ///< rebuilds forced by a capability bump
};

template <class Acc>
class WorkspacePool {
 public:
  /// Ensures a slot exists for thread numbers [0, threads). Never shrinks:
  /// a later smaller team keeps the extra warm slots around.
  void reserve(int threads) {
    if (threads > 0 && static_cast<std::size_t>(threads) > slots_.size()) {
      slots_.resize(static_cast<std::size_t>(threads));
    }
  }

  /// Attaches the engine's memory governor: (re)constructions charge the
  /// slot's byte estimate against the budget and drops release it. Set
  /// before any concurrent use, like reserve(). nullptr detaches.
  void set_governor(MemoryGovernor* governor) noexcept {
    governor_ = governor;
  }

  /// Returns thread `thread`'s accumulator, constructing it via `make()`
  /// only when the slot is empty or `capability` exceeds what the resident
  /// instance was built for. Call only from the owning thread, after a
  /// reserve() that covers `thread`. Throws CapacityError when the
  /// pool-alloc fault site fires (or make() itself fails to allocate); the
  /// slot is left empty, not half-built, so the pool stays reusable.
  /// `bytes_estimate` is the slot's footprint charged to the governor when
  /// the construction happens (0 = unaccounted).
  template <class Make>
  Acc& acquire(int thread, std::uint64_t capability, Make&& make,
               std::uint64_t bytes_estimate = 0) {
    Slot& slot = slots_[static_cast<std::size_t>(thread)];
    slot.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (!slot.acc.has_value() || slot.capability < capability) {
      if (fault::should_fire(FaultSite::kPoolAllocation)) {
        throw CapacityError(
            "workspace allocation failed (injected fault: pool-alloc)");
      }
      if (slot.acc.has_value()) {
        slot.retunes.fetch_add(1, std::memory_order_relaxed);
      }
      if (governor_ != nullptr) {
        governor_->release(slot.bytes);
        slot.bytes = 0;
      }
      slot.acc.reset();  // old workspace freed before the replacement builds
      slot.acc.emplace(make());
      slot.capability = capability;
      if (governor_ != nullptr) {
        governor_->charge(bytes_estimate);
        slot.bytes = bytes_estimate;
      }
      slot.constructions.fetch_add(1, std::memory_order_relaxed);
    }
    return *slot.acc;
  }

  /// Drops every pooled workspace (counters survive — they describe the
  /// pool's lifetime, not its current contents). Releases the slots' byte
  /// charges. Like reserve(), NOT safe against in-flight acquires: the
  /// engine calls this only while no job is in flight.
  void release() {
    for (Slot& slot : slots_) {
      slot.acc.reset();
      slot.capability = 0;
      if (governor_ != nullptr) {
        governor_->release(slot.bytes);
      }
      slot.bytes = 0;
    }
  }

  [[nodiscard]] WorkspacePoolStats stats() const {
    WorkspacePoolStats total;
    for (const Slot& slot : slots_) {
      total.acquisitions +=
          slot.acquisitions.load(std::memory_order_relaxed);
      total.constructions +=
          slot.constructions.load(std::memory_order_relaxed);
      total.retunes += slot.retunes.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::optional<Acc> acc;
    std::uint64_t capability = 0;
    std::uint64_t bytes = 0;  ///< governor charge held by this slot
    std::atomic<std::uint64_t> acquisitions{0};
    std::atomic<std::uint64_t> constructions{0};
    std::atomic<std::uint64_t> retunes{0};
  };
  // deque: growth constructs new slots in place without moving existing
  // ones (atomics are immovable, and worker threads hold references).
  std::deque<Slot> slots_;
  MemoryGovernor* governor_ = nullptr;
};

}  // namespace tilq
